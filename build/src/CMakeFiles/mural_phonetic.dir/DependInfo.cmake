
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phonetic/g2p_engine.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/g2p_engine.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/g2p_engine.cc.o.d"
  "/root/repo/src/phonetic/phoneme.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/phoneme.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/phoneme.cc.o.d"
  "/root/repo/src/phonetic/rules_english.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_english.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_english.cc.o.d"
  "/root/repo/src/phonetic/rules_germanic.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_germanic.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_germanic.cc.o.d"
  "/root/repo/src/phonetic/rules_indic.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_indic.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_indic.cc.o.d"
  "/root/repo/src/phonetic/rules_romance.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_romance.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/rules_romance.cc.o.d"
  "/root/repo/src/phonetic/transformer.cc" "src/CMakeFiles/mural_phonetic.dir/phonetic/transformer.cc.o" "gcc" "src/CMakeFiles/mural_phonetic.dir/phonetic/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mural_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
