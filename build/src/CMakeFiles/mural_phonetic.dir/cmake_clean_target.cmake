file(REMOVE_RECURSE
  "libmural_phonetic.a"
)
