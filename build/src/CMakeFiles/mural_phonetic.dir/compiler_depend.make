# Empty compiler generated dependencies file for mural_phonetic.
# This may be replaced when dependencies are built.
