file(REMOVE_RECURSE
  "CMakeFiles/mural_phonetic.dir/phonetic/g2p_engine.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/g2p_engine.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/phoneme.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/phoneme.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_english.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_english.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_germanic.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_germanic.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_indic.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_indic.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_romance.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/rules_romance.cc.o.d"
  "CMakeFiles/mural_phonetic.dir/phonetic/transformer.cc.o"
  "CMakeFiles/mural_phonetic.dir/phonetic/transformer.cc.o.d"
  "libmural_phonetic.a"
  "libmural_phonetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_phonetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
