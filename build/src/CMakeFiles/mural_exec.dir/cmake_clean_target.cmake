file(REMOVE_RECURSE
  "libmural_exec.a"
)
