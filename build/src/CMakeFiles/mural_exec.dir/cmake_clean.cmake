file(REMOVE_RECURSE
  "CMakeFiles/mural_exec.dir/exec/agg_ops.cc.o"
  "CMakeFiles/mural_exec.dir/exec/agg_ops.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/basic_ops.cc.o"
  "CMakeFiles/mural_exec.dir/exec/basic_ops.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/expression.cc.o"
  "CMakeFiles/mural_exec.dir/exec/expression.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/join_ops.cc.o"
  "CMakeFiles/mural_exec.dir/exec/join_ops.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/mural_ops.cc.o"
  "CMakeFiles/mural_exec.dir/exec/mural_ops.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/operator.cc.o"
  "CMakeFiles/mural_exec.dir/exec/operator.cc.o.d"
  "CMakeFiles/mural_exec.dir/exec/scan_ops.cc.o"
  "CMakeFiles/mural_exec.dir/exec/scan_ops.cc.o.d"
  "libmural_exec.a"
  "libmural_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
