# Empty dependencies file for mural_exec.
# This may be replaced when dependencies are built.
