
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_ops.cc" "src/CMakeFiles/mural_exec.dir/exec/agg_ops.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/agg_ops.cc.o.d"
  "/root/repo/src/exec/basic_ops.cc" "src/CMakeFiles/mural_exec.dir/exec/basic_ops.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/basic_ops.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/mural_exec.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/CMakeFiles/mural_exec.dir/exec/join_ops.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/mural_ops.cc" "src/CMakeFiles/mural_exec.dir/exec/mural_ops.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/mural_ops.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/mural_exec.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/CMakeFiles/mural_exec.dir/exec/scan_ops.cc.o" "gcc" "src/CMakeFiles/mural_exec.dir/exec/scan_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mural_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_phonetic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
