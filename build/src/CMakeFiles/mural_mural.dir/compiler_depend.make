# Empty compiler generated dependencies file for mural_mural.
# This may be replaced when dependencies are built.
