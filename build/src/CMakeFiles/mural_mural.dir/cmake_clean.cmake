file(REMOVE_RECURSE
  "CMakeFiles/mural_mural.dir/mural/algebra.cc.o"
  "CMakeFiles/mural_mural.dir/mural/algebra.cc.o.d"
  "libmural_mural.a"
  "libmural_mural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_mural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
