file(REMOVE_RECURSE
  "libmural_mural.a"
)
