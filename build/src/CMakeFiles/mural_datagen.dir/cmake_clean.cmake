file(REMOVE_RECURSE
  "CMakeFiles/mural_datagen.dir/datagen/catalog_generator.cc.o"
  "CMakeFiles/mural_datagen.dir/datagen/catalog_generator.cc.o.d"
  "CMakeFiles/mural_datagen.dir/datagen/name_generator.cc.o"
  "CMakeFiles/mural_datagen.dir/datagen/name_generator.cc.o.d"
  "CMakeFiles/mural_datagen.dir/datagen/taxonomy_generator.cc.o"
  "CMakeFiles/mural_datagen.dir/datagen/taxonomy_generator.cc.o.d"
  "libmural_datagen.a"
  "libmural_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
