
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/catalog_generator.cc" "src/CMakeFiles/mural_datagen.dir/datagen/catalog_generator.cc.o" "gcc" "src/CMakeFiles/mural_datagen.dir/datagen/catalog_generator.cc.o.d"
  "/root/repo/src/datagen/name_generator.cc" "src/CMakeFiles/mural_datagen.dir/datagen/name_generator.cc.o" "gcc" "src/CMakeFiles/mural_datagen.dir/datagen/name_generator.cc.o.d"
  "/root/repo/src/datagen/taxonomy_generator.cc" "src/CMakeFiles/mural_datagen.dir/datagen/taxonomy_generator.cc.o" "gcc" "src/CMakeFiles/mural_datagen.dir/datagen/taxonomy_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mural_phonetic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
