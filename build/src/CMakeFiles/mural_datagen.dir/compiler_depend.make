# Empty compiler generated dependencies file for mural_datagen.
# This may be replaced when dependencies are built.
