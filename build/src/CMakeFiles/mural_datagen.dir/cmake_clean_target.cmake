file(REMOVE_RECURSE
  "libmural_datagen.a"
)
