# Empty dependencies file for mural_distance.
# This may be replaced when dependencies are built.
