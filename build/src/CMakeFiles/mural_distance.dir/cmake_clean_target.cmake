file(REMOVE_RECURSE
  "libmural_distance.a"
)
