file(REMOVE_RECURSE
  "CMakeFiles/mural_distance.dir/distance/edit_distance.cc.o"
  "CMakeFiles/mural_distance.dir/distance/edit_distance.cc.o.d"
  "libmural_distance.a"
  "libmural_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
