# Empty dependencies file for mural_sql.
# This may be replaced when dependencies are built.
