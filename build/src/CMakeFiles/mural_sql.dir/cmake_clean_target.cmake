file(REMOVE_RECURSE
  "libmural_sql.a"
)
