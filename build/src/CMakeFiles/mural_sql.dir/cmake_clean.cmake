file(REMOVE_RECURSE
  "CMakeFiles/mural_sql.dir/sql/sql.cc.o"
  "CMakeFiles/mural_sql.dir/sql/sql.cc.o.d"
  "libmural_sql.a"
  "libmural_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
