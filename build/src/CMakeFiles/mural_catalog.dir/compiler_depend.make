# Empty compiler generated dependencies file for mural_catalog.
# This may be replaced when dependencies are built.
