file(REMOVE_RECURSE
  "libmural_catalog.a"
)
