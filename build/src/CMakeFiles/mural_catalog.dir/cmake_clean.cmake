file(REMOVE_RECURSE
  "CMakeFiles/mural_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/mural_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/mural_catalog.dir/catalog/schema.cc.o"
  "CMakeFiles/mural_catalog.dir/catalog/schema.cc.o.d"
  "CMakeFiles/mural_catalog.dir/catalog/tuple_codec.cc.o"
  "CMakeFiles/mural_catalog.dir/catalog/tuple_codec.cc.o.d"
  "CMakeFiles/mural_catalog.dir/catalog/value.cc.o"
  "CMakeFiles/mural_catalog.dir/catalog/value.cc.o.d"
  "libmural_catalog.a"
  "libmural_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
