file(REMOVE_RECURSE
  "libmural_index.a"
)
