file(REMOVE_RECURSE
  "CMakeFiles/mural_index.dir/index/btree.cc.o"
  "CMakeFiles/mural_index.dir/index/btree.cc.o.d"
  "CMakeFiles/mural_index.dir/index/gist.cc.o"
  "CMakeFiles/mural_index.dir/index/gist.cc.o.d"
  "CMakeFiles/mural_index.dir/index/key_codec.cc.o"
  "CMakeFiles/mural_index.dir/index/key_codec.cc.o.d"
  "CMakeFiles/mural_index.dir/index/mdi.cc.o"
  "CMakeFiles/mural_index.dir/index/mdi.cc.o.d"
  "CMakeFiles/mural_index.dir/index/mtree.cc.o"
  "CMakeFiles/mural_index.dir/index/mtree.cc.o.d"
  "libmural_index.a"
  "libmural_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
