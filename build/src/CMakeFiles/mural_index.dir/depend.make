# Empty dependencies file for mural_index.
# This may be replaced when dependencies are built.
