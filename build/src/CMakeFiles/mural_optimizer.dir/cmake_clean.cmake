file(REMOVE_RECURSE
  "CMakeFiles/mural_optimizer.dir/optimizer/cardinality.cc.o"
  "CMakeFiles/mural_optimizer.dir/optimizer/cardinality.cc.o.d"
  "CMakeFiles/mural_optimizer.dir/optimizer/cost_model.cc.o"
  "CMakeFiles/mural_optimizer.dir/optimizer/cost_model.cc.o.d"
  "CMakeFiles/mural_optimizer.dir/optimizer/logical_plan.cc.o"
  "CMakeFiles/mural_optimizer.dir/optimizer/logical_plan.cc.o.d"
  "CMakeFiles/mural_optimizer.dir/optimizer/planner.cc.o"
  "CMakeFiles/mural_optimizer.dir/optimizer/planner.cc.o.d"
  "CMakeFiles/mural_optimizer.dir/optimizer/stats.cc.o"
  "CMakeFiles/mural_optimizer.dir/optimizer/stats.cc.o.d"
  "libmural_optimizer.a"
  "libmural_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
