# Empty dependencies file for mural_optimizer.
# This may be replaced when dependencies are built.
