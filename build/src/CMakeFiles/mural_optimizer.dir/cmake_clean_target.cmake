file(REMOVE_RECURSE
  "libmural_optimizer.a"
)
