file(REMOVE_RECURSE
  "CMakeFiles/mural_common.dir/common/logging.cc.o"
  "CMakeFiles/mural_common.dir/common/logging.cc.o.d"
  "CMakeFiles/mural_common.dir/common/random.cc.o"
  "CMakeFiles/mural_common.dir/common/random.cc.o.d"
  "CMakeFiles/mural_common.dir/common/status.cc.o"
  "CMakeFiles/mural_common.dir/common/status.cc.o.d"
  "CMakeFiles/mural_common.dir/common/utf8.cc.o"
  "CMakeFiles/mural_common.dir/common/utf8.cc.o.d"
  "libmural_common.a"
  "libmural_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
