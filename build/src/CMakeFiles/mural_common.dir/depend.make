# Empty dependencies file for mural_common.
# This may be replaced when dependencies are built.
