file(REMOVE_RECURSE
  "libmural_common.a"
)
