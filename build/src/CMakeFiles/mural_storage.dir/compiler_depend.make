# Empty compiler generated dependencies file for mural_storage.
# This may be replaced when dependencies are built.
