file(REMOVE_RECURSE
  "CMakeFiles/mural_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/mural_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/mural_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/mural_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/mural_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/mural_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/mural_storage.dir/storage/page.cc.o"
  "CMakeFiles/mural_storage.dir/storage/page.cc.o.d"
  "libmural_storage.a"
  "libmural_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
