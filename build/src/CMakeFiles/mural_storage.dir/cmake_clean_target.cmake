file(REMOVE_RECURSE
  "libmural_storage.a"
)
