file(REMOVE_RECURSE
  "CMakeFiles/mural_plfront.dir/plfront/pl_interpreter.cc.o"
  "CMakeFiles/mural_plfront.dir/plfront/pl_interpreter.cc.o.d"
  "CMakeFiles/mural_plfront.dir/plfront/pl_parser.cc.o"
  "CMakeFiles/mural_plfront.dir/plfront/pl_parser.cc.o.d"
  "CMakeFiles/mural_plfront.dir/plfront/pl_value.cc.o"
  "CMakeFiles/mural_plfront.dir/plfront/pl_value.cc.o.d"
  "CMakeFiles/mural_plfront.dir/plfront/udf_runtime.cc.o"
  "CMakeFiles/mural_plfront.dir/plfront/udf_runtime.cc.o.d"
  "libmural_plfront.a"
  "libmural_plfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_plfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
