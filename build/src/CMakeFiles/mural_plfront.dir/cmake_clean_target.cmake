file(REMOVE_RECURSE
  "libmural_plfront.a"
)
