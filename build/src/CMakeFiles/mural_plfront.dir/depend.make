# Empty dependencies file for mural_plfront.
# This may be replaced when dependencies are built.
