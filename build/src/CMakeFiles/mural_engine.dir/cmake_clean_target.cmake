file(REMOVE_RECURSE
  "libmural_engine.a"
)
