# Empty dependencies file for mural_engine.
# This may be replaced when dependencies are built.
