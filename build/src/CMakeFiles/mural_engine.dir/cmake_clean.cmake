file(REMOVE_RECURSE
  "CMakeFiles/mural_engine.dir/engine/closure_exec.cc.o"
  "CMakeFiles/mural_engine.dir/engine/closure_exec.cc.o.d"
  "CMakeFiles/mural_engine.dir/engine/database.cc.o"
  "CMakeFiles/mural_engine.dir/engine/database.cc.o.d"
  "CMakeFiles/mural_engine.dir/engine/outside_server.cc.o"
  "CMakeFiles/mural_engine.dir/engine/outside_server.cc.o.d"
  "libmural_engine.a"
  "libmural_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
