file(REMOVE_RECURSE
  "libmural_taxonomy.a"
)
