
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxonomy/reachability_index.cc" "src/CMakeFiles/mural_taxonomy.dir/taxonomy/reachability_index.cc.o" "gcc" "src/CMakeFiles/mural_taxonomy.dir/taxonomy/reachability_index.cc.o.d"
  "/root/repo/src/taxonomy/taxonomy.cc" "src/CMakeFiles/mural_taxonomy.dir/taxonomy/taxonomy.cc.o" "gcc" "src/CMakeFiles/mural_taxonomy.dir/taxonomy/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mural_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mural_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
