# Empty dependencies file for mural_taxonomy.
# This may be replaced when dependencies are built.
