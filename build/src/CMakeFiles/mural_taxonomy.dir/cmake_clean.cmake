file(REMOVE_RECURSE
  "CMakeFiles/mural_taxonomy.dir/taxonomy/reachability_index.cc.o"
  "CMakeFiles/mural_taxonomy.dir/taxonomy/reachability_index.cc.o.d"
  "CMakeFiles/mural_taxonomy.dir/taxonomy/taxonomy.cc.o"
  "CMakeFiles/mural_taxonomy.dir/taxonomy/taxonomy.cc.o.d"
  "libmural_taxonomy.a"
  "libmural_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
