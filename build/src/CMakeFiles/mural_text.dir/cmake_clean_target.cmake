file(REMOVE_RECURSE
  "libmural_text.a"
)
