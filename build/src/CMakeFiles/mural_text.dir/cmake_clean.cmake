file(REMOVE_RECURSE
  "CMakeFiles/mural_text.dir/text/language.cc.o"
  "CMakeFiles/mural_text.dir/text/language.cc.o.d"
  "CMakeFiles/mural_text.dir/text/unitext.cc.o"
  "CMakeFiles/mural_text.dir/text/unitext.cc.o.d"
  "libmural_text.a"
  "libmural_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
