# Empty dependencies file for mural_text.
# This may be replaced when dependencies are built.
