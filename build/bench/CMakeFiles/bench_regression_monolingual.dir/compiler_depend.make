# Empty compiler generated dependencies file for bench_regression_monolingual.
# This may be replaced when dependencies are built.
