file(REMOVE_RECURSE
  "CMakeFiles/bench_regression_monolingual.dir/bench_regression_monolingual.cc.o"
  "CMakeFiles/bench_regression_monolingual.dir/bench_regression_monolingual.cc.o.d"
  "bench_regression_monolingual"
  "bench_regression_monolingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regression_monolingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
