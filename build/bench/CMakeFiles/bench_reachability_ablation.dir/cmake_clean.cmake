file(REMOVE_RECURSE
  "CMakeFiles/bench_reachability_ablation.dir/bench_reachability_ablation.cc.o"
  "CMakeFiles/bench_reachability_ablation.dir/bench_reachability_ablation.cc.o.d"
  "bench_reachability_ablation"
  "bench_reachability_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reachability_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
