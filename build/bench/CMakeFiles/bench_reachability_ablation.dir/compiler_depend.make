# Empty compiler generated dependencies file for bench_reachability_ablation.
# This may be replaced when dependencies are built.
