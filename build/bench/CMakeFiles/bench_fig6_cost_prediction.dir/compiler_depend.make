# Empty compiler generated dependencies file for bench_fig6_cost_prediction.
# This may be replaced when dependencies are built.
