file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_semequal.dir/bench_fig8_semequal.cc.o"
  "CMakeFiles/bench_fig8_semequal.dir/bench_fig8_semequal.cc.o.d"
  "bench_fig8_semequal"
  "bench_fig8_semequal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_semequal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
