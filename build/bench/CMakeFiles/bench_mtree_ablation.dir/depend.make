# Empty dependencies file for bench_mtree_ablation.
# This may be replaced when dependencies are built.
