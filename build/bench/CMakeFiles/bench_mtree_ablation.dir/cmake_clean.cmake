file(REMOVE_RECURSE
  "CMakeFiles/bench_mtree_ablation.dir/bench_mtree_ablation.cc.o"
  "CMakeFiles/bench_mtree_ablation.dir/bench_mtree_ablation.cc.o.d"
  "bench_mtree_ablation"
  "bench_mtree_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtree_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
