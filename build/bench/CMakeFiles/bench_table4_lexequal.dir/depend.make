# Empty dependencies file for bench_table4_lexequal.
# This may be replaced when dependencies are built.
