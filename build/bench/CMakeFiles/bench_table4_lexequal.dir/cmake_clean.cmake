file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lexequal.dir/bench_table4_lexequal.cc.o"
  "CMakeFiles/bench_table4_lexequal.dir/bench_table4_lexequal.cc.o.d"
  "bench_table4_lexequal"
  "bench_table4_lexequal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lexequal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
