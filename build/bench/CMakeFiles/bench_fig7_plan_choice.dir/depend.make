# Empty dependencies file for bench_fig7_plan_choice.
# This may be replaced when dependencies are built.
