file(REMOVE_RECURSE
  "CMakeFiles/bench_distance_ablation.dir/bench_distance_ablation.cc.o"
  "CMakeFiles/bench_distance_ablation.dir/bench_distance_ablation.cc.o.d"
  "bench_distance_ablation"
  "bench_distance_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distance_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
