file(REMOVE_RECURSE
  "CMakeFiles/plfront_test.dir/plfront_test.cc.o"
  "CMakeFiles/plfront_test.dir/plfront_test.cc.o.d"
  "plfront_test"
  "plfront_test.pdb"
  "plfront_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfront_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
