# Empty compiler generated dependencies file for plfront_test.
# This may be replaced when dependencies are built.
