# Empty compiler generated dependencies file for mural_composition_test.
# This may be replaced when dependencies are built.
