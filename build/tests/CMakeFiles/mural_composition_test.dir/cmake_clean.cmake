file(REMOVE_RECURSE
  "CMakeFiles/mural_composition_test.dir/mural_composition_test.cc.o"
  "CMakeFiles/mural_composition_test.dir/mural_composition_test.cc.o.d"
  "mural_composition_test"
  "mural_composition_test.pdb"
  "mural_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mural_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
