file(REMOVE_RECURSE
  "CMakeFiles/unitext_test.dir/unitext_test.cc.o"
  "CMakeFiles/unitext_test.dir/unitext_test.cc.o.d"
  "unitext_test"
  "unitext_test.pdb"
  "unitext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unitext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
