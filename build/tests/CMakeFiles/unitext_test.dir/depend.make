# Empty dependencies file for unitext_test.
# This may be replaced when dependencies are built.
