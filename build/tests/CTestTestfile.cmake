# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/phonetic_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/mtree_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/plfront_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/mural_composition_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/gist_test[1]_include.cmake")
include("/root/repo/build/tests/reachability_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/unitext_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_smoke_test[1]_include.cmake")
