file(REMOVE_RECURSE
  "CMakeFiles/books_catalog.dir/books_catalog.cc.o"
  "CMakeFiles/books_catalog.dir/books_catalog.cc.o.d"
  "books_catalog"
  "books_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/books_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
