# Empty dependencies file for books_catalog.
# This may be replaced when dependencies are built.
