# Empty compiler generated dependencies file for crosslingual_join.
# This may be replaced when dependencies are built.
