file(REMOVE_RECURSE
  "CMakeFiles/crosslingual_join.dir/crosslingual_join.cc.o"
  "CMakeFiles/crosslingual_join.dir/crosslingual_join.cc.o.d"
  "crosslingual_join"
  "crosslingual_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosslingual_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
