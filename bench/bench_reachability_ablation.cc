// Experiment A4 — extension beyond the paper: the §4.3.1 direction
// ("speeding-up closure processing" with a connection index) realized as
// an interval/hop reachability index, compared against the paper's own
// §4.3 mechanism (materialized + memoized closures).
//
// Workload: Omega scan-style membership probes — for a query concept c
// and a stream of category values v, decide v ∈ TC(c) — measured (a) cold
// (first probe pays the closure build / nothing) and (b) warm (closure
// cached / labels built).

#include <cstdio>

#include "bench_util.h"
#include "taxonomy/reachability_index.h"

using namespace mural;
using namespace mural::bench;

int main() {
  JsonReporter json("reachability_ablation");
  std::printf("=== A4: closure materialization (§4.3) vs reachability "
              "index (§4.3.1 direction) ===\n\n");

  TaxonomyGenOptions options;
  options.seed = 42;
  options.base_synsets = 30000;
  options.languages = {lang::kEnglish, lang::kTamil};
  options.dag_edge_fraction = 0.005;
  const GeneratedTaxonomy gen = GenerateTaxonomy(options);
  const Taxonomy& tax = *gen.taxonomy;

  // Build the index once (amortized over all queries, like §4.3's pin).
  Timer build_timer;
  auto index_or = ReachabilityIndex::Build(&tax);
  BENCH_CHECK_OK(index_or.status());
  const ReachabilityIndex& index = *index_or;
  const double build_ms = build_timer.ElapsedMillis();
  std::printf("taxonomy: %zu synsets; index build %.1f ms (%zu hop "
              "entries)\n\n",
              tax.size(), build_ms, index.num_hops());
  json.Record("index", "build_ms", build_ms);

  // Query roots of varying closure sizes; probe values random.
  Rng rng(7);
  std::vector<SynsetId> sample(gen.base_synsets.begin(),
                               gen.base_synsets.begin() + 1500);
  std::printf("%10s %22s %22s %20s\n", "closure",
              "closure path (ms)", "reach index (ms)", "agreement");
  for (size_t target : {100, 1000, 10000}) {
    const auto roots = FindRootsWithClosureSize(tax, sample, target, 1);
    if (roots.empty()) continue;
    const SynsetId root = roots[0];
    std::vector<SynsetId> probes;
    for (int i = 0; i < 20000; ++i) {
      probes.push_back(static_cast<SynsetId>(rng.Uniform(tax.size())));
    }

    // Path A: the paper's mechanism — materialize the closure once
    // (memoized thereafter), then hash probes.
    size_t hits_a = 0;
    const double closure_ms = TimeMedianMs(3, [&] {
      hits_a = 0;
      const Closure closure = tax.TransitiveClosure(root, true);
      for (SynsetId p : probes) hits_a += closure.count(p);
    });

    // Path B: prepare the interval cover once, then probe it.
    size_t hits_b = 0;
    size_t num_intervals = 0;
    const double index_ms = TimeMedianMs(3, [&] {
      hits_b = 0;
      const PreparedReachability prepared = index.Prepare(root, true);
      num_intervals = prepared.num_intervals();
      for (SynsetId p : probes) {
        hits_b += prepared.Contains(p) ? 1 : 0;
      }
    });
    const size_t size = tax.TransitiveClosure(root, true).size();
    std::printf("%10zu %22.2f %22.2f %20s   (%zu intervals)\n", size,
                closure_ms, index_ms,
                hits_a == hits_b ? "identical" : "MISMATCH",
                num_intervals);
    const std::string label = "closure_" + std::to_string(size);
    json.Record(label, "closure_path_ms", closure_ms);
    json.Record(label, "reach_index_ms", index_ms);
  }

  std::printf(
      "\nReading the table: both paths answer identically; the hash-set\n"
      "closure keeps per-probe O(1) and wins on raw speed, while the\n"
      "interval cover represents the same closure in 2-3 orders of\n"
      "magnitude less memory (intervals vs |TC| hash entries) with\n"
      "O(log #intervals) probes — the space/structure trade behind the\n"
      "connection-index direction the paper sketches in §4.3.1.  The\n"
      "cover also yields exact |TC| sizes for the §3.4.2 estimator\n"
      "without materializing any set.\n");
  return 0;
}
