// Experiment T4 — paper Table 4: "Performance of Psi Implementation".
//
// Reproduces the four-way comparison for both scan- and join-type
// LexEQUAL queries at threshold 3 (the paper's constant):
//
//     Implementation     Query type      Scan (s)   Join (s)
//     Core               No Index        5.20       1.97
//     Core               M-Tree Index    4.24       1.92
//     Outside-Server     No Index        3618       453
//     Outside-Server     MDI Index       498        169
//
// The shape to reproduce: core beats outside-the-server by ~2 orders of
// magnitude; the M-Tree helps the core path only marginally; the MDI
// helps the outside path substantially but leaves it far behind core.
// Absolute numbers differ (their testbed was a 2.3 GHz Pentium 4 against
// on-disk PostgreSQL; ours is an in-process engine) — the ratios are the
// result.
//
// Scale note: the paper's scan dataset is ~30k names, which we match; the
// outside-the-server *join* at paper scale (30k x 30k interpreted UDF
// pairs) would run for hours by design, so the join uses 1.2k x 400 —
// both implementations run the same workload, preserving the ratio.

#include <cstdio>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/outside_server.h"
#include "mural/algebra.h"

using namespace mural;
using namespace mural::bench;

namespace {

constexpr int kThreshold = 3;

struct Cell {
  double scan_ms = 0;
  double join_ms = 0;
};

}  // namespace

int main() {
  JsonReporter json("table4_lexequal");
  std::printf("=== Table 4: Performance of Psi implementation "
              "(threshold=%d) ===\n", kThreshold);
  std::printf("(seed 42; scans summed over 3 probes of 30k names; join 1.2k x 400 names)\n\n");

  // ---- scan dataset: ~30k names like the paper's -----------------------
  std::vector<NameRecord> records;
  auto db_or = MakeNamesDb(/*bases=*/6000, /*variants=*/5, /*seed=*/42,
                           &records);
  BENCH_CHECK_OK(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);
  db->SetLexequalThreshold(kThreshold);
  BENCH_CHECK_OK(db->CreateIndex("names_mtree", "names", "name",
                                 IndexKind::kMTree, true));
  BENCH_CHECK_OK(db->CreateIndex("names_mdi", "names", "name",
                                 IndexKind::kMdi, true));

  // ---- join dataset ----------------------------------------------------
  BENCH_CHECK_OK(MakeNamesDb(0, 1, 0).status());  // warm the transformer
  auto join_db_or = MakeNamesDb(/*bases=*/300, /*variants=*/4, /*seed=*/7);
  BENCH_CHECK_OK(join_db_or.status());
  std::unique_ptr<Database> join_db = std::move(*join_db_or);
  join_db->SetLexequalThreshold(kThreshold);
  BENCH_CHECK_OK(AddSecondNamesTable(join_db.get(), "others",
                                     /*bases=*/100, /*variants=*/4,
                                     /*seed=*/11));
  BENCH_CHECK_OK(join_db->CreateIndex("names_mtree", "names", "name",
                                      IndexKind::kMTree, true));
  BENCH_CHECK_OK(join_db->CreateIndex("names_mdi", "names", "name",
                                      IndexKind::kMdi, true));

  // Several probes spread across the dataset; scan times below are sums
  // over the probe set so no single query's luck dominates.
  const std::vector<UniText> probes = {records[17].name,
                                       records[10017].name,
                                       records[20017].name};
  const Schema& names_schema = (*db->catalog()->GetTable("names"))->schema;
  const Schema& jnames_schema =
      (*join_db->catalog()->GetTable("names"))->schema;
  const Schema& others_schema =
      (*join_db->catalog()->GetTable("others"))->schema;

  size_t scan_rows = 0, join_rows = 0;
  Cell core_noidx, core_mtree, out_noidx, out_idx;

  // ---------------- Core, no index --------------------------------------
  {
    PlannerHints hints;
    hints.enable_mtree = false;
    core_noidx.scan_ms = TimeMedianMs(3, [&] {
      scan_rows = 0;
      for (const UniText& probe : probes) {
        auto plan = MuralBuilder::Scan("names", names_schema)
                        .PsiSelect("name", probe)
                        .Build();
        auto result = db->Query(plan, hints);
        BENCH_CHECK_OK(result.status());
        scan_rows += result->rows.size();
      }
    });
    auto join_plan =
        MuralBuilder::Scan("names", jnames_schema)
            .PsiJoin(MuralBuilder::Scan("others", others_schema), "name",
                     "name")
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    core_noidx.join_ms = TimeMedianMs(3, [&] {
      auto result = join_db->Query(join_plan, hints);
      BENCH_CHECK_OK(result.status());
      join_rows = static_cast<size_t>(result->rows[0][0].int64());
    });
  }

  // ---------------- Core, M-Tree index -----------------------------------
  {
    size_t rows = 0;
    core_mtree.scan_ms = TimeMedianMs(3, [&] {
      rows = 0;
      for (const UniText& probe : probes) {
        auto plan = MuralBuilder::Scan("names", names_schema)
                        .PsiSelect("name", probe)
                        .Build();
        auto result = db->Query(plan);
        BENCH_CHECK_OK(result.status());
        rows += result->rows.size();
      }
    });
    if (rows != scan_rows) {
      std::fprintf(stderr, "FATAL: index scan row mismatch %zu vs %zu\n",
                   rows, scan_rows);
      return 1;
    }
    auto join_plan =
        MuralBuilder::Scan("others", others_schema)
            .PsiJoin(MuralBuilder::Scan("names", jnames_schema), "name",
                     "name")
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    core_mtree.join_ms = TimeMedianMs(3, [&] {
      auto result = join_db->Query(join_plan);
      BENCH_CHECK_OK(result.status());
    });
  }

  // ---------------- Outside-the-server, no index -------------------------
  {
    size_t rows = 0;
    out_noidx.scan_ms = 0;
    for (const UniText& probe : probes) {
      auto scan =
          OutsideLexScan(db.get(), "names", "name", probe, kThreshold);
      BENCH_CHECK_OK(scan.status());
      out_noidx.scan_ms += scan->second.millis;
      rows += scan->first.size();
    }
    if (rows != scan_rows) {
      std::fprintf(stderr, "FATAL: outside scan row mismatch\n");
      return 1;
    }
    auto join = OutsideLexJoin(join_db.get(), "names", "name", "others",
                               "name", kThreshold);
    BENCH_CHECK_OK(join.status());
    out_noidx.join_ms = join->second.millis;
    if (join->first.size() != join_rows) {
      std::fprintf(stderr, "FATAL: outside join row mismatch %zu vs %zu\n",
                   join->first.size(), join_rows);
      return 1;
    }
  }

  // ---------------- Outside-the-server, MDI index ------------------------
  {
    size_t rows = 0;
    out_idx.scan_ms = 0;
    for (const UniText& probe : probes) {
      auto scan =
          OutsideLexScan(db.get(), "names", "name", probe, kThreshold,
                         /*use_mdi_index=*/true, "names_mdi");
      BENCH_CHECK_OK(scan.status());
      out_idx.scan_ms += scan->second.millis;
      rows += scan->first.size();
    }
    if (rows != scan_rows) {
      std::fprintf(stderr, "FATAL: MDI scan row mismatch\n");
      return 1;
    }
    auto join = OutsideLexJoin(join_db.get(), "others", "name", "names",
                               "name", kThreshold,
                               /*use_mdi_index=*/true, "names_mdi");
    BENCH_CHECK_OK(join.status());
    out_idx.join_ms = join->second.millis;
  }

  const std::pair<const char*, const Cell*> cells[] = {
      {"core_noidx", &core_noidx},
      {"core_mtree", &core_mtree},
      {"outside_noidx", &out_noidx},
      {"outside_mdi", &out_idx}};
  for (const auto& [label, cell] : cells) {
    json.Record(label, "scan_ms", cell->scan_ms);
    json.Record(label, "join_ms", cell->join_ms);
  }

  std::printf("%-18s %-14s %12s %12s\n", "Implementation", "Query Type",
              "Scan (ms)", "Join (ms)");
  std::printf("%-18s %-14s %12.2f %12.2f\n", "Core", "No Index",
              core_noidx.scan_ms, core_noidx.join_ms);
  std::printf("%-18s %-14s %12.2f %12.2f\n", "Core", "M-Tree Index",
              core_mtree.scan_ms, core_mtree.join_ms);
  std::printf("%-18s %-14s %12.2f %12.2f\n", "Outside-Server", "No Index",
              out_noidx.scan_ms, out_noidx.join_ms);
  std::printf("%-18s %-14s %12.2f %12.2f\n", "Outside-Server", "MDI Index",
              out_idx.scan_ms, out_idx.join_ms);

  std::printf("\nScan result rows: %zu; join result pairs: %zu "
              "(identical across all four configurations)\n",
              scan_rows, join_rows);
  std::printf("\nShape checks (paper's findings):\n");
  std::printf("  outside/core scan speedup (no index):   %8.1fx  "
              "(paper: ~700x)\n",
              out_noidx.scan_ms / core_noidx.scan_ms);
  std::printf("  outside/core scan speedup (indexed):    %8.1fx  "
              "(paper: ~117x)\n",
              out_idx.scan_ms / core_mtree.scan_ms);
  std::printf("  outside/core join speedup (no index):   %8.1fx  "
              "(paper: ~230x)\n",
              out_noidx.join_ms / core_noidx.join_ms);
  std::printf("  M-Tree gain on core scan:               %8.2fx  "
              "(paper: 1.23x, 'marginal')\n",
              core_noidx.scan_ms / core_mtree.scan_ms);
  std::printf("  MDI gain on outside scan:               %8.2fx  "
              "(paper: 7.3x)\n",
              out_noidx.scan_ms / out_idx.scan_ms);

  // ---------------- Core, batch on/off ablation --------------------------
  // The vectorized LexEQUAL pipeline (LexSelect: fused scan+filter,
  // zero-copy key peek, bounded bit-parallel kernel, late
  // materialization) against the tuple-at-a-time Filter-over-SeqScan on
  // the same 30k-name scan workload, both pinned serial so the comparison
  // isolates the execution path.  Match sets must be bit-identical.
  {
    std::printf("\n=== Batch ablation: core no-index scan, 30k names ===\n");
    PlannerHints hints;
    hints.enable_mtree = false;
    hints.degree_of_parallelism = 1;
    double tuple_ms = 0, batch_ms = 0;
    size_t tuple_rows = 0, batch_rows = 0;
    std::vector<std::string> tuple_set, batch_set;
    for (const bool batched : {false, true}) {
      db->SetBatchSize(batched ? 1024 : 0);
      size_t rows = 0;
      std::vector<std::string> rendered;
      const double ms = TimeMedianMs(3, [&] {
        rows = 0;
        rendered.clear();
        for (const UniText& probe : probes) {
          auto plan = MuralBuilder::Scan("names", names_schema)
                          .PsiSelect("name", probe)
                          .Build();
          auto result = db->Query(plan, hints);
          BENCH_CHECK_OK(result.status());
          rows += result->rows.size();
          for (const Row& r : result->rows) {
            rendered.push_back(r[0].ToString() + "|" + r[1].ToString());
          }
        }
      });
      if (batched) {
        batch_ms = ms;
        batch_rows = rows;
        batch_set = std::move(rendered);
      } else {
        tuple_ms = ms;
        tuple_rows = rows;
        tuple_set = std::move(rendered);
      }
    }
    db->SetBatchSize(1024);  // restore the session default
    if (tuple_rows != scan_rows || batch_rows != scan_rows ||
        tuple_set != batch_set) {
      std::fprintf(stderr,
                   "FATAL: batch/tuple match sets differ (%zu vs %zu)\n",
                   tuple_rows, batch_rows);
      return 1;
    }
    json.Record("core_noidx_tuple", "scan_ms", tuple_ms);
    json.Record("core_noidx_batch", "scan_ms", batch_ms);
    std::printf("  tuple-at-a-time (batch=0):    %10.2f ms\n", tuple_ms);
    std::printf("  vectorized (batch=1024):      %10.2f ms\n", batch_ms);
    std::printf("  batch-path speedup:           %10.2fx  "
                "(match sets bit-identical, %zu rows)\n",
                tuple_ms / batch_ms, batch_rows);
  }

  // ---------------- Core, morsel-parallel DOP sweep ----------------------
  // Beyond the paper: the same no-index core scan on a 100k-name dataset,
  // swept over degree_of_parallelism.  Row counts must be identical at
  // every DOP (the differential harness proves bit-equality; this is the
  // at-scale spot check), and the speedup column reports what this
  // machine actually delivers (1 worker per DOP unit; on a single-core
  // container expect ~1.0x plus coordination overhead).
  {
    std::printf("\n=== DOP sweep: core no-index scan, 100k names ===\n");
    std::printf("(%u hardware thread(s) on this machine)\n",
                static_cast<unsigned>(ThreadPool::HardwareConcurrency()));
    std::vector<NameRecord> big_records;
    auto big_or = MakeNamesDb(/*bases=*/20000, /*variants=*/5, /*seed=*/42,
                              &big_records);
    BENCH_CHECK_OK(big_or.status());
    std::unique_ptr<Database> big = std::move(*big_or);
    big->SetLexequalThreshold(kThreshold);
    big->SetDegreeOfParallelism(8);  // provision the pool once
    const Schema& big_schema = (*big->catalog()->GetTable("names"))->schema;
    auto plan = MuralBuilder::Scan("names", big_schema)
                    .PsiSelect("name", big_records[17].name)
                    .Build();
    // Storage-layer attribution: BufferPool::Fetch/FetchForWrite
    // accumulate their wall time into this counter, so the delta across
    // the three timed runs, divided by 3, is the per-run time the scan
    // spent pinning/latching/loading pages.  On a single-core container
    // it should stay flat across DOPs — any growth is latch contention.
    Counter* fetch_nanos = MetricsRegistry::Global().GetCounter(
        "storage.buffer_pool.fetch_nanos");
    std::printf("%6s %14s %14s %10s %12s\n", "dop", "runtime (ms)",
                "storage (ms)", "rows", "speedup");
    double serial_ms = 0;
    size_t serial_rows = 0;
    for (int dop : {1, 2, 4, 8}) {
      PlannerHints hints;
      hints.enable_mtree = false;
      hints.degree_of_parallelism = dop;
      size_t rows = 0;
      const uint64_t fetch_before = fetch_nanos->value();
      const double ms = TimeMedianMs(3, [&] {
        auto result = big->Query(plan, hints);
        BENCH_CHECK_OK(result.status());
        rows = result->rows.size();
      });
      const double storage_ms =
          static_cast<double>(fetch_nanos->value() - fetch_before) / 3 * 1e-6;
      if (dop == 1) {
        serial_ms = ms;
        serial_rows = rows;
      } else if (rows != serial_rows) {
        std::fprintf(stderr, "FATAL: DOP=%d rows %zu != serial %zu\n", dop,
                     rows, serial_rows);
        return 1;
      }
      std::printf("%6d %14.2f %14.2f %10zu %12.2fx\n", dop, ms, storage_ms,
                  rows, serial_ms / ms);
      json.Record("dop_scan_" + std::to_string(dop), "runtime_ms", ms);
      json.Record("dop_scan_" + std::to_string(dop), "storage_ms",
                  storage_ms);
    }

    // Same sweep for the core join workload.
    std::printf("\n-- DOP sweep: core no-index join (1.2k x 400) --\n");
    join_db->SetDegreeOfParallelism(8);
    auto join_plan =
        MuralBuilder::Scan("names", jnames_schema)
            .PsiJoin(MuralBuilder::Scan("others", others_schema), "name",
                     "name")
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    std::printf("%6s %14s %14s %10s %12s\n", "dop", "runtime (ms)",
                "storage (ms)", "pairs", "speedup");
    double join_serial_ms = 0;
    for (int dop : {1, 2, 4, 8}) {
      PlannerHints hints;
      hints.enable_mtree = false;
      hints.degree_of_parallelism = dop;
      size_t pairs = 0;
      const uint64_t fetch_before = fetch_nanos->value();
      const double ms = TimeMedianMs(3, [&] {
        auto result = join_db->Query(join_plan, hints);
        BENCH_CHECK_OK(result.status());
        pairs = static_cast<size_t>(result->rows[0][0].int64());
      });
      const double storage_ms =
          static_cast<double>(fetch_nanos->value() - fetch_before) / 3 * 1e-6;
      if (dop == 1) {
        join_serial_ms = ms;
      } else if (pairs != join_rows) {
        std::fprintf(stderr, "FATAL: DOP=%d pairs %zu != serial %zu\n", dop,
                     pairs, join_rows);
        return 1;
      }
      std::printf("%6d %14.2f %14.2f %10zu %12.2fx\n", dop, ms, storage_ms,
                  pairs, join_serial_ms / ms);
      json.Record("dop_join_" + std::to_string(dop), "runtime_ms", ms);
      json.Record("dop_join_" + std::to_string(dop), "storage_ms",
                  storage_ms);
    }
  }
  return 0;
}
