// Experiment F8 — paper Figure 8: "Performance of Omega implementation"
// (closure computation time vs closure size, log-log, four series).
//
//   Outside-Server (No Index)      — interpreted UDF, SQL_CHILDREN scans
//   Outside-Server (B+Tree Index)  — interpreted UDF, SQL_CHILDREN probes
//   Core (No Index)                — native, per-level edge-table scans
//   Core (B+Tree Index)            — native, B+Tree probes per node
//
// Shape to reproduce (paper §5.4): without indexes core is about one
// order of magnitude faster than outside; with the B+Tree the gap grows
// to over two orders; core+index answers typical closures (~1000 nodes)
// in tens of milliseconds or less.

#include <cstdio>

#include <algorithm>

#include "bench_util.h"
#include "engine/closure_exec.h"
#include "engine/outside_server.h"

using namespace mural;
using namespace mural::bench;

int main() {
  JsonReporter json("fig8_semequal");
  std::printf("=== Figure 8: closure computation time vs closure size "
              "(log-log) ===\n\n");

  auto db_or = Database::Open();
  BENCH_CHECK_OK(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);

  // Replicated WordNet (paper §5.1 methodology).  20k base synsets x 2
  // languages keeps the outside-the-server runs tractable while giving
  // closures up to ~10^4.
  TaxonomyGenOptions options;
  options.seed = 42;
  options.base_synsets = 20000;
  options.mean_fanout = 4.5;
  options.languages = {lang::kEnglish, lang::kTamil};
  GeneratedTaxonomy generated = GenerateTaxonomy(options);
  const TaxonomyStats stats = generated.taxonomy->ComputeStats();
  std::printf("taxonomy: %llu synsets, %llu IS-A edges, height %u, "
              "fanout %.2f\n\n",
              static_cast<unsigned long long>(stats.num_synsets),
              static_cast<unsigned long long>(stats.num_isa_edges),
              stats.height, stats.avg_fanout);

  // Roots with closure sizes spanning the paper's 10^2..10^4 x-axis.
  std::vector<SynsetId> sample(generated.base_synsets.begin(),
                               generated.base_synsets.begin() + 2000);
  std::vector<SynsetId> roots;
  for (size_t target : {50, 100, 300, 1000, 3000, 10000}) {
    const Taxonomy& tax = *generated.taxonomy;
    auto found = FindRootsWithClosureSize(tax, sample, target, 3);
    for (SynsetId id : found) {
      if (std::find(roots.begin(), roots.end(), id) == roots.end()) {
        roots.push_back(id);
        break;
      }
    }
  }

  BENCH_CHECK_OK(db->LoadTaxonomy(std::move(generated.taxonomy)));
  BENCH_CHECK_OK(db->CreateTaxonomyIndexes());
  const Taxonomy& tax = *db->taxonomy();

  // Warm-up run so cold caches do not distort the first data point.
  {
    const Synset& warm = tax.Get(roots.front());
    BENCH_CHECK_OK(ComputeClosure(db.get(), warm.lemma, warm.lang,
                                  ClosureStrategy::kSeqScan)
                       .status());
    BENCH_CHECK_OK(ComputeClosure(db.get(), warm.lemma, warm.lang,
                                  ClosureStrategy::kBTree)
                       .status());
  }

  std::printf("%10s %16s %16s %16s %16s\n", "closure", "outside-niv (ms)",
              "outside-bt (ms)", "core-niv (ms)", "core-bt (ms)");
  bool ordering_ok = true;
  for (SynsetId root : roots) {
    const Synset& s = tax.Get(root);
    // Fast configurations: best of 3 runs (page caches stay warm across
    // runs, as in the paper's repeated-query methodology).  The slow
    // interpreted no-index configuration runs once.
    double core_seq_ms = 1e18, core_btree_ms = 1e18, out_btree_ms = 1e18;
    size_t size = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto core_seq = ComputeClosure(db.get(), s.lemma, s.lang,
                                     ClosureStrategy::kSeqScan);
      BENCH_CHECK_OK(core_seq.status());
      auto core_btree = ComputeClosure(db.get(), s.lemma, s.lang,
                                       ClosureStrategy::kBTree);
      BENCH_CHECK_OK(core_btree.status());
      auto out_btree = OutsideClosureSize(db.get(), s.lemma, s.lang,
                                          /*use_btree=*/true);
      BENCH_CHECK_OK(out_btree.status());
      size = core_seq->second.closure_size;
      if (out_btree->first != size ||
          core_btree->second.closure_size != size) {
        std::fprintf(stderr, "FATAL: closure size mismatch at root %u\n",
                     root);
        return 1;
      }
      core_seq_ms = std::min(core_seq_ms, core_seq->second.millis);
      core_btree_ms = std::min(core_btree_ms, core_btree->second.millis);
      out_btree_ms = std::min(out_btree_ms, out_btree->second.millis);
    }
    auto out_seq = OutsideClosureSize(db.get(), s.lemma, s.lang,
                                      /*use_btree=*/false);
    BENCH_CHECK_OK(out_seq.status());
    if (out_seq->first != size) {
      std::fprintf(stderr, "FATAL: outside closure size mismatch\n");
      return 1;
    }
    std::printf("%10zu %16.2f %16.2f %16.2f %16.2f\n", size,
                out_seq->second.millis, out_btree_ms, core_seq_ms,
                core_btree_ms);
    const std::string label = "closure_" + std::to_string(size);
    json.Record(label, "outside_noidx_ms", out_seq->second.millis);
    json.Record(label, "outside_btree_ms", out_btree_ms);
    json.Record(label, "core_noidx_ms", core_seq_ms);
    json.Record(label, "core_btree_ms", core_btree_ms);
    ordering_ok = ordering_ok && core_btree_ms < out_btree_ms &&
                  core_seq_ms < out_seq->second.millis;
  }

  std::printf("\nShape checks (paper §5.4):\n");
  std::printf("  - core beats outside in every configuration: %s\n",
              ordering_ok ? "yes" : "NO");
  std::printf("  - expected gaps: ~1 order (no index), >2 orders "
              "(B+Tree)\n");
  return 0;
}
