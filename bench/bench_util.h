// Shared helpers for the experiment harnesses: dataset loading, timing,
// and machine-readable result emission (BENCH_<name>.json, uploaded as a
// CI artifact so runs can be compared across commits).

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/catalog_generator.h"
#include "datagen/name_generator.h"
#include "datagen/taxonomy_generator.h"
#include "engine/database.h"

namespace mural {
namespace bench {

/// Accumulates (label, metric, value) result rows and writes them as
/// BENCH_<name>.json in the working directory when flushed or destroyed.
/// The human-readable printf tables stay the primary console output; this
/// is the machine-readable shadow so CI can diff runs across commits.
///
///   JsonReporter json("table4_lexequal");
///   json.Record("core_noidx", "scan_ms", 12.5);
///
/// Labels and metrics are ASCII identifiers chosen by the bench; quotes
/// and backslashes are escaped anyway so a stray label cannot corrupt the
/// document.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { Flush(); }

  void Record(std::string label, std::string metric, double value) {
    rows_.push_back(Row{std::move(label), std::move(metric), value});
  }

  /// Writes BENCH_<name>.json; safe to call repeatedly (rewrites whole
  /// file).  Returns false if the file cannot be opened.
  bool Flush() {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
                 Escape(bench_name_).c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"label\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.6g}",
                   i == 0 ? "" : ",", Escape(rows_[i].label).c_str(),
                   Escape(rows_[i].metric).c_str(), rows_[i].value);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string label;
    std::string metric;
    double value;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // control chars have no business in a label
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Creates a database holding the multilingual `names(id, name)` table
/// with materialized phonemes, analyzed.  Size = bases * variants.
inline StatusOr<std::unique_ptr<Database>> MakeNamesDb(
    size_t bases, size_t variants, uint64_t seed,
    std::vector<NameRecord>* records_out = nullptr) {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());
  Schema schema({{"id", TypeId::kInt32},
                 {"name", TypeId::kUniText, /*mat=*/true}});
  MURAL_RETURN_IF_ERROR(db->CreateTable("names", schema));
  NameGenOptions options;
  options.seed = seed;
  options.num_bases = bases;
  options.variants_per_base = variants;
  std::vector<NameRecord> records = GenerateNames(options);
  for (const NameRecord& rec : records) {
    MURAL_RETURN_IF_ERROR(
        db->Insert("names", {Value::Int32(static_cast<int32_t>(rec.id)),
                             Value::Uni(rec.name)}));
  }
  MURAL_RETURN_IF_ERROR(db->Analyze("names"));
  if (records_out != nullptr) *records_out = std::move(records);
  return db;
}

/// Adds a second names table for join benches.
inline Status AddSecondNamesTable(Database* db, const char* table,
                                  size_t bases, size_t variants,
                                  uint64_t seed) {
  Schema schema({{"id", TypeId::kInt32},
                 {"name", TypeId::kUniText, /*mat=*/true}});
  MURAL_RETURN_IF_ERROR(db->CreateTable(table, schema));
  NameGenOptions options;
  options.seed = seed;
  options.num_bases = bases;
  options.variants_per_base = variants;
  for (const NameRecord& rec : GenerateNames(options)) {
    MURAL_RETURN_IF_ERROR(
        db->Insert(table, {Value::Int32(static_cast<int32_t>(rec.id)),
                           Value::Uni(rec.name)}));
  }
  return db->Analyze(table);
}

/// Median-of-runs wall-clock helper.
template <typename Fn>
double TimeMedianMs(int runs, Fn&& fn) {
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

#define BENCH_CHECK_OK(expr)                                       \
  do {                                                             \
    const ::mural::Status _st = (expr);                            \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", _st.ToString().c_str()); \
      std::exit(1);                                                \
    }                                                              \
  } while (0)

}  // namespace bench
}  // namespace mural
