// Shared helpers for the experiment harnesses: dataset loading and timing.

#pragma once

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "datagen/catalog_generator.h"
#include "datagen/name_generator.h"
#include "datagen/taxonomy_generator.h"
#include "engine/database.h"

namespace mural {
namespace bench {

/// Creates a database holding the multilingual `names(id, name)` table
/// with materialized phonemes, analyzed.  Size = bases * variants.
inline StatusOr<std::unique_ptr<Database>> MakeNamesDb(
    size_t bases, size_t variants, uint64_t seed,
    std::vector<NameRecord>* records_out = nullptr) {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());
  Schema schema({{"id", TypeId::kInt32},
                 {"name", TypeId::kUniText, /*mat=*/true}});
  MURAL_RETURN_IF_ERROR(db->CreateTable("names", schema));
  NameGenOptions options;
  options.seed = seed;
  options.num_bases = bases;
  options.variants_per_base = variants;
  std::vector<NameRecord> records = GenerateNames(options);
  for (const NameRecord& rec : records) {
    MURAL_RETURN_IF_ERROR(
        db->Insert("names", {Value::Int32(static_cast<int32_t>(rec.id)),
                             Value::Uni(rec.name)}));
  }
  MURAL_RETURN_IF_ERROR(db->Analyze("names"));
  if (records_out != nullptr) *records_out = std::move(records);
  return db;
}

/// Adds a second names table for join benches.
inline Status AddSecondNamesTable(Database* db, const char* table,
                                  size_t bases, size_t variants,
                                  uint64_t seed) {
  Schema schema({{"id", TypeId::kInt32},
                 {"name", TypeId::kUniText, /*mat=*/true}});
  MURAL_RETURN_IF_ERROR(db->CreateTable(table, schema));
  NameGenOptions options;
  options.seed = seed;
  options.num_bases = bases;
  options.variants_per_base = variants;
  for (const NameRecord& rec : GenerateNames(options)) {
    MURAL_RETURN_IF_ERROR(
        db->Insert(table, {Value::Int32(static_cast<int32_t>(rec.id)),
                           Value::Uni(rec.name)}));
  }
  return db->Analyze(table);
}

/// Median-of-runs wall-clock helper.
template <typename Fn>
double TimeMedianMs(int runs, Fn&& fn) {
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

#define BENCH_CHECK_OK(expr)                                       \
  do {                                                             \
    const ::mural::Status _st = (expr);                            \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", _st.ToString().c_str()); \
      std::exit(1);                                                \
    }                                                              \
  } while (0)

}  // namespace bench
}  // namespace mural
