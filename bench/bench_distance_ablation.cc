// Experiment A3 — edit-distance algorithm ablation (google-benchmark):
// the textbook O(m*n) DP versus the diagonal-transition (banded cut-off)
// algorithm the paper adopts (§3.3) versus Myers' bit-parallel scan, over
// phoneme-string lengths and thresholds.  Also benches the interpreted
// PL EDITDIST to quantify the outside-the-server per-call gap.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "distance/bounded_myers.h"
#include "distance/edit_distance.h"
#include "phonetic/phoneme.h"
#include "plfront/udf_runtime.h"

namespace mural {
namespace {

std::vector<std::pair<std::string, std::string>> MakePairs(size_t len,
                                                           size_t count) {
  Rng rng(42);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < count; ++i) {
    std::string a, b;
    for (size_t j = 0; j < len; ++j) {
      a.push_back(
          phoneme::kAlphabet[rng.Uniform(phoneme::kAlphabet.size())]);
    }
    b = a;
    // Mutate a few positions so distances straddle typical thresholds.
    for (int m = 0; m < 3 && !b.empty(); ++m) {
      b[rng.Uniform(b.size())] =
          phoneme::kAlphabet[rng.Uniform(phoneme::kAlphabet.size())];
    }
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

void BM_FullDp(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
}
BENCHMARK(BM_FullDp)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DiagonalTransition(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  const int k = static_cast<int>(state.range(1));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(BoundedLevenshtein(a, b, k));
  }
}
BENCHMARK(BM_DiagonalTransition)
    ->Args({8, 2})
    ->Args({16, 2})
    ->Args({32, 2})
    ->Args({64, 2})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({32, 8});

void BM_MyersBitParallel(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(MyersLevenshtein(a, b));
  }
}
BENCHMARK(BM_MyersBitParallel)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// The production kernel of the batch pipeline: Myers bit-parallel with
// Ukkonen's cut-off folded in.  Same (length, threshold) grid as the
// banded DP above so the two series compare point-for-point; the long
// lengths exercise the multi-word block path.
void BM_BoundedMyers(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  const int k = static_cast<int>(state.range(1));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(BoundedMyersLevenshtein(a, b, k));
  }
}
BENCHMARK(BM_BoundedMyers)
    ->Args({8, 2})
    ->Args({16, 2})
    ->Args({32, 2})
    ->Args({64, 2})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({32, 8})
    ->Args({128, 2})
    ->Args({256, 2});

// The dispatcher the executor actually calls, with stats accounting on —
// measures the counting overhead the batch pipeline pays per call.
void BM_BoundedDistanceCounted(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  DistanceStats stats;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(BoundedDistanceCounted(a, b, 2, &stats));
  }
}
BENCHMARK(BM_BoundedDistanceCounted)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// The prepared-pattern matcher the batch Psi scan hoists per probe: the
// Peq table is built once outside the loop, so the delta against
// BM_BoundedDistanceCounted at the same length is the per-call table
// build the fixed-probe scan no longer pays.
void BM_BoundedMyersMatcher(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 64);
  DistanceStats stats;
  BoundedMyersMatcher matcher(pairs.front().first, 2);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(matcher.Distance(b, &stats));
  }
}
BENCHMARK(BM_BoundedMyersMatcher)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_InterpretedUdfEditDist(benchmark::State& state) {
  auto udf = pl::UdfRuntime::Create();
  if (!udf.ok()) {
    state.SkipWithError("udf runtime failed");
    return;
  }
  const auto pairs = MakePairs(static_cast<size_t>(state.range(0)), 16);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    auto result = (*udf)->CallWire(
        "EDITDIST",
        {pl::PlValue(a), pl::PlValue(b), pl::PlValue(int64_t{2})});
    if (!result.ok()) {
      state.SkipWithError("udf call failed");
      return;
    }
    benchmark::DoNotOptimize(result->AsInt());
  }
}
BENCHMARK(BM_InterpretedUdfEditDist)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace mural

// Expanded BENCHMARK_MAIN() that defaults the JSON emission to the
// repo-wide BENCH_<name>.json convention (see bench_util.h) so CI picks
// this harness up with the same artifact glob as the printf benches.
// Explicit --benchmark_out on the command line still wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char out_flag[] = "--benchmark_out=BENCH_distance_ablation.json";
  char fmt_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
