// Experiment R1 — paper §5.1's regression claim: "the existing
// performance of the system is not affected adversely by the new
// modifications ... we found no statistically significant degradation".
//
// Method: a standard monolingual query suite (point lookups, range scans,
// equi-joins, aggregation, sorting) runs twice over identical data —
// once in a database with NO multilingual features in play, and once in a
// database carrying the full multilingual apparatus (UniText columns with
// materialized phonemes alongside, metric + MDI indexes registered, a
// pinned taxonomy loaded).  The suite itself never touches a multilingual
// operator, so any slowdown would be pure overhead from the additions.

#include <cstdio>

#include "bench_util.h"

using namespace mural;
using namespace mural::bench;

namespace {

Status LoadCommon(Database* db, bool with_multilingual) {
  // The monolingual core: items(id, grp, price, label).
  MURAL_RETURN_IF_ERROR(db->Sql("CREATE TABLE items (id INT, grp INT, "
                                "price DOUBLE, label TEXT)")
                            .status());
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE TABLE groups (grp INT, gname TEXT)").status());
  Rng rng(42);
  for (int g = 0; g < 50; ++g) {
    MURAL_RETURN_IF_ERROR(
        db->Insert("groups", {Value::Int32(g),
                              Value::Text("group" + std::to_string(g))}));
  }
  for (int i = 0; i < 20000; ++i) {
    MURAL_RETURN_IF_ERROR(db->Insert(
        "items",
        {Value::Int32(i), Value::Int32(static_cast<int32_t>(rng.Uniform(50))),
         Value::Float64(rng.NextDouble() * 100),
         Value::Text("item" + std::to_string(rng.Uniform(5000)))}));
  }
  MURAL_RETURN_IF_ERROR(db->CreateIndex("items_id", "items", "id",
                                        IndexKind::kBTree, false));
  MURAL_RETURN_IF_ERROR(db->Analyze("items"));
  MURAL_RETURN_IF_ERROR(db->Analyze("groups"));

  if (with_multilingual) {
    // The multilingual additions, present but unused by the suite.
    Schema names({{"id", TypeId::kInt32},
                  {"name", TypeId::kUniText, /*mat=*/true}});
    MURAL_RETURN_IF_ERROR(db->CreateTable("names", names));
    NameGenOptions options;
    options.num_bases = 1000;
    options.variants_per_base = 3;
    for (const NameRecord& rec : GenerateNames(options)) {
      MURAL_RETURN_IF_ERROR(
          db->Insert("names", {Value::Int32(static_cast<int32_t>(rec.id)),
                               Value::Uni(rec.name)}));
    }
    MURAL_RETURN_IF_ERROR(db->CreateIndex("names_mtree", "names", "name",
                                          IndexKind::kMTree, true));
    MURAL_RETURN_IF_ERROR(db->CreateIndex("names_mdi", "names", "name",
                                          IndexKind::kMdi, true));
    MURAL_RETURN_IF_ERROR(db->Analyze("names"));
    TaxonomyGenOptions tax_options;
    tax_options.base_synsets = 2000;
    GeneratedTaxonomy tax = GenerateTaxonomy(tax_options);
    MURAL_RETURN_IF_ERROR(db->LoadTaxonomy(std::move(tax.taxonomy)));
  }
  return Status::OK();
}

double RunSuite(Database* db) {
  const char* suite[] = {
      "SELECT count(*) FROM items WHERE id = 777",
      "SELECT count(*) FROM items WHERE price >= 25.0 AND price <= 75.0",
      "SELECT grp, count(*), avg(price) FROM items GROUP BY grp",
      "SELECT count(*) FROM items I, groups G WHERE I.grp = G.grp",
      "SELECT id FROM items WHERE grp = 7 ORDER BY price DESC LIMIT 10",
      "SELECT max(price) FROM items WHERE label = 'item42'",
  };
  return TimeMedianMs(5, [&] {
    for (const char* q : suite) {
      auto result = db->Sql(q);
      BENCH_CHECK_OK(result.status());
    }
  });
}

}  // namespace

int main() {
  JsonReporter json("regression_monolingual");
  std::printf("=== §5.1 regression check: monolingual suite with vs "
              "without the multilingual additions ===\n\n");

  auto plain_or = Database::Open();
  BENCH_CHECK_OK(plain_or.status());
  std::unique_ptr<Database> plain = std::move(*plain_or);
  BENCH_CHECK_OK(LoadCommon(plain.get(), /*with_multilingual=*/false));

  auto loaded_or = Database::Open();
  BENCH_CHECK_OK(loaded_or.status());
  std::unique_ptr<Database> loaded = std::move(*loaded_or);
  BENCH_CHECK_OK(LoadCommon(loaded.get(), /*with_multilingual=*/true));

  // Interleave A/B runs to cancel drift.
  double plain_total = 0, loaded_total = 0;
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    plain_total += RunSuite(plain.get());
    loaded_total += RunSuite(loaded.get());
  }
  const double plain_ms = plain_total / kRounds;
  const double loaded_ms = loaded_total / kRounds;

  std::printf("%-42s %12.2f ms/suite\n",
              "baseline engine (no multilingual features)", plain_ms);
  std::printf("%-42s %12.2f ms/suite\n",
              "engine with full multilingual apparatus", loaded_ms);
  const double overhead = (loaded_ms - plain_ms) / plain_ms * 100.0;
  json.Record("baseline", "suite_ms", plain_ms);
  json.Record("multilingual", "suite_ms", loaded_ms);
  json.Record("summary", "overhead_pct", overhead);
  std::printf("\noverhead: %+.1f%% (paper: 'no statistically significant "
              "degradation')\n", overhead);
  std::printf("%s\n", std::abs(overhead) < 10.0
                          ? "SHAPE OK: within noise"
                          : "SHAPE DEVIATION: overhead exceeds 10%");
  return 0;
}
