// Experiment A2 — ablation of the §4.3 Omega-join optimizations:
//   1. closure memoization (the materialized hash-table cache),
//   2. RHS-sorted unique-value processing,
//   3. neither (closure recomputed per RHS row).
//
// Workload: an Omega join whose RHS carries heavy duplication — the exact
// situation §4.3's "amortize the cost of computing and materializing the
// closures" targets.

#include <cstdio>

#include "bench_util.h"
#include "exec/basic_ops.h"
#include "exec/mural_ops.h"

using namespace mural;
using namespace mural::bench;

namespace {

const char* ConfigLabel(bool cache, bool sort_unique) {
  if (cache && sort_unique) return "cache_sorted";
  if (cache) return "cache";
  if (sort_unique) return "sorted_unique";
  return "naive";
}

}  // namespace

int main() {
  JsonReporter json("closure_ablation");
  std::printf("=== §4.3 closure-reuse ablation (Omega join) ===\n\n");

  auto db_or = Database::Open();
  BENCH_CHECK_OK(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);

  TaxonomyGenOptions options;
  options.seed = 42;
  options.base_synsets = 12000;
  options.languages = {lang::kEnglish, lang::kTamil};
  GeneratedTaxonomy generated = GenerateTaxonomy(options);
  std::vector<SynsetId> bases = generated.base_synsets;
  const Taxonomy* tax_raw = generated.taxonomy.get();

  // RHS: 400 rows drawn Zipf-style from only 12 distinct mid-size
  // concepts; LHS: 500 random concepts.
  std::vector<SynsetId> rhs_pool = FindRootsWithClosureSize(
      *tax_raw,
      std::vector<SynsetId>(bases.begin(), bases.begin() + 600), 400, 12);
  BENCH_CHECK_OK(db->LoadTaxonomy(std::move(generated.taxonomy)));
  const Taxonomy& tax = *db->taxonomy();

  Schema schema({{"cat", TypeId::kUniText}});
  std::vector<Row> lhs_rows, rhs_rows;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Synset& s = tax.Get(bases[rng.Uniform(bases.size())]);
    lhs_rows.push_back({Value::Uni(s.lemma, s.lang)});
  }
  ZipfGenerator zipf(rhs_pool.size(), 1.0, 3);
  for (int i = 0; i < 400; ++i) {
    const Synset& s = tax.Get(rhs_pool[zipf.Next()]);
    rhs_rows.push_back({Value::Uni(s.lemma, s.lang)});
  }

  struct Config {
    const char* name;
    bool cache;
    bool sort_unique;
  };
  const Config configs[] = {
      {"no reuse (naive)", false, false},
      {"sorted unique RHS (§4.3)", false, true},
      {"closure cache (§4.3)", true, false},
      {"cache + sorted", true, true},
  };

  std::printf("%-28s %14s %16s %14s\n", "configuration", "runtime (ms)",
              "closures built", "reuses");
  size_t expect_rows = 0;
  for (const Config& config : configs) {
    ExecContext* ctx = db->exec_context();
    if (ctx->closure_cache != nullptr) ctx->closure_cache->Clear();
    SemJoinOp::Options op_options;
    op_options.use_closure_cache = config.cache;
    op_options.sort_unique_rhs = config.sort_unique;

    const uint64_t built_before = ctx->stats.closure_computations;
    const uint64_t reuse_before = ctx->stats.closure_reuses;
    size_t rows = 0;
    const double ms = TimeMedianMs(3, [&] {
      if (ctx->closure_cache != nullptr) ctx->closure_cache->Clear();
      SemJoinOp join(ctx,
                     std::make_unique<ValuesOp>(ctx, schema, lhs_rows),
                     std::make_unique<ValuesOp>(ctx, schema, rhs_rows), 0,
                     0, op_options);
      auto result = CollectAll(&join);
      BENCH_CHECK_OK(result.status());
      rows = result->size();
    });
    if (expect_rows == 0) expect_rows = rows;
    if (rows != expect_rows) {
      std::fprintf(stderr, "FATAL: result mismatch %zu vs %zu\n", rows,
                   expect_rows);
      return 1;
    }
    std::printf("%-28s %14.2f %16llu %14llu\n", config.name, ms,
                static_cast<unsigned long long>(
                    ctx->stats.closure_computations - built_before),
                static_cast<unsigned long long>(ctx->stats.closure_reuses -
                                                reuse_before));
    const char* label = ConfigLabel(config.cache, config.sort_unique);
    json.Record(label, "runtime_ms", ms);
    json.Record(label, "closures_built",
                static_cast<double>(ctx->stats.closure_computations -
                                    built_before));
  }
  std::printf("\n(identical %zu result rows in every configuration; the\n"
              "reuse strategies collapse 400 RHS closures to ~12 distinct "
              "ones)\n", expect_rows);
  return 0;
}
