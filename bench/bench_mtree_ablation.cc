// Experiment A1 — ablation behind the paper's §5.3 observation that the
// M-Tree is only *marginally* effective for approximate string matching.
//
// The paper attributes the weak pruning to (a) the high dimensionality of
// string spaces under edit distance and (b) the coarseness of the integer
// metric.  This harness measures pruning efficiency — the fraction of
// leaf entries whose distance is evaluated — on two datasets:
//
//   clustered : phoneme strings of a multilingual names dataset, where
//               homophone families form genuine metric clusters;
//   uniform   : i.i.d. random phoneme strings — the intrinsic-
//               dimensionality worst case, where pairwise distances
//               concentrate and the triangle inequality prunes nothing.

#include <cstdio>

#include "bench_util.h"
#include "index/mtree.h"
#include "phonetic/phoneme.h"
#include "phonetic/transformer.h"

using namespace mural;
using namespace mural::bench;

namespace {

std::vector<std::string> ClusteredKeys(size_t count) {
  NameGenOptions options;
  options.seed = 42;
  options.num_bases = count / 5;
  options.variants_per_base = 5;
  std::vector<std::string> keys;
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  for (const NameRecord& rec : GenerateNames(options)) {
    keys.push_back(t.Transform(rec.name));
  }
  return keys;
}

std::vector<std::string> UniformKeys(size_t count, size_t len) {
  Rng rng(7);
  std::vector<std::string> keys;
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(
          phoneme::kAlphabet[rng.Uniform(phoneme::kAlphabet.size())]);
    }
    keys.push_back(std::move(s));
  }
  return keys;
}

void RunSeries(const char* label, const std::vector<std::string>& keys,
               JsonReporter* json) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4096);
  auto mtree_or = MTreeIndex::Create(&pool);
  BENCH_CHECK_OK(mtree_or.status());
  std::unique_ptr<MTreeIndex> mtree = std::move(*mtree_or);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    BENCH_CHECK_OK(mtree->Insert(Value::Text(keys[i]), Rid{i, 0}));
  }
  Rng rng(99);
  for (int k : {0, 1, 2, 3, 5}) {
    mtree->tree().stats().Reset();
    size_t results = 0;
    const int kQueries = 25;
    for (int q = 0; q < kQueries; ++q) {
      std::vector<Rid> rids;
      BENCH_CHECK_OK(mtree->SearchWithin(
          Value::Text(keys[rng.Uniform(keys.size())]), k, &rids));
      results += rids.size();
    }
    const double frac =
        static_cast<double>(mtree->tree().stats().leaf_entries_tested) /
        (static_cast<double>(keys.size()) * kQueries);
    std::printf("%-12s %6d %19.1f%% %18.1f\n", label, k, frac * 100,
                static_cast<double>(results) / kQueries);
    const std::string row = std::string(label) + "_k" + std::to_string(k);
    json->Record(row, "leaf_frac_examined", frac);
    json->Record(row, "avg_results",
                 static_cast<double>(results) / kQueries);
  }
}

}  // namespace

int main() {
  JsonReporter json("mtree_ablation");
  std::printf("=== M-Tree pruning-efficiency ablation (paper §5.3) ===\n\n");
  std::printf("%-12s %6s %20s %18s\n", "dataset", "k",
              "leaf frac examined", "avg results");
  RunSeries("clustered", ClusteredKeys(8000), &json);
  RunSeries("uniform-8", UniformKeys(8000, 8), &json);
  RunSeries("uniform-16", UniformKeys(8000, 16), &json);

  std::printf(
      "\nReading the table (paper's analysis):\n"
      "  - on clustered name data some pruning survives at k=0..1 but\n"
      "    the examined fraction climbs steeply with the threshold: the\n"
      "    covering-radius test d(q,routing) <= k + r rarely fails once\n"
      "    k reaches a few units of a coarse integer metric;\n"
      "  - on uniform strings (high intrinsic dimensionality) pairwise\n"
      "    distances concentrate and pruning vanishes entirely —\n"
      "    explaining why Table 4's M-Tree gain over a plain scan is\n"
      "    marginal.\n");
  return 0;
}
