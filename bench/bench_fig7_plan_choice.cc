// Experiment EX5 — paper §5.2.1 and Figure 7: the motivating optimization
// example.
//
// Query: "find the books whose author's name sounds like that of a
// publisher's name (match threshold of 3)" over Author/Book/Publisher.
// Two semantically equivalent plans:
//
//   Plan 1:  (Author Psi Publisher)  then join Book      — paper:
//            predicted 2,439,370, runtime 82.15 s
//   Plan 2:  (Book join Author) then Psi Publisher       — paper:
//            predicted 7,513,852, runtime 2338.31 s
//
// Shape to reproduce: the optimizer's predicted costs order the plans the
// same way the runtimes do, and Plan 1 wins decisively; both plans return
// identical answers.

#include <cstdio>

#include "bench_util.h"
#include "mural/algebra.h"

using namespace mural;
using namespace mural::bench;

int main() {
  JsonReporter json("fig7_plan_choice");
  std::printf("=== §5.2.1 / Figure 7: plan choice for the "
              "author~publisher query (threshold 3) ===\n\n");

  auto db_or = Database::Open();
  BENCH_CHECK_OK(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);

  TaxonomyGenOptions tax_options;
  tax_options.base_synsets = 500;
  GeneratedTaxonomy taxonomy = GenerateTaxonomy(tax_options);
  BooksGenOptions options;
  options.seed = 42;
  options.num_authors = 3000;
  options.num_publishers = 400;
  options.num_books = 9000;
  options.publisher_author_overlap = 0.15;
  const BooksDataset data = GenerateBooks(options, taxonomy);

  Schema author_schema({{"AuthorID", TypeId::kInt32},
                        {"AName", TypeId::kUniText, true}});
  Schema publisher_schema({{"PublisherID", TypeId::kInt32},
                           {"PName", TypeId::kUniText, true}});
  Schema book_schema({{"BookID", TypeId::kInt32},
                      {"AuthorID", TypeId::kInt32},
                      {"PublisherID", TypeId::kInt32}});
  BENCH_CHECK_OK(db->CreateTable("Author", author_schema));
  BENCH_CHECK_OK(db->CreateTable("Publisher", publisher_schema));
  BENCH_CHECK_OK(db->CreateTable("Book", book_schema));
  for (const AuthorRow& a : data.authors) {
    BENCH_CHECK_OK(db->Insert(
        "Author", {Value::Int32(a.author_id), Value::Uni(a.name)}));
  }
  for (const PublisherRow& p : data.publishers) {
    BENCH_CHECK_OK(db->Insert(
        "Publisher", {Value::Int32(p.publisher_id), Value::Uni(p.name)}));
  }
  for (const BookRow& b : data.books) {
    BENCH_CHECK_OK(db->Insert("Book", {Value::Int32(b.book_id),
                                       Value::Int32(b.author_id),
                                       Value::Int32(b.publisher_id)}));
  }
  for (const char* t : {"Author", "Publisher", "Book"}) {
    BENCH_CHECK_OK(db->Analyze(t));
  }
  db->SetLexequalThreshold(3);

  auto plan1 =
      MuralBuilder::Scan("Author", author_schema)
          .PsiJoin(MuralBuilder::Scan("Publisher", publisher_schema),
                   "AName", "PName")
          .Join(MuralBuilder::Scan("Book", book_schema), "AuthorID",
                "AuthorID")
          .Aggregate({}, {{AggKind::kCountStar, 0, "books"}})
          .Build();
  auto plan2 =
      MuralBuilder::Scan("Book", book_schema)
          .Join(MuralBuilder::Scan("Author", author_schema), "AuthorID",
                "AuthorID")
          .PsiJoin(MuralBuilder::Scan("Publisher", publisher_schema),
                   "AName", "PName")
          .Aggregate({}, {{AggKind::kCountStar, 0, "books"}})
          .Build();

  double predicted[2] = {0, 0};
  double runtime[2] = {0, 0};
  long long answers[2] = {0, 0};
  int i = 0;
  for (const auto& [name, plan] : {std::make_pair("Plan 1", plan1),
                                   std::make_pair("Plan 2", plan2)}) {
    auto result = db->Query(plan);
    BENCH_CHECK_OK(result.status());
    predicted[i] = result->predicted_cost.total();
    answers[i] = result->rows[0][0].int64();
    runtime[i] = TimeMedianMs(3, [&] {
      auto rerun = db->Query(plan);
      BENCH_CHECK_OK(rerun.status());
    });
    std::printf("---- %s ----\n%s", name, result->explain.c_str());
    std::printf("answer: %lld, runtime %.1f ms\n\n", answers[i],
                runtime[i]);
    ++i;
  }

  std::printf("%-8s %18s %14s   (paper: plan1 2,439,370 / 82.15 s;"
              " plan2 7,513,852 / 2338.31 s)\n",
              "Plan", "predicted cost", "runtime ms");
  std::printf("%-8s %18.0f %14.1f\n", "Plan 1", predicted[0], runtime[0]);
  std::printf("%-8s %18.0f %14.1f\n", "Plan 2", predicted[1], runtime[1]);
  std::printf("\npredicted ratio plan2/plan1: %.2fx (paper: 3.1x)\n",
              predicted[1] / predicted[0]);
  std::printf("runtime   ratio plan2/plan1: %.2fx (paper: 28.5x)\n",
              runtime[1] / runtime[0]);
  json.Record("plan1", "predicted_cost", predicted[0]);
  json.Record("plan1", "runtime_ms", runtime[0]);
  json.Record("plan2", "predicted_cost", predicted[1]);
  json.Record("plan2", "runtime_ms", runtime[1]);
  const bool shape_ok = answers[0] == answers[1] &&
                        predicted[0] < predicted[1] &&
                        runtime[0] < runtime[1];
  std::printf("%s\n", shape_ok
                          ? "SHAPE OK: optimizer picks the faster plan"
                          : "SHAPE DEVIATION: ordering mismatch");
  return shape_ok ? 0 : 1;
}
