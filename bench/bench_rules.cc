// Experiment T1 — paper Table 1: the operator composition rules, shown as
// executable rewrites.  For each legal rewrite, the original and the
// rewritten plan are both costed by the optimizer and executed; the bench
// prints the rendered Table 1, the equivalence verdicts, and the cost of
// each alternative (demonstrating why the optimizer wants these rules:
// alternatives genuinely differ in predicted cost).

#include <cstdio>

#include "bench_util.h"
#include "mural/algebra.h"

using namespace mural;
using namespace mural::bench;

namespace {

std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& r : rows) {
    std::string line;
    for (const Value& v : r) {
      line += v.ToString();
      line += '|';
    }
    out.insert(std::move(line));
  }
  return out;
}

}  // namespace

int main() {
  JsonReporter json("rules");
  std::printf("=== Table 1: operator composition rules ===\n\n%s\n",
              algebra::CompositionTable().c_str());

  auto db_or = MakeNamesDb(300, 3, 42);
  BENCH_CHECK_OK(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);
  BENCH_CHECK_OK(AddSecondNamesTable(db.get(), "others", 150, 3, 7));
  db->SetLexequalThreshold(2);
  const Schema names_schema = (*db->catalog()->GetTable("names"))->schema;
  const Schema others_schema = (*db->catalog()->GetTable("others"))->schema;

  // ---- Psi commutativity -------------------------------------------------
  auto psi = MuralBuilder::Scan("names", names_schema)
                 .PsiJoin(MuralBuilder::Scan("others", others_schema),
                          "name", "name")
                 .Build();
  auto psi_commuted = algebra::Commute(psi, names_schema, others_schema);
  BENCH_CHECK_OK(psi_commuted.status());
  auto original = db->Query(psi);
  auto commuted = db->Query(*psi_commuted);
  BENCH_CHECK_OK(original.status());
  BENCH_CHECK_OK(commuted.status());
  std::printf("Psi commute:   results %s  | cost %0.f vs %0.f\n",
              Canon(original->rows) == Canon(commuted->rows) ? "EQUAL"
                                                             : "DIFFER",
              original->predicted_cost.total(),
              commuted->predicted_cost.total());
  json.Record("psi_commute", "cost_original",
              original->predicted_cost.total());
  json.Record("psi_commute", "cost_rewritten",
              commuted->predicted_cost.total());

  // ---- Omega commutativity is refused ------------------------------------
  TaxonomyGenOptions tax_options;
  tax_options.base_synsets = 500;
  GeneratedTaxonomy tax = GenerateTaxonomy(tax_options);
  std::vector<SynsetId> bases = tax.base_synsets;
  BENCH_CHECK_OK(db->LoadTaxonomy(std::move(tax.taxonomy)));
  Schema cat_schema({{"cat", TypeId::kUniText}});
  BENCH_CHECK_OK(db->CreateTable("cats", cat_schema));
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const Synset& s =
        db->taxonomy()->Get(bases[rng.Uniform(bases.size())]);
    BENCH_CHECK_OK(db->Insert("cats", {Value::Uni(s.lemma, s.lang)}));
  }
  BENCH_CHECK_OK(db->Analyze("cats"));
  auto omega = MuralBuilder::Scan("cats", cat_schema)
                   .OmegaJoin(MuralBuilder::Scan("cats", cat_schema), "cat",
                              "cat")
                   .Build();
  auto refused = algebra::Commute(omega, cat_schema, cat_schema);
  std::printf("Omega commute: %s (Table 1: Omega does not commute)\n",
              refused.status().IsNotSupported() ? "REFUSED" : "ACCEPTED?!");

  // ---- distribution over union -------------------------------------------
  auto unioned = MuralBuilder::Scan("names", names_schema)
                     .UnionAll(MuralBuilder::Scan("names", names_schema))
                     .PsiJoin(MuralBuilder::Scan("others", others_schema),
                              "name", "name")
                     .Build();
  auto distributed = algebra::DistributeOverUnion(unioned);
  BENCH_CHECK_OK(distributed.status());
  auto u1 = db->Query(unioned);
  auto u2 = db->Query(*distributed);
  BENCH_CHECK_OK(u1.status());
  BENCH_CHECK_OK(u2.status());
  std::printf("Psi over U:    results %s  | cost %0.f vs %0.f\n",
              Canon(u1->rows) == Canon(u2->rows) ? "EQUAL" : "DIFFER",
              u1->predicted_cost.total(), u2->predicted_cost.total());
  json.Record("psi_over_union", "cost_original", u1->predicted_cost.total());
  json.Record("psi_over_union", "cost_rewritten",
              u2->predicted_cost.total());

  // ---- filter pushdown ----------------------------------------------------
  auto filtered = LFilter(
      psi, Cmp(CompareOp::kLt, Col(0, "id"), Lit(Value::Int32(300))));
  auto pushed =
      algebra::PushFilterIntoJoin(filtered, names_schema.NumColumns());
  BENCH_CHECK_OK(pushed.status());
  auto f1 = db->Query(filtered);
  auto f2 = db->Query(*pushed);
  BENCH_CHECK_OK(f1.status());
  BENCH_CHECK_OK(f2.status());
  std::printf("sigma pushdown: results %s | cost %0.f vs %0.f "
              "(pushdown cheaper)\n",
              Canon(f1->rows) == Canon(f2->rows) ? "EQUAL" : "DIFFER",
              f1->predicted_cost.total(), f2->predicted_cost.total());
  json.Record("sigma_pushdown", "cost_original", f1->predicted_cost.total());
  json.Record("sigma_pushdown", "cost_rewritten",
              f2->predicted_cost.total());
  return 0;
}
