// Experiment F6 — paper Figure 6: "Optimizer Predicted Cost vs Actual
// Runtime".
//
// Methodology (paper §5.2): a range of multilingual join queries, their
// outputs collapsed with count(*), over tables of varying record counts,
// attribute widths and selectivities (threshold settings), with duplicate
// records introduced between runs and statistics rebuilt.  For each query
// we record the optimizer's predicted cost and the measured runtime; the
// paper reports a log-log scatter with correlation "well over 0.9".

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "mural/algebra.h"

using namespace mural;
using namespace mural::bench;

namespace {

/// Pearson correlation of log(x) vs log(y).
double LogCorrelation(const std::vector<std::pair<double, double>>& points) {
  const size_t n = points.size();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (const auto& [x, y] : points) {
    const double lx = std::log10(std::max(1e-9, x));
    const double ly = std::log10(std::max(1e-9, y));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    syy += ly * ly;
    sxy += lx * ly;
  }
  const double num = n * sxy - sx * sy;
  const double den =
      std::sqrt(n * sxx - sx * sx) * std::sqrt(n * syy - sy * sy);
  return den == 0 ? 0 : num / den;
}

}  // namespace

int main() {
  JsonReporter json("fig6_cost_prediction");
  std::printf(
      "=== Figure 6: optimizer predicted cost vs actual runtime ===\n");
  std::printf("(Psi joins collapsed with count(*); log-log scatter)\n\n");

  struct Config {
    size_t left_bases, left_variants;
    size_t right_bases, right_variants;
    int duplicate_factor;  // extra copies of the right table's rows
    int threshold;
  };
  // Varying record counts, duplicate skew, and thresholds (selectivity).
  const Config configs[] = {
      {100, 3, 50, 2, 1, 1},   {200, 3, 50, 2, 1, 2},
      {400, 3, 100, 2, 1, 1},  {400, 3, 100, 2, 1, 3},
      {800, 3, 100, 2, 2, 2},  {800, 3, 200, 2, 1, 2},
      {1500, 3, 200, 2, 1, 1}, {1500, 3, 200, 2, 2, 3},
      {2500, 3, 300, 2, 1, 2}, {2500, 3, 150, 4, 1, 1},
      {3500, 3, 300, 2, 2, 2}, {1000, 5, 400, 2, 1, 2},
  };

  std::vector<std::pair<double, double>> points;
  std::printf("%8s %8s %4s %16s %14s\n", "n_left", "n_right", "k",
              "predicted cost", "runtime (ms)");
  uint64_t seed = 1000;
  for (const Config& config : configs) {
    auto db_or = MakeNamesDb(config.left_bases, config.left_variants,
                             seed++);
    BENCH_CHECK_OK(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    BENCH_CHECK_OK(AddSecondNamesTable(db.get(), "others",
                                       config.right_bases,
                                       config.right_variants, seed++));
    // Introduce duplicates, then rebuild the histograms (paper: "duplicate
    // records were introduced in the tables and the histograms rebuilt").
    if (config.duplicate_factor > 1) {
      auto table = db->catalog()->GetTable("others");
      BENCH_CHECK_OK(table.status());
      auto rows_or = db->Sql("SELECT * FROM others");
      BENCH_CHECK_OK(rows_or.status());
      for (int dup = 1; dup < config.duplicate_factor; ++dup) {
        for (const Row& row : rows_or->rows) {
          BENCH_CHECK_OK(db->Insert("others", row));
        }
      }
      BENCH_CHECK_OK(db->Analyze("others"));
    }
    db->SetLexequalThreshold(config.threshold);

    const Schema& left_schema = (*db->catalog()->GetTable("names"))->schema;
    const Schema& right_schema =
        (*db->catalog()->GetTable("others"))->schema;
    auto plan = MuralBuilder::Scan("names", left_schema)
                    .PsiJoin(MuralBuilder::Scan("others", right_schema),
                             "name", "name")
                    .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
                    .Build();
    auto result = db->Query(plan);
    BENCH_CHECK_OK(result.status());
    // One warmed re-run for a stable runtime.
    auto timed = db->Query(plan);
    BENCH_CHECK_OK(timed.status());
    const double predicted = timed->predicted_cost.total();
    const double runtime = timed->runtime_ms;
    points.emplace_back(predicted, runtime);
    const std::string label =
        "q" + std::to_string(points.size());
    json.Record(label, "predicted_cost", predicted);
    json.Record(label, "runtime_ms", runtime);
    std::printf("%8zu %8zu %4d %16.0f %14.2f\n",
                config.left_bases * config.left_variants,
                config.right_bases * config.right_variants *
                    static_cast<size_t>(config.duplicate_factor),
                config.threshold, predicted, runtime);
  }

  const double r = LogCorrelation(points);
  json.Record("summary", "log_log_correlation", r);
  std::printf("\nlog-log correlation coefficient: %.3f "
              "(paper: 'well over 0.9')\n", r);
  std::printf("%s\n", r > 0.9 ? "SHAPE OK: strong cost/runtime correlation"
                              : "SHAPE DEVIATION: correlation below 0.9");
  return 0;
}
