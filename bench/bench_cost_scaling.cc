// Experiment T3 — empirical validation of the Table-3 cost-model shapes:
// measured runtimes of the Psi operators must scale the way the big-O
// rows say (linear in n for scans, bilinear for joins, linear in the
// threshold k through the diagonal-transition band).

#include <cstdio>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "mural/algebra.h"

using namespace mural;
using namespace mural::bench;

int main() {
  JsonReporter json("cost_scaling");
  std::printf("=== Table 3 validation: measured scaling of the Psi "
              "operators ===\n\n");

  // ---- scan: runtime vs n at fixed k ------------------------------------
  std::printf("-- Psi scan: runtime vs record count (k=2) --\n");
  std::printf("%10s %14s %16s\n", "n", "runtime (ms)", "ms per 1k rows");
  double prev_ms = 0;
  (void)prev_ms;
  for (size_t bases : {1000, 2000, 4000, 8000}) {
    std::vector<NameRecord> records;
    auto db_or = MakeNamesDb(bases, 3, 42, &records);
    BENCH_CHECK_OK(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    db->SetLexequalThreshold(2);
    auto plan =
        MuralBuilder::Scan("names",
                           (*db->catalog()->GetTable("names"))->schema)
            .PsiSelect("name", records[0].name)
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    const double ms = TimeMedianMs(5, [&] {
      BENCH_CHECK_OK(db->Query(plan).status());
    });
    std::printf("%10zu %14.2f %16.3f\n", bases * 3, ms,
                ms / (bases * 3 / 1000.0));
    json.Record("scan_n_" + std::to_string(bases * 3), "runtime_ms", ms);
  }
  std::printf("(ms-per-1k-rows roughly flat => linear in n, "
              "matching O(n*k*L))\n\n");

  // ---- scan: runtime vs k at fixed n ------------------------------------
  std::printf("-- Psi scan: runtime vs threshold (n=12000) --\n");
  std::printf("%6s %14s\n", "k", "runtime (ms)");
  {
    std::vector<NameRecord> records;
    auto db_or = MakeNamesDb(4000, 3, 42, &records);
    BENCH_CHECK_OK(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    for (int k : {0, 1, 2, 4, 8}) {
      db->SetLexequalThreshold(k);
      auto plan =
          MuralBuilder::Scan("names",
                             (*db->catalog()->GetTable("names"))->schema)
              .PsiSelect("name", records[0].name)
              .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
              .Build();
      const double ms = TimeMedianMs(5, [&] {
        BENCH_CHECK_OK(db->Query(plan).status());
      });
      std::printf("%6d %14.2f\n", k, ms);
      json.Record("scan_k_" + std::to_string(k), "runtime_ms", ms);
    }
  }
  std::printf("(growth bounded by the (2k+1)-diagonal band, then "
              "saturates at full DP)\n\n");

  // ---- join: runtime vs n_l x n_r ---------------------------------------
  std::printf("-- Psi join: runtime vs pair count (k=2) --\n");
  std::printf("%10s %10s %14s %18s\n", "n_left", "n_right", "runtime (ms)",
              "us per 1k pairs");
  for (const auto& [lb, rb] : {std::make_pair(250, 125),
                               std::make_pair(500, 250),
                               std::make_pair(1000, 500)}) {
    auto db_or = MakeNamesDb(static_cast<size_t>(lb), 2, 42);
    BENCH_CHECK_OK(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    BENCH_CHECK_OK(AddSecondNamesTable(db.get(), "others",
                                       static_cast<size_t>(rb), 2, 7));
    db->SetLexequalThreshold(2);
    auto plan =
        MuralBuilder::Scan("names",
                           (*db->catalog()->GetTable("names"))->schema)
            .PsiJoin(MuralBuilder::Scan(
                         "others",
                         (*db->catalog()->GetTable("others"))->schema),
                     "name", "name")
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    PlannerHints hints;
    hints.enable_mtree = false;
    const double ms = TimeMedianMs(3, [&] {
      BENCH_CHECK_OK(db->Query(plan, hints).status());
    });
    const double pairs = static_cast<double>(lb) * 2 * rb * 2;
    std::printf("%10d %10d %14.2f %18.3f\n", lb * 2, rb * 2, ms,
                ms * 1000.0 / (pairs / 1000.0));
    json.Record("join_" + std::to_string(lb * 2) + "x" +
                    std::to_string(rb * 2),
                "runtime_ms", ms);
  }
  std::printf("(us-per-1k-pairs roughly flat => bilinear in n_l * n_r, "
              "matching O(n_l*n_r*k*L))\n\n");

  // ---- parallel scaling: runtime vs degree_of_parallelism ---------------
  // The Parallelize(cost, dop) model says cpu/dop + fixed coordination;
  // this sweep shows what morsel parallelism actually buys on this
  // machine (with 1 hardware thread, expect flat-to-slightly-worse — the
  // point of printing it is honesty, plan choice is tested elsewhere).
  std::printf("-- Psi scan + join: runtime vs DOP (k=2) --\n");
  std::printf("(%u hardware thread(s) on this machine)\n",
              static_cast<unsigned>(ThreadPool::HardwareConcurrency()));
  {
    std::vector<NameRecord> records;
    auto db_or = MakeNamesDb(8000, 3, 42, &records);
    BENCH_CHECK_OK(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    db->SetLexequalThreshold(2);
    db->SetDegreeOfParallelism(8);
    BENCH_CHECK_OK(AddSecondNamesTable(db.get(), "others", 400, 2, 7));
    auto scan_plan =
        MuralBuilder::Scan("names",
                           (*db->catalog()->GetTable("names"))->schema)
            .PsiSelect("name", records[0].name)
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    auto join_plan =
        MuralBuilder::Scan("names",
                           (*db->catalog()->GetTable("names"))->schema)
            .PsiJoin(MuralBuilder::Scan(
                         "others",
                         (*db->catalog()->GetTable("others"))->schema),
                     "name", "name")
            .Aggregate({}, {{AggKind::kCountStar, 0, "n"}})
            .Build();
    std::printf("%6s %16s %16s\n", "dop", "scan (ms)", "join (ms)");
    for (int dop : {1, 2, 4, 8}) {
      PlannerHints hints;
      hints.enable_mtree = false;
      hints.degree_of_parallelism = dop;
      const double scan_ms = TimeMedianMs(3, [&] {
        BENCH_CHECK_OK(db->Query(scan_plan, hints).status());
      });
      const double join_ms = TimeMedianMs(3, [&] {
        BENCH_CHECK_OK(db->Query(join_plan, hints).status());
      });
      std::printf("%6d %16.2f %16.2f\n", dop, scan_ms, join_ms);
      json.Record("dop_" + std::to_string(dop), "scan_ms", scan_ms);
      json.Record("dop_" + std::to_string(dop), "join_ms", join_ms);
    }
  }
  return 0;
}
