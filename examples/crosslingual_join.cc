// crosslingual_join: the optimization example of paper §5.2.1 in
// miniature — "find the books whose author's name sounds like a
// publisher's name" — with the optimizer's two candidate plans (Fig. 7)
// forced via hints, their predicted costs, and their measured runtimes.
//
//   $ ./build/examples/crosslingual_join

#include <cstdio>

#include "datagen/catalog_generator.h"
#include "engine/database.h"
#include "mural/algebra.h"

using namespace mural;

namespace {

Status Run() {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());

  TaxonomyGenOptions tax_options;
  tax_options.base_synsets = 500;
  GeneratedTaxonomy taxonomy = GenerateTaxonomy(tax_options);
  BooksGenOptions options;
  options.num_authors = 1500;
  options.num_publishers = 200;
  options.num_books = 4000;
  options.publisher_author_overlap = 0.2;
  const BooksDataset data = GenerateBooks(options, taxonomy);

  Schema author_schema({{"AuthorID", TypeId::kInt32},
                        {"AName", TypeId::kUniText, true}});
  Schema publisher_schema({{"PublisherID", TypeId::kInt32},
                           {"PName", TypeId::kUniText, true}});
  Schema book_schema({{"BookID", TypeId::kInt32},
                      {"AuthorID", TypeId::kInt32},
                      {"PublisherID", TypeId::kInt32}});
  MURAL_RETURN_IF_ERROR(db->CreateTable("Author", author_schema));
  MURAL_RETURN_IF_ERROR(db->CreateTable("Publisher", publisher_schema));
  MURAL_RETURN_IF_ERROR(db->CreateTable("Book", book_schema));
  for (const AuthorRow& a : data.authors) {
    MURAL_RETURN_IF_ERROR(db->Insert(
        "Author", {Value::Int32(a.author_id), Value::Uni(a.name)}));
  }
  for (const PublisherRow& p : data.publishers) {
    MURAL_RETURN_IF_ERROR(db->Insert(
        "Publisher", {Value::Int32(p.publisher_id), Value::Uni(p.name)}));
  }
  for (const BookRow& b : data.books) {
    MURAL_RETURN_IF_ERROR(
        db->Insert("Book", {Value::Int32(b.book_id),
                            Value::Int32(b.author_id),
                            Value::Int32(b.publisher_id)}));
  }
  for (const char* t : {"Author", "Publisher", "Book"}) {
    MURAL_RETURN_IF_ERROR(db->Analyze(t));
  }
  db->SetLexequalThreshold(3);

  // ---- Plan 1 (the good one): Psi(Author, Publisher) first, then join
  //      Book on AuthorID.  The Psi join touches |A| x |P| pairs once.
  auto plan1 =
      MuralBuilder::Scan("Author", author_schema)
          .PsiJoin(MuralBuilder::Scan("Publisher", publisher_schema),
                   "AName", "PName")
          .Join(MuralBuilder::Scan("Book", book_schema), "AuthorID",
                "AuthorID")
          .Aggregate({}, {{AggKind::kCountStar, 0, "books"}})
          .Build();

  // ---- Plan 2 (the bad one): join Book with Author first (inflating the
  //      left side to |B| rows), then Psi against Publisher — the
  //      phonemic comparison now runs |B| x |P| times.
  auto plan2 =
      MuralBuilder::Scan("Book", book_schema)
          .Join(MuralBuilder::Scan("Author", author_schema), "AuthorID",
                "AuthorID")
          .PsiJoin(MuralBuilder::Scan("Publisher", publisher_schema),
                   "AName", "PName")
          .Aggregate({}, {{AggKind::kCountStar, 0, "books"}})
          .Build();

  std::printf("Query: books whose author sounds like a publisher "
              "(threshold 3)\n\n");
  for (const auto& [name, plan] :
       {std::make_pair("Plan 1 (Psi before join)", plan1),
        std::make_pair("Plan 2 (Psi after join)", plan2)}) {
    MURAL_ASSIGN_OR_RETURN(QueryResult result, db->Query(plan));
    std::printf("---- %s ----\n%s", name, result.explain.c_str());
    std::printf("matches: %lld   runtime: %.1f ms\n\n",
                static_cast<long long>(result.rows[0][0].int64()),
                result.runtime_ms);
  }

  std::printf(
      "The optimizer's cost model orders the plans the same way the\n"
      "runtimes do — the property §5.2.1 demonstrates on PostgreSQL.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "crosslingual_join failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
