// taxonomy_explorer: builds a replicated multilingual WordNet (the paper's
// §5.1 methodology), prints its structural statistics, and contrasts the
// three closure-computation strategies (pinned / seq-scan / B+Tree) with
// the interpreted outside-the-server UDF on the same roots.
//
//   $ ./build/examples/taxonomy_explorer

#include <cstdio>

#include "datagen/taxonomy_generator.h"
#include "engine/closure_exec.h"
#include "engine/database.h"
#include "engine/outside_server.h"

using namespace mural;

namespace {

Status Run() {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());

  TaxonomyGenOptions options;
  options.seed = 7;
  options.base_synsets = 5000;
  options.languages = {lang::kEnglish, lang::kHindi, lang::kTamil};
  GeneratedTaxonomy generated = GenerateTaxonomy(options);
  const std::vector<SynsetId> bases = generated.base_synsets;

  const TaxonomyStats stats = generated.taxonomy->ComputeStats();
  std::printf("Replicated WordNet: %llu synsets, %llu IS-A edges, "
              "%llu equivalence links, %u languages\n",
              static_cast<unsigned long long>(stats.num_synsets),
              static_cast<unsigned long long>(stats.num_isa_edges),
              static_cast<unsigned long long>(stats.num_equiv_edges),
              stats.num_languages);
  std::printf("height h_T = %u, avg fanout f_T = %.2f\n\n", stats.height,
              stats.avg_fanout);

  const Taxonomy* tax = generated.taxonomy.get();
  // Sample roots with varied closure sizes.
  std::vector<SynsetId> sample(bases.begin(), bases.begin() + 400);
  std::vector<SynsetId> roots;
  for (size_t target : {10, 100, 400}) {
    auto found = FindRootsWithClosureSize(*tax, sample, target, 1);
    if (!found.empty()) roots.push_back(found[0]);
  }

  MURAL_RETURN_IF_ERROR(db->LoadTaxonomy(std::move(generated.taxonomy)));
  MURAL_RETURN_IF_ERROR(db->CreateTaxonomyIndexes());
  tax = db->taxonomy();

  std::printf("%-28s %10s %12s %12s %12s %14s\n", "root (closure size)",
              "pinned ms", "seqscan ms", "btree ms", "udf-seq ms",
              "udf-btree ms");
  for (SynsetId root : roots) {
    const Synset& s = tax->Get(root);
    double times[3] = {0, 0, 0};
    size_t size = 0;
    const ClosureStrategy strategies[] = {ClosureStrategy::kPinned,
                                          ClosureStrategy::kSeqScan,
                                          ClosureStrategy::kBTree};
    for (int i = 0; i < 3; ++i) {
      MURAL_ASSIGN_OR_RETURN(
          auto result,
          ComputeClosure(db.get(), s.lemma, s.lang, strategies[i]));
      times[i] = result.second.millis;
      size = result.second.closure_size;
    }
    MURAL_ASSIGN_OR_RETURN(
        auto udf_seq,
        OutsideClosureSize(db.get(), s.lemma, s.lang, /*use_btree=*/false));
    MURAL_ASSIGN_OR_RETURN(
        auto udf_btree,
        OutsideClosureSize(db.get(), s.lemma, s.lang, /*use_btree=*/true));
    char label[64];
    std::snprintf(label, sizeof(label), "%s (%zu)", s.lemma.c_str(), size);
    std::printf("%-28s %10.2f %12.2f %12.2f %12.2f %14.2f\n", label,
                times[0], times[1], times[2], udf_seq.second.millis,
                udf_btree.second.millis);
  }
  std::printf(
      "\nAll five strategies return identical closures; the spread in\n"
      "runtime is the Figure-8 story: native+index >> interpreted UDF.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "taxonomy_explorer failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
