// Quickstart: create a multilingual table, load a few books, and run the
// paper's two headline queries (LexEQUAL, Fig. 2 and SemEQUAL, Fig. 4)
// through the SQL surface.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"

using namespace mural;

namespace {

Status RunQuickstart() {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());

  // --- schema: the Books.com catalog of the paper's Figure 1 ------------
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE TABLE Book ("
              "  BookID   INT,"
              "  Author   UNITEXT MATERIALIZE PHONEMES,"
              "  Title    UNITEXT,"
              "  Category UNITEXT)")
          .status());

  // --- data: one author, many languages ---------------------------------
  const char* inserts[] = {
      "INSERT INTO Book VALUES (1, 'nehru'@English,"
      " 'The Discovery of India'@English, 'History'@English)",
      "INSERT INTO Book VALUES (2, 'nehrU'@Hindi,"
      " 'Bharat Ki Khoj'@Hindi, 'Itihaas'@Hindi)",
      "INSERT INTO Book VALUES (3, 'neharu'@Tamil,"
      " 'India Kandupidippu'@Tamil, 'Charitram'@Tamil)",
      "INSERT INTO Book VALUES (4, 'gandhi'@English,"
      " 'My Experiments with Truth'@English, 'Autobiography'@English)",
      "INSERT INTO Book VALUES (5, 'rousseau'@French,"
      " 'Du Contrat Social'@French, 'Philosophy'@English)",
      "INSERT INTO Book VALUES (6, 'russo'@English,"
      " 'Empire Falls'@English, 'Fiction'@English)",
  };
  for (const char* stmt : inserts) {
    MURAL_RETURN_IF_ERROR(db->Sql(stmt).status());
  }

  // --- LexEQUAL: the paper's Figure 2 ------------------------------------
  std::printf("== LexEQUAL: who sounds like 'Nehru'? (threshold 2) ==\n");
  MURAL_RETURN_IF_ERROR(db->Sql("SET LEXEQUAL_THRESHOLD = 2").status());
  MURAL_ASSIGN_OR_RETURN(
      QueryResult psi,
      db->Sql("SELECT Author, Title FROM Book "
              "WHERE Author LexEQUAL 'nehru'@English "
              "IN English, Hindi, Tamil"));
  std::printf("%s\n", psi.ToTable().c_str());

  // Phonetic matching is language-aware: French 'rousseau' and English
  // 'russo' land on nearby phoneme strings.
  std::printf("== LexEQUAL join flavour: 'rousseau' variants ==\n");
  MURAL_ASSIGN_OR_RETURN(
      QueryResult psi2,
      db->Sql("SELECT Author, Title FROM Book "
              "WHERE Author LexEQUAL 'rousseau'@French THRESHOLD 2"));
  std::printf("%s\n", psi2.ToTable().c_str());

  // --- SemEQUAL: the paper's Figure 4 ------------------------------------
  // Interlinked concept hierarchy: History subsumes Autobiography; the
  // Hindi and Tamil words for History are linked as equivalents.
  auto taxonomy = std::make_unique<Taxonomy>();
  const SynsetId history = taxonomy->AddSynset(lang::kEnglish, "History");
  const SynsetId autob =
      taxonomy->AddSynset(lang::kEnglish, "Autobiography");
  const SynsetId itihaas = taxonomy->AddSynset(lang::kHindi, "Itihaas");
  const SynsetId charitram = taxonomy->AddSynset(lang::kTamil, "Charitram");
  taxonomy->AddSynset(lang::kEnglish, "Philosophy");
  taxonomy->AddSynset(lang::kEnglish, "Fiction");
  MURAL_RETURN_IF_ERROR(taxonomy->AddIsA(autob, history));
  MURAL_RETURN_IF_ERROR(taxonomy->AddEquivalence(history, itihaas));
  MURAL_RETURN_IF_ERROR(taxonomy->AddEquivalence(history, charitram));
  MURAL_RETURN_IF_ERROR(db->LoadTaxonomy(std::move(taxonomy)));

  std::printf("== SemEQUAL: every History book, in any language ==\n");
  MURAL_ASSIGN_OR_RETURN(
      QueryResult omega,
      db->Sql("SELECT Author, Title, Category FROM Book "
              "WHERE Category SemEQUAL 'History'@English "
              "IN English, Hindi, Tamil"));
  std::printf("%s\n", omega.ToTable().c_str());

  // --- EXPLAIN: what the optimizer did ------------------------------------
  MURAL_ASSIGN_OR_RETURN(
      QueryResult explain,
      db->Sql("EXPLAIN SELECT Author FROM Book "
              "WHERE Author LexEQUAL 'nehru'@English"));
  std::printf("== EXPLAIN ==\n%s\n", explain.explain.c_str());
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = RunQuickstart();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
