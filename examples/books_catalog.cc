// books_catalog: the full Books.com scenario — a generated multilingual
// catalog (authors, publishers, books, a replicated-WordNet taxonomy),
// metric indexes, ANALYZE, and a mix of monolingual and cross-lingual
// queries with their EXPLAIN output and per-query execution counters.
//
//   $ ./build/examples/books_catalog

#include <cstdio>

#include "datagen/catalog_generator.h"
#include "engine/database.h"

using namespace mural;

namespace {

Status LoadCatalog(Database* db, const BooksDataset& data) {
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE TABLE Author (AuthorID INT,"
              " AName UNITEXT MATERIALIZE PHONEMES)")
          .status());
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE TABLE Publisher (PublisherID INT,"
              " PName UNITEXT MATERIALIZE PHONEMES)")
          .status());
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE TABLE Book (BookID INT, AuthorID INT,"
              " PublisherID INT, Title UNITEXT, Category UNITEXT)")
          .status());
  for (const AuthorRow& a : data.authors) {
    MURAL_RETURN_IF_ERROR(db->Insert(
        "Author", {Value::Int32(a.author_id), Value::Uni(a.name)}));
  }
  for (const PublisherRow& p : data.publishers) {
    MURAL_RETURN_IF_ERROR(db->Insert(
        "Publisher", {Value::Int32(p.publisher_id), Value::Uni(p.name)}));
  }
  for (const BookRow& b : data.books) {
    MURAL_RETURN_IF_ERROR(
        db->Insert("Book", {Value::Int32(b.book_id),
                            Value::Int32(b.author_id),
                            Value::Int32(b.publisher_id),
                            Value::Uni(b.title), Value::Uni(b.category)}));
  }
  for (const char* t : {"Author", "Publisher", "Book"}) {
    MURAL_RETURN_IF_ERROR(db->Analyze(t));
  }
  return Status::OK();
}

void Report(const char* title, const QueryResult& result) {
  std::printf("== %s ==\n", title);
  std::printf("%s", result.ToTable(8).c_str());
  std::printf(
      "[%zu rows in %.2f ms; predicted rows %.0f, %s; "
      "distance calls %llu, index probes %llu]\n\n",
      result.rows.size(), result.runtime_ms, result.predicted_rows,
      result.predicted_cost.ToString().c_str(),
      static_cast<unsigned long long>(result.exec_stats.distance.calls),
      static_cast<unsigned long long>(result.exec_stats.index_probes));
}

Status RunCatalog() {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());

  // Generate the world: taxonomy first (categories come from it).
  TaxonomyGenOptions tax_options;
  tax_options.seed = 2026;
  tax_options.base_synsets = 3000;
  tax_options.languages = {lang::kEnglish, lang::kHindi, lang::kTamil};
  GeneratedTaxonomy taxonomy = GenerateTaxonomy(tax_options);

  BooksGenOptions options;
  options.seed = 2026;
  options.num_authors = 2000;
  options.num_publishers = 300;
  options.num_books = 5000;
  options.publisher_author_overlap = 0.15;
  const BooksDataset data = GenerateBooks(options, taxonomy);

  std::printf("Loading %zu authors, %zu publishers, %zu books...\n\n",
              data.authors.size(), data.publishers.size(),
              data.books.size());
  MURAL_RETURN_IF_ERROR(LoadCatalog(db.get(), data));

  // Pick a real author to search for before the taxonomy moves.
  const UniText probe_author = data.authors[42].name;
  const Synset& probe_concept =
      taxonomy.taxonomy->Get(taxonomy.base_synsets[5]);
  const UniText probe_category(probe_concept.lemma, probe_concept.lang);
  MURAL_RETURN_IF_ERROR(db->LoadTaxonomy(std::move(taxonomy.taxonomy)));

  // Indexes: metric index on author phonemes, B+Tree on Book.AuthorID.
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE INDEX author_mtree ON Author(AName) USING MTREE")
          .status());
  MURAL_RETURN_IF_ERROR(
      db->Sql("CREATE INDEX book_author ON Book(AuthorID) USING BTREE")
          .status());
  MURAL_RETURN_IF_ERROR(db->Sql("SET LEXEQUAL_THRESHOLD = 2").status());

  // 1. Monolingual warm-up: exact lookup through the B+Tree.
  MURAL_ASSIGN_OR_RETURN(
      QueryResult by_author,
      db->Sql("SELECT BookID, Title FROM Book WHERE AuthorID = 42"));
  Report("Books by author #42 (B+Tree lookup)", by_author);

  // 2. LexEQUAL scan: all spellings of one author across languages.
  MURAL_ASSIGN_OR_RETURN(
      QueryResult psi_scan,
      db->Sql("SELECT AuthorID, AName FROM Author WHERE AName LexEQUAL '" +
              probe_author.text() + "'@" +
              LanguageRegistry::Default().NameOf(probe_author.lang())));
  Report(("LexEQUAL scan for '" + probe_author.text() + "'").c_str(),
         psi_scan);

  // 3. LexEQUAL join: authors who sound like publishers (§5.2.1's query).
  MURAL_ASSIGN_OR_RETURN(
      QueryResult psi_join,
      db->Sql("SELECT count(*) FROM Author A, Publisher P "
              "WHERE A.AName LexEQUAL P.PName"));
  Report("Authors homophonic with a publisher (count)", psi_join);

  // 4. SemEQUAL: books in a concept subtree, any language.
  MURAL_ASSIGN_OR_RETURN(
      QueryResult omega,
      db->Sql("SELECT count(*) FROM Book WHERE Category SemEQUAL '" +
              probe_category.text() + "'@" +
              LanguageRegistry::Default().NameOf(probe_category.lang())));
  Report(("SemEQUAL count under concept '" + probe_category.text() + "'")
             .c_str(),
         omega);

  // 5. Aggregation over the multilingual catalog.
  MURAL_ASSIGN_OR_RETURN(
      QueryResult top,
      db->Sql("SELECT AuthorID, count(*) AS books FROM Book "
              "GROUP BY AuthorID ORDER BY books DESC LIMIT 5"));
  Report("Most prolific authors", top);
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = RunCatalog();
  if (!status.ok()) {
    std::fprintf(stderr, "books_catalog failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
