#include "engine/admission.h"

#include "common/metrics.h"
#include "common/timer.h"

namespace mural {

namespace {

struct AdmissionMetrics {
  Gauge* active;
  Gauge* queued;
  Counter* admitted;
  Counter* rejected;
  Counter* timeouts;
  Histogram* queue_wait_ms;
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics m = {
      MetricsRegistry::Global().GetGauge("engine.admission.active"),
      MetricsRegistry::Global().GetGauge("engine.admission.queued"),
      MetricsRegistry::Global().GetCounter("engine.admission.admitted"),
      MetricsRegistry::Global().GetCounter("engine.admission.rejected"),
      MetricsRegistry::Global().GetCounter("engine.admission.timeouts"),
      MetricsRegistry::Global().GetHistogram("engine.admission.queue_wait_ms",
                                             DefaultLatencyBoundsMillis()),
  };
  return m;
}

}  // namespace

AdmissionTicket& AdmissionTicket::operator=(
    AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (controller_ != nullptr) controller_->Release();
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

StatusOr<AdmissionTicket> AdmissionController::Admit(
    double* queue_wait_ms) {
  if (queue_wait_ms != nullptr) *queue_wait_ms = 0;
  if (options_.max_concurrent <= 0) {
    // Gate disabled: admit without accounting (the common library-use
    // case pays nothing for the server's gate).
    return AdmissionTicket();
  }
  AdmissionMetrics& metrics = Metrics();
  {
    MutexLock lock(mu_);
    if (active_ < options_.max_concurrent) {
      ++active_;
      metrics.active->Set(active_);
      metrics.admitted->Increment();
      metrics.queue_wait_ms->Observe(0);
      return AdmissionTicket(this);
    }
    if (queued_ >= options_.max_queue) {
      metrics.rejected->Increment();
      return Status::Overloaded(
          "admission queue full (" + std::to_string(queued_) +
          " waiting on " + std::to_string(options_.max_concurrent) +
          " slots)");
    }
    ++queued_;
    metrics.queued->Set(queued_);
    Timer wait_timer;
    // Wait for a slot, re-checking the predicate after every wakeup; give
    // up once the whole timeout budget is spent.
    while (active_ >= options_.max_concurrent) {
      const int64_t remaining =
          options_.queue_timeout_ms -
          static_cast<int64_t>(wait_timer.ElapsedMillis());
      if (remaining <= 0) {
        --queued_;
        metrics.queued->Set(queued_);
        metrics.rejected->Increment();
        metrics.timeouts->Increment();
        return Status::Overloaded(
            "admission queue wait exceeded " +
            std::to_string(options_.queue_timeout_ms) + " ms");
      }
      // Spurious wakeups and timeouts alike just re-enter the predicate
      // and budget checks above.
      slot_freed_.WaitForMillis(mu_, remaining);
    }
    --queued_;
    ++active_;
    metrics.queued->Set(queued_);
    metrics.active->Set(active_);
    metrics.admitted->Increment();
    const double waited = wait_timer.ElapsedMillis();
    metrics.queue_wait_ms->Observe(waited);
    if (queue_wait_ms != nullptr) *queue_wait_ms = waited;
    return AdmissionTicket(this);
  }
}

void AdmissionController::Release() {
  MutexLock lock(mu_);
  --active_;
  Metrics().active->Set(active_);
  slot_freed_.NotifyOne();
}

int AdmissionController::active() const {
  MutexLock lock(mu_);
  return active_;
}

int AdmissionController::queued() const {
  MutexLock lock(mu_);
  return queued_;
}

}  // namespace mural
