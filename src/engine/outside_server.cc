#include "engine/outside_server.h"

#include "catalog/tuple_codec.h"
#include "common/timer.h"

namespace mural {

namespace {

/// Phoneme string of a stored UniText value (materialized at load time,
/// like the paper's outside-the-server experiments, §5.3).
StatusOr<std::string> StoredPhonemes(const Value& v, Database* db) {
  if (v.type() != TypeId::kUniText) {
    return Status::InvalidArgument("LexEQUAL column must be UNITEXT");
  }
  if (v.unitext().has_phonemes()) return *v.unitext().phonemes();
  return db->exec_context()->transformer->Transform(v.unitext());
}

StatusOr<bool> UdfLexMatch(pl::UdfRuntime* udf, const std::string& a,
                           const std::string& b, int k) {
  MURAL_ASSIGN_OR_RETURN(
      const pl::PlValue result,
      udf->CallWire("LEXMATCH", {pl::PlValue(a), pl::PlValue(b),
                                 pl::PlValue(static_cast<int64_t>(k))}));
  return !result.is_null() && result.AsBool();
}

}  // namespace

StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideLexScan(
    Database* db, const std::string& table, const std::string& column,
    const UniText& query, int threshold, bool use_mdi_index,
    const std::string& mdi_index_name) {
  MURAL_ASSIGN_OR_RETURN(pl::UdfRuntime * udf, db->udf_runtime());
  MURAL_ASSIGN_OR_RETURN(TableInfo * info, db->catalog()->GetTable(table));
  MURAL_ASSIGN_OR_RETURN(const size_t col,
                         info->schema.Resolve(column));
  const std::string query_ph =
      db->exec_context()->transformer->Transform(query);

  OutsideRunStats stats;
  const pl::UdfStats udf_before = udf->stats();
  Timer timer;
  std::vector<Row> out;
  Row row;

  if (use_mdi_index) {
    MURAL_ASSIGN_OR_RETURN(IndexInfo * mdi,
                           db->catalog()->GetIndex(mdi_index_name));
    std::vector<Rid> candidates;
    MURAL_RETURN_IF_ERROR(mdi->index->SearchWithin(
        Value::Text(query_ph), threshold, &candidates));
    stats.candidates = candidates.size();
    std::string record;
    for (Rid rid : candidates) {
      MURAL_RETURN_IF_ERROR(info->heap->Get(rid, &record));
      MURAL_RETURN_IF_ERROR(
          TupleCodec::Deserialize(info->schema, record, &row));
      ++stats.rows_examined;
      const Value& v = row[col];
      if (v.is_null()) continue;
      MURAL_ASSIGN_OR_RETURN(const std::string ph, StoredPhonemes(v, db));
      MURAL_ASSIGN_OR_RETURN(const bool match,
                             UdfLexMatch(udf, ph, query_ph, threshold));
      if (match) out.push_back(row);
    }
  } else {
    for (auto it = info->heap->Begin(); it.Valid(); it.Next()) {
      MURAL_RETURN_IF_ERROR(
          TupleCodec::Deserialize(info->schema, it.record(), &row));
      ++stats.rows_examined;
      const Value& v = row[col];
      if (v.is_null()) continue;
      MURAL_ASSIGN_OR_RETURN(const std::string ph, StoredPhonemes(v, db));
      MURAL_ASSIGN_OR_RETURN(const bool match,
                             UdfLexMatch(udf, ph, query_ph, threshold));
      if (match) out.push_back(row);
    }
  }
  stats.millis = timer.ElapsedMillis();
  stats.udf_calls = udf->stats().calls - udf_before.calls;
  stats.wire_bytes = udf->stats().wire_bytes - udf_before.wire_bytes;
  db->exec_context()->stats.udf_calls += stats.udf_calls;
  return std::make_pair(std::move(out), stats);
}

StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideLexJoin(
    Database* db, const std::string& left_table,
    const std::string& left_column, const std::string& right_table,
    const std::string& right_column, int threshold, bool use_mdi_index,
    const std::string& mdi_index_name) {
  MURAL_ASSIGN_OR_RETURN(pl::UdfRuntime * udf, db->udf_runtime());
  MURAL_ASSIGN_OR_RETURN(TableInfo * left,
                         db->catalog()->GetTable(left_table));
  MURAL_ASSIGN_OR_RETURN(TableInfo * right,
                         db->catalog()->GetTable(right_table));
  MURAL_ASSIGN_OR_RETURN(const size_t lcol,
                         left->schema.Resolve(left_column));
  MURAL_ASSIGN_OR_RETURN(const size_t rcol,
                         right->schema.Resolve(right_column));
  IndexInfo* mdi = nullptr;
  if (use_mdi_index) {
    MURAL_ASSIGN_OR_RETURN(mdi, db->catalog()->GetIndex(mdi_index_name));
  }

  OutsideRunStats stats;
  const pl::UdfStats udf_before = udf->stats();
  Timer timer;
  std::vector<Row> out;

  // Materialize the inner side's rows + phoneme strings (the PL/SQL
  // script would select them into a temp table the same way).
  std::vector<Row> inner_rows;
  std::vector<std::string> inner_ph;
  Row row;
  for (auto it = right->heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(right->schema, it.record(), &row));
    const Value& v = row[rcol];
    if (v.is_null()) continue;
    MURAL_ASSIGN_OR_RETURN(std::string ph, StoredPhonemes(v, db));
    inner_rows.push_back(row);
    inner_ph.push_back(std::move(ph));
  }

  std::string record;
  for (auto it = left->heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(left->schema, it.record(), &row));
    ++stats.rows_examined;
    const Value& lv = row[lcol];
    if (lv.is_null()) continue;
    MURAL_ASSIGN_OR_RETURN(const std::string lph, StoredPhonemes(lv, db));
    if (mdi != nullptr) {
      // Probe the inner MDI for candidates of this outer value.
      std::vector<Rid> candidates;
      MURAL_RETURN_IF_ERROR(mdi->index->SearchWithin(
          Value::Text(lph), threshold, &candidates));
      stats.candidates += candidates.size();
      Row inner;
      for (Rid rid : candidates) {
        MURAL_RETURN_IF_ERROR(right->heap->Get(rid, &record));
        MURAL_RETURN_IF_ERROR(
            TupleCodec::Deserialize(right->schema, record, &inner));
        const Value& rv = inner[rcol];
        if (rv.is_null()) continue;
        MURAL_ASSIGN_OR_RETURN(const std::string rph,
                               StoredPhonemes(rv, db));
        MURAL_ASSIGN_OR_RETURN(const bool match,
                               UdfLexMatch(udf, lph, rph, threshold));
        if (match) {
          Row joined = row;
          joined.insert(joined.end(), inner.begin(), inner.end());
          out.push_back(std::move(joined));
        }
      }
    } else {
      for (size_t i = 0; i < inner_rows.size(); ++i) {
        MURAL_ASSIGN_OR_RETURN(
            const bool match,
            UdfLexMatch(udf, lph, inner_ph[i], threshold));
        if (match) {
          Row joined = row;
          joined.insert(joined.end(), inner_rows[i].begin(),
                        inner_rows[i].end());
          out.push_back(std::move(joined));
        }
      }
    }
  }
  stats.millis = timer.ElapsedMillis();
  stats.udf_calls = udf->stats().calls - udf_before.calls;
  stats.wire_bytes = udf->stats().wire_bytes - udf_before.wire_bytes;
  db->exec_context()->stats.udf_calls += stats.udf_calls;
  return std::make_pair(std::move(out), stats);
}

StatusOr<std::pair<size_t, OutsideRunStats>> OutsideClosureSize(
    Database* db, const std::string& lemma, LangId lang, bool use_btree) {
  MURAL_ASSIGN_OR_RETURN(pl::UdfRuntime * udf, db->udf_runtime());
  db->set_outside_closure_uses_btree(use_btree);
  OutsideRunStats stats;
  const pl::UdfStats udf_before = udf->stats();
  Timer timer;
  MURAL_ASSIGN_OR_RETURN(
      const pl::PlValue result,
      udf->CallWire("CLOSURE_SIZE",
                    {pl::PlValue(lemma),
                     pl::PlValue(static_cast<int64_t>(lang)),
                     pl::PlValue(static_cast<int64_t>(1))}));
  stats.millis = timer.ElapsedMillis();
  stats.udf_calls = udf->stats().calls - udf_before.calls;
  stats.wire_bytes = udf->stats().wire_bytes - udf_before.wire_bytes;
  return std::make_pair(static_cast<size_t>(result.AsInt()), stats);
}

StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideSemScan(
    Database* db, const std::string& table, const std::string& column,
    const UniText& concept_value, bool use_btree) {
  MURAL_ASSIGN_OR_RETURN(pl::UdfRuntime * udf, db->udf_runtime());
  db->set_outside_closure_uses_btree(use_btree);
  MURAL_ASSIGN_OR_RETURN(TableInfo * info, db->catalog()->GetTable(table));
  MURAL_ASSIGN_OR_RETURN(const size_t col, info->schema.Resolve(column));

  OutsideRunStats stats;
  const pl::UdfStats udf_before = udf->stats();
  Timer timer;
  std::vector<Row> out;
  Row row;
  for (auto it = info->heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(info->schema, it.record(), &row));
    ++stats.rows_examined;
    const Value& v = row[col];
    if (v.is_null() || v.type() != TypeId::kUniText) continue;
    MURAL_ASSIGN_OR_RETURN(
        const pl::PlValue match,
        udf->CallWire(
            "SEM_MATCH",
            {pl::PlValue(v.unitext().text()),
             pl::PlValue(static_cast<int64_t>(v.unitext().lang())),
             pl::PlValue(concept_value.text()),
             pl::PlValue(static_cast<int64_t>(concept_value.lang()))}));
    if (!match.is_null() && match.AsBool()) out.push_back(row);
  }
  stats.millis = timer.ElapsedMillis();
  stats.udf_calls = udf->stats().calls - udf_before.calls;
  stats.wire_bytes = udf->stats().wire_bytes - udf_before.wire_bytes;
  db->exec_context()->stats.udf_calls += stats.udf_calls;
  return std::make_pair(std::move(out), stats);
}

}  // namespace mural
