// Semaphore-style admission control for query execution.
//
// Many concurrent sessions feed one Database; the admission gate bounds
// how many queries execute at once (protecting the buffer pool and worker
// pools from convoy collapse under overload), queues a bounded number of
// waiters, and sheds the rest with a typed kOverloaded Status the client
// can retry after backoff.
//
// States a request can pass through:
//
//   admit   — a slot was free (or became free within the timeout); the
//             query runs holding an AdmissionTicket.
//   queue   — all slots busy but the wait queue has room; the request
//             blocks on a condition variable up to queue_timeout_ms.
//   reject  — the queue is full (immediate kOverloaded), or the queue
//             wait timed out (kOverloaded after queue_timeout_ms).
//
// Exported metrics: engine.admission.active / queued (gauges),
// admitted / rejected / timeouts (counters), queue_wait_ms (histogram).

#pragma once

#include <cstdint>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mural {

struct AdmissionOptions {
  /// Max queries executing concurrently; 0 = unlimited (gate disabled).
  int max_concurrent = 0;
  /// Max requests blocked waiting for a slot before immediate rejection.
  int max_queue = 16;
  /// How long a queued request waits for a slot before kOverloaded.
  int64_t queue_timeout_ms = 1000;
};

class AdmissionController;

/// RAII execution slot; releases back to the controller on destruction.
/// A default-constructed (or moved-from) ticket holds nothing — that is
/// what a disabled gate hands out.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket();

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}

  AdmissionController* controller_ = nullptr;
};

/// The gate.  Thread-safe; one instance per Database.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until an execution slot is available (within the queue
  /// bounds/timeout).  On success `*queue_wait_ms` (if non-null) holds
  /// the time spent queued; on overload returns kOverloaded.
  [[nodiscard]] StatusOr<AdmissionTicket> Admit(double* queue_wait_ms);

  const AdmissionOptions& options() const { return options_; }

  /// Introspection for tests/ops (also mirrored into the registry).
  int active() const;
  int queued() const;

 private:
  friend class AdmissionTicket;
  void Release();

  const AdmissionOptions options_;
  mutable Mutex mu_;
  CondVar slot_freed_;
  int active_ GUARDED_BY(mu_) = 0;
  int queued_ GUARDED_BY(mu_) = 0;
};

}  // namespace mural
