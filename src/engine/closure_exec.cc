#include "engine/closure_exec.h"

#include "catalog/tuple_codec.h"
#include "common/timer.h"

namespace mural {

const char* ClosureStrategyToString(ClosureStrategy strategy) {
  switch (strategy) {
    case ClosureStrategy::kPinned:
      return "pinned";
    case ClosureStrategy::kSeqScan:
      return "seqscan";
    case ClosureStrategy::kBTree:
      return "btree";
  }
  return "?";
}

namespace {

/// Children of every frontier node, via one full scan of tax_edges.
Status ScanLevel(TableInfo* edges, const Closure& frontier,
                 std::vector<SynsetId>* out) {
  Row row;
  for (auto it = edges->heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(edges->schema, it.record(), &row));
    const SynsetId parent = static_cast<SynsetId>(row[1].int32());
    if (frontier.count(parent) > 0) {
      out->push_back(static_cast<SynsetId>(row[0].int32()));
    }
  }
  return Status::OK();
}

/// Children of one node via the B+Tree on tax_edges.parent.
Status ProbeChildren(TableInfo* edges, AccessMethod* index, SynsetId parent,
                     std::vector<SynsetId>* out) {
  std::vector<Rid> rids;
  MURAL_RETURN_IF_ERROR(
      index->SearchEqual(Value::Int32(static_cast<int32_t>(parent)), &rids));
  std::string record;
  Row row;
  for (Rid rid : rids) {
    MURAL_RETURN_IF_ERROR(edges->heap->Get(rid, &record));
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(edges->schema, record, &row));
    out->push_back(static_cast<SynsetId>(row[0].int32()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::pair<Closure, ClosureRunStats>> ComputeClosure(
    Database* db, const std::string& lemma, LangId lang,
    ClosureStrategy strategy, bool follow_equivalence) {
  if (db->taxonomy() == nullptr) {
    return Status::InvalidArgument("no taxonomy loaded");
  }
  const Taxonomy& tax = *db->taxonomy();
  ClosureRunStats stats;
  Timer timer;

  const std::vector<SynsetId> roots = tax.Lookup(lemma, lang);
  Closure closure(roots.begin(), roots.end());

  if (strategy == ClosureStrategy::kPinned) {
    closure = tax.TransitiveClosureOfAll(roots, follow_equivalence);
    stats.closure_size = closure.size();
    stats.millis = timer.ElapsedMillis();
    return std::make_pair(std::move(closure), stats);
  }

  MURAL_ASSIGN_OR_RETURN(TableInfo * edges,
                         db->catalog()->GetTable("tax_edges"));
  AccessMethod* parent_index = nullptr;
  if (strategy == ClosureStrategy::kBTree) {
    MURAL_ASSIGN_OR_RETURN(IndexInfo * info,
                           db->catalog()->GetIndex("tax_edges_parent"));
    parent_index = info->index.get();
  }

  // Equivalence links stay in the pinned adjacency (they are a constant
  // per-node lookup either way; the experiment's cost lives in the IS-A
  // expansion, which is what goes through storage here).
  Closure frontier = closure;
  while (!frontier.empty()) {
    ++stats.levels;
    std::vector<SynsetId> discovered;
    if (strategy == ClosureStrategy::kSeqScan) {
      ++stats.heap_scans;
      MURAL_RETURN_IF_ERROR(ScanLevel(edges, frontier, &discovered));
    } else {
      for (SynsetId node : frontier) {
        ++stats.index_probes;
        MURAL_RETURN_IF_ERROR(
            ProbeChildren(edges, parent_index, node, &discovered));
      }
    }
    if (follow_equivalence) {
      for (SynsetId node : frontier) {
        for (SynsetId eq : tax.EquivalentsOf(node)) {
          discovered.push_back(eq);
        }
      }
    }
    Closure next;
    for (SynsetId id : discovered) {
      if (closure.insert(id).second) next.insert(id);
    }
    frontier = std::move(next);
  }
  stats.closure_size = closure.size();
  stats.millis = timer.ElapsedMillis();
  return std::make_pair(std::move(closure), stats);
}

}  // namespace mural
