// Shared plan cache for prepared/repeated statements.
//
// Caches the *bound logical plan* of a statement so a repeat execution
// skips the parse + bind passes.  Physical planning still runs per
// execution (physical operator trees are single-use and cost decisions
// depend on live session knobs), so the cache key carries everything that
// feeds binding and plan shape: the statement text (which embeds the
// language set of LexEQUAL/SemEQUAL predicates), the LexEQUAL threshold,
// the session DOP, and the batch size.
//
// The cache is owned by Database and shared by every session.  Any DDL or
// ANALYZE invalidates the whole cache: bound plans resolve column
// positions and table names against the catalog/stats state at bind time,
// and a version sweep is cheaper and safer than per-table dependency
// tracking at this scale.
//
// Bound logical plans are immutable after Bind (the planner deep-copies
// before rewriting), so one cached LogicalPtr may be planned concurrently
// by many sessions.
//
// Hit/miss/invalidation counts are exported through the metrics registry
// as engine.plan_cache.{hits,misses,invalidations}.

#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "optimizer/logical_plan.h"

namespace mural {

/// Everything that distinguishes two cached plans.  The language set of
/// multilingual predicates is part of `statement` (its SQL spelling), per
/// the key design above.
struct PlanCacheKey {
  std::string statement;
  int lexequal_threshold = 0;
  int degree_of_parallelism = 0;
  int64_t batch_size = 0;

  /// Flat encoding used as the map key.
  std::string Encode() const;
};

/// Thread-safe LRU map from PlanCacheKey to bound logical plans.
class PlanCache {
 public:
  /// `capacity` = max cached plans; 0 disables the cache (every Lookup
  /// misses, Insert is a no-op).
  explicit PlanCache(size_t capacity);

  /// The cached plan, or nullptr on miss.  Counts a hit or miss.
  LogicalPtr Lookup(const PlanCacheKey& key);

  /// Caches `plan` (evicting the least-recently-used entry at capacity).
  void Insert(const PlanCacheKey& key, LogicalPtr plan);

  /// Drops everything (DDL/ANALYZE changed binding inputs).
  void Invalidate();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    LogicalPtr plan;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  /// MRU-front recency list; the map points at list nodes.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      GUARDED_BY(mu_);
};

}  // namespace mural
