// Per-session engine state, split out of Database (which used to hard-code
// "one Database == one single-user session").
//
// A SessionState owns everything the paper stores per session in system
// tables (§4.2) — the LexEQUAL threshold and execution knobs — plus the
// runtime a single session's queries need: its ExecContext (with
// per-session effort counters), its worker pool, and its prepared
// statements.  The shared engine core (storage, catalog, stats, optimizer,
// taxonomy, plan cache, admission gate) stays in Database; many
// SessionStates run against one Database concurrently.
//
// All settings changes — SQL `SET name = value` and the C++ API alike —
// funnel through the single Set() path below, which validates, clamps,
// and (for DOP) provisions the worker pool in one place.

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/exec_context.h"
#include "phonetic/phoneme_cache.h"

namespace mural {

/// The typed per-session settings (replaces the Database Set* setter zoo).
/// Field defaults are the engine defaults a fresh session starts with.
struct SessionOptions {
  /// LexEQUAL mismatch threshold (SET LEXEQUAL_THRESHOLD).
  int lexequal_threshold = 2;
  /// Degree of parallelism for Psi operators; 0 = hardware concurrency,
  /// 1 = serial plans (SET DEGREE_OF_PARALLELISM).
  int degree_of_parallelism = 0;
  /// Rows per batch on the vectorized path; 0 = tuple-at-a-time
  /// (SET BATCH_SIZE).
  int64_t batch_size = 1024;
  /// Queries running at least this many milliseconds log a warning with
  /// the timed plan tree; negative disables (SET SLOW_QUERY_MILLIS).
  int64_t slow_query_millis = -1;
};

/// Clamp ceilings enforced by SessionState::Set.
constexpr int kMaxLexequalThreshold = 256;
constexpr int kMaxDegreeOfParallelism = 256;
constexpr int64_t kMaxBatchSize = 65536;

/// One session's engine-side state.  NOT internally synchronized: a
/// session serves one client at a time (the server gives every connection
/// its own session); only the Database core it points into is shared.
class SessionState {
 public:
  /// `phoneme_cache` is the Database's shared (thread-safe) G2P cache
  /// handle; may be null when caching is disabled.
  SessionState(uint64_t id, PhonemeCache* phoneme_cache);

  SessionState(const SessionState&) = delete;
  SessionState& operator=(const SessionState&) = delete;

  /// Applies every field of `options` through Set (so construction-time
  /// options get identical validation/clamping to later SET statements).
  [[nodiscard]] Status ApplyOptions(const SessionOptions& options);

  /// THE settings path.  Case-insensitive `name` in {lexequal_threshold,
  /// degree_of_parallelism, batch_size, slow_query_millis}; values are
  /// clamped into their documented ranges; unknown names are NotFound.
  /// Raising degree_of_parallelism (re)provisions the session worker pool
  /// (grow-only, like the old Database::SetDegreeOfParallelism).
  [[nodiscard]] Status Set(const std::string& name, int64_t value);

  uint64_t id() const { return id_; }
  const SessionOptions& options() const { return options_; }
  ExecContext* exec_context() { return &ctx_; }
  /// The session worker pool; null until DOP was raised above 1.
  ThreadPool* thread_pool() { return pool_.get(); }
  int64_t slow_query_millis() const { return options_.slow_query_millis; }

  /// Prepared statements: name (upper-cased) -> validated statement text.
  std::map<std::string, std::string>* prepared_statements() {
    return &prepared_;
  }

 private:
  const uint64_t id_;
  SessionOptions options_;
  ExecContext ctx_;
  /// Session-owned morsel workers, provisioned when DOP > 1 (grow-only).
  std::unique_ptr<ThreadPool> pool_;
  std::map<std::string, std::string> prepared_;
};

}  // namespace mural
