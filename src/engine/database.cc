#include "engine/database.h"

#include <algorithm>
#include <cctype>

#include "catalog/tuple_codec.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "index/btree.h"
#include "index/mdi.h"
#include "index/mtree.h"
#include "sql/sql.h"

namespace mural {

std::string QueryResult::ToTable(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    if (c > 0) out += " | ";
    out += schema.column(c).name;
  }
  out += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (rows.size() > max_rows) {
    out += StringFormat("... (%zu rows total)\n", rows.size());
  }
  return out;
}

namespace {

/// Pre-order walk collecting estimate-vs-actual feedback for every node
/// the planner stamped with a cardinality estimate.
void CollectFeedback(const PhysicalOp& op, int depth,
                     std::vector<NodeFeedback>* out) {
  if (op.estimated_rows() >= 0) {
    NodeFeedback fb;
    fb.op = op.DisplayName();
    fb.depth = depth;
    fb.estimated_rows = op.estimated_rows();
    fb.actual_rows = op.rows_produced();
    fb.qerror = QError(static_cast<double>(fb.estimated_rows),
                       static_cast<double>(fb.actual_rows));
    out->push_back(std::move(fb));
  }
  for (const PhysicalOp* child : op.Children()) {
    CollectFeedback(*child, depth + 1, out);
  }
}

std::string UpperAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

QueryResult OkResult() {
  QueryResult result;
  result.schema = Schema({{"ok", TypeId::kBool}});
  result.rows.push_back({Value::Bool(true)});
  return result;
}

}  // namespace

StatusOr<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database());
  if (options.disk_path.empty()) {
    db->disk_ = std::make_unique<MemoryDiskManager>();
  } else {
    MURAL_ASSIGN_OR_RETURN(auto file_disk,
                           FileDiskManager::Open(options.disk_path));
    db->disk_ = std::move(file_disk);
  }
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(),
                                           options.buffer_pool_pages);
  db->catalog_ = std::make_unique<Catalog>(db->pool_.get());
  db->phoneme_cache_ =
      std::make_unique<PhonemeCache>(options.phoneme_cache_capacity);
  db->plan_cache_ = std::make_unique<PlanCache>(options.plan_cache_capacity);
  db->admission_ = std::make_unique<AdmissionController>(options.admission);
  db->session_defaults_.lexequal_threshold = options.lexequal_threshold;
  db->session_defaults_.degree_of_parallelism =
      options.degree_of_parallelism;
  db->session_defaults_.batch_size =
      static_cast<int64_t>(options.batch_size);
  // The built-in session behind the deprecated single-session shims.
  db->default_session_ =
      std::make_unique<SessionState>(0, db->phoneme_cache_.get());
  MURAL_RETURN_IF_ERROR(
      db->default_session_->ApplyOptions(db->session_defaults_));
  return db;
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  MURAL_RETURN_IF_ERROR(
      catalog_->CreateTable(name, std::move(schema)).status());
  plan_cache_->Invalidate();
  return Status::OK();
}

Status Database::Insert(const std::string& table, Row row) {
  MURAL_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  const Schema& schema = info->schema;
  if (row.size() != schema.NumColumns()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (schema.column(c).materialize_phonemes && !row[c].is_null() &&
        row[c].type() == TypeId::kUniText &&
        !row[c].unitext().has_phonemes()) {
      // Materialize is const and stateless — safe through the default
      // session's transformer regardless of which session inserts.
      default_session_->exec_context()->transformer->Materialize(
          &row[c].mutable_unitext());
    }
  }
  TableWriter writer(info);
  return writer.Insert(row).status();
}

Status Database::InsertBulk(const std::string& table,
                            std::vector<Row> rows) {
  for (Row& row : rows) {
    MURAL_RETURN_IF_ERROR(Insert(table, std::move(row)));
  }
  return Status::OK();
}

Status Database::CreateIndex(const std::string& index_name,
                             const std::string& table,
                             const std::string& column, IndexKind kind,
                             bool on_phonemes) {
  if ((kind == IndexKind::kMTree || kind == IndexKind::kMdi) &&
      !on_phonemes) {
    return Status::InvalidArgument(
        "metric indexes must be built on materialized phoneme strings");
  }
  std::unique_ptr<AccessMethod> index;
  switch (kind) {
    case IndexKind::kBTree: {
      MURAL_ASSIGN_OR_RETURN(auto btree, BTreeIndex::Create(pool_.get()));
      index = std::move(btree);
      break;
    }
    case IndexKind::kMTree: {
      MURAL_ASSIGN_OR_RETURN(auto mtree, MTreeIndex::Create(pool_.get()));
      index = std::move(mtree);
      break;
    }
    case IndexKind::kMdi: {
      MURAL_ASSIGN_OR_RETURN(auto mdi, MdiIndex::Create(pool_.get()));
      index = std::move(mdi);
      break;
    }
  }
  MURAL_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  const int col = info->schema.IndexOf(column);
  if (col < 0) {
    return Status::NotFound("no such column: " + table + "." + column);
  }
  // Backfill existing rows.
  Row row;
  for (auto it = info->heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(info->schema, it.record(), &row));
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    if (on_phonemes) {
      if (v.type() != TypeId::kUniText || !v.unitext().has_phonemes()) {
        return Status::InvalidArgument(
            "phoneme index requires materialized phonemes in " + table +
            "." + column);
      }
      MURAL_RETURN_IF_ERROR(
          index->Insert(Value::Text(*v.unitext().phonemes()), it.rid()));
    } else {
      MURAL_RETURN_IF_ERROR(index->Insert(v, it.rid()));
    }
  }
  MURAL_RETURN_IF_ERROR(
      catalog_
          ->CreateIndex(index_name, table, column, on_phonemes, kind,
                        std::move(index))
          .status());
  plan_cache_->Invalidate();
  return Status::OK();
}

Status Database::Analyze(const std::string& table) {
  return AnalyzeWith(table, default_session_->exec_context());
}

Status Database::AnalyzeWith(const std::string& table, ExecContext* ctx) {
  MURAL_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  MURAL_RETURN_IF_ERROR(stats_.Analyze(*info, ctx));
  // Fresh statistics change cardinality estimates and therefore which
  // cached binds are worth keeping hot; sweep the cache.
  plan_cache_->Invalidate();
  return Status::OK();
}

Status Database::LoadTaxonomy(std::unique_ptr<Taxonomy> taxonomy) {
  taxonomy_ = std::move(taxonomy);
  closure_cache_ = std::make_unique<ClosureCache>(taxonomy_.get());
  SyncSharedHandles(*default_session_);

  // Persist the hierarchy relationally so closure computation can also be
  // driven through the storage layer.
  for (const char* t : {"tax_synsets", "tax_edges", "tax_equiv"}) {
    if (catalog_->GetTable(t).ok()) {
      MURAL_RETURN_IF_ERROR(catalog_->DropTable(t));
    }
  }
  MURAL_RETURN_IF_ERROR(CreateTable(
      "tax_synsets",
      Schema({{"synset_id", TypeId::kInt32}, {"lemma", TypeId::kUniText}})));
  MURAL_RETURN_IF_ERROR(CreateTable(
      "tax_edges",
      Schema({{"child", TypeId::kInt32}, {"parent", TypeId::kInt32}})));
  MURAL_RETURN_IF_ERROR(CreateTable(
      "tax_equiv",
      Schema({{"a", TypeId::kInt32}, {"b", TypeId::kInt32}})));

  MURAL_ASSIGN_OR_RETURN(TableInfo * synsets,
                         catalog_->GetTable("tax_synsets"));
  MURAL_ASSIGN_OR_RETURN(TableInfo * edges, catalog_->GetTable("tax_edges"));
  MURAL_ASSIGN_OR_RETURN(TableInfo * equiv, catalog_->GetTable("tax_equiv"));
  TableWriter synsets_writer(synsets);
  TableWriter edges_writer(edges);
  TableWriter equiv_writer(equiv);
  for (const Synset& s : taxonomy_->synsets()) {
    MURAL_RETURN_IF_ERROR(
        synsets_writer
            .Insert({Value::Int32(static_cast<int32_t>(s.id)),
                     Value::Uni(s.lemma, s.lang)})
            .status());
    for (SynsetId child : taxonomy_->ChildrenOf(s.id)) {
      MURAL_RETURN_IF_ERROR(
          edges_writer
              .Insert({Value::Int32(static_cast<int32_t>(child)),
                       Value::Int32(static_cast<int32_t>(s.id))})
              .status());
    }
    for (SynsetId eq : taxonomy_->EquivalentsOf(s.id)) {
      if (eq > s.id) continue;  // store each symmetric pair once per side
      MURAL_RETURN_IF_ERROR(
          equiv_writer
              .Insert({Value::Int32(static_cast<int32_t>(s.id)),
                       Value::Int32(static_cast<int32_t>(eq))})
              .status());
    }
  }
  // Statistics so closure-path plans (index probe vs scan) are costed
  // correctly.
  for (const char* t : {"tax_synsets", "tax_edges", "tax_equiv"}) {
    MURAL_RETURN_IF_ERROR(Analyze(t));
  }
  return Status::OK();
}

Status Database::CreateTaxonomyIndexes() {
  MURAL_RETURN_IF_ERROR(CreateIndex("tax_edges_parent", "tax_edges",
                                    "parent", IndexKind::kBTree,
                                    /*on_phonemes=*/false));
  return CreateIndex("tax_equiv_a", "tax_equiv", "a", IndexKind::kBTree,
                     /*on_phonemes=*/false);
}

void Database::SyncSharedHandles(SessionState& session) {
  // Sessions minted before LoadTaxonomy still see the taxonomy: the
  // shared handles are refreshed on every plan entry.
  ExecContext* ctx = session.exec_context();
  ctx->taxonomy = taxonomy_.get();
  ctx->closure_cache = closure_cache_.get();
}

StatusOr<PhysicalPlan> Database::PlanOn(SessionState& session,
                                        const LogicalPtr& plan,
                                        PlannerHints hints) {
  SyncSharedHandles(session);
  Planner planner(catalog_.get(), &stats_, session.exec_context());
  return planner.Plan(plan, hints);
}

StatusOr<QueryResult> Database::QueryOn(SessionState& session,
                                       const LogicalPtr& plan,
                                       PlannerHints hints) {
  // The single admission funnel: every execution path (Session::Query,
  // Session::Sql including EXPLAIN ANALYZE, the deprecated shims, the
  // server) reaches execution through here, so the gate is taken exactly
  // once per query.
  double queue_wait_ms = 0;
  MURAL_ASSIGN_OR_RETURN(AdmissionTicket ticket,
                         admission_->Admit(&queue_wait_ms));
  MURAL_ASSIGN_OR_RETURN(PhysicalPlan physical, PlanOn(session, plan, hints));
  ExecContext* ctx = session.exec_context();
  QueryResult result;
  result.session_id = session.id();
  result.queue_wait_ms = queue_wait_ms;
  result.schema = physical.root->output_schema();
  result.predicted_rows = physical.predicted_rows;
  result.predicted_cost = physical.predicted_cost;
  result.explain = physical.Explain();

  const ExecStats before = ctx->stats;
  Timer timer;
  MURAL_ASSIGN_OR_RETURN(result.rows, CollectAll(physical.root.get()));
  result.runtime_ms = timer.ElapsedMillis();

  // Plan-vs-actual feedback: walk the executed tree, compare each node's
  // cardinality estimate with its observed row count, and export the
  // q-error distribution through the metrics registry.
  static Histogram* qerror_hist = MetricsRegistry::Global().GetHistogram(
      "optimizer.qerror", DefaultRatioBounds());
  CollectFeedback(*physical.root, 0, &result.feedback);
  for (const NodeFeedback& fb : result.feedback) {
    result.max_qerror = std::max(result.max_qerror, fb.qerror);
    qerror_hist->Observe(fb.qerror);
  }
  result.explain_analyze = TraceTree(*physical.root);
  result.explain_analyze += StringFormat(
      "q-error: max=%.2f over %zu estimated nodes\n", result.max_qerror,
      result.feedback.size());
  result.explain_analyze += StringFormat(
      "session: id=%llu queue_wait_ms=%.2f\n",
      static_cast<unsigned long long>(result.session_id),
      result.queue_wait_ms);

  const int64_t slow_millis = session.slow_query_millis();
  if (slow_millis >= 0 &&
      result.runtime_ms >= static_cast<double>(slow_millis)) {
    static Counter* slow_queries =
        MetricsRegistry::Global().GetCounter("engine.slow_queries");
    slow_queries->Increment();
    MURAL_LOG(Warn) << "slow query (session " << session.id() << ": "
                    << result.runtime_ms << " ms >= " << slow_millis
                    << " ms):\n"
                    << result.explain_analyze;
  }

  // Per-query counter deltas.
  result.exec_stats = ctx->stats;
  result.exec_stats.SubtractBaseline(before);
  return result;
}

StatusOr<QueryResult> Database::SqlOn(SessionState& session,
                                      const std::string& statement,
                                      PlannerHints hints) {
  MURAL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(statement));
  QueryResult result;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      MURAL_ASSIGN_OR_RETURN(LogicalPtr plan, BindCached(session, stmt));
      return QueryOn(session, plan, hints);
    }
    case sql::StatementKind::kExplain: {
      MURAL_ASSIGN_OR_RETURN(LogicalPtr plan, BindCached(session, stmt));
      if (stmt.explain_analyze) {
        // EXPLAIN ANALYZE: execute, then return the timed plan tree (with
        // estimated vs actual rows and the q-error summary) as rows.
        MURAL_ASSIGN_OR_RETURN(QueryResult executed,
                               QueryOn(session, plan, hints));
        result = std::move(executed);
        result.rows.clear();
        result.schema = Schema({{"plan", TypeId::kText}});
        for (const std::string& line :
             Split(result.explain_analyze, '\n')) {
          if (!line.empty()) result.rows.push_back({Value::Text(line)});
        }
        return result;
      }
      MURAL_ASSIGN_OR_RETURN(PhysicalPlan physical,
                             PlanOn(session, plan, hints));
      result.session_id = session.id();
      result.schema = Schema({{"plan", TypeId::kText}});
      result.predicted_rows = physical.predicted_rows;
      result.predicted_cost = physical.predicted_cost;
      result.explain = physical.Explain();
      for (const std::string& line : Split(result.explain, '\n')) {
        if (!line.empty()) result.rows.push_back({Value::Text(line)});
      }
      return result;
    }
    case sql::StatementKind::kSet: {
      // THE settings path: SQL SET and the C++ setters both land in
      // SessionState::Set, so validation/clamping live in one place.
      MURAL_RETURN_IF_ERROR(session.Set(stmt.set_name, stmt.set_value));
      result = OkResult();
      result.session_id = session.id();
      return result;
    }
    case sql::StatementKind::kCreateTable:
      MURAL_RETURN_IF_ERROR(CreateTable(stmt.table_name, stmt.schema));
      result = OkResult();
      result.session_id = session.id();
      return result;
    case sql::StatementKind::kCreateIndex:
      MURAL_RETURN_IF_ERROR(CreateIndex(stmt.index_name, stmt.table_name,
                                        stmt.index_column, stmt.index_kind,
                                        stmt.index_on_phonemes));
      result = OkResult();
      result.session_id = session.id();
      return result;
    case sql::StatementKind::kInsert: {
      // Coerce TEXT literals into UNITEXT columns (default: English), the
      // binder-level counterpart of the compose operator.
      MURAL_ASSIGN_OR_RETURN(TableInfo * info,
                             catalog_->GetTable(stmt.table_name));
      for (Row& row : stmt.insert_rows) {
        for (size_t c = 0;
             c < row.size() && c < info->schema.NumColumns(); ++c) {
          if (info->schema.column(c).type == TypeId::kUniText &&
              row[c].type() == TypeId::kText) {
            row[c] = Value::Uni(row[c].text(), lang::kEnglish);
          }
        }
        MURAL_RETURN_IF_ERROR(Insert(stmt.table_name, std::move(row)));
      }
      result.session_id = session.id();
      result.schema = Schema({{"inserted", TypeId::kInt64}});
      result.rows.push_back(
          {Value::Int64(static_cast<int64_t>(stmt.insert_rows.size()))});
      return result;
    }
    case sql::StatementKind::kAnalyze:
      MURAL_RETURN_IF_ERROR(
          AnalyzeWith(stmt.table_name, session.exec_context()));
      result = OkResult();
      result.session_id = session.id();
      return result;
    case sql::StatementKind::kPrepare: {
      // Validate the body now so EXECUTE never hits a parse error, and
      // refuse nested PREPARE/EXECUTE (no indirection cycles).
      MURAL_ASSIGN_OR_RETURN(sql::Statement body,
                             sql::Parse(stmt.prepare_body));
      if (body.kind == sql::StatementKind::kPrepare ||
          body.kind == sql::StatementKind::kExecute) {
        return Status::InvalidArgument(
            "PREPARE body must not itself be PREPARE or EXECUTE");
      }
      (*session.prepared_statements())[UpperAscii(stmt.prepare_name)] =
          stmt.prepare_body;
      result = OkResult();
      result.session_id = session.id();
      return result;
    }
    case sql::StatementKind::kExecute: {
      const auto* prepared = session.prepared_statements();
      const auto it = prepared->find(UpperAscii(stmt.prepare_name));
      if (it == prepared->end()) {
        return Status::NotFound("no prepared statement named " +
                                stmt.prepare_name);
      }
      // One level of recursion only: PREPARE rejected nested
      // PREPARE/EXECUTE bodies above.
      return SqlOn(session, it->second, hints);
    }
  }
  return Status::Internal("unhandled statement kind");
}

StatusOr<LogicalPtr> Database::BindCached(SessionState& session,
                                          const sql::Statement& stmt) {
  // The cache key carries everything that feeds binding and plan shape:
  // the statement text (which embeds the predicate language set), plus
  // the session's threshold/DOP/batch knobs.
  PlanCacheKey key;
  key.statement = stmt.text;
  key.lexequal_threshold = session.options().lexequal_threshold;
  key.degree_of_parallelism = session.options().degree_of_parallelism;
  key.batch_size = session.options().batch_size;
  LogicalPtr plan = plan_cache_->Lookup(key);
  if (plan != nullptr) return plan;
  MURAL_ASSIGN_OR_RETURN(plan, sql::Bind(stmt, catalog_.get()));
  plan_cache_->Insert(key, plan);
  return plan;
}

StatusOr<pl::UdfRuntime*> Database::udf_runtime() {
  if (udf_ == nullptr) {
    MURAL_ASSIGN_OR_RETURN(udf_, pl::UdfRuntime::Create());
    MURAL_RETURN_IF_ERROR(BindUdfHosts());
  }
  return udf_.get();
}

Status Database::BindUdfHosts() {
  pl::UdfRuntime* udf = udf_.get();

  udf->RegisterHost(
      "SQL_LOOKUP",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        if (args.size() != 2) {
          return Status::InvalidArgument("SQL_LOOKUP(lemma, lang)");
        }
        auto out = std::make_shared<std::vector<pl::PlValue>>();
        if (taxonomy_ != nullptr) {
          for (SynsetId id : taxonomy_->Lookup(
                   args[0].AsString(),
                   static_cast<LangId>(args[1].AsInt()))) {
            out->emplace_back(static_cast<int64_t>(id));
          }
        }
        return pl::PlValue(std::move(out));
      });

  udf->RegisterHost(
      "SQL_CHILDREN",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        if (args.size() != 1) {
          return Status::InvalidArgument("SQL_CHILDREN(parent)");
        }
        // The recursive-SQL mechanism, faithfully: the PL procedure
        // issues one SQL statement per expanded node, which the server
        // parses, binds, plans and executes every time.  With the
        // B+Tree enabled the plan is an index probe; without it the
        // statement degenerates to a scan of the edge table.
        const int32_t parent = static_cast<int32_t>(args[0].AsInt());
        const std::string statement =
            "SELECT child FROM tax_edges WHERE parent = " +
            std::to_string(parent);
        MURAL_ASSIGN_OR_RETURN(sql::Statement parsed,
                               sql::Parse(statement));
        MURAL_ASSIGN_OR_RETURN(LogicalPtr plan,
                               sql::Bind(parsed, catalog_.get()));
        PlannerHints hints;
        hints.enable_indexscan = outside_closure_btree_;
        MURAL_ASSIGN_OR_RETURN(PhysicalPlan physical,
                               PlanQuery(plan, hints));
        MURAL_ASSIGN_OR_RETURN(std::vector<Row> rows,
                               CollectAll(physical.root.get()));
        auto out = std::make_shared<std::vector<pl::PlValue>>();
        for (const Row& row : rows) {
          out->emplace_back(static_cast<int64_t>(row[0].int32()));
        }
        return pl::PlValue(std::move(out));
      });

  udf->RegisterHost(
      "SQL_EQUIVALENTS",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        if (args.size() != 1) {
          return Status::InvalidArgument("SQL_EQUIVALENTS(id)");
        }
        // Equivalence is symmetric but stored once; consult the pinned
        // adjacency (the stored table would need a union of two probes —
        // same result, and the closure cost is dominated by SQL_CHILDREN).
        auto out = std::make_shared<std::vector<pl::PlValue>>();
        if (taxonomy_ != nullptr) {
          const SynsetId id = static_cast<SynsetId>(args[0].AsInt());
          if (taxonomy_->Valid(id)) {
            for (SynsetId eq : taxonomy_->EquivalentsOf(id)) {
              out->emplace_back(static_cast<int64_t>(eq));
            }
          }
        }
        return pl::PlValue(std::move(out));
      });

  udf->RegisterHost("TEMPSET_NEW",
                    [this](const std::vector<pl::PlValue>&)
                        -> StatusOr<pl::PlValue> {
                      const int64_t handle = next_tempset_++;
                      tempsets_[handle] = {};
                      return pl::PlValue(handle);
                    });
  udf->RegisterHost(
      "TEMPSET_ADD",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        if (args.size() != 2) {
          return Status::InvalidArgument("TEMPSET_ADD(h, v)");
        }
        auto it = tempsets_.find(args[0].AsInt());
        if (it == tempsets_.end()) {
          return Status::NotFound("bad tempset handle");
        }
        return pl::PlValue(it->second.insert(args[1].AsInt()).second);
      });
  udf->RegisterHost(
      "TEMPSET_CONTAINS",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        if (args.size() != 2) {
          return Status::InvalidArgument("TEMPSET_CONTAINS(h, v)");
        }
        auto it = tempsets_.find(args[0].AsInt());
        if (it == tempsets_.end()) {
          return Status::NotFound("bad tempset handle");
        }
        return pl::PlValue(it->second.count(args[1].AsInt()) > 0);
      });
  udf->RegisterHost(
      "TEMPSET_SIZE",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        auto it = tempsets_.find(args[0].AsInt());
        if (it == tempsets_.end()) {
          return Status::NotFound("bad tempset handle");
        }
        return pl::PlValue(static_cast<int64_t>(it->second.size()));
      });
  udf->RegisterHost(
      "TEMPSET_FREE",
      [this](const std::vector<pl::PlValue>& args)
          -> StatusOr<pl::PlValue> {
        tempsets_.erase(args[0].AsInt());
        return pl::PlValue(true);
      });
  return Status::OK();
}

}  // namespace mural
