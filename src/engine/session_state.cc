#include "engine/session_state.h"

#include "common/string_util.h"

namespace mural {

SessionState::SessionState(uint64_t id, PhonemeCache* phoneme_cache)
    : id_(id) {
  if (phoneme_cache != nullptr && phoneme_cache->enabled()) {
    ctx_.phoneme_cache = phoneme_cache;
  }
}

Status SessionState::ApplyOptions(const SessionOptions& options) {
  MURAL_RETURN_IF_ERROR(
      Set("lexequal_threshold", options.lexequal_threshold));
  MURAL_RETURN_IF_ERROR(
      Set("degree_of_parallelism", options.degree_of_parallelism));
  MURAL_RETURN_IF_ERROR(Set("batch_size", options.batch_size));
  return Set("slow_query_millis", options.slow_query_millis);
}

Status SessionState::Set(const std::string& name, int64_t value) {
  if (EqualsIgnoreCase(name, "lexequal_threshold")) {
    const int64_t clamped = std::min<int64_t>(
        std::max<int64_t>(value, 0), kMaxLexequalThreshold);
    options_.lexequal_threshold = static_cast<int>(clamped);
    ctx_.lexequal_threshold = options_.lexequal_threshold;
    return Status::OK();
  }
  if (EqualsIgnoreCase(name, "degree_of_parallelism")) {
    int dop = static_cast<int>(std::min<int64_t>(
        std::max<int64_t>(value, 0), kMaxDegreeOfParallelism));
    if (dop <= 0) dop = static_cast<int>(ThreadPool::HardwareConcurrency());
    options_.degree_of_parallelism = std::max(1, dop);
    ctx_.degree_of_parallelism = options_.degree_of_parallelism;
    if (ctx_.degree_of_parallelism > 1) {
      // ParallelMorsels runs strip 0 on the calling thread, so a dop-way
      // phase needs dop - 1 pool workers.  Grow-only: raising then
      // lowering the session DOP keeps the larger pool.
      const size_t want =
          static_cast<size_t>(ctx_.degree_of_parallelism - 1);
      if (pool_ == nullptr || pool_->num_threads() < want) {
        pool_ = std::make_unique<ThreadPool>(want);
      }
    }
    ctx_.thread_pool = pool_.get();
    return Status::OK();
  }
  if (EqualsIgnoreCase(name, "batch_size")) {
    options_.batch_size =
        std::min<int64_t>(std::max<int64_t>(value, 0), kMaxBatchSize);
    ctx_.batch_size = static_cast<size_t>(options_.batch_size);
    return Status::OK();
  }
  if (EqualsIgnoreCase(name, "slow_query_millis")) {
    options_.slow_query_millis = value;  // negative = disabled
    return Status::OK();
  }
  return Status::NotFound("unknown setting: " + name);
}

}  // namespace mural
