// Outside-the-server query execution (the paper's baseline, §5).
//
// These entry points run the same multilingual queries as the native
// operators, but the matching logic executes as interpreted PL UDFs behind
// a serialize/deserialize call boundary, the optimizer never sees the
// predicates, and the only index help available is the MDI candidate
// filter (which still needs per-candidate UDF verification).  Everything
// is real work — the slowdown versus the core path is the measured cost of
// the architecture, exactly the comparison Table 4 and Figure 8 make.

#pragma once

#include "engine/database.h"

namespace mural {

/// Per-query report for an outside-the-server run.
struct OutsideRunStats {
  uint64_t rows_examined = 0;
  uint64_t udf_calls = 0;
  uint64_t wire_bytes = 0;
  uint64_t candidates = 0;  // MDI candidates fetched (indexed runs)
  double millis = 0;
};

/// LexEQUAL scan: rows of `table` whose `column` phonemically matches
/// `query` within `threshold`.  With `use_mdi_index`, candidates come from
/// the MDI named `mdi_index_name`; each one is still verified through the
/// LEXMATCH UDF (MDI is approximate).
StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideLexScan(
    Database* db, const std::string& table, const std::string& column,
    const UniText& query, int threshold, bool use_mdi_index = false,
    const std::string& mdi_index_name = "");

/// LexEQUAL join between two tables' columns, evaluated as a nested loop
/// of per-pair UDF calls (the PL/SQL script form).
StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideLexJoin(
    Database* db, const std::string& left_table,
    const std::string& left_column, const std::string& right_table,
    const std::string& right_column, int threshold,
    bool use_mdi_index = false, const std::string& mdi_index_name = "");

/// Closure-size computation through the interpreted CLOSURE_SIZE UDF,
/// whose SQL_CHILDREN host statements execute as either full edge-table
/// scans (use_btree=false) or B+Tree probes — the two outside-the-server
/// curves of Figure 8.
StatusOr<std::pair<size_t, OutsideRunStats>> OutsideClosureSize(
    Database* db, const std::string& lemma, LangId lang, bool use_btree);

/// SemEQUAL scan via the SEM_MATCH UDF: rows of `table` whose `column`
/// concept is subsumed by `concept_value`.
StatusOr<std::pair<std::vector<Row>, OutsideRunStats>> OutsideSemScan(
    Database* db, const std::string& table, const std::string& column,
    const UniText& concept_value, bool use_btree);

}  // namespace mural
