// Database: the engine facade tying together storage, catalog, statistics,
// the optimizer, the executor, the pinned taxonomy, and the
// outside-the-server UDF runtime.
//
// One Database == one single-user session, with the session settings the
// paper stores in system tables (§4.2): the LexEQUAL threshold, and the
// execution mode (native operators vs outside-the-server UDFs).

#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "datagen/taxonomy_generator.h"
#include "exec/exec_context.h"
#include "optimizer/planner.h"
#include "phonetic/phoneme_cache.h"
#include "plfront/udf_runtime.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mural {

struct DatabaseOptions {
  /// Buffer-pool frames (8 KiB each).
  size_t buffer_pool_pages = 8192;
  /// Backing file; empty = in-memory pages (logical I/O still counted).
  std::string disk_path;
  /// Initial LexEQUAL mismatch threshold (SET LEXEQUAL_THRESHOLD changes
  /// it per session).
  int lexequal_threshold = 2;
  /// Degree of parallelism for Psi operators.  0 = hardware concurrency;
  /// 1 = serial plans (SET DEGREE_OF_PARALLELISM changes it per session).
  int degree_of_parallelism = 0;
  /// Entry budget of the session phoneme cache; 0 disables caching.
  size_t phoneme_cache_capacity = 1 << 16;
  /// Rows per batch on the vectorized execution path (SET BATCH_SIZE
  /// changes it per session); 0 = tuple-at-a-time execution.
  size_t batch_size = 1024;
};

/// Plan-vs-actual feedback for one executed plan node: the planner's
/// cardinality estimate against the observed row count, as a q-error.
struct NodeFeedback {
  std::string op;        // operator display name
  int depth = 0;         // position in the plan tree
  int64_t estimated_rows = -1;
  uint64_t actual_rows = 0;
  double qerror = 1.0;   // max(est/actual, actual/est), both floored at 1
};

/// Result of one query execution.
struct QueryResult {
  std::vector<Row> rows;
  Schema schema;
  double predicted_rows = 0;
  Cost predicted_cost;
  double runtime_ms = 0;
  ExecStats exec_stats;   // counters for this query only
  std::string explain;
  /// EXPLAIN ANALYZE form: the executed plan as a timed tree (per-operator
  /// wall time, estimated vs actual rows, per-node q-error) plus a q-error
  /// summary line.
  std::string explain_analyze;
  /// Per-node estimate feedback, pre-order; nodes without an estimate are
  /// skipped.  max_qerror summarizes the worst node.
  std::vector<NodeFeedback> feedback;
  double max_qerror = 1.0;

  /// Pretty-prints rows as an aligned table.
  std::string ToTable(size_t max_rows = 20) const;
};

class Database {
 public:
  [[nodiscard]] static StatusOr<std::unique_ptr<Database>> Open(
      DatabaseOptions options = DatabaseOptions());

  // ------------------------------------------------------------- DDL/DML

  [[nodiscard]] Status CreateTable(const std::string& name, Schema schema);

  /// Inserts a row; UniText values in MATERIALIZE PHONEMES columns get
  /// their phoneme strings computed and stored (paper §4.2).
  [[nodiscard]] Status Insert(const std::string& table, Row row);

  [[nodiscard]]
  Status InsertBulk(const std::string& table, std::vector<Row> rows);

  /// Creates and registers an index.  `on_phonemes` keys the index by the
  /// materialized phoneme string (required for kMTree/kMdi).
  [[nodiscard]]
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     const std::string& column, IndexKind kind,
                     bool on_phonemes);

  /// Rebuilds optimizer statistics for a table.
  [[nodiscard]] Status Analyze(const std::string& table);

  // ------------------------------------------------------------ taxonomy

  /// Pins `taxonomy` in memory for SemEQUAL *and* persists it into the
  /// relational tables tax_synsets / tax_edges / tax_equiv, so closure
  /// computation can also run against storage (the Figure-8 experiments).
  [[nodiscard]] Status LoadTaxonomy(std::unique_ptr<Taxonomy> taxonomy);

  /// Adds B+Tree indexes on tax_edges.parent and tax_equiv.a (the
  /// "B+Tree index on the parent attribute" configuration of §5.4).
  [[nodiscard]] Status CreateTaxonomyIndexes();

  const Taxonomy* taxonomy() const { return taxonomy_.get(); }

  // ------------------------------------------------------------- queries

  /// Plans without executing (EXPLAIN).
  [[nodiscard]] StatusOr<PhysicalPlan> PlanQuery(const LogicalPtr& plan,
                                   PlannerHints hints = PlannerHints());

  /// Plans and executes, reporting predictions, timings and counters.
  [[nodiscard]] StatusOr<QueryResult> Query(const LogicalPtr& plan,
                              PlannerHints hints = PlannerHints());

  /// Parses and runs a SQL statement (SELECT / EXPLAIN / SET / CREATE /
  /// INSERT / ANALYZE); see src/sql.
  [[nodiscard]] StatusOr<QueryResult> Sql(const std::string& statement);

  // ------------------------------------------------------------ settings

  void SetLexequalThreshold(int threshold) {
    ctx_.lexequal_threshold = threshold;
  }
  int lexequal_threshold() const { return ctx_.lexequal_threshold; }

  /// Sets the session DOP (0 = hardware concurrency) and (re)provisions
  /// the worker pool when dop > 1.
  void SetDegreeOfParallelism(int dop);
  int degree_of_parallelism() const { return ctx_.degree_of_parallelism; }

  /// Rows per batch on the vectorized path; 0 forces tuple-at-a-time
  /// execution (and the planner skips batch-only operators).  Clamped to
  /// [0, 65536].  SET BATCH_SIZE changes it per session.
  void SetBatchSize(int64_t rows) {
    ctx_.batch_size = static_cast<size_t>(
        std::min<int64_t>(std::max<int64_t>(rows, 0), 65536));
  }
  size_t batch_size() const { return ctx_.batch_size; }

  /// Queries running at least this many milliseconds log a warning with
  /// the serialized timed plan tree; negative disables (default).
  /// SET SLOW_QUERY_MILLIS changes it per session.
  void SetSlowQueryMillis(int64_t millis) { slow_query_millis_ = millis; }
  int64_t slow_query_millis() const { return slow_query_millis_; }

  // -------------------------------------------------------------- access

  ExecContext* exec_context() { return &ctx_; }
  Catalog* catalog() { return catalog_.get(); }
  StatsCatalog* stats_catalog() { return &stats_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  PhonemeCache* phoneme_cache() { return phoneme_cache_.get(); }
  ThreadPool* thread_pool() { return thread_pool_.get(); }

  /// The outside-the-server UDF runtime with SQL_*/TEMPSET_* host
  /// callbacks bound to this database.  `use_btree_for_closure` selects
  /// how the SQL_CHILDREN host statement executes: B+Tree probe (requires
  /// CreateTaxonomyIndexes) vs full scan of tax_edges.
  [[nodiscard]] StatusOr<pl::UdfRuntime*> udf_runtime();
  void set_outside_closure_uses_btree(bool use) {
    outside_closure_btree_ = use;
  }

 private:
  Database() = default;

  [[nodiscard]] Status BindUdfHosts();

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  StatsCatalog stats_;
  ExecContext ctx_;
  std::unique_ptr<Taxonomy> taxonomy_;
  std::unique_ptr<ClosureCache> closure_cache_;
  std::unique_ptr<PhonemeCache> phoneme_cache_;
  std::unique_ptr<ThreadPool> thread_pool_;
  std::unique_ptr<pl::UdfRuntime> udf_;
  int64_t slow_query_millis_ = -1;  // negative = slow-query log disabled
  bool outside_closure_btree_ = false;
  // TEMPSET_* backing store (models PL/SQL temp tables with an index).
  std::map<int64_t, std::unordered_set<int64_t>> tempsets_;
  int64_t next_tempset_ = 1;
};

}  // namespace mural
