// Database: the shared engine core tying together storage, catalog,
// statistics, the optimizer, the pinned taxonomy, the shared plan cache,
// the admission-control gate, and the outside-the-server UDF runtime.
//
// One Database serves MANY concurrent sessions.  Per-session state — the
// settings the paper stores in system tables (§4.2: LexEQUAL threshold,
// execution mode) plus the execution context, worker pool and prepared
// statements — lives in SessionState (engine/session_state.h) and is
// surfaced through the Session API (session/session.h):
//
//   MURAL_ASSIGN_OR_RETURN(auto db, Database::Open());
//   MURAL_ASSIGN_OR_RETURN(auto session, db->Connect());
//   MURAL_ASSIGN_OR_RETURN(QueryResult r, session->Sql("SELECT ..."));
//
// The *On(SessionState&, ...) members are the session-parameterized core
// every entry point funnels through.  The historical single-session
// methods (Query/Sql/PlanQuery/Set*) survive as thin deprecated shims
// over a built-in default session so the pre-split call sites keep
// compiling; new code should Connect() a Session instead.

#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "datagen/taxonomy_generator.h"
#include "engine/admission.h"
#include "engine/plan_cache.h"
#include "engine/session_state.h"
#include "exec/exec_context.h"
#include "optimizer/planner.h"
#include "phonetic/phoneme_cache.h"
#include "plfront/udf_runtime.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mural {

namespace sql {
struct Statement;
}  // namespace sql

class Session;  // session layer; minted by Connect(), defined there

struct DatabaseOptions {
  /// Buffer-pool frames (8 KiB each).
  size_t buffer_pool_pages = 8192;
  /// Backing file; empty = in-memory pages (logical I/O still counted).
  std::string disk_path;
  /// Initial LexEQUAL mismatch threshold: the default for every session
  /// this Database mints (SET LEXEQUAL_THRESHOLD changes it per session).
  int lexequal_threshold = 2;
  /// Default session degree of parallelism for Psi operators.  0 =
  /// hardware concurrency; 1 = serial plans (SET DEGREE_OF_PARALLELISM
  /// changes it per session).
  int degree_of_parallelism = 0;
  /// Entry budget of the shared phoneme cache; 0 disables caching.
  size_t phoneme_cache_capacity = 1 << 16;
  /// Default rows per batch on the vectorized execution path
  /// (SET BATCH_SIZE changes it per session); 0 = tuple-at-a-time.
  size_t batch_size = 1024;
  /// Shared plan-cache entry budget; 0 disables plan caching.
  size_t plan_cache_capacity = 128;
  /// Admission-control gate over concurrent query execution
  /// (max_concurrent = 0 leaves the gate open — library single-user use
  /// pays nothing).
  AdmissionOptions admission;
};

/// Plan-vs-actual feedback for one executed plan node: the planner's
/// cardinality estimate against the observed row count, as a q-error.
struct NodeFeedback {
  std::string op;        // operator display name
  int depth = 0;         // position in the plan tree
  int64_t estimated_rows = -1;
  uint64_t actual_rows = 0;
  double qerror = 1.0;   // max(est/actual, actual/est), both floored at 1
};

/// Result of one query execution.
struct QueryResult {
  std::vector<Row> rows;
  Schema schema;
  double predicted_rows = 0;
  Cost predicted_cost;
  double runtime_ms = 0;
  ExecStats exec_stats;   // counters for this query only
  std::string explain;
  /// EXPLAIN ANALYZE form: the executed plan as a timed tree (per-operator
  /// wall time, estimated vs actual rows, per-node q-error) plus a q-error
  /// summary line and the session attribution line.
  std::string explain_analyze;
  /// Per-node estimate feedback, pre-order; nodes without an estimate are
  /// skipped.  max_qerror summarizes the worst node.
  std::vector<NodeFeedback> feedback;
  double max_qerror = 1.0;
  /// The session that ran the query (0 = the built-in legacy session).
  uint64_t session_id = 0;
  /// Time spent queued at the admission gate before execution began.
  double queue_wait_ms = 0;

  /// Pretty-prints rows as an aligned table.
  std::string ToTable(size_t max_rows = 20) const;
};

class Database {
 public:
  [[nodiscard]] static StatusOr<std::unique_ptr<Database>> Open(
      DatabaseOptions options = DatabaseOptions());

  // ------------------------------------------------------------ sessions

  /// Mints a new concurrent session against this Database with the
  /// Database-default session options (thread-safe).  The Session must
  /// not outlive the Database.  Defined in session/session.cc.
  [[nodiscard]] StatusOr<std::unique_ptr<Session>> Connect();
  [[nodiscard]] StatusOr<std::unique_ptr<Session>> Connect(
      SessionOptions options);

  const SessionOptions& session_defaults() const {
    return session_defaults_;
  }

  // ------------------------------------------------------------- DDL/DML
  //
  // DDL and ANALYZE mutate what bound plans were built against, so each
  // of these invalidates the shared plan cache.  Safe to call from any
  // session's thread; the catalog and stats catalog are internally
  // synchronized.

  [[nodiscard]] Status CreateTable(const std::string& name, Schema schema);

  /// Inserts a row; UniText values in MATERIALIZE PHONEMES columns get
  /// their phoneme strings computed and stored (paper §4.2).
  [[nodiscard]] Status Insert(const std::string& table, Row row);

  [[nodiscard]]
  Status InsertBulk(const std::string& table, std::vector<Row> rows);

  /// Creates and registers an index.  `on_phonemes` keys the index by the
  /// materialized phoneme string (required for kMTree/kMdi).
  [[nodiscard]]
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     const std::string& column, IndexKind kind,
                     bool on_phonemes);

  /// Rebuilds optimizer statistics for a table.
  [[nodiscard]] Status Analyze(const std::string& table);

  // ------------------------------------------------------------ taxonomy

  /// Pins `taxonomy` in memory for SemEQUAL *and* persists it into the
  /// relational tables tax_synsets / tax_edges / tax_equiv, so closure
  /// computation can also run against storage (the Figure-8 experiments).
  /// Setup-phase only: must not race live queries.
  [[nodiscard]] Status LoadTaxonomy(std::unique_ptr<Taxonomy> taxonomy);

  /// Adds B+Tree indexes on tax_edges.parent and tax_equiv.a (the
  /// "B+Tree index on the parent attribute" configuration of §5.4).
  [[nodiscard]] Status CreateTaxonomyIndexes();

  const Taxonomy* taxonomy() const { return taxonomy_.get(); }

  // ----------------------------------------- session-parameterized core
  //
  // Every query entry point — Session methods, the server, and the
  // deprecated single-session shims below — funnels through these.

  /// Plans without executing (EXPLAIN) on behalf of `session`.
  [[nodiscard]] StatusOr<PhysicalPlan> PlanOn(
      SessionState& session, const LogicalPtr& plan,
      PlannerHints hints = PlannerHints());

  /// Plans and executes on behalf of `session`: takes an admission-gate
  /// slot, reports predictions/timings/counters, and stamps the result
  /// with the session id and queue wait.
  [[nodiscard]] StatusOr<QueryResult> QueryOn(
      SessionState& session, const LogicalPtr& plan,
      PlannerHints hints = PlannerHints());

  /// Parses and runs one SQL statement (SELECT / EXPLAIN / SET / CREATE /
  /// INSERT / ANALYZE / PREPARE / EXECUTE) on behalf of `session`,
  /// consulting the shared plan cache for SELECT/EXPLAIN binds and
  /// routing SET through SessionState::Set.  `hints` reaches the planner
  /// for SELECT and EXPLAIN [ANALYZE] statements.
  [[nodiscard]] StatusOr<QueryResult> SqlOn(
      SessionState& session, const std::string& statement,
      PlannerHints hints = PlannerHints());

  // --------------------------------------------- deprecated shims
  //
  // The pre-split single-session surface, kept so existing call sites
  // compile.  Each forwards to the built-in default session (id 0).
  // DEPRECATED: mint a Session with Connect() instead.

  [[nodiscard]] StatusOr<PhysicalPlan> PlanQuery(
      const LogicalPtr& plan, PlannerHints hints = PlannerHints()) {
    return PlanOn(*default_session_, plan, hints);
  }
  [[nodiscard]] StatusOr<QueryResult> Query(
      const LogicalPtr& plan, PlannerHints hints = PlannerHints()) {
    return QueryOn(*default_session_, plan, hints);
  }
  [[nodiscard]] StatusOr<QueryResult> Sql(const std::string& statement) {
    return SqlOn(*default_session_, statement);
  }

  void SetLexequalThreshold(int threshold) {
    MURAL_IGNORE_ERROR(
        default_session_->Set("lexequal_threshold", threshold));
  }
  int lexequal_threshold() const {
    return default_session_->options().lexequal_threshold;
  }
  void SetDegreeOfParallelism(int dop) {
    MURAL_IGNORE_ERROR(default_session_->Set("degree_of_parallelism", dop));
  }
  int degree_of_parallelism() const {
    return default_session_->options().degree_of_parallelism;
  }
  void SetBatchSize(int64_t rows) {
    MURAL_IGNORE_ERROR(default_session_->Set("batch_size", rows));
  }
  size_t batch_size() const {
    return static_cast<size_t>(default_session_->options().batch_size);
  }
  void SetSlowQueryMillis(int64_t millis) {
    MURAL_IGNORE_ERROR(default_session_->Set("slow_query_millis", millis));
  }
  int64_t slow_query_millis() const {
    return default_session_->slow_query_millis();
  }

  /// DEPRECATED: the default session's execution context.
  ExecContext* exec_context() { return default_session_->exec_context(); }
  /// DEPRECATED: the default session's worker pool (null until DOP > 1).
  ThreadPool* thread_pool() { return default_session_->thread_pool(); }

  // -------------------------------------------------------------- access

  Catalog* catalog() { return catalog_.get(); }
  StatsCatalog* stats_catalog() { return &stats_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  PhonemeCache* phoneme_cache() { return phoneme_cache_.get(); }
  PlanCache* plan_cache() { return plan_cache_.get(); }
  AdmissionController* admission() { return admission_.get(); }

  /// The outside-the-server UDF runtime with SQL_*/TEMPSET_* host
  /// callbacks bound to this database.  `use_btree_for_closure` selects
  /// how the SQL_CHILDREN host statement executes: B+Tree probe (requires
  /// CreateTaxonomyIndexes) vs full scan of tax_edges.  Single-session:
  /// the outside-the-server baseline models the paper's one-user setup
  /// and runs on the default session.
  [[nodiscard]] StatusOr<pl::UdfRuntime*> udf_runtime();
  void set_outside_closure_uses_btree(bool use) {
    outside_closure_btree_ = use;
  }

 private:
  friend class Session;  // Connect() wires SessionStates to this core

  Database() = default;

  [[nodiscard]] Status BindUdfHosts();

  /// Binds `stmt` through the shared plan cache (hit skips parse+bind
  /// work; miss binds and populates).
  [[nodiscard]] StatusOr<LogicalPtr> BindCached(SessionState& session,
                                                const sql::Statement& stmt);

  /// ANALYZE core: G2P for MFV phonemes runs through `ctx` so the work is
  /// attributed to the requesting session's counters.
  [[nodiscard]] Status AnalyzeWith(const std::string& table,
                                   ExecContext* ctx);

  /// Sessions pick up engine-shared handles (taxonomy, closure cache)
  /// that may have been loaded after the session was minted.
  void SyncSharedHandles(SessionState& session);

  uint64_t MintSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  StatsCatalog stats_;
  std::unique_ptr<Taxonomy> taxonomy_;
  std::unique_ptr<ClosureCache> closure_cache_;
  std::unique_ptr<PhonemeCache> phoneme_cache_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<AdmissionController> admission_;
  SessionOptions session_defaults_;
  std::atomic<uint64_t> next_session_id_{1};
  /// The built-in session (id 0) behind the deprecated shims.
  std::unique_ptr<SessionState> default_session_;
  std::unique_ptr<pl::UdfRuntime> udf_;
  bool outside_closure_btree_ = false;
  // TEMPSET_* backing store (models PL/SQL temp tables with an index).
  std::map<int64_t, std::unordered_set<int64_t>> tempsets_;
  int64_t next_tempset_ = 1;
};

}  // namespace mural
