// ClosureExecutor: computes taxonomy transitive closures *through the
// storage layer* — the workload of the paper's Figure 8.
//
// Three strategies, matching the experiment's configurations:
//   kPinned    : expand over the in-memory (pinned) hierarchy (§4.3) —
//                the fastest native mode, used by the Omega operators.
//   kSeqScan   : per BFS level, scan the tax_edges heap once and collect
//                children of the frontier — "Core (No Index)".
//   kBTree     : per frontier node, probe the B+Tree on tax_edges.parent
//                and fetch matching edge tuples — "Core (B+Tree Index)".
//
// The outside-the-server counterparts run the same expansions from inside
// the interpreted UDF runtime (see Database::udf_runtime and
// outside_server.h).

#pragma once

#include "engine/database.h"

namespace mural {

enum class ClosureStrategy { kPinned, kSeqScan, kBTree };

const char* ClosureStrategyToString(ClosureStrategy strategy);

struct ClosureRunStats {
  size_t closure_size = 0;
  uint32_t levels = 0;          // BFS depth reached
  uint64_t heap_scans = 0;      // full edge-table scans (kSeqScan)
  uint64_t index_probes = 0;    // B+Tree descents (kBTree)
  double millis = 0;
};

/// Computes the closure of the synsets with `lemma` in `lang`, expanding
/// IS-A children and (optionally) equivalence links, using `strategy`.
/// The result is returned as a Closure (hash set of synset ids) plus run
/// statistics.
StatusOr<std::pair<Closure, ClosureRunStats>> ComputeClosure(
    Database* db, const std::string& lemma, LangId lang,
    ClosureStrategy strategy, bool follow_equivalence = true);

}  // namespace mural
