#include "engine/plan_cache.h"

#include "common/metrics.h"
#include "common/string_util.h"

namespace mural {

namespace {

Counter* HitCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("engine.plan_cache.hits");
  return c;
}

Counter* MissCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("engine.plan_cache.misses");
  return c;
}

Counter* InvalidationCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "engine.plan_cache.invalidations");
  return c;
}

}  // namespace

std::string PlanCacheKey::Encode() const {
  return StringFormat("k=%d|dop=%d|batch=%lld|", lexequal_threshold,
                      degree_of_parallelism,
                      static_cast<long long>(batch_size)) +
         statement;
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {}

LogicalPtr PlanCache::Lookup(const PlanCacheKey& key) {
  if (capacity_ == 0) {
    MissCounter()->Increment();
    return nullptr;
  }
  const std::string encoded = key.Encode();
  LogicalPtr plan;
  {
    MutexLock lock(mu_);
    auto it = map_.find(encoded);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
      plan = it->second->plan;
    }
  }
  if (plan != nullptr) {
    HitCounter()->Increment();
  } else {
    MissCounter()->Increment();
  }
  return plan;
}

void PlanCache::Insert(const PlanCacheKey& key, LogicalPtr plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  const std::string encoded = key.Encode();
  MutexLock lock(mu_);
  auto it = map_.find(encoded);
  if (it != map_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{encoded, std::move(plan)});
  map_[encoded] = lru_.begin();
  if (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void PlanCache::Invalidate() {
  {
    MutexLock lock(mu_);
    if (lru_.empty()) return;
    lru_.clear();
    map_.clear();
  }
  InvalidationCounter()->Increment();
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return map_.size();
}

}  // namespace mural
