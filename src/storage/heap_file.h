// HeapFile: an unordered collection of records on a linked list of slotted
// pages — the physical representation of a table.

#pragma once

#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace mural {

/// A heap of variable-length records.
///
/// Pages are chained with next-page links starting from `first_page`, which
/// the catalog persists per table.  Inserts go to the last page, spilling
/// to a newly allocated page when full (no free-space map: the workloads
/// here are append-dominated, like the paper's bulk-loaded datasets).
class HeapFile {
 public:
  /// Creates a new empty heap (allocates its first page).
  [[nodiscard]] static StatusOr<HeapFile> Create(BufferPool* pool);

  /// Opens an existing heap rooted at `first_page`.
  [[nodiscard]]
  static StatusOr<HeapFile> Open(BufferPool* pool, PageId first_page,
                                 PageId last_page, uint64_t num_records);

  /// Appends a record.
  [[nodiscard]] StatusOr<Rid> Insert(Slice record);

  /// Reads a record by rid into `out` (copies: the page pin is released
  /// before returning).
  [[nodiscard]] Status Get(Rid rid, std::string* out) const;

  /// Tombstones a record.
  [[nodiscard]] Status Delete(Rid rid);

  /// Full-scan cursor.  Usage:
  ///   for (auto it = heap.Begin(); it.Valid(); it.Next()) { it.record() }
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    /// Advances to the next live record.
    void Next();
    const std::string& record() const { return record_; }
    Rid rid() const { return rid_; }
    /// Any error encountered while scanning (scan stops on error).
    const Status& status() const { return status_; }

   private:
    friend class HeapFile;
    Iterator(BufferPool* pool, PageId first_page);
    void Advance(bool first);

    BufferPool* pool_;
    PageId page_id_;
    int next_slot_ = 0;
    bool valid_ = false;
    Rid rid_;
    std::string record_;
    Status status_;
  };

  Iterator Begin() const { return Iterator(pool_, first_page_); }

  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  uint64_t num_records() const { return num_records_; }
  uint32_t num_pages() const { return num_pages_; }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last, uint64_t n)
      : pool_(pool), first_page_(first), last_page_(last), num_records_(n) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  uint64_t num_records_;
  uint32_t num_pages_ = 1;
};

}  // namespace mural
