// HeapFile: an unordered collection of records on a linked list of slotted
// pages — the physical representation of a table.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace mural {

/// A heap of variable-length records.
///
/// Pages are chained with next-page links starting from `first_page`, which
/// the catalog persists per table.  Inserts go to the last page, spilling
/// to a newly allocated page when full (no free-space map: the workloads
/// here are append-dominated, like the paper's bulk-loaded datasets).
///
/// Thread safety: reads (Get, Iterator, pages()) are safe from any number
/// of threads concurrently — each page access goes through a buffer-pool
/// ReadPageGuard.  Mutations (Insert, Delete) follow the engine's
/// single-writer discipline: one thread at a time, not concurrent with
/// readers of the same heap.  The parallel scan operators rely on exactly
/// this split: they only run against heaps in a read-only phase.
class HeapFile {
 public:
  /// Creates a new empty heap (allocates its first page).
  [[nodiscard]] static StatusOr<HeapFile> Create(BufferPool* pool);

  /// Opens an existing heap rooted at `first_page`, walking the page
  /// chain once to rebuild the page directory.
  [[nodiscard]]
  static StatusOr<HeapFile> Open(BufferPool* pool, PageId first_page,
                                 PageId last_page, uint64_t num_records);

  /// Appends a record.
  [[nodiscard]] StatusOr<Rid> Insert(Slice record);

  /// Reads a record by rid into `out` (copies: the page pin is released
  /// before returning).
  [[nodiscard]] Status Get(Rid rid, std::string* out) const;

  /// Tombstones a record.
  [[nodiscard]] Status Delete(Rid rid);

  /// Full-scan cursor.  Usage:
  ///   for (auto it = heap.Begin(); it.Valid(); it.Next()) { it.record() }
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    /// Advances to the next live record.
    void Next();
    const std::string& record() const { return record_; }
    Rid rid() const { return rid_; }
    /// Any error encountered while scanning (scan stops on error).
    const Status& status() const { return status_; }

   private:
    friend class HeapFile;
    Iterator(BufferPool* pool, PageId first_page);
    void Advance(bool first);

    BufferPool* pool_;
    PageId page_id_;
    int next_slot_ = 0;
    bool valid_ = false;
    Rid rid_;
    std::string record_;
    Status status_;
  };

  Iterator Begin() const { return Iterator(pool_, first_page_); }

  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  uint64_t num_records() const { return num_records_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }

  /// The page directory, in chain order (pages_[0] == first_page).
  /// Parallel scans claim page-range morsels over this vector so workers
  /// need no serial chain discovery; like the rest of the heap it is
  /// stable while no Insert runs.
  const std::vector<PageId>& pages() const { return pages_; }

  BufferPool* pool() const { return pool_; }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last, uint64_t n)
      : pool_(pool), first_page_(first), last_page_(last), num_records_(n) {
    pages_.push_back(first);
  }

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  uint64_t num_records_;
  std::vector<PageId> pages_;  // chain order; maintained by Create/Insert/Open
};

}  // namespace mural
