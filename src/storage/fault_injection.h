// FaultInjectionDiskManager: a DiskManager decorator that starts failing
// after a configurable number of operations — used by the robustness
// tests to verify that I/O errors propagate as Status through every layer
// (heap scans, B+Tree splits, GiST inserts, query execution) instead of
// crashing or corrupting in-memory state.
//
// The countdown and counters are mutex-guarded so the decorator can sit
// under a shared, concurrently-accessed BufferPool (the storage stress
// tests arm it while worker threads fetch and evict).

#pragma once

#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"

namespace mural {

class FaultInjectionDiskManager : public DiskManager {
 public:
  /// Wraps `inner` (not owned).  No faults until Arm() is called.
  explicit FaultInjectionDiskManager(DiskManager* inner) : inner_(inner) {}

  /// After `ops_until_failure` further operations (reads+writes+allocs),
  /// every subsequent operation fails with IOError.
  void Arm(uint64_t ops_until_failure) {
    MutexLock lock(mu_);
    armed_ = true;
    remaining_ = ops_until_failure;
  }

  /// Stops injecting; subsequent operations succeed again.
  void Disarm() {
    MutexLock lock(mu_);
    armed_ = false;
  }

  uint64_t injected_failures() const {
    MutexLock lock(mu_);
    return injected_;
  }

  [[nodiscard]] StatusOr<PageId> AllocatePage() override {
    MURAL_RETURN_IF_ERROR(MaybeFail("alloc"));
    MURAL_ASSIGN_OR_RETURN(const PageId id, inner_->AllocatePage());
    MutexLock lock(mu_);
    ++stats_.page_allocs;
    return id;
  }
  [[nodiscard]] Status ReadPage(PageId id, char* out) override {
    MURAL_RETURN_IF_ERROR(MaybeFail("read"));
    MURAL_RETURN_IF_ERROR(inner_->ReadPage(id, out));
    MutexLock lock(mu_);
    ++stats_.page_reads;
    return Status::OK();
  }
  [[nodiscard]] Status WritePage(PageId id, const char* data) override {
    MURAL_RETURN_IF_ERROR(MaybeFail("write"));
    MURAL_RETURN_IF_ERROR(inner_->WritePage(id, data));
    MutexLock lock(mu_);
    ++stats_.page_writes;
    return Status::OK();
  }
  uint32_t NumPages() const override { return inner_->NumPages(); }

 private:
  [[nodiscard]] Status MaybeFail(const char* op) {
    MutexLock lock(mu_);
    if (!armed_) return Status::OK();
    if (remaining_ > 0) {
      --remaining_;
      return Status::OK();
    }
    ++injected_;
    return Status::IOError(std::string("injected fault on ") + op);
  }

  mutable Mutex mu_;
  DiskManager* const inner_;  // lint: unguarded(immutable after construction; inner manager synchronizes itself)
  bool armed_ GUARDED_BY(mu_) = false;
  uint64_t remaining_ GUARDED_BY(mu_) = 0;
  uint64_t injected_ GUARDED_BY(mu_) = 0;
};

}  // namespace mural
