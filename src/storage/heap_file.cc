#include "storage/heap_file.h"

namespace mural {

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool) {
  MURAL_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  guard->Init();
  guard.MarkDirty();
  const PageId first = guard.id();
  return HeapFile(pool, first, first, 0);
}

StatusOr<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page,
                                  PageId last_page, uint64_t num_records) {
  return HeapFile(pool, first_page, last_page, num_records);
}

StatusOr<Rid> HeapFile::Insert(Slice record) {
  if (record.size() > kPageSize / 2) {
    return Status::InvalidArgument(
        "record exceeds half a page; TOAST-style overflow is out of scope");
  }
  MURAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(last_page_));
  StatusOr<SlotId> slot = guard->Insert(record);
  if (!slot.ok()) {
    // Current tail is full: chain a fresh page.
    MURAL_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    fresh->Init();
    guard->set_next_page(fresh.id());
    guard.MarkDirty();
    guard.Release();
    last_page_ = fresh.id();
    ++num_pages_;
    MURAL_ASSIGN_OR_RETURN(const SlotId s, fresh->Insert(record));
    fresh.MarkDirty();
    ++num_records_;
    return Rid{fresh.id(), s};
  }
  guard.MarkDirty();
  ++num_records_;
  return Rid{guard.id(), *slot};
}

Status HeapFile::Get(Rid rid, std::string* out) const {
  MURAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  MURAL_ASSIGN_OR_RETURN(const Slice record, guard->Get(rid.slot));
  out->assign(record.data(), record.size());
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  MURAL_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  MURAL_RETURN_IF_ERROR(guard->Delete(rid.slot));
  guard.MarkDirty();
  if (num_records_ > 0) --num_records_;
  return Status::OK();
}

HeapFile::Iterator::Iterator(BufferPool* pool, PageId first_page)
    : pool_(pool), page_id_(first_page) {
  Advance(/*first=*/true);
}

void HeapFile::Iterator::Next() { Advance(/*first=*/false); }

void HeapFile::Iterator::Advance(bool first) {
  (void)first;
  valid_ = false;
  while (page_id_ != kInvalidPage) {
    StatusOr<PageGuard> guard = pool_->Fetch(page_id_);
    if (!guard.ok()) {
      status_ = guard.status();
      return;
    }
    const Page* page = guard->get();
    while (next_slot_ < page->NumSlots()) {
      const SlotId slot = static_cast<SlotId>(next_slot_++);
      StatusOr<Slice> record = page->Get(slot);
      if (record.ok()) {
        rid_ = Rid{page_id_, slot};
        record_.assign(record->data(), record->size());
        valid_ = true;
        return;
      }
      // Tombstone: keep scanning.
    }
    page_id_ = page->next_page();
    next_slot_ = 0;
  }
}

}  // namespace mural
