#include "storage/heap_file.h"

#include <utility>

namespace mural {

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool) {
  MURAL_ASSIGN_OR_RETURN(WritePageGuard guard, pool->NewPage());
  guard->Init();
  guard.MarkDirty();
  const PageId first = guard.id();
  return HeapFile(pool, first, first, 0);
}

StatusOr<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page,
                                  PageId last_page, uint64_t num_records) {
  if (first_page == kInvalidPage) {
    return Status::InvalidArgument("heap has no first page");
  }
  HeapFile heap(pool, first_page, last_page, num_records);
  heap.pages_.clear();
  PageId pid = first_page;
  while (pid != kInvalidPage) {
    heap.pages_.push_back(pid);
    MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard, pool->Fetch(pid));
    pid = guard->next_page();
  }
  heap.last_page_ = heap.pages_.back();
  return heap;
}

StatusOr<Rid> HeapFile::Insert(Slice record) {
  if (record.size() > kPageSize / 2) {
    return Status::InvalidArgument(
        "record exceeds half a page; TOAST-style overflow is out of scope");
  }
  // The canonical Upgrade() append path: pin the tail under the shared
  // latch, then trade it for the exclusive one.  Upgrade is not atomic,
  // so the insert below re-runs against whatever state the page has after
  // re-latching (under the single-writer discipline nothing intervenes).
  MURAL_ASSIGN_OR_RETURN(ReadPageGuard probe, pool_->Fetch(last_page_));
  WritePageGuard guard = std::move(probe).Upgrade();
  StatusOr<SlotId> slot = guard->Insert(record);
  if (!slot.ok()) {
    // Current tail is full: chain a fresh page.  Drop the tail latch
    // FIRST — NewPage latches the fresh frame (and possibly an eviction
    // victim during write-back), and holding two frame latches at once
    // creates a lock-order inversion between frames (TSan flags it as a
    // potential deadlock).  The single-writer discipline means nothing
    // can touch the tail in the unlatched window.
    guard.Release();
    MURAL_ASSIGN_OR_RETURN(WritePageGuard fresh, pool_->NewPage());
    fresh->Init();
    MURAL_ASSIGN_OR_RETURN(const SlotId s, fresh->Insert(record));
    fresh.MarkDirty();
    const PageId fresh_id = fresh.id();
    fresh.Release();
    // Re-latch the old tail to publish the chain link; readers cannot
    // reach the fresh page until this write lands.
    MURAL_ASSIGN_OR_RETURN(WritePageGuard tail,
                           pool_->FetchForWrite(last_page_));
    tail->set_next_page(fresh_id);
    tail.MarkDirty();
    tail.Release();
    last_page_ = fresh_id;
    pages_.push_back(fresh_id);
    ++num_records_;
    return Rid{fresh_id, s};
  }
  guard.MarkDirty();
  ++num_records_;
  return Rid{guard.id(), *slot};
}

Status HeapFile::Get(Rid rid, std::string* out) const {
  MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard, pool_->Fetch(rid.page));
  MURAL_ASSIGN_OR_RETURN(const Slice record, guard->Get(rid.slot));
  out->assign(record.data(), record.size());
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  MURAL_ASSIGN_OR_RETURN(WritePageGuard guard,
                         pool_->FetchForWrite(rid.page));
  MURAL_RETURN_IF_ERROR(guard->Delete(rid.slot));
  guard.MarkDirty();
  if (num_records_ > 0) --num_records_;
  return Status::OK();
}

HeapFile::Iterator::Iterator(BufferPool* pool, PageId first_page)
    : pool_(pool), page_id_(first_page) {
  Advance(/*first=*/true);
}

void HeapFile::Iterator::Next() { Advance(/*first=*/false); }

void HeapFile::Iterator::Advance(bool first) {
  (void)first;
  valid_ = false;
  while (page_id_ != kInvalidPage) {
    StatusOr<ReadPageGuard> guard = pool_->Fetch(page_id_);
    if (!guard.ok()) {
      status_ = guard.status();
      return;
    }
    const Page* page = guard->get();
    while (next_slot_ < page->NumSlots()) {
      const SlotId slot = static_cast<SlotId>(next_slot_++);
      StatusOr<Slice> record = page->Get(slot);
      if (record.ok()) {
        rid_ = Rid{page_id_, slot};
        record_.assign(record->data(), record->size());
        valid_ = true;
        return;
      }
      // Tombstone: keep scanning.
    }
    page_id_ = page->next_page();
    next_slot_ = 0;
  }
}

}  // namespace mural
