#include "storage/page.h"

namespace mural {

StatusOr<SlotId> Page::Insert(Slice record) {
  if (record.size() > 0xFFFF) {
    return Status::InvalidArgument("record larger than 64 KiB");
  }
  if (record.size() > FreeSpace()) {
    return Status::ResourceExhausted("page full");
  }
  PageHeader* h = header();
  const SlotId slot = h->num_slots;
  h->data_start = static_cast<uint16_t>(h->data_start - record.size());
  std::memcpy(bytes_ + h->data_start, record.data(), record.size());
  Slot* s = slot_array() + slot;
  s->offset = h->data_start;
  s->length = static_cast<uint16_t>(record.size());
  ++h->num_slots;
  return slot;
}

StatusOr<Slice> Page::Get(SlotId slot) const {
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot out of range");
  }
  const Slot& s = slot_array()[slot];
  if (s.offset == 0) {
    return Status::NotFound("slot is tombstoned");
  }
  return Slice(bytes_ + s.offset, s.length);
}

Status Page::Delete(SlotId slot) {
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot out of range");
  }
  Slot& s = slot_array()[slot];
  if (s.offset == 0) {
    return Status::NotFound("slot already tombstoned");
  }
  s.offset = 0;
  s.length = 0;
  return Status::OK();
}

Status Page::Update(SlotId slot, Slice record) {
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot out of range");
  }
  Slot& s = slot_array()[slot];
  if (s.offset == 0) {
    return Status::NotFound("slot is tombstoned");
  }
  if (record.size() > s.length) {
    return Status::NotSupported("in-place update longer than original");
  }
  std::memcpy(bytes_ + s.offset, record.data(), record.size());
  s.length = static_cast<uint16_t>(record.size());
  return Status::OK();
}

}  // namespace mural
