#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mural {

StatusOr<PageId> MemoryDiskManager::AllocatePage() {
  auto frame = std::make_unique<char[]>(kPageSize);
  std::memset(frame.get(), 0, kPageSize);
  MutexLock lock(mu_);
  frames_.push_back(std::move(frame));
  ++stats_.page_allocs;
  return static_cast<PageId>(frames_.size() - 1);
}

Status MemoryDiskManager::ReadPage(PageId id, char* out) {
  const char* src = nullptr;
  {
    MutexLock lock(mu_);
    if (id >= frames_.size()) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(id));
    }
    src = frames_[id].get();
    ++stats_.page_reads;
  }
  // The 8 KiB copy runs unlocked: the block address is stable, and the
  // buffer pool's frame latches keep same-page reads and writes apart.
  std::memcpy(out, src, kPageSize);
  return Status::OK();
}

Status MemoryDiskManager::WritePage(PageId id, const char* data) {
  char* dst = nullptr;
  {
    MutexLock lock(mu_);
    if (id >= frames_.size()) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(id));
    }
    dst = frames_[id].get();
    ++stats_.page_writes;
  }
  std::memcpy(dst, data, kPageSize);
  return Status::OK();
}

uint32_t MemoryDiskManager::NumPages() const {
  MutexLock lock(mu_);
  return static_cast<uint32_t>(frames_.size());
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
  }
  const uint32_t num_pages = static_cast<uint32_t>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(fd, num_pages, path));
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<PageId> FileDiskManager::AllocatePage() {
  char zeros[kPageSize];
  std::memset(zeros, 0, sizeof(zeros));
  PageId id = kInvalidPage;
  {
    MutexLock lock(mu_);
    id = num_pages_;
    ++num_pages_;  // reserve the id before the unlocked write below
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pwrite(fd_, zeros, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    MutexLock lock(mu_);
    // Roll the reservation back if no later alloc built on top of it;
    // otherwise the id stays a hole that reads back as OutOfRange.
    if (num_pages_ == id + 1) --num_pages_;
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  MutexLock lock(mu_);
  ++stats_.page_allocs;
  return id;
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  {
    MutexLock lock(mu_);
    if (id >= num_pages_) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(id));
    }
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pread(fd_, out, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
  }
  MutexLock lock(mu_);
  ++stats_.page_reads;
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  {
    MutexLock lock(mu_);
    if (id >= num_pages_) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(id));
    }
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pwrite(fd_, data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  MutexLock lock(mu_);
  ++stats_.page_writes;
  return Status::OK();
}

uint32_t FileDiskManager::NumPages() const {
  MutexLock lock(mu_);
  return num_pages_;
}

}  // namespace mural
