// BufferPool: fixed set of in-memory frames caching disk pages, with LRU
// replacement, pin counting and dirty tracking — the PostgreSQL-shaped
// buffer layer under every access method in this engine.
//
// The pool is thread-safe (see DESIGN.md "Storage concurrency"):
//
//   * `table_mu_` (a SharedMutex) guards the frame table: page_table_,
//     free_list_, lru_, pin counts and the stats block.  Its critical
//     sections are short and straight-line — they never perform I/O and
//     never block on a frame latch.
//   * Every frame carries its own SharedMutex latch guarding the 8 KiB
//     page image.  ReadPageGuard holds it shared, WritePageGuard
//     exclusive.
//   * Guards pin (under table_mu_) before latching and unlatch before
//     unpinning, so a frame with pin_count == 0 has no latch holder and
//     is safe to evict.  Lock order: table_mu_ before any frame latch
//     (declared against the lock_rank tokens in common/lock_order.h).
//   * All disk I/O — miss reads, eviction and flush write-backs — runs
//     with table_mu_ released and the frame's exclusive latch held, per
//     the no-lock-across-g2p-io lint rule.  The loader's exclusive latch
//     doubles as I/O dedup: concurrent fetchers of the same page find the
//     table entry, pin it, and block on the latch until the read lands.

#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mural {

/// Buffer-pool level counters (hit ratio matters to the cost experiments).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  void Reset() { *this = BufferPoolStats(); }
};

/// The buffer pool proper.  Obtain pages through the RAII guards:
/// Fetch -> ReadPageGuard (shared latch, const view of the page),
/// FetchForWrite / NewPage -> WritePageGuard (exclusive latch, MarkDirty).
class BufferPool {
 public:
  class ReadPageGuard;
  class WritePageGuard;

  /// `capacity` frames over `disk` (not owned).
  BufferPool(DiskManager* disk, size_t capacity);

  /// Pins page `id` for reading, loading it from disk on a miss.  The
  /// returned guard holds the frame's latch shared: concurrent readers
  /// proceed, writers of the same page wait.  Wall time spent here (pin
  /// + any disk read + latch wait) accumulates into the
  /// storage.buffer_pool.fetch_nanos counter, which is how the bench
  /// harness attributes storage-layer time per query.
  // lint: blocking
  [[nodiscard]] StatusOr<ReadPageGuard> Fetch(PageId id);

  /// Pins page `id` for writing.  The returned guard holds the frame's
  /// latch exclusively.  Time accumulates into fetch_nanos like Fetch.
  // lint: blocking
  [[nodiscard]] StatusOr<WritePageGuard> FetchForWrite(PageId id);

  /// Allocates a fresh zeroed page on disk and pins it for writing
  /// (already marked dirty).  Formatting (Page::Init or an index layout)
  /// is left to the caller.
  // lint: blocking
  [[nodiscard]] StatusOr<WritePageGuard> NewPage();

  /// Writes back all dirty pages (does not evict).  Safe to run
  /// concurrently with fetches.
  // lint: blocking
  [[nodiscard]] Status FlushAll();

  size_t capacity() const { return capacity_; }

  /// A locked snapshot of the counters (a copy, not a reference: the
  /// underlying block is guarded by table_mu_).
  BufferPoolStats stats() const;

  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    /// Guards the page image.  Acquired only while the frame is pinned,
    /// and never while holding table_mu_ (pin first, then latch).
    SharedMutex latch ACQUIRED_AFTER(lock_rank::kBufferTable);
    PageId id = kInvalidPage;  // lint: unguarded(guarded by BufferPool::table_mu_; stable while pinned)
    int pin_count = 0;  // lint: unguarded(guarded by BufferPool::table_mu_)
    /// Set by WritePageGuard::MarkDirty under the exclusive latch;
    /// cleared by write-back under the exclusive latch.
    std::atomic<bool> dirty{false};
    /// Set by a loader whose disk read failed, while still holding the
    /// exclusive latch; waiters observe it after acquiring the latch and
    /// the last unpinner returns the frame to the free list.
    std::atomic<bool> load_failed{false};
    std::unique_ptr<Page> page;  // lint: unguarded(pointer fixed at construction; bytes guarded by latch)
    std::list<size_t>::iterator lru_pos;  // lint: unguarded(guarded by BufferPool::table_mu_)
    bool in_lru = false;  // lint: unguarded(guarded by BufferPool::table_mu_)
  };

  /// Result of PinPage: the pinned frame, and whether this thread is the
  /// loader (holding the frame's exclusive latch over an unread image).
  struct PinResult {
    size_t idx = 0;
    bool loader = false;
  };

  /// Untimed bodies of Fetch / FetchForWrite; the public entry points
  /// wrap them with the fetch_nanos stopwatch.
  [[nodiscard]] StatusOr<ReadPageGuard> FetchImpl(PageId id);
  [[nodiscard]] StatusOr<WritePageGuard> FetchForWriteImpl(PageId id);

  /// Pins `id`'s frame, installing a latched placeholder on a miss.
  [[nodiscard]] StatusOr<PinResult> PinPage(PageId id) EXCLUDES(table_mu_);

  /// Pops a free frame, evicting (and writing back) an LRU victim when
  /// needed.  The returned frame is "floating": unpinned, absent from the
  /// table, free list and LRU, so this thread owns it exclusively.
  [[nodiscard]] StatusOr<size_t> AcquireFreeFrame() EXCLUDES(table_mu_);

  /// Drops one pin; the last unpinner re-inserts into the LRU, or frees
  /// the frame outright when its load failed.
  void Unpin(size_t idx) EXCLUDES(table_mu_);

  DiskManager* const disk_;  // lint: unguarded(const pointer, fixed at construction)
  const size_t capacity_;
  // The array itself is fixed at construction (frame pointers stay
  // stable); per-frame state is guarded as documented on Frame.
  std::unique_ptr<Frame[]> frames_;  // lint: unguarded(fixed at construction; per-frame state guarded per Frame)

  mutable SharedMutex table_mu_ ACQUIRED_AFTER(lock_rank::kCatalog)
      ACQUIRED_BEFORE(lock_rank::kFrameLatch);
  std::vector<size_t> free_list_ GUARDED_BY(table_mu_);
  std::list<size_t> lru_ GUARDED_BY(table_mu_);  // unpinned frames, least-recent first
  std::unordered_map<PageId, size_t> page_table_ GUARDED_BY(table_mu_);
  BufferPoolStats stats_ GUARDED_BY(table_mu_);
};

/// RAII shared (read) pin on a buffered page: holds the frame's latch
/// shared for its lifetime and unpins on destruction.  Exposes only a
/// const view — there is deliberately no MarkDirty here (a negative-
/// compile test pins that down); use Upgrade() or FetchForWrite to write.
class BufferPool::ReadPageGuard {
 public:
  ReadPageGuard() = default;
  ReadPageGuard(ReadPageGuard&& other) noexcept { *this = std::move(other); }
  ReadPageGuard& operator=(ReadPageGuard&& other) noexcept;
  ReadPageGuard(const ReadPageGuard&) = delete;
  ReadPageGuard& operator=(const ReadPageGuard&) = delete;
  ~ReadPageGuard() { Release(); }

  const Page* operator->() const { return page_; }
  const Page* get() const { return page_; }
  PageId id() const { return id_; }
  bool Valid() const { return page_ != nullptr; }

  /// Drops the shared latch, then the pin.
  void Release();

  /// Trades the shared latch for the exclusive one without giving up the
  /// pin.  NOT atomic: the latch is dropped and re-acquired, so another
  /// writer may run in between — re-read any page state you derived
  /// through the read guard before relying on it.
  [[nodiscard]] WritePageGuard Upgrade() &&;

 private:
  friend class BufferPool;
  ReadPageGuard(BufferPool* pool, size_t frame, PageId id, const Page* page)
      : pool_(pool), frame_(frame), id_(id), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPage;
  const Page* page_ = nullptr;
};

/// RAII exclusive (write) pin on a buffered page: holds the frame's latch
/// exclusively for its lifetime.  Mark the page dirty before letting the
/// guard go if you wrote to it.
class BufferPool::WritePageGuard {
 public:
  WritePageGuard() = default;
  WritePageGuard(WritePageGuard&& other) noexcept { *this = std::move(other); }
  WritePageGuard& operator=(WritePageGuard&& other) noexcept;
  WritePageGuard(const WritePageGuard&) = delete;
  WritePageGuard& operator=(const WritePageGuard&) = delete;
  ~WritePageGuard() { Release(); }

  Page* operator->() { return page_; }
  const Page* operator->() const { return page_; }
  Page* get() { return page_; }
  const Page* get() const { return page_; }
  PageId id() const { return id_; }
  bool Valid() const { return page_ != nullptr; }

  /// Marks the page dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Drops the exclusive latch, then the pin.
  void Release();

 private:
  friend class BufferPool;
  WritePageGuard(BufferPool* pool, size_t frame, PageId id, Page* page)
      : pool_(pool), frame_(frame), id_(id), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPage;
  Page* page_ = nullptr;
};

using ReadPageGuard = BufferPool::ReadPageGuard;
using WritePageGuard = BufferPool::WritePageGuard;

}  // namespace mural
