// BufferPool: fixed set of in-memory frames caching disk pages, with LRU
// replacement, pin counting and dirty tracking — the PostgreSQL-shaped
// buffer layer under every access method in this engine.

#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mural {

/// Buffer-pool level counters (hit ratio matters to the cost experiments).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  void Reset() { *this = BufferPoolStats(); }
};

class BufferPool;

/// RAII pin on a buffered page: unpins on destruction.  Obtain via
/// BufferPool::Fetch / NewPage; mark dirty before letting it go if you
/// wrote to the page.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* operator->() { return page_; }
  const Page* operator->() const { return page_; }
  Page* get() { return page_; }
  const Page* get() const { return page_; }
  PageId id() const { return id_; }
  bool Valid() const { return page_ != nullptr; }

  /// Marks the page dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  Page* page_ = nullptr;
};

/// The buffer pool proper.
class BufferPool {
 public:
  /// `capacity` frames over `disk` (not owned).
  BufferPool(DiskManager* disk, size_t capacity);

  /// Pins page `id`, reading it from disk on a miss.
  [[nodiscard]] StatusOr<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page on disk, pins it, and Init()s it as a slotted
  /// page is left to the caller (index pages use their own layout).
  [[nodiscard]] StatusOr<PageGuard> NewPage();

  /// Writes back all dirty pages (does not evict).
  [[nodiscard]] Status FlushAll();

  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats& stats() { return stats_; }
  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPage;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<Page> page;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id, bool dirty);
  [[nodiscard]] StatusOr<size_t> GetFreeFrame();  // may evict

  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_list_;
  std::list<size_t> lru_;  // unpinned frames, least-recent first
  std::unordered_map<PageId, size_t> page_table_;
  BufferPoolStats stats_;
};

}  // namespace mural
