#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace mural {

namespace {

struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* dirty_writebacks;
  Counter* io_errors;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    PoolMetrics out;
    out.hits = reg.GetCounter("storage.buffer_pool.hits");
    out.misses = reg.GetCounter("storage.buffer_pool.misses");
    out.evictions = reg.GetCounter("storage.buffer_pool.evictions");
    out.dirty_writebacks =
        reg.GetCounter("storage.buffer_pool.dirty_writebacks");
    out.io_errors = reg.GetCounter("storage.io_errors");
    return out;
  }();
  return m;
}

/// Counts a failed disk call in storage.io_errors — exactly once per
/// failing operation, at the buffer pool's disk boundary.
Status CountIoError(Status s) {
  if (!s.ok()) Metrics().io_errors->Increment();
  return s;
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPage;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  if (pool_ != nullptr && page_ != nullptr) {
    const auto it = pool_->page_table_.find(id_);
    MURAL_DCHECK(it != pool_->page_table_.end());
    pool_->frames_[it->second].dirty = true;
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_, /*dirty=*/false);
  }
  pool_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPage;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  MURAL_CHECK(capacity >= 2) << "buffer pool needs at least two frames";
  frames_.resize(capacity);
  free_list_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].page = std::make_unique<Page>();
    free_list_.push_back(capacity - 1 - i);
  }
}

StatusOr<size_t> BufferPool::GetFreeFrame() {
  if (!free_list_.empty()) {
    const size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  const size_t victim = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  MURAL_DCHECK(frame.pin_count == 0);
  if (frame.dirty) {
    MURAL_RETURN_IF_ERROR(CountIoError(disk_->WritePage(
        frame.id, reinterpret_cast<const char*>(frame.page.get()))));
    ++stats_.dirty_writebacks;
    Metrics().dirty_writebacks->Increment();
    frame.dirty = false;
  }
  page_table_.erase(frame.id);
  ++stats_.evictions;
  Metrics().evictions->Increment();
  return victim;
}

StatusOr<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    ++stats_.hits;
    Metrics().hits->Increment();
    return PageGuard(this, id, frame.page.get());
  }
  ++stats_.misses;
  Metrics().misses->Increment();
  MURAL_ASSIGN_OR_RETURN(const size_t idx, GetFreeFrame());
  Frame& frame = frames_[idx];
  MURAL_RETURN_IF_ERROR(CountIoError(
      disk_->ReadPage(id, reinterpret_cast<char*>(frame.page.get()))));
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = idx;
  return PageGuard(this, id, frame.page.get());
}

StatusOr<PageGuard> BufferPool::NewPage() {
  StatusOr<PageId> alloc = disk_->AllocatePage();
  MURAL_RETURN_IF_ERROR(CountIoError(alloc.status()));
  const PageId id = *alloc;
  MURAL_ASSIGN_OR_RETURN(const size_t idx, GetFreeFrame());
  Frame& frame = frames_[idx];
  std::memset(frame.page.get(), 0, kPageSize);
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = true;  // fresh pages must reach disk
  page_table_[id] = idx;
  return PageGuard(this, id, frame.page.get());
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_table_.find(id);
  MURAL_DCHECK(it != page_table_.end());
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  if (dirty) frame.dirty = true;
  MURAL_DCHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), it->second);
    frame.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.id != kInvalidPage && frame.dirty &&
        page_table_.count(frame.id) > 0) {
      MURAL_RETURN_IF_ERROR(CountIoError(disk_->WritePage(
          frame.id, reinterpret_cast<const char*>(frame.page.get()))));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace mural
