#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace mural {

namespace {

struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* dirty_writebacks;
  Counter* io_errors;
  Counter* fetch_nanos;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    PoolMetrics out;
    out.hits = reg.GetCounter("storage.buffer_pool.hits");
    out.misses = reg.GetCounter("storage.buffer_pool.misses");
    out.evictions = reg.GetCounter("storage.buffer_pool.evictions");
    out.dirty_writebacks =
        reg.GetCounter("storage.buffer_pool.dirty_writebacks");
    out.io_errors = reg.GetCounter("storage.io_errors");
    out.fetch_nanos = reg.GetCounter("storage.buffer_pool.fetch_nanos");
    return out;
  }();
  return m;
}

/// Counts a failed disk call in storage.io_errors — exactly once per
/// failing operation, at the buffer pool's disk boundary.
Status CountIoError(Status s) {
  if (!s.ok()) Metrics().io_errors->Increment();
  return s;
}

}  // namespace

// Frame latches are dynamic (one per frame) and cross the function
// boundary inside guards, which Clang's thread-safety analysis cannot
// follow.  These four helpers are the only place latch transitions are
// hidden from the analysis; everything table_mu_-related stays fully
// checked through the scoped locks below.
namespace {

void LatchShared(SharedMutex& latch) NO_THREAD_SAFETY_ANALYSIS {
  latch.ReaderLock();
}
void UnlatchShared(SharedMutex& latch) NO_THREAD_SAFETY_ANALYSIS {
  latch.ReaderUnlock();
}
void LatchExclusive(SharedMutex& latch) NO_THREAD_SAFETY_ANALYSIS {
  latch.Lock();
}
void UnlatchExclusive(SharedMutex& latch) NO_THREAD_SAFETY_ANALYSIS {
  latch.Unlock();
}

}  // namespace

// ---------------------------------------------------------------------------
// ReadPageGuard

BufferPool::ReadPageGuard& BufferPool::ReadPageGuard::operator=(
    ReadPageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPage;
  }
  return *this;
}

void BufferPool::ReadPageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    UnlatchShared(pool_->frames_[frame_].latch);
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPage;
}

BufferPool::WritePageGuard BufferPool::ReadPageGuard::Upgrade() && {
  MURAL_DCHECK(Valid());
  if (!Valid()) return WritePageGuard();
  BufferPool* pool = pool_;
  const size_t frame = frame_;
  const PageId id = id_;
  Frame& f = pool->frames_[frame];
  // Swap latch modes while keeping the pin: the pin alone keeps the frame
  // resident, so the page image cannot be evicted in the unlatched window
  // — but another writer may modify it (see the header comment).
  UnlatchShared(f.latch);
  LatchExclusive(f.latch);
  pool_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPage;
  return WritePageGuard(pool, frame, id, f.page.get());
}

// ---------------------------------------------------------------------------
// WritePageGuard

BufferPool::WritePageGuard& BufferPool::WritePageGuard::operator=(
    WritePageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPage;
  }
  return *this;
}

void BufferPool::WritePageGuard::MarkDirty() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->frames_[frame_].dirty.store(true);
  }
}

void BufferPool::WritePageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    UnlatchExclusive(pool_->frames_[frame_].latch);
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPage;
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  MURAL_CHECK(capacity >= 2) << "buffer pool needs at least two frames";
  frames_ = std::make_unique<Frame[]>(capacity);
  WriterMutexLock lock(table_mu_);
  free_list_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].page = std::make_unique<Page>();
    free_list_.push_back(capacity - 1 - i);
  }
}

StatusOr<size_t> BufferPool::AcquireFreeFrame() {
  for (;;) {
    size_t victim = 0;
    PageId victim_id = kInvalidPage;
    {
      WriterMutexLock lock(table_mu_);
      if (!free_list_.empty()) {
        const size_t idx = free_list_.back();
        free_list_.pop_back();
        return idx;
      }
      if (lru_.empty()) {
        return Status::ResourceExhausted("all buffer frames are pinned");
      }
      victim = lru_.front();
      lru_.pop_front();
      Frame& f = frames_[victim];
      f.in_lru = false;
      MURAL_DCHECK(f.pin_count == 0);
      if (!f.dirty.load()) {
        page_table_.erase(f.id);
        f.id = kInvalidPage;
        ++stats_.evictions;
        Metrics().evictions->Increment();
        return victim;
      }
      // Dirty victim: pin it so it stays resident and unreachable to
      // other evictors, then write it back outside the table lock.
      ++f.pin_count;
      victim_id = f.id;
    }
    Frame& f = frames_[victim];
    LatchExclusive(f.latch);
    const Status s = CountIoError(disk_->WritePage(
        victim_id, reinterpret_cast<const char*>(f.page.get())));
    if (s.ok()) f.dirty.store(false);
    UnlatchExclusive(f.latch);
    bool claimed = false;
    {
      WriterMutexLock lock(table_mu_);
      --f.pin_count;
      if (!s.ok()) {
        // Put the victim back; the caller sees the write-back error.
        if (f.pin_count == 0) {
          f.lru_pos = lru_.insert(lru_.begin(), victim);
          f.in_lru = true;
        }
      } else {
        ++stats_.dirty_writebacks;
        if (f.pin_count == 0 && !f.dirty.load()) {
          page_table_.erase(f.id);
          f.id = kInvalidPage;
          ++stats_.evictions;
          claimed = true;
        } else if (f.pin_count == 0) {
          // Re-dirtied while we wrote: back to the cold end, try again.
          f.lru_pos = lru_.insert(lru_.begin(), victim);
          f.in_lru = true;
        }
        // pin_count > 0: someone re-fetched the page mid-write-back;
        // their unpin will re-insert it into the LRU.
      }
    }
    if (!s.ok()) return s;
    Metrics().dirty_writebacks->Increment();
    if (claimed) {
      Metrics().evictions->Increment();
      return victim;
    }
  }
}

StatusOr<BufferPool::PinResult> BufferPool::PinPage(PageId id) {
  for (;;) {
    {
      WriterMutexLock lock(table_mu_);
      auto it = page_table_.find(id);
      if (it != page_table_.end()) {
        Frame& f = frames_[it->second];
        if (f.pin_count == 0 && f.in_lru) {
          lru_.erase(f.lru_pos);
          f.in_lru = false;
        }
        ++f.pin_count;
        ++stats_.hits;
        Metrics().hits->Increment();
        return PinResult{it->second, /*loader=*/false};
      }
    }
    MURAL_ASSIGN_OR_RETURN(const size_t idx, AcquireFreeFrame());
    Frame& f = frames_[idx];
    // Take the exclusive latch *before* publishing the table entry so no
    // fetcher can latch the frame ahead of the disk read.  The frame is
    // floating (owned by this thread), so the latch is uncontended.
    LatchExclusive(f.latch);
    {
      WriterMutexLock lock(table_mu_);
      auto it = page_table_.find(id);
      if (it != page_table_.end()) {
        // Another thread installed the page while we acquired a frame;
        // give ours back and pin theirs on the next loop iteration.
        UnlatchExclusive(f.latch);
        f.id = kInvalidPage;
        free_list_.push_back(idx);
        continue;
      }
      f.id = id;
      f.pin_count = 1;
      f.dirty.store(false);
      f.load_failed.store(false);
      page_table_[id] = idx;
      ++stats_.misses;
    }
    Metrics().misses->Increment();
    return PinResult{idx, /*loader=*/true};
  }
}

void BufferPool::Unpin(size_t idx) {
  WriterMutexLock lock(table_mu_);
  Frame& f = frames_[idx];
  MURAL_DCHECK(f.pin_count > 0);
  if (--f.pin_count > 0) return;
  if (f.load_failed.load()) {
    // Last pinner of a frame whose disk read failed: retire the entry so
    // a later Fetch retries the load from scratch.
    page_table_.erase(f.id);
    f.id = kInvalidPage;
    f.load_failed.store(false);
    f.dirty.store(false);
    free_list_.push_back(idx);
    return;
  }
  f.lru_pos = lru_.insert(lru_.end(), idx);
  f.in_lru = true;
}

StatusOr<BufferPool::ReadPageGuard> BufferPool::Fetch(PageId id) {
  Timer timer;
  StatusOr<ReadPageGuard> guard = FetchImpl(id);
  Metrics().fetch_nanos->Add(timer.ElapsedNanos());
  return guard;
}

StatusOr<BufferPool::WritePageGuard> BufferPool::FetchForWrite(PageId id) {
  Timer timer;
  StatusOr<WritePageGuard> guard = FetchForWriteImpl(id);
  Metrics().fetch_nanos->Add(timer.ElapsedNanos());
  return guard;
}

StatusOr<BufferPool::ReadPageGuard> BufferPool::FetchImpl(PageId id) {
  MURAL_ASSIGN_OR_RETURN(const PinResult pin, PinPage(id));
  Frame& f = frames_[pin.idx];
  if (pin.loader) {
    const Status s = CountIoError(
        disk_->ReadPage(id, reinterpret_cast<char*>(f.page.get())));
    if (!s.ok()) {
      f.load_failed.store(true);
      UnlatchExclusive(f.latch);
      Unpin(pin.idx);
      return s;
    }
    // Downgrade: drop the exclusive latch and re-acquire shared.  A
    // writer may slip in between, which only means the guard observes a
    // newer image — the pin keeps the frame itself resident.
    UnlatchExclusive(f.latch);
  }
  LatchShared(f.latch);
  if (f.load_failed.load()) {
    UnlatchShared(f.latch);
    Unpin(pin.idx);
    return Status::IOError("page " + std::to_string(id) +
                           ": concurrent load failed");
  }
  return ReadPageGuard(this, pin.idx, id, f.page.get());
}

StatusOr<BufferPool::WritePageGuard> BufferPool::FetchForWriteImpl(PageId id) {
  MURAL_ASSIGN_OR_RETURN(const PinResult pin, PinPage(id));
  Frame& f = frames_[pin.idx];
  if (pin.loader) {
    const Status s = CountIoError(
        disk_->ReadPage(id, reinterpret_cast<char*>(f.page.get())));
    if (!s.ok()) {
      f.load_failed.store(true);
      UnlatchExclusive(f.latch);
      Unpin(pin.idx);
      return s;
    }
    // Loader already holds the exclusive latch — keep it for the guard.
    return WritePageGuard(this, pin.idx, id, f.page.get());
  }
  LatchExclusive(f.latch);
  if (f.load_failed.load()) {
    UnlatchExclusive(f.latch);
    Unpin(pin.idx);
    return Status::IOError("page " + std::to_string(id) +
                           ": concurrent load failed");
  }
  return WritePageGuard(this, pin.idx, id, f.page.get());
}

StatusOr<BufferPool::WritePageGuard> BufferPool::NewPage() {
  StatusOr<PageId> alloc = disk_->AllocatePage();
  MURAL_RETURN_IF_ERROR(CountIoError(alloc.status()));
  const PageId id = *alloc;
  MURAL_ASSIGN_OR_RETURN(const size_t idx, AcquireFreeFrame());
  Frame& f = frames_[idx];
  LatchExclusive(f.latch);
  std::memset(f.page.get(), 0, kPageSize);
  {
    WriterMutexLock lock(table_mu_);
    f.id = id;
    f.pin_count = 1;
    f.dirty.store(true);  // fresh pages must reach disk
    f.load_failed.store(false);
    page_table_[id] = idx;
  }
  return WritePageGuard(this, idx, id, f.page.get());
}

Status BufferPool::FlushAll() {
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& f = frames_[i];
    PageId id = kInvalidPage;
    {
      WriterMutexLock lock(table_mu_);
      if (f.id == kInvalidPage || !f.dirty.load()) continue;
      id = f.id;
      // Pin so the frame cannot be evicted or repurposed mid-flush.
      if (f.pin_count == 0 && f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      ++f.pin_count;
    }
    LatchExclusive(f.latch);
    const Status s = CountIoError(disk_->WritePage(
        id, reinterpret_cast<const char*>(f.page.get())));
    if (s.ok()) f.dirty.store(false);
    UnlatchExclusive(f.latch);
    Unpin(i);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  ReaderMutexLock lock(table_mu_);
  return stats_;
}

}  // namespace mural
