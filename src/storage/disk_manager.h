// DiskManager: page-granular storage backend with I/O accounting.
//
// Two backends share one interface:
//   - FileDiskManager: a real file on disk (pread/pwrite per page);
//   - MemoryDiskManager: an in-RAM vector of frames.
//
// Both count logical page reads/writes.  The optimizer's cost model is
// expressed in page I/Os (Table 3 of the paper), and the experiments verify
// predictions against these counters rather than against wall-clock disk
// latency, which on a modern NVMe/page-cached box would be pure noise.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace mural {

/// Counters shared by all backends.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t page_allocs = 0;

  void Reset() { *this = IoStats(); }
};

/// Abstract page store.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Appends a fresh zeroed page; returns its id.
  [[nodiscard]] virtual StatusOr<PageId> AllocatePage() = 0;

  /// Reads page `id` into `out` (exactly kPageSize bytes).
  [[nodiscard]] virtual Status ReadPage(PageId id, char* out) = 0;

  /// Writes page `id` from `data` (exactly kPageSize bytes).
  [[nodiscard]] virtual Status WritePage(PageId id, const char* data) = 0;

  /// Number of allocated pages.
  virtual uint32_t NumPages() const = 0;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

/// Pages held in RAM; used by tests and by benchmark runs where only the
/// logical I/O counts matter.
class MemoryDiskManager : public DiskManager {
 public:
  [[nodiscard]] StatusOr<PageId> AllocatePage() override;
  [[nodiscard]] Status ReadPage(PageId id, char* out) override;
  [[nodiscard]] Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override {
    return static_cast<uint32_t>(frames_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> frames_;
};

/// Pages in a real file, one pread/pwrite per page access.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the backing file.
  [[nodiscard]] static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  [[nodiscard]] StatusOr<PageId> AllocatePage() override;
  [[nodiscard]] Status ReadPage(PageId id, char* out) override;
  [[nodiscard]] Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override { return num_pages_; }

 private:
  FileDiskManager(int fd, uint32_t num_pages, std::string path)
      : fd_(fd), num_pages_(num_pages), path_(std::move(path)) {}

  int fd_;
  uint32_t num_pages_;
  std::string path_;
};

}  // namespace mural
