// DiskManager: page-granular storage backend with I/O accounting.
//
// Two backends share one interface:
//   - FileDiskManager: a real file on disk (pread/pwrite per page);
//   - MemoryDiskManager: an in-RAM vector of frames.
//
// Both count logical page reads/writes.  The optimizer's cost model is
// expressed in page I/Os (Table 3 of the paper), and the experiments verify
// predictions against these counters rather than against wall-clock disk
// latency, which on a modern NVMe/page-cached box would be pure noise.
//
// Thread safety: backends synchronize their own metadata (frame vector,
// page count, stats) with an internal mutex, so a concurrent BufferPool
// may issue reads/writes/allocs from many worker threads.  The page
// *payload* transfer itself runs outside that mutex; the buffer pool's
// per-frame latches guarantee the same page is never read and written
// concurrently.  Read stats() only from quiesced code (tests, benches).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace mural {

/// Counters shared by all backends (updated under each backend's internal
/// mutex; read them while no worker threads are running).
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t page_allocs = 0;

  void Reset() { *this = IoStats(); }
};

/// Abstract page store.  The fsync family of libc calls has no in-repo
/// declaration to mark, so it rides on the explicit-list form here:
// lint: blocking(pread, pwrite, fsync, fdatasync)
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Appends a fresh zeroed page; returns its id.
  [[nodiscard]] virtual StatusOr<PageId> AllocatePage() = 0;

  /// Reads page `id` into `out` (exactly kPageSize bytes).
  [[nodiscard]] virtual Status ReadPage(PageId id, char* out) = 0;  // lint: blocking

  /// Writes page `id` from `data` (exactly kPageSize bytes).
  [[nodiscard]] virtual Status WritePage(PageId id, const char* data) = 0;  // lint: blocking

  /// Number of allocated pages.
  virtual uint32_t NumPages() const = 0;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

/// Pages held in RAM; used by tests and by benchmark runs where only the
/// logical I/O counts matter.
class MemoryDiskManager : public DiskManager {
 public:
  [[nodiscard]] StatusOr<PageId> AllocatePage() override;
  [[nodiscard]] Status ReadPage(PageId id, char* out) override;
  [[nodiscard]] Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override;

 private:
  mutable Mutex mu_;
  // The vector may reallocate under mu_, but each 8 KiB block is a stable
  // heap allocation, so a pointer looked up under the lock stays valid
  // for the copy that runs outside it.
  std::vector<std::unique_ptr<char[]>> frames_ GUARDED_BY(mu_);
};

/// Pages in a real file, one pread/pwrite per page access.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the backing file.
  [[nodiscard]] static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  [[nodiscard]] StatusOr<PageId> AllocatePage() override;
  [[nodiscard]] Status ReadPage(PageId id, char* out) override;
  [[nodiscard]] Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override;

 private:
  FileDiskManager(int fd, uint32_t num_pages, std::string path)
      : fd_(fd), num_pages_(num_pages), path_(std::move(path)) {}

  mutable Mutex mu_;
  const int fd_;  // lint: unguarded(immutable after construction; pread/pwrite are per-call atomic)
  uint32_t num_pages_ GUARDED_BY(mu_);
  const std::string path_;  // lint: unguarded(immutable after construction)
};

}  // namespace mural
