// Slotted pages: the on-disk unit of storage.
//
// Classic slotted-page layout in an 8 KiB frame:
//
//   [ header | slot array --> ...free... <-- record data ]
//
// Slots grow from the front, record bytes from the back.  Deleting a record
// tombstones its slot (offset 0); slot ids therefore stay stable, which the
// heap-file RIDs rely on.

#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/slice.h"
#include "common/status.h"

namespace mural {

/// Page number within a storage file.
using PageId = uint32_t;
constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Size of every page, matching PostgreSQL's default block size.
constexpr size_t kPageSize = 8192;

/// Slot index within a page.
using SlotId = uint16_t;

/// A slotted page.  The object *is* the 8 KiB buffer; it is always
/// allocated inside a buffer-pool frame and reinterpret_cast from the raw
/// frame bytes, so it must stay trivially copyable with no virtuals.
///
/// The alignas keeps header()/slot_array() aligned for their uint16/uint32
/// members no matter where a frame lands, so the in-page casts are
/// UBSan-clean by construction (record payloads are still accessed only
/// via memcpy / the Decoder in common/coding.h).
class alignas(alignof(uint64_t)) Page {
 public:
  /// Formats a zeroed frame as an empty slotted page.
  void Init() {
    header()->num_slots = 0;
    header()->data_start = kPageSize;
    header()->next_page = kInvalidPage;
    header()->flags = 0;
    header()->level = 0;
  }

  /// Erases all slots and records (used by index nodes that rewrite
  /// themselves on split); preserves flags/level/next_page.
  void Clear() {
    header()->num_slots = 0;
    header()->data_start = kPageSize;
  }

  /// Number of slots ever allocated (including tombstones).
  uint16_t NumSlots() const { return header()->num_slots; }

  /// Free bytes available for one more record (accounts for its slot).
  size_t FreeSpace() const {
    const size_t slots_end =
        sizeof(PageHeader) + header()->num_slots * sizeof(Slot);
    const size_t gap = header()->data_start - slots_end;
    return gap >= sizeof(Slot) ? gap - sizeof(Slot) : 0;
  }

  /// Inserts a record; fails with ResourceExhausted when it does not fit.
  [[nodiscard]] StatusOr<SlotId> Insert(Slice record);

  /// Reads the record in `slot`; NotFound for tombstoned/unknown slots.
  [[nodiscard]] StatusOr<Slice> Get(SlotId slot) const;

  /// Tombstones `slot`.  Space is not reclaimed (no compaction), matching
  /// the simple heap semantics the experiments need.
  [[nodiscard]] Status Delete(SlotId slot);

  /// Overwrites a record in place if the new value is not longer than the
  /// old; otherwise fails with NotSupported (caller re-inserts).
  [[nodiscard]] Status Update(SlotId slot, Slice record);

  /// Singly-linked list of pages forming a heap file (also used as the
  /// leaf chain by the B+Tree).
  PageId next_page() const { return header()->next_page; }
  void set_next_page(PageId next) { header()->next_page = next; }

  /// Free-use header fields for access methods (B+Tree/GiST store the node
  /// level here; 0 = leaf).
  uint16_t level() const { return header()->level; }
  void set_level(uint16_t level) { header()->level = level; }
  uint16_t flags() const { return header()->flags; }
  void set_flags(uint16_t flags) { header()->flags = flags; }

 private:
  struct PageHeader {
    uint16_t num_slots;
    uint16_t data_start;  // offset of the lowest record byte
    PageId next_page;
    uint16_t flags;
    uint16_t level;
  };
  struct Slot {
    uint16_t offset;  // 0 = tombstone
    uint16_t length;
  };

  PageHeader* header() { return reinterpret_cast<PageHeader*>(bytes_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(bytes_);
  }
  Slot* slot_array() {
    return reinterpret_cast<Slot*>(bytes_ + sizeof(PageHeader));
  }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(bytes_ + sizeof(PageHeader));
  }

  char bytes_[kPageSize];
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly one frame");
static_assert(std::is_trivially_copyable_v<Page>,
              "Page is reinterpret_cast from raw frame bytes");

/// Record identifier: (page, slot) — stable for the record's lifetime.
struct Rid {
  PageId page = kInvalidPage;
  SlotId slot = 0;

  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
  bool Valid() const { return page != kInvalidPage; }
};

}  // namespace mural
