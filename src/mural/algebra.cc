#include "mural/algebra.h"

#include "common/logging.h"

namespace mural {
namespace algebra {

bool CanCommute(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalKind::kPsiJoin:
    case LogicalKind::kEquiJoin:
    case LogicalKind::kJoin:
    case LogicalKind::kUnionAll:
      return true;
    case LogicalKind::kOmegaJoin:
      return false;  // Table 1: Omega does not commute
    default:
      return false;
  }
}

StatusOr<LogicalPtr> Commute(const LogicalPtr& node,
                             const Schema& left_schema,
                             const Schema& right_schema) {
  if (node == nullptr) return Status::InvalidArgument("null plan");
  if (!CanCommute(*node)) {
    return Status::NotSupported(
        std::string(LogicalKindToString(node->kind)) +
        " does not commute (Table 1)");
  }
  LogicalPtr swapped = CloneLogical(node);
  std::swap(swapped->left, swapped->right);
  std::swap(swapped->left_col, swapped->right_col);
  if (node->kind == LogicalKind::kUnionAll) return swapped;

  // The swapped join emits columns as (right, left); restore (left, right).
  const size_t lw = left_schema.NumColumns();
  const size_t rw = right_schema.NumColumns();
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t i = 0; i < lw; ++i) {
    exprs.push_back(Col(rw + i, left_schema.column(i).name));
    names.push_back(left_schema.column(i).name);
  }
  for (size_t i = 0; i < rw; ++i) {
    exprs.push_back(Col(i, right_schema.column(i).name));
    names.push_back(right_schema.column(i).name);
  }
  return LProject(swapped, std::move(exprs), std::move(names));
}

StatusOr<LogicalPtr> DistributeOverUnion(const LogicalPtr& node) {
  if (node == nullptr) return Status::InvalidArgument("null plan");
  if (node->kind != LogicalKind::kPsiJoin &&
      node->kind != LogicalKind::kOmegaJoin &&
      node->kind != LogicalKind::kEquiJoin) {
    return Status::NotSupported("distribution applies to join operators");
  }
  if (node->left == nullptr || node->left->kind != LogicalKind::kUnionAll) {
    return Status::NotSupported(
        "left input is not a UnionAll; nothing to distribute over");
  }
  LogicalPtr branch_a = CloneLogical(node);
  branch_a->left = CloneLogical(node->left->left);
  LogicalPtr branch_b = CloneLogical(node);
  branch_b->left = CloneLogical(node->left->right);
  return LUnionAll(branch_a, branch_b);
}

StatusOr<LogicalPtr> PushFilterIntoJoin(const LogicalPtr& filter_node,
                                        size_t left_width) {
  if (filter_node == nullptr || filter_node->kind != LogicalKind::kFilter) {
    return Status::InvalidArgument("expected a Filter node");
  }
  const LogicalPtr& join = filter_node->left;
  if (join == nullptr ||
      (join->kind != LogicalKind::kPsiJoin &&
       join->kind != LogicalKind::kOmegaJoin &&
       join->kind != LogicalKind::kEquiJoin)) {
    return Status::NotSupported("filter is not above a multilingual join");
  }
  std::set<size_t> columns;
  filter_node->predicate->CollectColumns(&columns);
  const bool all_left =
      columns.empty() ||
      *columns.rbegin() < left_width;  // every referenced column < width
  if (!all_left) {
    return Status::NotSupported(
        "predicate reads right-side columns; pushdown is illegal");
  }
  LogicalPtr pushed = CloneLogical(join);
  pushed->left = LFilter(CloneLogical(join->left), filter_node->predicate);
  return pushed;
}

std::string CompositionTable() {
  return
      "Oper   Commutes  Associates  Distributes over U\n"
      "Psi    Yes       Yes         Yes\n"
      "Omega  No        Yes         Yes\n";
}

}  // namespace algebra

MuralBuilder MuralBuilder::Scan(std::string table, const Schema& schema) {
  return MuralBuilder(LScan(std::move(table)), schema);
}

MuralBuilder& MuralBuilder::Select(ExprPtr predicate) {
  // Push into a bare scan when possible (the common sigma-over-scan case).
  if (plan_->kind == LogicalKind::kScan && plan_->predicate == nullptr) {
    plan_->predicate = std::move(predicate);
  } else {
    plan_ = LFilter(plan_, std::move(predicate));
  }
  return *this;
}

MuralBuilder& MuralBuilder::PsiSelect(const std::string& column,
                                      UniText constant,
                                      std::set<LangId> langs,
                                      int threshold) {
  StatusOr<size_t> idx = ColIndex(column);
  MURAL_CHECK(idx.ok()) << "no such column: " << column;
  ExprPtr pred = LexEq(Col(*idx, column), Lit(Value::Uni(constant)),
                       threshold);
  if (!langs.empty()) {
    pred = And(pred, LangIn(Col(*idx, column), std::move(langs)));
  }
  return Select(std::move(pred));
}

MuralBuilder& MuralBuilder::OmegaSelect(const std::string& column,
                                        UniText concept_value,
                                        std::set<LangId> langs) {
  StatusOr<size_t> idx = ColIndex(column);
  MURAL_CHECK(idx.ok()) << "no such column: " << column;
  ExprPtr pred = SemEq(Col(*idx, column), Lit(Value::Uni(concept_value)));
  if (!langs.empty()) {
    pred = And(pred, LangIn(Col(*idx, column), std::move(langs)));
  }
  return Select(std::move(pred));
}

MuralBuilder& MuralBuilder::PsiJoin(MuralBuilder other,
                                    const std::string& left_column,
                                    const std::string& right_column,
                                    int threshold, bool tag_distance) {
  StatusOr<size_t> lcol = ColIndex(left_column);
  StatusOr<size_t> rcol = other.ColIndex(right_column);
  MURAL_CHECK(lcol.ok() && rcol.ok());
  plan_ = LPsiJoin(plan_, other.plan_, *lcol, *rcol, threshold,
                   tag_distance);
  Schema joined = Schema::Concat(schema_, other.schema_);
  if (tag_distance) {
    std::vector<Column> cols = joined.columns();
    cols.emplace_back("psi_distance", TypeId::kInt32);
    joined = Schema(std::move(cols));
  }
  schema_ = std::move(joined);
  return *this;
}

MuralBuilder& MuralBuilder::OmegaJoin(MuralBuilder other,
                                      const std::string& left_column,
                                      const std::string& right_column) {
  StatusOr<size_t> lcol = ColIndex(left_column);
  StatusOr<size_t> rcol = other.ColIndex(right_column);
  MURAL_CHECK(lcol.ok() && rcol.ok());
  plan_ = LOmegaJoin(plan_, other.plan_, *lcol, *rcol);
  schema_ = Schema::Concat(schema_, other.schema_);
  return *this;
}

MuralBuilder& MuralBuilder::Join(MuralBuilder other,
                                 const std::string& left_column,
                                 const std::string& right_column) {
  StatusOr<size_t> lcol = ColIndex(left_column);
  StatusOr<size_t> rcol = other.ColIndex(right_column);
  MURAL_CHECK(lcol.ok() && rcol.ok());
  plan_ = LEquiJoin(plan_, other.plan_, *lcol, *rcol);
  schema_ = Schema::Concat(schema_, other.schema_);
  return *this;
}

MuralBuilder& MuralBuilder::Project(const std::vector<std::string>& columns) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    StatusOr<size_t> idx = ColIndex(name);
    MURAL_CHECK(idx.ok()) << "no such column: " << name;
    exprs.push_back(Col(*idx, name));
    names.push_back(name);
    cols.push_back(schema_.column(*idx));
  }
  plan_ = LProject(plan_, std::move(exprs), std::move(names));
  schema_ = Schema(std::move(cols));
  return *this;
}

MuralBuilder& MuralBuilder::Aggregate(std::vector<size_t> group_by,
                                      std::vector<AggSpec> aggs) {
  std::vector<Column> cols;
  for (size_t g : group_by) cols.push_back(schema_.column(g));
  for (const AggSpec& a : aggs) {
    cols.emplace_back(a.output_name, TypeId::kInt64);
  }
  plan_ = LAggregate(plan_, std::move(group_by), std::move(aggs));
  schema_ = Schema(std::move(cols));
  return *this;
}

MuralBuilder& MuralBuilder::UnionAll(MuralBuilder other) {
  plan_ = LUnionAll(plan_, other.plan_);
  return *this;
}

StatusOr<size_t> MuralBuilder::ColIndex(const std::string& name) const {
  return schema_.Resolve(name);
}

}  // namespace mural
