// The Mural algebra layer (paper §3): operator composition rules and a
// fluent plan builder.
//
// Table 1 of the paper fixes the algebraic behaviour of the multilingual
// operators:
//
//   Operator | Commutes | Associates | Distributes over U
//   Psi      |   Yes    |    Yes     |        Yes
//   Omega    |   No     |    Yes     |        Yes
//
// This module exposes those rules both as *predicates* (can this rewrite
// be applied?) and as *rewrites* on logical plans, used by the optimizer
// to generate alternative plans and by the property-test suite to verify
// that every legal rewrite preserves query results (and that the illegal
// one — commuting Omega — genuinely changes them).

#pragma once

#include "optimizer/logical_plan.h"

namespace mural {
namespace algebra {

/// Can the operator rooted at `node` be commuted (operands swapped)?
/// True for Psi and EquiJoin, false for Omega (Table 1).
bool CanCommute(const LogicalNode& node);

/// Commutes a Psi/equi join: swaps children and join columns, then wraps
/// the result in a projection restoring the original column order, so the
/// rewritten plan is drop-in result-equivalent.  Fails on Omega.
StatusOr<LogicalPtr> Commute(const LogicalPtr& node,
                             const Schema& left_schema,
                             const Schema& right_schema);

/// Distributes a multilingual join over a UnionAll on its left input:
///   Op(A U B, C)  =>  Op(A, C) U Op(B, C)
/// Legal for both Psi and Omega (Table 1).  Fails if the left child is
/// not a UnionAll.
StatusOr<LogicalPtr> DistributeOverUnion(const LogicalPtr& node);

/// Pushes a filter below a Psi/Omega join when the predicate only reads
/// columns of one side:  sigma_p(Op(A, B)) => Op(sigma_p(A), B).
/// `left_width` is the number of columns the left child produces.
/// Returns NotSupported when the predicate straddles both sides.
StatusOr<LogicalPtr> PushFilterIntoJoin(const LogicalPtr& filter_node,
                                        size_t left_width);

/// Renders Table 1 (used by docs and the rules bench).
std::string CompositionTable();

}  // namespace algebra

/// Fluent builder over the Mural algebra, the programmatic counterpart of
/// the SQL surface:
///
///   auto plan = MuralBuilder::Scan("Book")
///                   .PsiSelect("Author", UniText("Nehru", lang::kEnglish),
///                              {lang::kEnglish, lang::kHindi}, 2)
///                   .Project({"Author", "Title"})
///                   .Build();
class MuralBuilder {
 public:
  /// Starts from a base table.  The catalog is consulted lazily at Build
  /// time by the planner; the builder itself only needs column names.
  static MuralBuilder Scan(std::string table, const Schema& schema);

  /// sigma with an arbitrary predicate built against *this* plan's
  /// current output columns (resolve with ColIndex).
  MuralBuilder& Select(ExprPtr predicate);

  /// Psi selection: column ~ constant under `threshold` (-1 = session),
  /// optionally restricted to `langs`.
  MuralBuilder& PsiSelect(const std::string& column, UniText constant,
                          std::set<LangId> langs = {}, int threshold = -1);

  /// Omega selection: column is-a `concept`.
  MuralBuilder& OmegaSelect(const std::string& column, UniText concept_value,
                            std::set<LangId> langs = {});

  /// Psi join with another builder's plan.
  MuralBuilder& PsiJoin(MuralBuilder other, const std::string& left_column,
                        const std::string& right_column, int threshold = -1,
                        bool tag_distance = false);

  /// Omega join (this = probe/LHS side, per the operator's semantics).
  MuralBuilder& OmegaJoin(MuralBuilder other, const std::string& left_column,
                          const std::string& right_column);

  /// Equi join.
  MuralBuilder& Join(MuralBuilder other, const std::string& left_column,
                     const std::string& right_column);

  /// pi onto named columns.
  MuralBuilder& Project(const std::vector<std::string>& columns);

  /// gamma: global aggregates only need the specs.
  MuralBuilder& Aggregate(std::vector<size_t> group_by,
                          std::vector<AggSpec> aggs);

  /// Bag union with a compatible plan.
  MuralBuilder& UnionAll(MuralBuilder other);

  /// Index of a named column in the current output.
  StatusOr<size_t> ColIndex(const std::string& name) const;

  const Schema& schema() const { return schema_; }
  LogicalPtr Build() const { return plan_; }

 private:
  MuralBuilder(LogicalPtr plan, Schema schema)
      : plan_(std::move(plan)), schema_(std::move(schema)) {}

  LogicalPtr plan_;
  Schema schema_;
};

}  // namespace mural
