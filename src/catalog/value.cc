#include "catalog/value.h"

#include <cmath>

namespace mural {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt32:
      return "INT";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kFloat64:
      return "DOUBLE";
    case TypeId::kText:
      return "TEXT";
    case TypeId::kUniText:
      return "UNITEXT";
  }
  return "?";
}

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kFloat64;
}

bool IsTextual(TypeId t) {
  return t == TypeId::kText || t == TypeId::kUniText;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

double Value::AsDouble() const {
  switch (type()) {
    case TypeId::kBool:
      return bool_val() ? 1.0 : 0.0;
    case TypeId::kInt32:
      return static_cast<double>(int32());
    case TypeId::kInt64:
      return static_cast<double>(int64());
    case TypeId::kFloat64:
      return float64();
    default:
      MURAL_CHECK(false) << "AsDouble on non-numeric "
                         << TypeIdToString(type());
      return 0.0;
  }
}

int64_t Value::AsInt64() const {
  switch (type()) {
    case TypeId::kBool:
      return bool_val() ? 1 : 0;
    case TypeId::kInt32:
      return int32();
    case TypeId::kInt64:
      return int64();
    default:
      MURAL_CHECK(false) << "AsInt64 on non-integer "
                         << TypeIdToString(type());
      return 0;
  }
}

int Value::Compare(const Value& other) const {
  const TypeId ta = type(), tb = other.type();
  if (ta == TypeId::kNull || tb == TypeId::kNull) {
    if (ta == tb) return 0;
    return ta == TypeId::kNull ? -1 : 1;
  }
  if (IsNumeric(ta) && IsNumeric(tb)) {
    return Sign(AsDouble() - other.AsDouble());
  }
  if (IsTextual(ta) && IsTextual(tb)) {
    const std::string& a = ta == TypeId::kText ? text() : unitext().text();
    const std::string& b =
        tb == TypeId::kText ? other.text() : other.unitext().text();
    const int c = a.compare(b);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Heterogeneous, incomparable kinds: order by type tag for stability.
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64: {
      // Hash integers through their double image so 1 == 1.0 hash-agree
      // with Compare()==0 across numeric kinds.
      const double d = AsDouble();
      return Hash64(&d, sizeof(d));
    }
    case TypeId::kFloat64: {
      double d = float64();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return Hash64(&d, sizeof(d));
    }
    case TypeId::kText:
      return Hash64(text());
    case TypeId::kUniText:
      // Consistent with Compare: text component only.
      return Hash64(unitext().text());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_val() ? "true" : "false";
    case TypeId::kInt32:
      return std::to_string(int32());
    case TypeId::kInt64:
      return std::to_string(int64());
    case TypeId::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", float64());
      return buf;
    }
    case TypeId::kText:
      return text();
    case TypeId::kUniText:
      return unitext().ToString();
  }
  return "?";
}

}  // namespace mural
