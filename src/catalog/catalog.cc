#include "catalog/catalog.h"

#include <algorithm>

#include "catalog/tuple_codec.h"
#include "common/string_util.h"

namespace mural {

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBTree:
      return "btree";
    case IndexKind::kMTree:
      return "mtree";
    case IndexKind::kMdi:
      return "mdi";
  }
  return "?";
}

std::string Catalog::Key(const std::string& name) {
  std::string k = name;
  for (char& c : k) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return k;
}

StatusOr<TableInfo*> Catalog::LookupTableLocked(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

StatusOr<TableInfo*> Catalog::CreateTable(const std::string& name,
                                          Schema schema) {
  WriterMutexLock lock(mu_);
  const std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  if (schema.NumColumns() == 0) {
    return Status::InvalidArgument("table needs at least one column");
  }
  // Heap creation reaches into the buffer pool while mu_ is held — this
  // is the declared catalog-before-buffer-table lock order.
  MURAL_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_));
  auto info = std::make_unique<TableInfo>();
  info->oid = next_oid_++;
  info->name = name;
  info->schema = std::move(schema);
  info->heap = std::make_unique<HeapFile>(std::move(heap));
  TableInfo* out = info.get();
  tables_[key] = std::move(info);
  return out;
}

StatusOr<TableInfo*> Catalog::GetTable(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  return LookupTableLocked(name);
}

Status Catalog::DropTable(const std::string& name) {
  WriterMutexLock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  // Drop dependent indexes first.
  std::vector<std::string> doomed;
  for (const auto& [iname, iinfo] : indexes_) {
    if (Key(iinfo->table) == Key(name)) doomed.push_back(iname);
  }
  for (const std::string& iname : doomed) indexes_.erase(iname);
  tables_.erase(it);
  return Status::OK();
}

StatusOr<IndexInfo*> Catalog::CreateIndex(
    const std::string& index_name, const std::string& table,
    const std::string& column, bool on_phonemes, IndexKind kind,
    std::unique_ptr<AccessMethod> index) {
  WriterMutexLock lock(mu_);
  const std::string key = Key(index_name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + index_name);
  }
  MURAL_ASSIGN_OR_RETURN(TableInfo * tinfo, LookupTableLocked(table));
  if (tinfo->schema.IndexOf(column) < 0) {
    return Status::NotFound("no such column: " + table + "." + column);
  }
  if (index == nullptr) {
    return Status::InvalidArgument("index implementation is null");
  }
  auto info = std::make_unique<IndexInfo>();
  info->oid = next_oid_++;
  info->name = index_name;
  info->table = table;
  info->column = column;
  info->on_phonemes = on_phonemes;
  info->kind = kind;
  info->index = std::move(index);
  IndexInfo* out = info.get();
  indexes_[key] = std::move(info);
  tinfo->indexes.push_back(out);
  return out;
}

StatusOr<IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  auto it = indexes_.find(Key(name));
  if (it == indexes_.end()) {
    return Status::NotFound("no such index: " + name);
  }
  return it->second.get();
}

std::vector<IndexInfo*> Catalog::FindIndexes(const std::string& table,
                                             const std::string& column) const {
  ReaderMutexLock lock(mu_);
  std::vector<IndexInfo*> out;
  for (const auto& [name, info] : indexes_) {
    if (Key(info->table) == Key(table) &&
        Key(info->column) == Key(column)) {
      out.push_back(info.get());
    }
  }
  return out;
}

Status Catalog::DropIndex(const std::string& name) {
  WriterMutexLock lock(mu_);
  auto it = indexes_.find(Key(name));
  if (it == indexes_.end()) {
    return Status::NotFound("no such index: " + name);
  }
  StatusOr<TableInfo*> tinfo = LookupTableLocked(it->second->table);
  if (tinfo.ok()) {
    auto& vec = (*tinfo)->indexes;
    vec.erase(std::remove(vec.begin(), vec.end(), it->second.get()),
              vec.end());
  }
  indexes_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, info] : tables_) out.push_back(info->name);
  return out;
}

StatusOr<Rid> TableWriter::Insert(const Row& row) {
  std::string record;
  MURAL_RETURN_IF_ERROR(
      TupleCodec::Serialize(table_->schema, row, &record));
  MURAL_ASSIGN_OR_RETURN(const Rid rid, table_->heap->Insert(record));
  for (IndexInfo* idx : table_->indexes) {
    const int col = table_->schema.IndexOf(idx->column);
    if (col < 0) continue;
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    if (idx->on_phonemes) {
      if (v.type() != TypeId::kUniText || !v.unitext().has_phonemes()) {
        return Status::InvalidArgument(
            "index '" + idx->name +
            "' requires materialized phonemes on column " + idx->column);
      }
      MURAL_RETURN_IF_ERROR(
          idx->index->Insert(Value::Text(*v.unitext().phonemes()), rid));
    } else {
      MURAL_RETURN_IF_ERROR(idx->index->Insert(v, rid));
    }
  }
  return rid;
}

}  // namespace mural
