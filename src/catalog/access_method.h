// AccessMethod: the abstract index interface the catalog and executor see.
//
// Concrete access methods (B+Tree, GiST-based M-Tree, MDI) live in
// src/index and register themselves with the catalog through this
// interface, mirroring how PostgreSQL's access-method layer decouples the
// planner/executor from index implementations (paper §4.1-4.2).

#pragma once

#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"
#include "storage/page.h"

namespace mural {

/// Index families understood by the optimizer.
enum class IndexKind : uint8_t {
  kBTree,  // ordered index; equality + range probes
  kMTree,  // metric index over phoneme strings; range-by-distance probes
  kMdi,    // metric-distance index (B-tree emulation, outside-server §5.3)
};

const char* IndexKindToString(IndexKind kind);

/// Abstract secondary index mapping keys to heap RIDs.
class AccessMethod {
 public:
  virtual ~AccessMethod() = default;

  virtual IndexKind kind() const = 0;

  /// Inserts (key, rid).  Duplicate keys are allowed.
  virtual Status Insert(const Value& key, Rid rid) = 0;

  /// All rids whose key equals `key` exactly.
  virtual Status SearchEqual(const Value& key, std::vector<Rid>* out) = 0;

  /// All rids with lo <= key <= hi (ordered indexes only; NotSupported
  /// otherwise).  Null bounds mean unbounded on that side.
  virtual Status SearchRange(const Value& lo, const Value& hi,
                             std::vector<Rid>* out) {
    (void)lo;
    (void)hi;
    (void)out;
    return Status::NotSupported("range search not supported by this index");
  }

  /// All rids whose key is within edit distance `radius` of `key` (metric
  /// indexes only; NotSupported otherwise).
  virtual Status SearchWithin(const Value& key, int radius,
                              std::vector<Rid>* out) {
    (void)key;
    (void)radius;
    (void)out;
    return Status::NotSupported("metric search not supported by this index");
  }

  /// Number of (key, rid) entries.
  virtual uint64_t NumEntries() const = 0;

  /// Number of pages the index occupies (the P_I of Table 2).
  virtual uint32_t NumPages() const = 0;
};

}  // namespace mural
