#include "catalog/tuple_codec.h"

#include "common/coding.h"

namespace mural {

namespace {

Status CheckType(const Column& col, const Value& v) {
  if (v.is_null()) return Status::OK();
  if (v.type() != col.type) {
    return Status::InvalidArgument(
        "column '" + col.name + "' expects " + TypeIdToString(col.type) +
        " but row has " + TypeIdToString(v.type()));
  }
  return Status::OK();
}

}  // namespace

Status TupleCodec::Serialize(const Schema& schema, const Row& row,
                             std::string* out) {
  if (row.size() != schema.NumColumns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  out->clear();
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    const Value& v = row[i];
    MURAL_RETURN_IF_ERROR(CheckType(col, v));
    if (v.is_null()) {
      PutU8(out, 0);
      continue;
    }
    PutU8(out, 1);
    switch (col.type) {
      case TypeId::kBool:
        PutU8(out, v.bool_val() ? 1 : 0);
        break;
      case TypeId::kInt32:
        PutU32(out, static_cast<uint32_t>(v.int32()));
        break;
      case TypeId::kInt64:
        PutU64(out, static_cast<uint64_t>(v.int64()));
        break;
      case TypeId::kFloat64:
        PutF64(out, v.float64());
        break;
      case TypeId::kText:
        PutLengthPrefixed(out, v.text());
        break;
      case TypeId::kUniText: {
        const UniText& u = v.unitext();
        PutLengthPrefixed(out, u.text());
        PutU16(out, u.lang());
        if (u.has_phonemes()) {
          PutU8(out, 1);
          PutLengthPrefixed(out, *u.phonemes());
        } else {
          PutU8(out, 0);
        }
        break;
      }
      case TypeId::kNull:
        return Status::InvalidArgument("column of type NULL is not storable");
    }
  }
  return Status::OK();
}

Status TupleCodec::Deserialize(const Schema& schema, std::string_view data,
                               Row* out) {
  out->clear();
  out->reserve(schema.NumColumns());
  Decoder dec(data);
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    const Column& col = schema.column(i);
    uint8_t flag = 0;
    MURAL_RETURN_IF_ERROR(dec.GetU8(&flag));
    if (flag == 0) {
      out->push_back(Value::Null());
      continue;
    }
    switch (col.type) {
      case TypeId::kBool: {
        uint8_t b = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU8(&b));
        out->push_back(Value::Bool(b != 0));
        break;
      }
      case TypeId::kInt32: {
        uint32_t v = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU32(&v));
        out->push_back(Value::Int32(static_cast<int32_t>(v)));
        break;
      }
      case TypeId::kInt64: {
        uint64_t v = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU64(&v));
        out->push_back(Value::Int64(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kFloat64: {
        double v = 0;
        MURAL_RETURN_IF_ERROR(dec.GetF64(&v));
        out->push_back(Value::Float64(v));
        break;
      }
      case TypeId::kText: {
        std::string s;
        MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&s));
        out->push_back(Value::Text(std::move(s)));
        break;
      }
      case TypeId::kUniText: {
        std::string s;
        MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&s));
        uint16_t lang = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU16(&lang));
        uint8_t has_ph = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU8(&has_ph));
        UniText u(std::move(s), lang);
        if (has_ph != 0) {
          std::string ph;
          MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&ph));
          u.set_phonemes(std::move(ph));
        }
        out->push_back(Value::Uni(std::move(u)));
        break;
      }
      case TypeId::kNull:
        return Status::Corruption("column of type NULL in schema");
    }
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Status::OK();
}

Status TupleCodec::PeekUniText(const Schema& schema, std::string_view data,
                               size_t col, UniTextColumnView* view) {
  if (col >= schema.NumColumns()) {
    return Status::InvalidArgument("PeekUniText: column out of range");
  }
  const TypeId want = schema.column(col).type;
  if (want != TypeId::kUniText && want != TypeId::kText) {
    return Status::InvalidArgument("PeekUniText: column is not (uni)text");
  }
  Decoder dec(data);
  for (size_t i = 0; i < col; ++i) {
    uint8_t flag = 0;
    MURAL_RETURN_IF_ERROR(dec.GetU8(&flag));
    if (flag == 0) continue;
    switch (schema.column(i).type) {
      case TypeId::kBool:
        MURAL_RETURN_IF_ERROR(dec.Skip(1));
        break;
      case TypeId::kInt32:
        MURAL_RETURN_IF_ERROR(dec.Skip(4));
        break;
      case TypeId::kInt64:
      case TypeId::kFloat64:
        MURAL_RETURN_IF_ERROR(dec.Skip(8));
        break;
      case TypeId::kText: {
        uint32_t len = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU32(&len));
        MURAL_RETURN_IF_ERROR(dec.Skip(len));
        break;
      }
      case TypeId::kUniText: {
        uint32_t len = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU32(&len));
        MURAL_RETURN_IF_ERROR(dec.Skip(len + 2));  // text + lang
        uint8_t has_ph = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU8(&has_ph));
        if (has_ph != 0) {
          MURAL_RETURN_IF_ERROR(dec.GetU32(&len));
          MURAL_RETURN_IF_ERROR(dec.Skip(len));
        }
        break;
      }
      case TypeId::kNull:
        return Status::Corruption("column of type NULL in schema");
    }
  }
  *view = UniTextColumnView();
  uint8_t flag = 0;
  MURAL_RETURN_IF_ERROR(dec.GetU8(&flag));
  if (flag == 0) {
    view->is_null = true;
    return Status::OK();
  }
  MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixedView(&view->text));
  if (want == TypeId::kUniText) {
    MURAL_RETURN_IF_ERROR(dec.GetU16(&view->lang));
    uint8_t has_ph = 0;
    MURAL_RETURN_IF_ERROR(dec.GetU8(&has_ph));
    if (has_ph != 0) {
      view->has_phonemes = true;
      MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixedView(&view->phonemes));
    }
  }
  return Status::OK();
}

size_t TupleCodec::SerializedSize(const Schema& schema, const Row& row) {
  size_t total = 0;
  for (size_t i = 0; i < row.size() && i < schema.NumColumns(); ++i) {
    const Value& v = row[i];
    total += 1;  // flag
    if (v.is_null()) continue;
    switch (schema.column(i).type) {
      case TypeId::kBool:
        total += 1;
        break;
      case TypeId::kInt32:
        total += 4;
        break;
      case TypeId::kInt64:
      case TypeId::kFloat64:
        total += 8;
        break;
      case TypeId::kText:
        total += 4 + v.text().size();
        break;
      case TypeId::kUniText: {
        const UniText& u = v.unitext();
        total += 4 + u.text().size() + 2 + 1;
        if (u.has_phonemes()) total += 4 + u.phonemes()->size();
        break;
      }
      case TypeId::kNull:
        break;
    }
  }
  return total;
}

}  // namespace mural
