// Catalog: tables, their heaps, and their indexes.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/access_method.h"
#include "catalog/schema.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace mural {

struct TableInfo;

/// Metadata + implementation handle for one secondary index.
struct IndexInfo {
  uint32_t oid = 0;
  std::string name;
  std::string table;
  std::string column;          // indexed column name
  bool on_phonemes = false;    // key is the materialized phoneme string
  IndexKind kind = IndexKind::kBTree;
  std::unique_ptr<AccessMethod> index;
};

/// Metadata + heap for one table.
struct TableInfo {
  uint32_t oid = 0;
  std::string name;
  Schema schema;
  std::unique_ptr<HeapFile> heap;
  std::vector<IndexInfo*> indexes;  // owned by the catalog's index map
};

/// The system catalog.  Names are case-insensitive.
///
/// Thread safety: the maps are guarded by a SharedMutex — lookups take it
/// shared, DDL takes it exclusive, so worker threads may resolve tables
/// while other sessions run.  Returned TableInfo*/IndexInfo* stay valid
/// until the object is dropped (entries are heap-allocated and never
/// moved).  DML against a resolved TableInfo follows the storage layer's
/// discipline: concurrent readers, or one writer (TableWriter) — and DDL
/// must not drop an object that queries are still using.  Lock order:
/// Catalog::mu_ before the buffer pool's table lock (CreateTable builds
/// the heap while holding mu_); declared in common/lock_order.h.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates an empty table.
  [[nodiscard]]
  StatusOr<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// Table by name; NotFound if absent.
  [[nodiscard]] StatusOr<TableInfo*> GetTable(const std::string& name) const;

  /// Removes the table and its indexes from the catalog.  (Heap pages are
  /// not reclaimed: no free-space management, matching scope.)
  [[nodiscard]] Status DropTable(const std::string& name);

  /// Registers an index implementation for `table.column`.  The catalog
  /// takes ownership; the caller (engine layer) constructs the concrete
  /// AccessMethod and bulk-loads it before or after registration.
  [[nodiscard]] StatusOr<IndexInfo*> CreateIndex(const std::string& index_name,
                                   const std::string& table,
                                   const std::string& column,
                                   bool on_phonemes, IndexKind kind,
                                   std::unique_ptr<AccessMethod> index);

  /// Index by name; NotFound if absent.
  [[nodiscard]] StatusOr<IndexInfo*> GetIndex(const std::string& name) const;

  /// Indexes on a given table/column (any kind).
  std::vector<IndexInfo*> FindIndexes(const std::string& table,
                                      const std::string& column) const;

  [[nodiscard]] Status DropIndex(const std::string& name);

  std::vector<std::string> TableNames() const;

  BufferPool* buffer_pool() { return pool_; }

 private:
  static std::string Key(const std::string& name);

  /// Map lookup without taking mu_ — for callers that already hold it
  /// (the SharedMutex is not reentrant).
  [[nodiscard]] StatusOr<TableInfo*> LookupTableLocked(
      const std::string& name) const REQUIRES_SHARED(mu_);

  BufferPool* const pool_;  // lint: unguarded(immutable after construction; the pool synchronizes itself)
  mutable SharedMutex mu_ ACQUIRED_BEFORE(lock_rank::kBufferTable);
  uint32_t next_oid_ GUARDED_BY(mu_) = 1;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_ GUARDED_BY(mu_);
};

/// TableHeap-level convenience: typed insert/scan over a TableInfo.
/// Maintains all registered indexes on insert.  Single-writer, like the
/// heap it wraps.
class TableWriter {
 public:
  TableWriter(TableInfo* table) : table_(table) {}  // NOLINT

  /// Serializes and appends `row`; updates every index registered on the
  /// table (B-Tree keys use the raw column value; phoneme-keyed indexes
  /// use the materialized phoneme string, which must be present).
  [[nodiscard]] StatusOr<Rid> Insert(const Row& row);

 private:
  TableInfo* table_;
};

}  // namespace mural
