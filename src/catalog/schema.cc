#include "catalog/schema.h"

#include "common/string_util.h"

namespace mural {

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<size_t> Schema::Resolve(std::string_view name) const {
  const int idx = IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("no such column: " + std::string(name));
  }
  return static_cast<size_t>(idx);
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  for (const Column& rc : right.columns_) {
    Column c = rc;
    if (left.IndexOf(rc.name) >= 0) {
      // Disambiguate collisions only.
      for (Column& lc : cols) {
        if (EqualsIgnoreCase(lc.name, rc.name) &&
            lc.name.rfind("l.", 0) != 0) {
          lc.name = "l." + lc.name;
        }
      }
      c.name = "r." + c.name;
    }
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
    if (columns_[i].materialize_phonemes) out += " PHONEMES";
  }
  return out;
}

}  // namespace mural
