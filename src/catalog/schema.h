// Schema: ordered, named, typed columns of a relation.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"

namespace mural {

/// One column definition.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  /// UniText columns only: materialize the phoneme string at insert time
  /// (paper §4.2 — avoids repeated text-to-phoneme conversions in joins).
  bool materialize_phonemes = false;

  Column() = default;
  Column(std::string n, TypeId t, bool mat = false)
      : name(std::move(n)), type(t), materialize_phonemes(mat) {}
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive); -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Like IndexOf but returns a Status for binder-style error reporting.
  [[nodiscard]] StatusOr<size_t> Resolve(std::string_view name) const;

  /// Concatenation (for join outputs); duplicate names get the side
  /// prefixes "l." / "r." only when they collide.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name TYPE, name TYPE, ..." for EXPLAIN output.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple: one Value per schema column.
using Row = std::vector<Value>;

}  // namespace mural
