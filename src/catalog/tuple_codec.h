// TupleCodec: schema-driven (de)serialization of rows to heap records.
//
// Format, per column in schema order:
//   u8 flag        0 = NULL, 1 = present
//   payload        type-specific (ints/floats fixed LE; strings u32-len
//                  prefixed; UniText = text + u16 lang + optional phonemes)
//
// UniText phoneme strings are serialized only when present, so tables that
// materialize phonemes at insert time (paper §4.2) pay the storage cost and
// others do not.

#pragma once

#include <string>

#include "catalog/schema.h"
#include "common/status.h"

namespace mural {

class TupleCodec {
 public:
  /// Serializes `row` (which must match `schema` arity and types, NULLs
  /// allowed anywhere) into `out`.
  static Status Serialize(const Schema& schema, const Row& row,
                          std::string* out);

  /// Decodes a record produced by Serialize with the same schema.
  static Status Deserialize(const Schema& schema, std::string_view data,
                            Row* out);

  /// Serialized size of `row` without materializing the bytes (used by the
  /// statistics collector for average-record-length L of Table 2).
  static size_t SerializedSize(const Schema& schema, const Row& row);
};

}  // namespace mural
