// TupleCodec: schema-driven (de)serialization of rows to heap records.
//
// Format, per column in schema order:
//   u8 flag        0 = NULL, 1 = present
//   payload        type-specific (ints/floats fixed LE; strings u32-len
//                  prefixed; UniText = text + u16 lang + optional phonemes)
//
// UniText phoneme strings are serialized only when present, so tables that
// materialize phonemes at insert time (paper §4.2) pay the storage cost and
// others do not.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "catalog/schema.h"
#include "common/status.h"

namespace mural {

/// Zero-copy view of one UniText (or Text) column inside a serialized
/// record.  All string_views point into the record buffer passed to
/// PeekUniText and share its lifetime.
struct UniTextColumnView {
  bool is_null = false;
  std::string_view text;
  uint16_t lang = 0;
  bool has_phonemes = false;
  std::string_view phonemes;  // valid only when has_phonemes
};

class TupleCodec {
 public:
  /// Serializes `row` (which must match `schema` arity and types, NULLs
  /// allowed anywhere) into `out`.
  static Status Serialize(const Schema& schema, const Row& row,
                          std::string* out);

  /// Decodes a record produced by Serialize with the same schema.
  static Status Deserialize(const Schema& schema, std::string_view data,
                            Row* out);

  /// Serialized size of `row` without materializing the bytes (used by the
  /// statistics collector for average-record-length L of Table 2).
  static size_t SerializedSize(const Schema& schema, const Row& row);

  /// Decodes only column `col` (which must be kUniText or kText) out of a
  /// serialized record, skipping over the preceding columns without
  /// allocating — the late-materialization peek the batch LexEQUAL scan
  /// uses to run the distance kernel before deciding whether to pay for a
  /// full Deserialize.  For kText columns `lang`/`phonemes` read as their
  /// defaults.  *view borrows `data`.
  static Status PeekUniText(const Schema& schema, std::string_view data,
                            size_t col, UniTextColumnView* view);
};

}  // namespace mural
