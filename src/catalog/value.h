// Value: the runtime datum flowing through the executor.
//
// Mural preserves all the basic relational types and adds UniText (paper
// §3.1).  A Value is a tagged union over the supported types plus SQL NULL.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/logging.h"
#include "common/status.h"
#include "text/unitext.h"

namespace mural {

/// Column/value type tags.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt32,
  kInt64,
  kFloat64,
  kText,
  kUniText,
};

/// Human-readable type name ("INT", "UNITEXT", ...).
const char* TypeIdToString(TypeId t);

/// One runtime datum.
class Value {
 public:
  /// SQL NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int32(int32_t v) { return Value(Rep(v)); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Float64(double v) { return Value(Rep(v)); }
  static Value Text(std::string v) { return Value(Rep(std::move(v))); }
  static Value Uni(UniText v) { return Value(Rep(std::move(v))); }
  /// Convenience: compose a UniText value inline (asserts valid UTF-8).
  static Value Uni(std::string text, LangId lang) {
    return Uni(UniText(std::move(text), lang));
  }

  TypeId type() const { return static_cast<TypeId>(rep_.index()); }
  bool is_null() const { return type() == TypeId::kNull; }

  bool bool_val() const { return Get<bool>(); }
  int32_t int32() const { return Get<int32_t>(); }
  int64_t int64() const { return Get<int64_t>(); }
  double float64() const { return Get<double>(); }
  const std::string& text() const { return Get<std::string>(); }
  const UniText& unitext() const { return Get<UniText>(); }
  UniText& mutable_unitext() { return std::get<UniText>(rep_); }

  /// Numeric value widened to double (ints and floats only).
  double AsDouble() const;

  /// Numeric value widened to int64 (bool/ints only).
  int64_t AsInt64() const;

  /// Three-way comparison.  NULL sorts before everything; distinct types
  /// compare by type tag except that the numeric types compare by value
  /// and Text/UniText compare by text bytes (UniText's ordinary text
  /// operators, paper §3.2.1).
  int Compare(const Value& other) const;

  /// SQL '=' semantics over non-null values; NULL == anything is false.
  bool Equals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  /// Hash consistent with Compare()==0 for same-kind values.
  uint64_t Hash() const;

  /// Display form for results and EXPLAIN output.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int32_t, int64_t, double,
                           std::string, UniText>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  template <typename T>
  const T& Get() const {
    MURAL_CHECK(std::holds_alternative<T>(rep_))
        << "value type mismatch: have " << TypeIdToString(type());
    return std::get<T>(rep_);
  }

  Rep rep_;
};

}  // namespace mural
