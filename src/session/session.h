// Session: one client's handle onto a shared Database.
//
// The api split (this PR's tentpole): Database is the shared engine core —
// storage, catalog, statistics, optimizer, taxonomy, plan cache, admission
// gate — used concurrently by many sessions, while everything per-client
// lives here: the typed SessionOptions knobs, the ExecContext with
// per-session effort counters, the session worker pool, and prepared
// statements.  `Database::Connect()` mints sessions:
//
//   MURAL_ASSIGN_OR_RETURN(auto db, Database::Open());
//   MURAL_ASSIGN_OR_RETURN(auto alice, db->Connect());
//   MURAL_ASSIGN_OR_RETURN(auto bob,
//                          db->Connect({.lexequal_threshold = 3}));
//   MURAL_RETURN_IF_ERROR(alice->Set("degree_of_parallelism", 8));
//   MURAL_ASSIGN_OR_RETURN(QueryResult r, alice->Sql("SELECT ..."));
//
// A Session is NOT internally synchronized — one client drives it at a
// time (the server gives each connection its own) — but any number of
// sessions may run queries against the same Database concurrently.
// Sessions must not outlive their Database.
//
// Exported metrics: engine.sessions.active (gauge),
// engine.sessions.opened (counter).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engine/database.h"

namespace mural {

class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and runs one SQL statement; `hints` reaches the planner for
  /// SELECT / EXPLAIN [ANALYZE], so hint-driven runs attribute their
  /// EXPLAIN ANALYZE output and slow-query logs to this session.
  [[nodiscard]] StatusOr<QueryResult> Sql(
      const std::string& statement, PlannerHints hints = PlannerHints());

  /// Plans and executes a bound logical plan.
  [[nodiscard]] StatusOr<QueryResult> Query(
      const LogicalPtr& plan, PlannerHints hints = PlannerHints());

  /// Plans without executing (EXPLAIN).
  [[nodiscard]] StatusOr<PhysicalPlan> PlanQuery(
      const LogicalPtr& plan, PlannerHints hints = PlannerHints());

  /// Sets one session knob — the same validated/clamped path SQL SET
  /// uses (SessionState::Set).  Unknown names are NotFound.
  [[nodiscard]] Status Set(const std::string& name, int64_t value);

  /// PREPARE name AS statement / EXECUTE name, as API calls.
  [[nodiscard]] Status Prepare(const std::string& name,
                               const std::string& statement);
  [[nodiscard]] StatusOr<QueryResult> Execute(const std::string& name);

  uint64_t id() const { return state_.id(); }
  const SessionOptions& options() const { return state_.options(); }
  ExecContext* exec_context() { return state_.exec_context(); }
  Database* database() { return db_; }

 private:
  friend class Database;  // Connect() is the only minter
  Session(Database* db, uint64_t id);

  Database* const db_;
  SessionState state_;
};

}  // namespace mural
