#include "session/session.h"

#include "common/metrics.h"

namespace mural {

namespace {

Gauge* ActiveSessions() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("engine.sessions.active");
  return g;
}

Counter* OpenedSessions() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("engine.sessions.opened");
  return c;
}

}  // namespace

Session::Session(Database* db, uint64_t id)
    : db_(db), state_(id, db->phoneme_cache()) {
  ActiveSessions()->Add(1);
  OpenedSessions()->Increment();
}

Session::~Session() { ActiveSessions()->Add(-1); }

StatusOr<QueryResult> Session::Sql(const std::string& statement,
                                   PlannerHints hints) {
  return db_->SqlOn(state_, statement, hints);
}

StatusOr<QueryResult> Session::Query(const LogicalPtr& plan,
                                     PlannerHints hints) {
  return db_->QueryOn(state_, plan, hints);
}

StatusOr<PhysicalPlan> Session::PlanQuery(const LogicalPtr& plan,
                                          PlannerHints hints) {
  return db_->PlanOn(state_, plan, hints);
}

Status Session::Set(const std::string& name, int64_t value) {
  return state_.Set(name, value);
}

Status Session::Prepare(const std::string& name,
                        const std::string& statement) {
  // Same path as SQL PREPARE so validation happens exactly once, in SqlOn.
  return db_->SqlOn(state_, "PREPARE " + name + " AS " + statement)
      .status();
}

StatusOr<QueryResult> Session::Execute(const std::string& name) {
  return db_->SqlOn(state_, "EXECUTE " + name);
}

// Defined here, where Session is complete, so the engine layer never
// includes upward into the session layer.
StatusOr<std::unique_ptr<Session>> Database::Connect() {
  return Connect(session_defaults_);
}

StatusOr<std::unique_ptr<Session>> Database::Connect(
    SessionOptions options) {
  std::unique_ptr<Session> session(new Session(this, MintSessionId()));
  MURAL_RETURN_IF_ERROR(session->state_.ApplyOptions(options));
  return session;
}

}  // namespace mural
