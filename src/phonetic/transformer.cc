#include "phonetic/transformer.h"

#include "common/logging.h"

namespace mural {

PhoneticTransformer::PhoneticTransformer() {
  G2pEngine::Options plain;   // keep final schwa, collapse runs
  G2pEngine::Options indic;
  indic.drop_final_schwa = true;
  english_ = std::make_unique<G2pEngine>(EnglishRules(), plain);
  indic_ = std::make_unique<G2pEngine>(IndicRules(), indic);
  romance_ = std::make_unique<G2pEngine>(RomanceRules(), plain);
  germanic_ = std::make_unique<G2pEngine>(GermanicRules(), plain);
  MURAL_CHECK(english_->Validate().ok());
  MURAL_CHECK(indic_->Validate().ok());
  MURAL_CHECK(romance_->Validate().ok());
  MURAL_CHECK(germanic_->Validate().ok());
}

const G2pEngine* PhoneticTransformer::EngineFor(LangId lang) const {
  const LanguageInfo* info = LanguageRegistry::Default().Find(lang);
  if (info == nullptr) return english_.get();
  switch (info->g2p) {
    case G2pFamily::kEnglish:
      return english_.get();
    case G2pFamily::kIndic:
      return indic_.get();
    case G2pFamily::kRomance:
      return romance_.get();
    case G2pFamily::kGermanic:
      return germanic_.get();
    case G2pFamily::kNone:
      return english_.get();
  }
  return english_.get();
}

PhonemeString PhoneticTransformer::Transform(std::string_view text,
                                             LangId lang) const {
  return EngineFor(lang)->Transform(text);
}

PhonemeString PhoneticTransformer::Transform(const UniText& value) const {
  if (value.has_phonemes()) return *value.phonemes();
  return Transform(value.text(), value.lang());
}

void PhoneticTransformer::Materialize(UniText* value) const {
  value->set_phonemes(Transform(value->text(), value->lang()));
}

const PhoneticTransformer& PhoneticTransformer::Default() {
  static const PhoneticTransformer transformer;
  return transformer;
}

}  // namespace mural
