// Romanized Indic (Hindi / Tamil / Kannada) grapheme-to-phoneme rules.
//
// The paper integrated the Dhvani TTS engine for Hindi and Kannada (§4.2).
// Our substitute consumes the ITRANS-style romanization that our data
// generator emits for Indic-language names.  Indic orthographies are far
// closer to phonemic than English: most letters map 1:1, aspirated stops
// are written with a trailing 'h', long vowels are doubled or capitalized
// in ITRANS (we accept doubled).

#include "phonetic/g2p_engine.h"

namespace mural {

const G2pRuleSet& IndicRules() {
  static const G2pRuleSet kRules = {
      "indic",
      {
          // ---- aspirated / retroflex stop digraphs ----
          {"kh", "", "", "k"},   // aspiration folds into the stop class for
          {"gh", "", "", "g"},   // matching purposes: kh/k are homophonic
          {"chh", "", "", "C"},  // across careless romanizations
          {"ch", "", "", "C"},
          {"jh", "", "", "J"},
          {"th", "", "", "t"},
          {"dh", "", "", "d"},
          {"th", "", "", "t"},
          {"dh", "", "", "d"},
          {"ph", "", "", "f"},
          {"bh", "", "", "b"},
          {"sh", "", "", "S"},
          {"zh", "", "", "L"},   // Tamil retroflex approximant ("Tamizh")
          {"ng", "", "", "N"},
          {"ny", "", "", "n"},
          {"gn", "", "", "n"},   // "Gnanam"
          {"ksh", "", "", "kS"},
          {"tr", "", "", "tr"},
          {"dny", "", "", "Jn"},

          // ---- long vowels (doubled ITRANS) ----
          {"aa", "", "", "A"},
          {"ee", "", "", "I"},
          {"ii", "", "", "I"},
          {"oo", "", "", "U"},
          {"uu", "", "", "U"},
          {"ai", "", "", "ay"},
          {"au", "", "", "au"},
          {"ou", "", "", "au"},

          // ---- single letters ----
          {"a", "", "", "a"},
          {"e", "", "", "e"},
          {"i", "", "", "i"},
          {"o", "", "", "o"},
          {"u", "", "", "u"},
          {"c", "", "", "C"},    // romanized "c" is the palatal affricate
          {"q", "", "", "k"},
          {"w", "", "", "v"},    // v/w merge in Indic speech
          {"x", "", "", "kS"},
          {"f", "", "", "f"},
          {"z", "", "", "J"},    // z often renders the palatal in loans
          {"y", "", "", "y"},
          {"h", "V", "#", ""},   // final vocalic h: "Shah", "Sinha" endings
          {"h", "", "", "h"},
      }};
  return kRules;
}

}  // namespace mural
