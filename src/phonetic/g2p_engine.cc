#include "phonetic/g2p_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/utf8.h"

namespace mural {

namespace {

bool IsAsciiLetter(char c) { return c >= 'a' && c <= 'z'; }

bool IsVowelLetter(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
         c == 'y';
}

/// Identity fallback for letters not covered by any rule.
char DefaultPhoneme(char c) {
  switch (c) {
    case 'a':
      return 'a';
    case 'e':
      return 'e';
    case 'i':
      return 'i';
    case 'o':
      return 'o';
    case 'u':
      return 'u';
    case 'y':
      return 'y';
    case 'c':
      return 'k';
    case 'q':
      return 'k';
    case 'x':
      return 's';  // approximated; rules override where it matters
    default:
      // b d f g h j k l m n p r s t v w z map to themselves.
      return c;
  }
}

}  // namespace

G2pEngine::G2pEngine(G2pRuleSet rule_set, Options options)
    : rule_set_(std::move(rule_set)), options_(options) {
  int priority = 0;
  for (const G2pRule& rule : rule_set_.rules) {
    MURAL_CHECK(!rule.graphemes.empty()) << "rule with empty graphemes";
    const unsigned char first =
        static_cast<unsigned char>(rule.graphemes[0]);
    buckets_[first].push_back(IndexedRule{&rule, priority++});
  }
  for (auto& bucket : buckets_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const IndexedRule& a, const IndexedRule& b) {
                if (a.rule->graphemes.size() != b.rule->graphemes.size()) {
                  return a.rule->graphemes.size() > b.rule->graphemes.size();
                }
                return a.priority < b.priority;
              });
  }
}

Status G2pEngine::Validate() const {
  for (const G2pRule& rule : rule_set_.rules) {
    if (!phoneme::IsValidPhonemeString(rule.phonemes)) {
      return Status::InvalidArgument(
          "rule for '" + rule.graphemes +
          "' emits non-canonical phonemes: " + rule.phonemes);
    }
  }
  return Status::OK();
}

bool G2pEngine::ContextMatches(std::string_view ctx, std::string_view text,
                               size_t pos, bool is_left) {
  if (ctx.empty()) return true;
  const char want = ctx[0];
  // `pos` is the index of the neighbouring character; for the left context
  // callers pass (start - 1), which wraps to SIZE_MAX at word start.
  const bool at_boundary =
      is_left ? (pos == static_cast<size_t>(-1)) : (pos >= text.size());
  if (want == '#') return at_boundary;
  if (at_boundary) return false;
  const char c = text[pos];
  switch (want) {
    case 'V':
      return IsVowelLetter(c);
    case 'C':
      return IsAsciiLetter(c) && !IsVowelLetter(c);
    default:
      return c == want;
  }
}

size_t G2pEngine::ApplyAt(std::string_view text, size_t pos,
                          std::string* out) const {
  const unsigned char first = static_cast<unsigned char>(text[pos]);
  for (const IndexedRule& indexed : buckets_[first]) {
    const G2pRule& rule = *indexed.rule;
    const size_t len = rule.graphemes.size();
    if (pos + len > text.size()) continue;
    if (text.compare(pos, len, rule.graphemes) != 0) continue;
    if (!ContextMatches(rule.left, text, pos - 1, /*is_left=*/true)) continue;
    if (!ContextMatches(rule.right, text, pos + len, /*is_left=*/false)) {
      continue;
    }
    out->append(rule.phonemes);
    return len;
  }
  return 0;
}

PhonemeString G2pEngine::Transform(std::string_view raw) const {
  const std::string text = utf8::AsciiLower(raw);
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (!IsAsciiLetter(c)) {
      // Separators, digits, and non-ASCII bytes carry no phonemic content in
      // the romanized orthographies we process; skip them.
      ++pos;
      continue;
    }
    const size_t consumed = ApplyAt(text, pos, &out);
    if (consumed > 0) {
      pos += consumed;
    } else {
      out.push_back(DefaultPhoneme(c));
      ++pos;
    }
  }

  if (options_.collapse_runs) {
    std::string collapsed;
    collapsed.reserve(out.size());
    for (char c : out) {
      if (collapsed.empty() || collapsed.back() != c) collapsed.push_back(c);
    }
    out.swap(collapsed);
  }
  if (options_.drop_final_schwa && out.size() >= 2 && out.back() == '@' &&
      !phoneme::IsVowel(out[out.size() - 2])) {
    out.pop_back();
  }
  return out;
}

}  // namespace mural
