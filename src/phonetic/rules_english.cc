// English grapheme-to-phoneme rules.
//
// Ordered rewrite rules in the style of classical TTS letter-to-sound rule
// sets.  Tuned for proper names (the LexEQUAL workload, paper §2.1): we
// favour stable, deterministic renderings over dictionary-perfect ones —
// what matters for homophonic matching is that different spellings of the
// same name land on nearby phoneme strings.

#include "phonetic/g2p_engine.h"

namespace mural {

const G2pRuleSet& EnglishRules() {
  static const G2pRuleSet kRules = {
      "english",
      {
          // ---- multi-letter clusters (longest first is enforced by the
          //      engine; order here breaks ties) ----
          {"tion", "", "", "S@n"},
          {"sion", "", "", "Z@n"},
          {"ough", "", "#", "O"},   // "borough"
          {"augh", "", "", "O"},    // "Vaughan"
          {"eigh", "", "", "A"},    // "Leigh(ton)"
          {"sch", "", "", "S"},     // "Schneider" borrowed spellings
          {"tch", "", "", "C"},     // "Mitchell"
          {"dge", "", "", "J"},     // "Bridger"
          {"ght", "", "", "t"},     // "Wright"
          {"ck", "", "", "k"},
          {"ph", "", "", "f"},
          {"sh", "", "", "S"},
          {"ch", "", "", "C"},
          {"th", "", "", "F"},
          {"gh", "#", "", "g"},     // word-initial "Ghosh"
          {"gh", "", "", ""},       // otherwise silent: "Gandhi" rom. forms
          {"wh", "#", "", "w"},
          {"kn", "#", "", "n"},     // "Knight"
          {"wr", "#", "", "r"},     // "Wright"
          {"ps", "#", "", "s"},     // "Psmith"
          {"mb", "", "#", "m"},     // "Lamb"
          {"ng", "", "#", "N"},     // final "-ng"
          {"ng", "", "V", "Ng"},    // "Bengal": n-g across syllables
          {"ng", "", "", "N"},
          {"qu", "", "", "kw"},
          {"cc", "", "e", "ks"},    // "Ricci"-like; before front vowel
          {"cc", "", "i", "ks"},

          // ---- vowel digraphs ----
          {"ee", "", "", "I"},
          {"ea", "", "", "I"},
          {"oo", "", "", "U"},
          {"ou", "", "", "au"},
          {"ow", "", "#", "O"},     // final "-ow": "Barrow"
          {"ow", "", "", "au"},
          {"ai", "", "", "A"},
          {"ay", "", "", "A"},
          {"ey", "", "#", "I"},     // final "-ey": "Whitney"
          {"ei", "", "", "A"},
          {"ie", "", "#", "I"},     // final "-ie"
          {"ie", "", "", "I"},
          {"oa", "", "", "O"},
          {"au", "", "", "O"},
          {"aw", "", "", "O"},
          {"eu", "", "", "U"},
          {"ew", "", "", "U"},
          {"ui", "", "", "U"},      // "Cruise"
          {"oy", "", "", "oy"},
          {"oi", "", "", "oy"},

          // ---- context-dependent consonants ----
          {"c", "", "e", "s"},      // soft c
          {"c", "", "i", "s"},
          {"c", "", "y", "s"},
          {"c", "", "", "k"},
          {"g", "", "e", "J"},      // soft g: "George"
          {"g", "", "i", "J"},
          {"g", "", "y", "J"},
          {"g", "", "", "g"},
          {"x", "#", "", "z"},      // "Xavier"
          {"x", "", "", "ks"},
          {"s", "V", "V", "z"},     // intervocalic s: "Rosa"
          {"s", "", "", "s"},
          {"j", "", "", "J"},
          {"v", "", "", "v"},
          {"w", "", "", "w"},
          {"z", "", "", "z"},
          {"h", "V", "#", ""},      // final vocalic h: "Shah" keeps vowel
          {"h", "", "", "h"},
          {"r", "", "", "r"},
          {"y", "#", "", "y"},      // initial y is a glide
          {"y", "C", "#", "i"},     // final y after consonant: "Murthy"
          {"y", "", "", "i"},

          // ---- vowels with final-e lengthening left simple on purpose ----
          {"e", "C", "#", ""},      // silent final e: "Blake"
          {"a", "", "", "a"},
          {"e", "", "", "e"},
          {"i", "", "", "i"},
          {"o", "", "", "o"},
          {"u", "", "", "u"},
      }};
  return kRules;
}

}  // namespace mural
