#include "phonetic/phoneme.h"

#include <array>

namespace mural {
namespace phoneme {

namespace {

std::array<bool, 256> BuildMembership() {
  std::array<bool, 256> table{};
  for (char c : kAlphabet) table[static_cast<unsigned char>(c)] = true;
  return table;
}

const std::array<bool, 256>& Membership() {
  static const std::array<bool, 256> table = BuildMembership();
  return table;
}

}  // namespace

bool IsPhoneme(char c) { return Membership()[static_cast<unsigned char>(c)]; }

bool IsValidPhonemeString(std::string_view s) {
  for (char c : s) {
    if (!IsPhoneme(c)) return false;
  }
  return true;
}

bool IsVowel(char c) {
  switch (c) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
    case 'A':
    case 'E':
    case 'I':
    case 'O':
    case 'U':
    case '@':
      return true;
    default:
      return false;
  }
}

std::string ToDisplay(std::string_view s) {
  std::string out = "/";
  out += s;
  out += "/";
  return out;
}

}  // namespace phoneme
}  // namespace mural
