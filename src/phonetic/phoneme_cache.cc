#include "phonetic/phoneme_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/metrics.h"

namespace mural {

namespace {

Counter* HitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("phonetic.phoneme_cache.hits");
  return c;
}

Counter* MissesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("phonetic.phoneme_cache.misses");
  return c;
}

}  // namespace

PhonemeCache::PhonemeCache(size_t capacity)
    : capacity_(capacity),
      shard_capacity_(capacity == 0
                          ? 0
                          : std::max<size_t>(1, capacity / kNumShards)),
      shards_(kNumShards) {}

std::string PhonemeCache::MakeKey(std::string_view text, LangId lang) {
  // 0x1f (unit separator) cannot appear in valid UTF-8 query text produced
  // by UniText::Compose, so the key is unambiguous.
  std::string key;
  key.reserve(text.size() + 6);
  key.append(text);
  key.push_back('\x1f');
  key.append(std::to_string(lang));
  return key;
}

PhonemeCache::Shard& PhonemeCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

PhonemeString PhonemeCache::GetOrCompute(std::string_view text, LangId lang,
                                         const PhoneticTransformer& transformer,
                                         bool* was_hit) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter()->Increment();
    if (was_hit != nullptr) *was_hit = false;
    return transformer.Transform(text, lang);
  }

  std::string key = MakeKey(text, lang);
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      HitsCounter()->Increment();
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  MissesCounter()->Increment();
  if (was_hit != nullptr) *was_hit = false;
  PhonemeString phonemes = transformer.Transform(text, lang);

  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost a race with another thread computing the same key; its entry is
    // identical (Transform is deterministic), so just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return phonemes;
  }
  shard.lru.emplace_front(std::move(key), phonemes);
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  return phonemes;
}

size_t PhonemeCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

void PhonemeCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace mural
