// Romance-family (French / Spanish) grapheme-to-phoneme rules for
// romanized name matching.

#include "phonetic/g2p_engine.h"

namespace mural {

const G2pRuleSet& RomanceRules() {
  static const G2pRuleSet kRules = {
      "romance",
      {
          // ---- French clusters ----
          {"eau", "", "", "O"},   // "Rousseau"
          {"eaux", "", "#", "O"},
          {"aux", "", "#", "O"},
          {"oux", "", "#", "U"},
          {"ou", "", "", "U"},    // French "ou" = /u/
          {"oo", "", "", "U"},    // borrowed spellings
          {"ee", "", "", "I"},
          {"au", "", "", "O"},
          {"ai", "", "", "e"},
          {"ei", "", "", "e"},
          {"oi", "", "", "wa"},   // "Benoit"
          {"eu", "", "", "@"},
          {"ch", "", "", "S"},    // French ch = /sh/
          {"gn", "", "", "n"},    // "Montagne"
          {"ille", "", "#", "Iy"},
          {"ll", "V", "", "y"},   // Spanish ll
          {"ph", "", "", "f"},
          {"qu", "", "", "k"},
          {"gu", "", "e", "g"},   // "Guerre"
          {"gu", "", "i", "g"},
          {"rr", "", "", "r"},
          {"ss", "", "", "s"},

          // ---- silent finals (French) ----
          {"es", "C", "#", ""},   // final -es
          {"s", "V", "#", ""},    // final -s: "Dumas"
          {"t", "V", "#", ""},    // final -t: "Margot"
          {"d", "V", "#", ""},    // final -d
          {"x", "V", "#", ""},    // final -x
          {"e", "C", "#", ""},    // mute final e

          // ---- context consonants ----
          {"c", "", "e", "s"},
          {"c", "", "i", "s"},
          {"c", "", "", "k"},
          {"j", "", "", "Z"},     // French j = /zh/
          {"g", "", "e", "Z"},
          {"g", "", "i", "Z"},
          {"g", "", "", "g"},
          {"h", "#", "", ""},     // French h is silent
          {"h", "", "", ""},
          {"z", "", "", "z"},
          {"v", "", "", "v"},
          {"y", "", "", "i"},

          // ---- vowels ----
          {"a", "", "", "a"},
          {"e", "", "", "e"},
          {"i", "", "", "i"},
          {"o", "", "", "o"},
          {"u", "", "", "u"},
      }};
  return kRules;
}

}  // namespace mural
