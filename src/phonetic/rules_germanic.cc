// Germanic-family (German) grapheme-to-phoneme rules for romanized name
// matching.

#include "phonetic/g2p_engine.h"

namespace mural {

const G2pRuleSet& GermanicRules() {
  static const G2pRuleSet kRules = {
      "germanic",
      {
          {"sch", "", "", "S"},   // "Schmidt"
          {"tsch", "", "", "C"},  // "Nietzsche"-like
          {"tz", "", "", "ts"},
          {"th", "", "", "t"},    // German th = /t/: "Thomas"
          {"ph", "", "", "f"},
          {"pf", "", "", "pf"},
          {"ch", "", "", "x"},    // "Bach"
          {"ck", "", "", "k"},
          {"dt", "", "#", "t"},   // final -dt: "Schmidt"
          {"st", "#", "", "St"},  // initial st-: "Stein"
          {"sp", "#", "", "Sp"},  // initial sp-
          {"ei", "", "", "ay"},   // "Stein" = /shtayn/
          {"ie", "", "", "I"},
          {"eu", "", "", "oy"},
          {"au", "", "", "au"},
          {"aa", "", "", "A"},
          {"ee", "", "", "I"},
          {"oo", "", "", "O"},
          {"oe", "", "", "@"},    // umlaut transliteration
          {"ue", "", "", "U"},
          {"ae", "", "", "e"},
          {"ng", "", "", "N"},
          {"qu", "", "", "kv"},
          {"v", "", "", "f"},     // German v = /f/: "Volker"
          {"w", "", "", "v"},     // German w = /v/: "Wagner"
          {"z", "", "", "ts"},
          {"j", "", "", "y"},     // "Johann"
          {"s", "#", "V", "z"},   // initial s before vowel
          {"s", "", "", "s"},
          {"c", "", "", "k"},
          {"h", "V", "", ""},     // vowel-lengthening h: "Bohr"
          {"h", "", "", "h"},
          {"y", "", "", "i"},
          {"a", "", "", "a"},
          {"e", "", "", "e"},
          {"i", "", "", "i"},
          {"o", "", "", "o"},
          {"u", "", "", "u"},
      }};
  return kRules;
}

}  // namespace mural
