// PhonemeCache: a sharded, thread-safe LRU cache of G2P transformations.
//
// Table 3 makes LexEQUAL CPU-bound on text-to-phoneme conversion; when
// phoneme strings are not materialized in storage (§4.2's fallback), every
// probe used to re-run G2P.  The cache memoizes (text, language) ->
// phonemes across operators, queries, and worker threads, so each distinct
// value is converted at most once per residency.
//
// Sharding: the key hash picks one of a fixed set of shards, each with its
// own mutex + LRU list, so concurrent morsel workers rarely contend on the
// same lock.  Transformation runs *outside* the shard lock (G2P is pure
// and deterministic, so a duplicate compute under contention is benign and
// both writers store the same string).
//
// Capacity 0 disables caching: lookups always compute, count a miss, and
// store nothing — the ablation baseline for the benchmarks.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "phonetic/transformer.h"
#include "text/language.h"

namespace mural {

class PhonemeCache {
 public:
  static constexpr size_t kNumShards = 8;

  /// `capacity` is the total entry budget, split evenly across shards
  /// (each shard holds at least one entry unless capacity is 0).
  explicit PhonemeCache(size_t capacity);

  PhonemeCache(const PhonemeCache&) = delete;
  PhonemeCache& operator=(const PhonemeCache&) = delete;

  /// Returns the phoneme string for (text, lang), computing it with
  /// `transformer` on a miss.  Sets *was_hit (if non-null) so callers can
  /// attribute the lookup to per-query stats.
  PhonemeString GetOrCompute(std::string_view text, LangId lang,
                             const PhoneticTransformer& transformer,
                             bool* was_hit = nullptr);

  /// Cumulative lookup counters across all threads and queries.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Entries currently resident (sums the shards; approximate under
  /// concurrent mutation).
  size_t size() const;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  /// Drops every entry (counters are preserved).
  void Clear();

 private:
  struct Shard {
    mutable Mutex mu;
    // Front = most recently used.  The map points into the list.
    std::list<std::pair<std::string, PhonemeString>> lru GUARDED_BY(mu);
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, PhonemeString>>::iterator>
        index GUARDED_BY(mu);
  };

  static std::string MakeKey(std::string_view text, LangId lang);
  Shard& ShardFor(const std::string& key);

  const size_t capacity_;
  const size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace mural
