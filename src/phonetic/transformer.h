// PhoneticTransformer: the text-to-phoneme facade used by LexEQUAL.
//
// Dispatches a UniText value to the G2P engine registered for its
// language's family and returns the canonical phoneme string (paper Fig. 3,
// step 1).  Engines are built once and shared; transformation is
// deterministic and side-effect free, which is what allows the engine to
// materialize phoneme strings at insert time (§4.2).

#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "phonetic/g2p_engine.h"
#include "text/unitext.h"

namespace mural {

/// Transforms multilingual strings to canonical phoneme strings.
class PhoneticTransformer {
 public:
  /// A transformer over the default language registry with all built-in
  /// rule families installed.
  PhoneticTransformer();

  /// Phoneme string for a (text, language) pair.  Unknown languages and
  /// languages with no registered G2P family fall back to the English
  /// rules (a defined, deterministic default — matching the paper's use of
  /// a single canonical alphabet across languages).
  PhonemeString Transform(std::string_view text,  // lint: blocking
                          LangId lang) const;

  /// Phoneme string for a UniText value.  If the value already carries a
  /// materialized phoneme string, that is returned without recomputation.
  PhonemeString Transform(const UniText& value) const;  // lint: blocking

  /// Materializes the phoneme string into `value` (insert-time path).
  void Materialize(UniText* value) const;

  /// The process-wide shared instance.
  static const PhoneticTransformer& Default();

 private:
  const G2pEngine* EngineFor(LangId lang) const;

  std::unique_ptr<G2pEngine> english_;
  std::unique_ptr<G2pEngine> indic_;
  std::unique_ptr<G2pEngine> romance_;
  std::unique_ptr<G2pEngine> germanic_;
};

}  // namespace mural
