// The canonical phoneme alphabet.
//
// The paper transforms multilingual strings into phonemic strings in a
// canonical IPA alphabet before matching (§2.1).  We use a compact
// ASCII-per-phoneme encoding of an IPA-like inventory, so a phoneme string
// is a plain byte string and one byte == one phoneme (which keeps the edit
// distance a true phoneme-level distance and lets the cost model's alphabet
// size |Sigma| be a small constant).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mural {

/// A phoneme string: each byte is one canonical phoneme symbol.
using PhonemeString = std::string;

namespace phoneme {

/// The canonical inventory (one ASCII byte per phoneme):
///   Vowels:      a e i o u  A E I O U (long)  @ (schwa)
///   Stops:       p b t d k g  P B T D (retroflex/aspirated classes)
///   Affricates:  C (ch)  J (dzh)
///   Fricatives:  f v s z S (sh) Z (zh) h x G (gh) F (th) V (dh)
///   Nasals:      m n N (ng) M (retroflex n)
///   Liquids:     l r L R y w
inline constexpr std::string_view kAlphabet =
    "aeiouAEIOU@pbtdkgPBTDCJfvszSZhxGFVmnNMlrLRyw";

/// Number of symbols in the canonical alphabet (the |Sigma| of Table 2).
inline constexpr int kAlphabetSize = static_cast<int>(kAlphabet.size());

/// True iff `c` is a canonical phoneme symbol.
bool IsPhoneme(char c);

/// True iff every byte of `s` is a canonical phoneme symbol.
bool IsValidPhonemeString(std::string_view s);

/// True iff the phoneme is a vowel (including long vowels and schwa).
bool IsVowel(char c);

/// Renders a phoneme string with '/' delimiters for diagnostics: "/nEru/".
std::string ToDisplay(std::string_view s);

}  // namespace phoneme
}  // namespace mural
