// Rule-based grapheme-to-phoneme engine.
//
// This is our substitute for the Dhvani text-to-phoneme system the paper
// integrated with PostgreSQL (§4.2): a classic ordered-rewrite-rule G2P of
// the kind used by formant TTS front ends.  A rule set is an ordered list of
// context-sensitive rewrite rules
//
//     left-context [ graphemes ] right-context  ->  phonemes
//
// applied left to right with longest-match-first semantics.  Context
// patterns are single-class constraints ('#' word boundary, 'V' vowel
// letter, 'C' consonant letter, or a literal letter); empty means "any".
//
// Rule sets are pure data (see rules_*.cc), so adding a language does not
// touch the engine.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "phonetic/phoneme.h"

namespace mural {

/// One context-sensitive rewrite rule.
struct G2pRule {
  /// Grapheme sequence to match (lowercase ASCII for romanized input).
  std::string graphemes;
  /// Left context: "" any, "#" word start, "V" vowel letter, "C" consonant
  /// letter, or a single literal letter.
  std::string left;
  /// Right context, same syntax; "#" means word end.
  std::string right;
  /// Replacement phonemes in the canonical alphabet ("" deletes).
  std::string phonemes;
};

/// An ordered rule set for one language family.
struct G2pRuleSet {
  std::string name;          // "english", "indic", ...
  std::vector<G2pRule> rules;
};

/// Applies a rule set to (already lowercased) text.
///
/// The engine indexes rules by first grapheme and, at each input position,
/// picks the first applicable rule under longest-match-then-order priority.
/// Letters matched by no rule map through a built-in identity table
/// (consonant letters to their obvious phonemes, vowels to short vowels);
/// non-letter characters are skipped.  Output is post-processed: runs of an
/// identical phoneme collapse to one (doubled letters rarely change
/// pronunciation in names), and a trailing schwa after a consonant is kept
/// (Indic) or dropped (configured per rule set via `drop_final_schwa`).
class G2pEngine {
 public:
  struct Options {
    bool drop_final_schwa = false;
    bool collapse_runs = true;
  };

  G2pEngine(G2pRuleSet rule_set, Options options);

  /// Validates rule outputs against the canonical alphabet.
  Status Validate() const;

  /// Transforms romanized text to a canonical phoneme string.
  PhonemeString Transform(std::string_view text) const;

  const std::string& name() const { return rule_set_.name; }

 private:
  struct IndexedRule {
    const G2pRule* rule;
    int priority;  // original position; lower wins among equal lengths
  };

  // Returns the number of graphemes consumed and appends phonemes to out;
  // returns 0 if no rule applies at `pos`.
  size_t ApplyAt(std::string_view text, size_t pos, std::string* out) const;

  static bool ContextMatches(std::string_view ctx, std::string_view text,
                             size_t pos, bool is_left);

  G2pRuleSet rule_set_;
  Options options_;
  // rules bucketed by first grapheme byte, longest-first.
  std::vector<IndexedRule> buckets_[256];
};

/// Built-in rule sets (defined in rules_*.cc).
const G2pRuleSet& EnglishRules();
const G2pRuleSet& IndicRules();
const G2pRuleSet& RomanceRules();
const G2pRuleSet& GermanicRules();

}  // namespace mural
