// SQL front end for the paper's query surface (Figs. 2 & 4):
//
//   SELECT Author, Title FROM Book
//     WHERE Author LexEQUAL 'Nehru' IN English, Hindi, Tamil;
//   SELECT Author, Title, Category FROM Book
//     WHERE Category SemEQUAL 'History'@English IN English, French, Tamil;
//   SELECT count(*) FROM Author A, Publisher P
//     WHERE A.AName LexEQUAL P.PName;
//   SET LEXEQUAL_THRESHOLD = 3;
//   EXPLAIN SELECT ...;
//   CREATE TABLE Book (BookID INT, Author UNITEXT MATERIALIZE PHONEMES,..);
//   CREATE INDEX idx ON Book(Author) USING MTREE;
//   INSERT INTO Book VALUES (1, 'Nehru'@English, ...);
//   ANALYZE Book;
//
// Parse() produces a Statement; binding a SELECT against a catalog yields
// the LogicalPlan the optimizer consumes.  String literals default to
// TEXT; 'str'@Language composes a UniText in that language (the ⊕
// operator's SQL spelling).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/exec_context.h"
#include "optimizer/logical_plan.h"

namespace mural {

class Database;  // engine layer; only used by Execute's implementation

namespace sql {

/// Opaque parsed WHERE-clause AST (defined in sql.cc; bound to column
/// indexes by Bind()).
struct SqlExpr;

enum class StatementKind {
  kSelect,
  kExplain,      // EXPLAIN [ANALYZE] SELECT ...
  kSet,          // SET <name> = <int>
  kCreateTable,
  kCreateIndex,
  kInsert,
  kAnalyze,
  kPrepare,      // PREPARE <name> AS <statement>
  kExecute,      // EXECUTE <name>
};

/// A parsed (but unbound) statement.
struct Statement {
  StatementKind kind = StatementKind::kSelect;

  /// The original statement text as handed to Parse() — the plan cache
  /// keys on it.
  std::string text;

  // kSelect / kExplain: raw pieces bound later.
  struct TableRef {
    std::string table;
    std::string alias;  // defaults to table name
  };
  struct SelectItem {
    // Either a column reference or an aggregate.
    bool is_star = false;
    bool is_aggregate = false;
    AggKind agg = AggKind::kCountStar;
    std::string qualifier;  // optional "alias."
    std::string column;     // column name ("" for count(*))
    std::string output_name;
  };
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  std::shared_ptr<SqlExpr> where;  // unbound WHERE AST (may be null)
  std::vector<std::pair<std::string, bool>> order_by;  // (col, ascending)
  std::vector<std::string> group_by;
  std::optional<uint64_t> limit;
  /// kExplain only: EXPLAIN ANALYZE executes the plan and renders the
  /// timed per-operator tree instead of the predicted plan.
  bool explain_analyze = false;

  // kSet
  std::string set_name;
  int64_t set_value = 0;

  // kCreateTable
  std::string table_name;
  Schema schema;

  // kCreateIndex
  std::string index_name;
  std::string index_column;
  IndexKind index_kind = IndexKind::kBTree;
  bool index_on_phonemes = false;

  // kInsert
  std::vector<Row> insert_rows;

  // kAnalyze reuses table_name.

  // kPrepare / kExecute
  std::string prepare_name;
  /// kPrepare only: the body statement, verbatim (re-parsed on EXECUTE).
  std::string prepare_body;
};

/// Parses one statement (trailing ';' optional).
StatusOr<Statement> Parse(const std::string& text);

/// Binds a parsed SELECT into a logical plan against `catalog`.
StatusOr<LogicalPtr> Bind(const Statement& stmt, Catalog* catalog);

}  // namespace sql
}  // namespace mural
