#include "sql/sql.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace mural {
namespace sql {

// ===================================================================== AST

enum class SqlExprKind {
  kLiteral,
  kColRef,
  kCompare,   // op in {=, <>, <, <=, >, >=}
  kAnd,
  kOr,
  kNot,
  kLexEqual,  // with optional language set and threshold
  kSemEqual,  // with optional language set
};

struct SqlExpr {
  SqlExprKind kind;
  Value literal;
  std::string qualifier, column;   // kColRef
  CompareOp cmp = CompareOp::kEq;  // kCompare
  std::shared_ptr<SqlExpr> lhs, rhs;
  std::set<LangId> langs;          // kLexEqual / kSemEqual "IN ..." clause
  int threshold = -1;              // kLexEqual optional explicit threshold
};

using SqlExprPtr = std::shared_ptr<SqlExpr>;

// =================================================================== lexer

namespace {

enum class TkKind { kIdent, kNumber, kString, kOp, kEnd };

struct Tk {
  TkKind kind = TkKind::kEnd;
  std::string text;  // idents upper-cased; ops literal
  double number = 0;
  bool is_float = false;
  std::string str;
  LangId str_lang = kLangUnknown;  // 'str'@Language
};

StatusOr<std::vector<Tk>> LexSql(const std::string& text) {
  std::vector<Tk> out;
  size_t pos = 0;
  const size_t n = text.size();
  while (pos < n) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    Tk tk;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tk.kind = TkKind::kIdent;
      while (pos < n && (std::isalnum(static_cast<unsigned char>(
                             text[pos])) ||
                         text[pos] == '_')) {
        char u = text[pos++];
        if (u >= 'a' && u <= 'z') u = static_cast<char>(u - 'a' + 'A');
        tk.text.push_back(u);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && pos + 1 < n &&
                std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      tk.kind = TkKind::kNumber;
      std::string num;
      while (pos < n && (std::isdigit(static_cast<unsigned char>(
                             text[pos])) ||
                         text[pos] == '.')) {
        if (text[pos] == '.') tk.is_float = true;
        num.push_back(text[pos++]);
      }
      tk.number = std::stod(num);
    } else if (c == '\'') {
      tk.kind = TkKind::kString;
      ++pos;
      while (pos < n && text[pos] != '\'') tk.str.push_back(text[pos++]);
      if (pos >= n) {
        return Status::InvalidArgument("unterminated SQL string literal");
      }
      ++pos;
      // Optional language tag: 'str'@English.
      if (pos < n && text[pos] == '@') {
        ++pos;
        std::string lang;
        while (pos < n && (std::isalnum(static_cast<unsigned char>(
                               text[pos])) ||
                           text[pos] == '_')) {
          lang.push_back(text[pos++]);
        }
        const LanguageInfo* info =
            LanguageRegistry::Default().FindByName(lang);
        if (info == nullptr) {
          return Status::NotFound("unknown language in literal: " + lang);
        }
        tk.str_lang = info->id;
      }
    } else {
      tk.kind = TkKind::kOp;
      static const char* kTwo[] = {"<=", ">=", "<>", "!="};
      bool matched = false;
      for (const char* two : kTwo) {
        if (text.compare(pos, 2, two) == 0) {
          tk.text = two;
          pos += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        tk.text = std::string(1, c);
        ++pos;
      }
    }
    out.push_back(std::move(tk));
  }
  out.emplace_back();  // kEnd
  return out;
}

// ================================================================== parser

class SqlParser {
 public:
  explicit SqlParser(std::vector<Tk> toks) : toks_(std::move(toks)) {}

  StatusOr<Statement> Run() {
    Statement stmt;
    if (PeekIdent("EXPLAIN")) {
      Advance();
      if (PeekIdent("ANALYZE")) {
        Advance();
        stmt.explain_analyze = true;
      }
      MURAL_RETURN_IF_ERROR(ParseSelect(&stmt));
      stmt.kind = StatementKind::kExplain;
    } else if (PeekIdent("SELECT")) {
      MURAL_RETURN_IF_ERROR(ParseSelect(&stmt));
    } else if (PeekIdent("SET")) {
      MURAL_RETURN_IF_ERROR(ParseSet(&stmt));
    } else if (PeekIdent("CREATE")) {
      MURAL_RETURN_IF_ERROR(ParseCreate(&stmt));
    } else if (PeekIdent("INSERT")) {
      MURAL_RETURN_IF_ERROR(ParseInsert(&stmt));
    } else if (PeekIdent("ANALYZE")) {
      Advance();
      stmt.kind = StatementKind::kAnalyze;
      MURAL_ASSIGN_OR_RETURN(stmt.table_name, TakeIdent());
    } else if (PeekIdent("EXECUTE")) {
      Advance();
      stmt.kind = StatementKind::kExecute;
      MURAL_ASSIGN_OR_RETURN(stmt.prepare_name, TakeIdent());
    } else {
      return Status::InvalidArgument("unrecognized SQL statement");
    }
    if (PeekOp(";")) Advance();
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing tokens after SQL statement");
    }
    return stmt;
  }

 private:
  Status ParseSelect(Statement* stmt) {
    stmt->kind = StatementKind::kSelect;
    MURAL_RETURN_IF_ERROR(ExpectIdent("SELECT"));
    while (true) {
      Statement::SelectItem item;
      if (PeekOp("*")) {
        Advance();
        item.is_star = true;
      } else if (PeekIdent("COUNT") || PeekIdent("SUM") ||
                 PeekIdent("AVG") || PeekIdent("MIN") || PeekIdent("MAX")) {
        const std::string fn = Peek().text;
        Advance();
        MURAL_RETURN_IF_ERROR(ExpectOp("("));
        item.is_aggregate = true;
        if (fn == "COUNT" && PeekOp("*")) {
          Advance();
          item.agg = AggKind::kCountStar;
          item.output_name = "count";
        } else {
          MURAL_RETURN_IF_ERROR(ParseQualifiedName(&item.qualifier,
                                                   &item.column));
          if (fn == "COUNT") item.agg = AggKind::kCount;
          else if (fn == "SUM") item.agg = AggKind::kSum;
          else if (fn == "AVG") item.agg = AggKind::kAvg;
          else if (fn == "MIN") item.agg = AggKind::kMin;
          else item.agg = AggKind::kMax;
          item.output_name = fn;
        }
        MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        MURAL_RETURN_IF_ERROR(ParseQualifiedName(&item.qualifier,
                                                 &item.column));
        item.output_name = item.column;
      }
      if (PeekIdent("AS")) {
        Advance();
        MURAL_ASSIGN_OR_RETURN(item.output_name, TakeIdent());
      }
      stmt->select_list.push_back(std::move(item));
      if (PeekOp(",")) {
        Advance();
        continue;
      }
      break;
    }
    MURAL_RETURN_IF_ERROR(ExpectIdent("FROM"));
    while (true) {
      Statement::TableRef ref;
      MURAL_ASSIGN_OR_RETURN(ref.table, TakeIdent());
      ref.alias = ref.table;
      if (Peek().kind == TkKind::kIdent && !IsKeyword(Peek().text)) {
        ref.alias = Peek().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
      if (PeekOp(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (PeekIdent("WHERE")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(stmt->where, ParseOr());
    }
    if (PeekIdent("GROUP")) {
      Advance();
      MURAL_RETURN_IF_ERROR(ExpectIdent("BY"));
      while (true) {
        std::string q, c;
        MURAL_RETURN_IF_ERROR(ParseQualifiedName(&q, &c));
        stmt->group_by.push_back(q.empty() ? c : q + "." + c);
        if (PeekOp(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekIdent("ORDER")) {
      Advance();
      MURAL_RETURN_IF_ERROR(ExpectIdent("BY"));
      while (true) {
        std::string q, c;
        MURAL_RETURN_IF_ERROR(ParseQualifiedName(&q, &c));
        bool asc = true;
        if (PeekIdent("DESC")) {
          Advance();
          asc = false;
        } else if (PeekIdent("ASC")) {
          Advance();
        }
        stmt->order_by.emplace_back(q.empty() ? c : q + "." + c, asc);
        if (PeekOp(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekIdent("LIMIT")) {
      Advance();
      if (Peek().kind != TkKind::kNumber) {
        return Status::InvalidArgument("LIMIT expects a number");
      }
      stmt->limit = static_cast<uint64_t>(Peek().number);
      Advance();
    }
    return Status::OK();
  }

  Status ParseSet(Statement* stmt) {
    MURAL_RETURN_IF_ERROR(ExpectIdent("SET"));
    stmt->kind = StatementKind::kSet;
    MURAL_ASSIGN_OR_RETURN(stmt->set_name, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectOp("="));
    if (Peek().kind != TkKind::kNumber) {
      return Status::InvalidArgument("SET expects a numeric value");
    }
    stmt->set_value = static_cast<int64_t>(Peek().number);
    Advance();
    return Status::OK();
  }

  Status ParseCreate(Statement* stmt) {
    MURAL_RETURN_IF_ERROR(ExpectIdent("CREATE"));
    if (PeekIdent("TABLE")) {
      Advance();
      stmt->kind = StatementKind::kCreateTable;
      MURAL_ASSIGN_OR_RETURN(stmt->table_name, TakeIdent());
      MURAL_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<Column> cols;
      while (true) {
        Column col;
        MURAL_ASSIGN_OR_RETURN(col.name, TakeIdent());
        MURAL_ASSIGN_OR_RETURN(const std::string type, TakeIdent());
        if (type == "INT" || type == "INTEGER") col.type = TypeId::kInt32;
        else if (type == "BIGINT") col.type = TypeId::kInt64;
        else if (type == "DOUBLE" || type == "FLOAT" || type == "NUMBER")
          col.type = TypeId::kFloat64;
        else if (type == "BOOL" || type == "BOOLEAN")
          col.type = TypeId::kBool;
        else if (type == "TEXT" || type == "VARCHAR")
          col.type = TypeId::kText;
        else if (type == "UNITEXT") col.type = TypeId::kUniText;
        else return Status::InvalidArgument("unknown column type " + type);
        if (PeekIdent("MATERIALIZE")) {
          Advance();
          MURAL_RETURN_IF_ERROR(ExpectIdent("PHONEMES"));
          col.materialize_phonemes = true;
        }
        cols.push_back(std::move(col));
        if (PeekOp(",")) {
          Advance();
          continue;
        }
        break;
      }
      MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      stmt->schema = Schema(std::move(cols));
      return Status::OK();
    }
    MURAL_RETURN_IF_ERROR(ExpectIdent("INDEX"));
    stmt->kind = StatementKind::kCreateIndex;
    MURAL_ASSIGN_OR_RETURN(stmt->index_name, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectIdent("ON"));
    MURAL_ASSIGN_OR_RETURN(stmt->table_name, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectOp("("));
    MURAL_ASSIGN_OR_RETURN(stmt->index_column, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectOp(")"));
    if (PeekIdent("USING")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(const std::string kind, TakeIdent());
      if (kind == "BTREE") stmt->index_kind = IndexKind::kBTree;
      else if (kind == "MTREE") stmt->index_kind = IndexKind::kMTree;
      else if (kind == "MDI") stmt->index_kind = IndexKind::kMdi;
      else return Status::InvalidArgument("unknown index kind " + kind);
    }
    if (PeekIdent("PHONEMES")) {
      Advance();
      stmt->index_on_phonemes = true;
    }
    if (stmt->index_kind != IndexKind::kBTree) {
      stmt->index_on_phonemes = true;  // metric indexes imply phoneme keys
    }
    return Status::OK();
  }

  Status ParseInsert(Statement* stmt) {
    MURAL_RETURN_IF_ERROR(ExpectIdent("INSERT"));
    MURAL_RETURN_IF_ERROR(ExpectIdent("INTO"));
    stmt->kind = StatementKind::kInsert;
    MURAL_ASSIGN_OR_RETURN(stmt->table_name, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectIdent("VALUES"));
    while (true) {
      MURAL_RETURN_IF_ERROR(ExpectOp("("));
      Row row;
      while (true) {
        MURAL_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (PeekOp(",")) {
          Advance();
          continue;
        }
        break;
      }
      MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      stmt->insert_rows.push_back(std::move(row));
      if (PeekOp(",")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  StatusOr<Value> ParseLiteralValue() {
    const Tk& tk = Peek();
    if (tk.kind == TkKind::kNumber) {
      Advance();
      if (tk.is_float) return Value::Float64(tk.number);
      return Value::Int32(static_cast<int32_t>(tk.number));
    }
    if (tk.kind == TkKind::kString) {
      Advance();
      if (tk.str_lang != kLangUnknown) {
        return Value::Uni(tk.str, tk.str_lang);
      }
      return Value::Text(tk.str);
    }
    if (PeekIdent("NULL")) {
      Advance();
      return Value::Null();
    }
    if (PeekIdent("TRUE") || PeekIdent("FALSE")) {
      const bool b = Peek().text == "TRUE";
      Advance();
      return Value::Bool(b);
    }
    if (PeekOp("-") ) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      if (v.type() == TypeId::kInt32) return Value::Int32(-v.int32());
      if (v.type() == TypeId::kFloat64) return Value::Float64(-v.float64());
      return Status::InvalidArgument("cannot negate literal");
    }
    return Status::InvalidArgument("expected literal");
  }

  // ------------------------------------------------- WHERE expressions

  StatusOr<SqlExprPtr> ParseOr() {
    MURAL_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
    while (PeekIdent("OR")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<SqlExprPtr> ParseAnd() {
    MURAL_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
    while (PeekIdent("AND")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<SqlExprPtr> ParseNot() {
    if (PeekIdent("NOT")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(SqlExprPtr operand, ParseNot());
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    if (PeekOp("(")) {
      // Could be a parenthesized boolean expression.
      Advance();
      MURAL_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseOr());
      MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    return ParsePredicate();
  }

  StatusOr<SqlExprPtr> ParsePredicate() {
    MURAL_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseOperand());
    if (PeekIdent("LEXEQUAL") || PeekIdent("SEMEQUAL")) {
      const bool is_lex = Peek().text == "LEXEQUAL";
      Advance();
      MURAL_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseOperand());
      auto node = std::make_shared<SqlExpr>();
      node->kind = is_lex ? SqlExprKind::kLexEqual : SqlExprKind::kSemEqual;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      // Optional explicit threshold: THRESHOLD n (LexEQUAL only).
      if (is_lex && PeekIdent("THRESHOLD")) {
        Advance();
        if (Peek().kind != TkKind::kNumber) {
          return Status::InvalidArgument("THRESHOLD expects a number");
        }
        node->threshold = static_cast<int>(Peek().number);
        Advance();
      }
      // Optional "IN lang, lang, ..." clause.
      if (PeekIdent("IN")) {
        Advance();
        while (true) {
          MURAL_ASSIGN_OR_RETURN(const std::string lang, TakeIdent());
          const LanguageInfo* info =
              LanguageRegistry::Default().FindByName(lang);
          if (info == nullptr) {
            return Status::NotFound("unknown language: " + lang);
          }
          node->langs.insert(info->id);
          if (PeekOp(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      return node;
    }
    CompareOp op;
    if (PeekOp("=")) op = CompareOp::kEq;
    else if (PeekOp("<>") || PeekOp("!=")) op = CompareOp::kNe;
    else if (PeekOp("<=")) op = CompareOp::kLe;
    else if (PeekOp(">=")) op = CompareOp::kGe;
    else if (PeekOp("<")) op = CompareOp::kLt;
    else if (PeekOp(">")) op = CompareOp::kGt;
    else return Status::InvalidArgument("expected predicate operator");
    Advance();
    MURAL_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseOperand());
    auto node = std::make_shared<SqlExpr>();
    node->kind = SqlExprKind::kCompare;
    node->cmp = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  StatusOr<SqlExprPtr> ParseOperand() {
    const Tk& tk = Peek();
    if (tk.kind == TkKind::kNumber || tk.kind == TkKind::kString ||
        PeekIdent("NULL") || PeekIdent("TRUE") || PeekIdent("FALSE") ||
        PeekOp("-")) {
      MURAL_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kLiteral;
      node->literal = std::move(v);
      return node;
    }
    auto node = std::make_shared<SqlExpr>();
    node->kind = SqlExprKind::kColRef;
    MURAL_RETURN_IF_ERROR(
        ParseQualifiedName(&node->qualifier, &node->column));
    return node;
  }

  Status ParseQualifiedName(std::string* qualifier, std::string* column) {
    MURAL_ASSIGN_OR_RETURN(std::string first, TakeIdent());
    if (PeekOp(".")) {
      Advance();
      *qualifier = first;
      MURAL_ASSIGN_OR_RETURN(*column, TakeIdent());
    } else {
      qualifier->clear();
      *column = std::move(first);
    }
    return Status::OK();
  }

  // ------------------------------------------------------------ helpers

  static bool IsKeyword(const std::string& ident) {
    static const std::set<std::string> kKeywords = {
        "SELECT", "FROM",  "WHERE",  "GROUP",   "ORDER", "BY",
        "LIMIT",  "AND",   "OR",     "NOT",     "IN",    "AS",
        "SET",    "CREATE", "TABLE", "INDEX",   "INSERT", "INTO",
        "VALUES", "ANALYZE", "EXPLAIN", "LEXEQUAL", "SEMEQUAL",
        "THRESHOLD", "DESC", "ASC", "USING", "ON"};
    return kKeywords.count(ident) > 0;
  }

  const Tk& Peek() const { return toks_[pos_]; }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool AtEnd() const { return Peek().kind == TkKind::kEnd; }
  bool PeekIdent(const char* ident) const {
    return Peek().kind == TkKind::kIdent && Peek().text == ident;
  }
  bool PeekOp(const char* op) const {
    return Peek().kind == TkKind::kOp && Peek().text == op;
  }
  Status ExpectIdent(const char* ident) {
    if (!PeekIdent(ident)) {
      return Status::InvalidArgument(std::string("SQL: expected ") + ident +
                                     " (got '" + Peek().text + "')");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!PeekOp(op)) {
      return Status::InvalidArgument(std::string("SQL: expected '") + op +
                                     "' (got '" + Peek().text + "')");
    }
    Advance();
    return Status::OK();
  }
  StatusOr<std::string> TakeIdent() {
    if (Peek().kind != TkKind::kIdent) {
      return Status::InvalidArgument("SQL: expected identifier");
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  std::vector<Tk> toks_;
  size_t pos_ = 0;
};

/// Whole-word case-insensitive match of `kw` at the first non-space
/// position at or after `start`; returns the position just past the word,
/// or npos on no match.
size_t MatchWord(const std::string& text, size_t start,
                 const std::string& kw) {
  const size_t i = text.find_first_not_of(" \t\r\n", start);
  if (i == std::string::npos || text.size() - i < kw.size()) {
    return std::string::npos;
  }
  for (size_t k = 0; k < kw.size(); ++k) {
    if (std::toupper(static_cast<unsigned char>(text[i + k])) != kw[k]) {
      return std::string::npos;
    }
  }
  const size_t end = i + kw.size();
  if (end < text.size() &&
      (std::isalnum(static_cast<unsigned char>(text[end])) ||
       text[end] == '_')) {
    return std::string::npos;  // a longer identifier, not the keyword
  }
  return end;
}

/// PREPARE <name> AS <statement> is carved up textually so the body stays
/// verbatim — it is validated by a recursive Parse at PREPARE time and
/// re-parsed on EXECUTE.
StatusOr<Statement> ParsePrepare(const std::string& text,
                                 size_t after_prepare) {
  Statement stmt;
  stmt.kind = StatementKind::kPrepare;
  const size_t name_begin =
      text.find_first_not_of(" \t\r\n", after_prepare);
  if (name_begin == std::string::npos) {
    return Status::InvalidArgument("PREPARE <name> AS <statement>");
  }
  size_t name_end = name_begin;
  while (name_end < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[name_end])) ||
          text[name_end] == '_')) {
    ++name_end;
  }
  if (name_end == name_begin) {
    return Status::InvalidArgument("PREPARE <name> AS <statement>");
  }
  stmt.prepare_name = text.substr(name_begin, name_end - name_begin);
  const size_t body_begin = MatchWord(text, name_end, "AS");
  if (body_begin == std::string::npos) {
    return Status::InvalidArgument("PREPARE <name> AS <statement>");
  }
  std::string body = text.substr(body_begin);
  // Trim whitespace and the optional trailing ';' of the PREPARE itself.
  size_t e = body.find_last_not_of(" \t\r\n");
  if (e != std::string::npos && body[e] == ';') {
    e = (e == 0) ? std::string::npos : body.find_last_not_of(" \t\r\n", e - 1);
  }
  const size_t b = body.find_first_not_of(" \t\r\n");
  if (b == std::string::npos || e == std::string::npos || e < b) {
    return Status::InvalidArgument("PREPARE body is empty");
  }
  stmt.prepare_body = body.substr(b, e - b + 1);
  return stmt;
}

}  // namespace

StatusOr<Statement> Parse(const std::string& text) {
  const size_t after_prepare = MatchWord(text, 0, "PREPARE");
  if (after_prepare != std::string::npos) {
    MURAL_ASSIGN_OR_RETURN(Statement prepared,
                           ParsePrepare(text, after_prepare));
    prepared.text = text;
    return prepared;
  }
  MURAL_ASSIGN_OR_RETURN(std::vector<Tk> tokens, LexSql(text));
  SqlParser parser(std::move(tokens));
  MURAL_ASSIGN_OR_RETURN(Statement stmt, parser.Run());
  stmt.text = text;
  return stmt;
}

// ================================================================== binder

namespace {

/// One output position of the in-flight join tree.
struct BoundColumn {
  std::string alias;   // table alias (upper-cased)
  std::string name;    // column name (upper-cased)
  TypeId type = TypeId::kNull;
};

std::string Upper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

class Binder {
 public:
  Binder(const Statement& stmt, Catalog* catalog)
      : stmt_(stmt), catalog_(catalog) {}

  StatusOr<LogicalPtr> Run() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("SELECT needs a FROM clause");
    }
    // Resolve per-table environments.
    std::vector<std::vector<BoundColumn>> table_envs;
    std::vector<LogicalPtr> scans;
    for (const Statement::TableRef& ref : stmt_.from) {
      MURAL_ASSIGN_OR_RETURN(TableInfo * info,
                             catalog_->GetTable(ref.table));
      std::vector<BoundColumn> env;
      for (const Column& col : info->schema.columns()) {
        env.push_back(
            {Upper(ref.alias), Upper(col.name), col.type});
      }
      table_envs.push_back(std::move(env));
      scans.push_back(LScan(info->name));
    }

    bool order_by_applied = false;

    // Flatten WHERE into conjuncts.
    std::vector<SqlExprPtr> conjuncts;
    if (stmt_.where != nullptr) FlattenAnd(stmt_.where, &conjuncts);

    // Push single-table conjuncts into their scans.
    std::vector<SqlExprPtr> remaining;
    for (const SqlExprPtr& conjunct : conjuncts) {
      std::set<size_t> tables;
      CollectTables(*conjunct, table_envs, &tables);
      if (tables.size() <= 1) {
        const size_t t = tables.empty() ? 0 : *tables.begin();
        MURAL_ASSIGN_OR_RETURN(
            ExprPtr bound, BindExpr(*conjunct, {table_envs[t]}, {0}));
        scans[t]->predicate = scans[t]->predicate == nullptr
                                  ? bound
                                  : And(scans[t]->predicate, bound);
      } else {
        remaining.push_back(conjunct);
      }
    }

    // Left-deep join in FROM order, picking a connecting conjunct for each
    // new table.
    LogicalPtr plan = scans[0];
    std::vector<BoundColumn> env = table_envs[0];
    std::vector<size_t> joined{0};
    for (size_t t = 1; t < stmt_.from.size(); ++t) {
      // Find a join conjunct between `joined` and table t.
      int pick = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        std::set<size_t> tables;
        CollectTables(*remaining[i], table_envs, &tables);
        if (tables.size() == 2 && tables.count(t) > 0) {
          const size_t other = *tables.begin() == t ? *tables.rbegin()
                                                    : *tables.begin();
          if (std::find(joined.begin(), joined.end(), other) !=
              joined.end()) {
            pick = static_cast<int>(i);
            break;
          }
        }
      }
      std::vector<BoundColumn> new_env = env;
      new_env.insert(new_env.end(), table_envs[t].begin(),
                     table_envs[t].end());
      if (pick < 0) {
        plan = LJoin(plan, scans[t], nullptr);  // cross product
      } else {
        const SqlExprPtr conjunct = remaining[static_cast<size_t>(pick)];
        remaining.erase(remaining.begin() + pick);
        MURAL_ASSIGN_OR_RETURN(
            plan, BindJoin(*conjunct, plan, scans[t], env, table_envs[t]));
      }
      env = std::move(new_env);
      joined.push_back(t);
    }

    // Residual conjuncts as a top filter.
    for (const SqlExprPtr& conjunct : remaining) {
      MURAL_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindExprFlat(*conjunct, env));
      plan = LFilter(plan, bound);
    }

    // Aggregation.
    const bool has_agg =
        !stmt_.group_by.empty() ||
        std::any_of(stmt_.select_list.begin(), stmt_.select_list.end(),
                    [](const Statement::SelectItem& i) {
                      return i.is_aggregate;
                    });
    if (has_agg) {
      std::vector<size_t> group_cols;
      for (const std::string& g : stmt_.group_by) {
        MURAL_ASSIGN_OR_RETURN(const size_t idx, ResolveName(g, env));
        group_cols.push_back(idx);
      }
      std::vector<AggSpec> aggs;
      for (const Statement::SelectItem& item : stmt_.select_list) {
        if (!item.is_aggregate) continue;
        AggSpec spec;
        spec.kind = item.agg;
        spec.output_name = item.output_name;
        if (item.agg != AggKind::kCountStar) {
          MURAL_ASSIGN_OR_RETURN(
              spec.column,
              ResolveQualified(item.qualifier, item.column, env));
        }
        aggs.push_back(std::move(spec));
      }
      plan = LAggregate(plan, group_cols, aggs);
      // After aggregation the environment is group cols + agg outputs.
      std::vector<BoundColumn> agg_env;
      for (size_t g : group_cols) agg_env.push_back(env[g]);
      for (const Statement::SelectItem& item : stmt_.select_list) {
        if (item.is_aggregate) {
          agg_env.push_back({"", Upper(item.output_name), TypeId::kInt64});
        }
      }
      env = std::move(agg_env);
    } else {
      // ORDER BY resolves against the pre-projection environment (SQL
      // permits sorting on columns the projection then drops), so the
      // sort sits below the projection.
      if (!stmt_.order_by.empty()) {
        std::vector<SortKey> keys;
        for (const auto& [name, asc] : stmt_.order_by) {
          MURAL_ASSIGN_OR_RETURN(const size_t idx, ResolveName(name, env));
          keys.push_back({idx, asc});
        }
        plan = LSort(plan, keys);
        order_by_applied = true;
      }
      // Projection.
      bool star = stmt_.select_list.size() == 1 &&
                  stmt_.select_list[0].is_star;
      if (!star) {
        std::vector<ExprPtr> exprs;
        std::vector<std::string> names;
        std::vector<BoundColumn> new_env;
        for (const Statement::SelectItem& item : stmt_.select_list) {
          MURAL_ASSIGN_OR_RETURN(
              const size_t idx,
              ResolveQualified(item.qualifier, item.column, env));
          exprs.push_back(Col(idx, item.output_name));
          names.push_back(item.output_name);
          BoundColumn bc = env[idx];
          bc.name = Upper(item.output_name);
          new_env.push_back(bc);
        }
        plan = LProject(plan, exprs, names);
        env = std::move(new_env);
      }
    }

    // ORDER BY / LIMIT (aggregate path: sort over the aggregate output).
    if (!stmt_.order_by.empty() && !order_by_applied) {
      std::vector<SortKey> keys;
      for (const auto& [name, asc] : stmt_.order_by) {
        MURAL_ASSIGN_OR_RETURN(const size_t idx, ResolveName(name, env));
        keys.push_back({idx, asc});
      }
      plan = LSort(plan, keys);
    }
    if (stmt_.limit.has_value()) plan = LLimit(plan, *stmt_.limit);
    return plan;
  }

 private:
  static void FlattenAnd(const SqlExprPtr& expr,
                         std::vector<SqlExprPtr>* out) {
    if (expr->kind == SqlExprKind::kAnd) {
      FlattenAnd(expr->lhs, out);
      FlattenAnd(expr->rhs, out);
      return;
    }
    out->push_back(expr);
  }

  /// Which FROM tables does `expr` reference?
  void CollectTables(const SqlExpr& expr,
                     const std::vector<std::vector<BoundColumn>>& envs,
                     std::set<size_t>* out) const {
    if (expr.kind == SqlExprKind::kColRef) {
      for (size_t t = 0; t < envs.size(); ++t) {
        for (const BoundColumn& bc : envs[t]) {
          if ((expr.qualifier.empty() || Upper(expr.qualifier) == bc.alias) &&
              Upper(expr.column) == bc.name) {
            out->insert(t);
            return;  // first match wins
          }
        }
      }
      return;
    }
    if (expr.lhs) CollectTables(*expr.lhs, envs, out);
    if (expr.rhs) CollectTables(*expr.rhs, envs, out);
  }

  StatusOr<size_t> ResolveQualified(const std::string& qualifier,
                                    const std::string& column,
                                    const std::vector<BoundColumn>& env)
      const {
    const std::string q = Upper(qualifier);
    const std::string c = Upper(column);
    for (size_t i = 0; i < env.size(); ++i) {
      if ((q.empty() || env[i].alias == q) && env[i].name == c) return i;
    }
    return Status::NotFound("no such column: " +
                            (qualifier.empty() ? column
                                               : qualifier + "." + column));
  }

  /// Resolves "alias.col" or "col".
  StatusOr<size_t> ResolveName(const std::string& name,
                               const std::vector<BoundColumn>& env) const {
    const std::vector<std::string> parts = Split(name, '.');
    if (parts.size() == 2) return ResolveQualified(parts[0], parts[1], env);
    return ResolveQualified("", name, env);
  }

  /// Binds an expression whose references live in one combined env made
  /// of the given per-table envs with base offsets.
  StatusOr<ExprPtr> BindExpr(const SqlExpr& expr,
                             const std::vector<std::vector<BoundColumn>>&
                                 envs,
                             const std::vector<size_t>& offsets) const {
    std::vector<BoundColumn> flat;
    for (const auto& env : envs) {
      flat.insert(flat.end(), env.begin(), env.end());
    }
    (void)offsets;
    return BindExprFlat(expr, flat);
  }

  StatusOr<ExprPtr> BindExprFlat(const SqlExpr& expr,
                                 const std::vector<BoundColumn>& env) const {
    switch (expr.kind) {
      case SqlExprKind::kLiteral:
        return Lit(expr.literal);
      case SqlExprKind::kColRef: {
        MURAL_ASSIGN_OR_RETURN(
            const size_t idx,
            ResolveQualified(expr.qualifier, expr.column, env));
        return Col(idx, expr.column);
      }
      case SqlExprKind::kCompare: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        MURAL_ASSIGN_OR_RETURN(ExprPtr r, BindExprFlat(*expr.rhs, env));
        return Cmp(expr.cmp, std::move(l), std::move(r));
      }
      case SqlExprKind::kAnd: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        MURAL_ASSIGN_OR_RETURN(ExprPtr r, BindExprFlat(*expr.rhs, env));
        return And(std::move(l), std::move(r));
      }
      case SqlExprKind::kOr: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        MURAL_ASSIGN_OR_RETURN(ExprPtr r, BindExprFlat(*expr.rhs, env));
        return Or(std::move(l), std::move(r));
      }
      case SqlExprKind::kNot: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        return Not(std::move(l));
      }
      case SqlExprKind::kLexEqual: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        MURAL_ASSIGN_OR_RETURN(ExprPtr r, BindExprFlat(*expr.rhs, env));
        ExprPtr out = LexEq(l, r, expr.threshold);
        if (!expr.langs.empty()) {
          out = And(out, LangIn(l, expr.langs));
        }
        return out;
      }
      case SqlExprKind::kSemEqual: {
        MURAL_ASSIGN_OR_RETURN(ExprPtr l, BindExprFlat(*expr.lhs, env));
        MURAL_ASSIGN_OR_RETURN(ExprPtr r, BindExprFlat(*expr.rhs, env));
        // A plain-text literal on the RHS composes as English UniText.
        if (const auto* lit = dynamic_cast<const LiteralExpr*>(r.get())) {
          if (lit->value().type() == TypeId::kText) {
            r = Lit(Value::Uni(lit->value().text(), lang::kEnglish));
          }
        }
        ExprPtr out = SemEq(l, r);
        if (!expr.langs.empty()) {
          out = And(out, LangIn(l, expr.langs));
        }
        return out;
      }
    }
    return Status::Internal("unknown SQL expression kind");
  }

  /// Binds a two-table join conjunct into the proper logical join node.
  StatusOr<LogicalPtr> BindJoin(const SqlExpr& conjunct, LogicalPtr left,
                                LogicalPtr right,
                                const std::vector<BoundColumn>& left_env,
                                const std::vector<BoundColumn>& right_env)
      const {
    // col-vs-col predicates become specialized joins.
    const SqlExpr* l = conjunct.lhs.get();
    const SqlExpr* r = conjunct.rhs.get();
    if (l != nullptr && r != nullptr &&
        l->kind == SqlExprKind::kColRef &&
        r->kind == SqlExprKind::kColRef &&
        (conjunct.kind == SqlExprKind::kCompare
             ? conjunct.cmp == CompareOp::kEq
             : conjunct.kind == SqlExprKind::kLexEqual ||
                   conjunct.kind == SqlExprKind::kSemEqual)) {
      // Which side references the left subtree?
      StatusOr<size_t> ll = ResolveQualified(l->qualifier, l->column,
                                             left_env);
      const bool l_on_left = ll.ok();
      const SqlExpr* left_ref = l_on_left ? l : r;
      const SqlExpr* right_ref = l_on_left ? r : l;
      MURAL_ASSIGN_OR_RETURN(
          const size_t lcol,
          ResolveQualified(left_ref->qualifier, left_ref->column, left_env));
      MURAL_ASSIGN_OR_RETURN(const size_t rcol,
                             ResolveQualified(right_ref->qualifier,
                                              right_ref->column, right_env));
      switch (conjunct.kind) {
        case SqlExprKind::kCompare:
          return LEquiJoin(left, right, lcol, rcol);
        case SqlExprKind::kLexEqual: {
          LogicalPtr join = LPsiJoin(left, right, lcol, rcol,
                                     conjunct.threshold);
          if (!conjunct.langs.empty()) {
            join = LFilter(join, LangIn(Col(lcol, left_ref->column),
                                        conjunct.langs));
          }
          return join;
        }
        case SqlExprKind::kSemEqual: {
          // NOTE: Omega does not commute (Table 1) — the probe side is
          // the syntactic LHS of the predicate.  When the predicate reads
          // "right-table SemEQUAL left-table" we keep operand roles by
          // falling through to a generic join with the bound predicate
          // (cannot swap children without permuting the output schema).
          if (!l_on_left) break;
          LogicalPtr join = LOmegaJoin(left, right, lcol, rcol);
          if (!conjunct.langs.empty()) {
            join = LFilter(join, LangIn(Col(lcol, left_ref->column),
                                        conjunct.langs));
          }
          return join;
        }
        default:
          break;
      }
    }
    // Fallback: generic join with a bound predicate over the concatenated
    // environment.
    std::vector<BoundColumn> env = left_env;
    env.insert(env.end(), right_env.begin(), right_env.end());
    MURAL_ASSIGN_OR_RETURN(ExprPtr bound, BindExprFlat(conjunct, env));
    return LJoin(left, right, bound);
  }

  const Statement& stmt_;
  Catalog* catalog_;
};

}  // namespace

StatusOr<LogicalPtr> Bind(const Statement& stmt, Catalog* catalog) {
  if (stmt.kind != StatementKind::kSelect &&
      stmt.kind != StatementKind::kExplain) {
    return Status::InvalidArgument("only SELECT statements can be bound");
  }
  Binder binder(stmt, catalog);
  return binder.Run();
}

}  // namespace sql
}  // namespace mural
