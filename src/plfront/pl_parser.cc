#include "plfront/pl_parser.h"

#include <cctype>

namespace mural {
namespace pl {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kOp,      // punctuation / operators, text in `text`
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // upper-cased for idents
  double number = 0;
  bool is_float = false;
  std::string str;    // string literal payload
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= src_.size()) break;
      const char c = src_[pos_];
      Token tok;
      tok.line = line_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokKind::kIdent;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          char u = src_[pos_++];
          if (u >= 'a' && u <= 'z') u = static_cast<char>(u - 'a' + 'A');
          tok.text.push_back(u);
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        tok.kind = TokKind::kNumber;
        std::string num;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          num.push_back(src_[pos_++]);
        }
        // `1..5` must lex as 1, '..', 5 — only consume '.' for a float if
        // it is not followed by another '.'.
        if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
            src_[pos_ + 1] != '.') {
          tok.is_float = true;
          num.push_back(src_[pos_++]);
          while (pos_ < src_.size() &&
                 std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
            num.push_back(src_[pos_++]);
          }
        }
        tok.number = std::stod(num);
      } else if (c == '\'') {
        tok.kind = TokKind::kString;
        ++pos_;
        while (pos_ < src_.size()) {
          if (src_[pos_] == '\'') {
            if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '\'') {
              tok.str.push_back('\'');  // doubled quote escape
              pos_ += 2;
              continue;
            }
            break;
          }
          tok.str.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) {
          return Status::InvalidArgument("unterminated PL string literal");
        }
        ++pos_;  // closing quote
      } else {
        tok.kind = TokKind::kOp;
        // Multi-char operators first.
        static const char* kTwo[] = {":=", "<=", ">=", "<>", "!=",
                                     "..", "||"};
        bool matched = false;
        for (const char* two : kTwo) {
          if (src_.compare(pos_, 2, two) == 0) {
            tok.text = two;
            pos_ += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          tok.text = std::string(1, c);
          ++pos_;
        }
      }
      out.push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.line = line_;
    out.push_back(end);
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsTypeName(const std::string& ident) {
  return ident == "INT" || ident == "INTEGER" || ident == "TEXT" ||
         ident == "VARCHAR" || ident == "BOOL" || ident == "BOOLEAN" ||
         ident == "NUMBER" || ident == "FLOAT" || ident == "ARRAY";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  StatusOr<FunctionLibrary> Run() {
    FunctionLibrary lib;
    while (!AtEnd()) {
      MURAL_RETURN_IF_ERROR(ExpectIdent("FUNCTION"));
      PlFunction fn;
      MURAL_ASSIGN_OR_RETURN(fn.name, TakeIdent());
      MURAL_RETURN_IF_ERROR(ExpectOp("("));
      if (!PeekOp(")")) {
        while (true) {
          MURAL_ASSIGN_OR_RETURN(std::string param, TakeIdent());
          fn.params.push_back(param);
          if (PeekIdentType()) Advance();  // optional type
          if (PeekOp(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      MURAL_RETURN_IF_ERROR(ExpectIdent("RETURNS"));
      if (PeekIdentType() || Peek().kind == TokKind::kIdent) Advance();
      // IS | AS
      if (PeekIdent("IS") || PeekIdent("AS")) Advance();
      if (PeekIdent("DECLARE")) Advance();
      // declarations until BEGIN
      while (!PeekIdent("BEGIN")) {
        PlDecl decl;
        MURAL_ASSIGN_OR_RETURN(decl.name, TakeIdent());
        if (PeekIdentType()) Advance();
        if (PeekOp(":=")) {
          Advance();
          MURAL_ASSIGN_OR_RETURN(decl.init, ParseExpr());
        }
        MURAL_RETURN_IF_ERROR(ExpectOp(";"));
        fn.decls.push_back(std::move(decl));
      }
      MURAL_RETURN_IF_ERROR(ExpectIdent("BEGIN"));
      MURAL_ASSIGN_OR_RETURN(fn.body, ParseStatementsUntilEnd());
      MURAL_RETURN_IF_ERROR(ExpectIdent("END"));
      if (PeekOp(";")) Advance();
      std::string key = fn.name;
      lib[key] = std::move(fn);
    }
    return lib;
  }

 private:
  // --------------------------------------------------------- statements

  StatusOr<std::vector<PlStmtPtr>> ParseStatementsUntilEnd() {
    std::vector<PlStmtPtr> out;
    while (!PeekIdent("END") && !PeekIdent("ELSIF") && !PeekIdent("ELSE") &&
           !AtEnd()) {
      MURAL_ASSIGN_OR_RETURN(PlStmtPtr stmt, ParseStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

  StatusOr<PlStmtPtr> ParseStatement() {
    if (PeekIdent("IF")) return ParseIf();
    if (PeekIdent("WHILE")) return ParseWhile();
    if (PeekIdent("FOR")) return ParseFor();
    if (PeekIdent("RETURN")) {
      Advance();
      auto stmt = std::make_unique<PlStmt>();
      stmt->kind = StmtKind::kReturn;
      if (!PeekOp(";")) {
        MURAL_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      MURAL_RETURN_IF_ERROR(ExpectOp(";"));
      return stmt;
    }
    // assignment or bare call
    MURAL_ASSIGN_OR_RETURN(std::string name, TakeIdent());
    if (PeekOp("(")) {
      // bare call statement
      auto stmt = std::make_unique<PlStmt>();
      stmt->kind = StmtKind::kExprStmt;
      MURAL_ASSIGN_OR_RETURN(stmt->expr, ParseCallAfterName(name));
      MURAL_RETURN_IF_ERROR(ExpectOp(";"));
      return stmt;
    }
    auto stmt = std::make_unique<PlStmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->target = name;
    if (PeekOp("[")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(stmt->index, ParseExpr());
      MURAL_RETURN_IF_ERROR(ExpectOp("]"));
    }
    MURAL_RETURN_IF_ERROR(ExpectOp(":="));
    MURAL_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    MURAL_RETURN_IF_ERROR(ExpectOp(";"));
    return stmt;
  }

  StatusOr<PlStmtPtr> ParseIf() {
    MURAL_RETURN_IF_ERROR(ExpectIdent("IF"));
    auto stmt = std::make_unique<PlStmt>();
    stmt->kind = StmtKind::kIf;
    MURAL_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    MURAL_RETURN_IF_ERROR(ExpectIdent("THEN"));
    MURAL_ASSIGN_OR_RETURN(stmt->then_body, ParseStatementsUntilEnd());
    while (PeekIdent("ELSIF")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr cond, ParseExpr());
      MURAL_RETURN_IF_ERROR(ExpectIdent("THEN"));
      MURAL_ASSIGN_OR_RETURN(auto body, ParseStatementsUntilEnd());
      stmt->elsifs.emplace_back(std::move(cond), std::move(body));
    }
    if (PeekIdent("ELSE")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(stmt->else_body, ParseStatementsUntilEnd());
    }
    MURAL_RETURN_IF_ERROR(ExpectIdent("END"));
    MURAL_RETURN_IF_ERROR(ExpectIdent("IF"));
    MURAL_RETURN_IF_ERROR(ExpectOp(";"));
    return stmt;
  }

  StatusOr<PlStmtPtr> ParseWhile() {
    MURAL_RETURN_IF_ERROR(ExpectIdent("WHILE"));
    auto stmt = std::make_unique<PlStmt>();
    stmt->kind = StmtKind::kWhile;
    MURAL_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    MURAL_RETURN_IF_ERROR(ExpectIdent("LOOP"));
    MURAL_ASSIGN_OR_RETURN(stmt->then_body, ParseStatementsUntilEnd());
    MURAL_RETURN_IF_ERROR(ExpectIdent("END"));
    MURAL_RETURN_IF_ERROR(ExpectIdent("LOOP"));
    MURAL_RETURN_IF_ERROR(ExpectOp(";"));
    return stmt;
  }

  StatusOr<PlStmtPtr> ParseFor() {
    MURAL_RETURN_IF_ERROR(ExpectIdent("FOR"));
    auto stmt = std::make_unique<PlStmt>();
    stmt->kind = StmtKind::kFor;
    MURAL_ASSIGN_OR_RETURN(stmt->loop_var, TakeIdent());
    MURAL_RETURN_IF_ERROR(ExpectIdent("IN"));
    MURAL_ASSIGN_OR_RETURN(stmt->for_lo, ParseExpr());
    MURAL_RETURN_IF_ERROR(ExpectOp(".."));
    MURAL_ASSIGN_OR_RETURN(stmt->for_hi, ParseExpr());
    MURAL_RETURN_IF_ERROR(ExpectIdent("LOOP"));
    MURAL_ASSIGN_OR_RETURN(stmt->then_body, ParseStatementsUntilEnd());
    MURAL_RETURN_IF_ERROR(ExpectIdent("END"));
    MURAL_RETURN_IF_ERROR(ExpectIdent("LOOP"));
    MURAL_RETURN_IF_ERROR(ExpectOp(";"));
    return stmt;
  }

  // -------------------------------------------------------- expressions

  StatusOr<PlExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<PlExprPtr> ParseOr() {
    MURAL_ASSIGN_OR_RETURN(PlExprPtr lhs, ParseAnd());
    while (PeekIdent("OR")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<PlExprPtr> ParseAnd() {
    MURAL_ASSIGN_OR_RETURN(PlExprPtr lhs, ParseNot());
    while (PeekIdent("AND")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<PlExprPtr> ParseNot() {
    if (PeekIdent("NOT")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr operand, ParseNot());
      auto expr = std::make_unique<PlExpr>();
      expr->kind = ExprKind::kUnary;
      expr->un_op = UnOp::kNot;
      expr->lhs = std::move(operand);
      return expr;
    }
    return ParseComparison();
  }

  StatusOr<PlExprPtr> ParseComparison() {
    MURAL_ASSIGN_OR_RETURN(PlExprPtr lhs, ParseAdditive());
    BinOp op;
    if (PeekOp("=")) op = BinOp::kEq;
    else if (PeekOp("<>") || PeekOp("!=")) op = BinOp::kNe;
    else if (PeekOp("<=")) op = BinOp::kLe;
    else if (PeekOp(">=")) op = BinOp::kGe;
    else if (PeekOp("<")) op = BinOp::kLt;
    else if (PeekOp(">")) op = BinOp::kGt;
    else return lhs;
    Advance();
    MURAL_ASSIGN_OR_RETURN(PlExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  StatusOr<PlExprPtr> ParseAdditive() {
    MURAL_ASSIGN_OR_RETURN(PlExprPtr lhs, ParseMultiplicative());
    while (PeekOp("+") || PeekOp("-") || PeekOp("||")) {
      const BinOp op = PeekOp("+")   ? BinOp::kAdd
                       : PeekOp("-") ? BinOp::kSub
                                     : BinOp::kConcat;
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<PlExprPtr> ParseMultiplicative() {
    MURAL_ASSIGN_OR_RETURN(PlExprPtr lhs, ParseUnary());
    while (PeekOp("*") || PeekOp("/") || PeekOp("%") || PeekIdent("MOD")) {
      const BinOp op = PeekOp("*")   ? BinOp::kMul
                       : PeekOp("/") ? BinOp::kDiv
                                     : BinOp::kMod;
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<PlExprPtr> ParseUnary() {
    if (PeekOp("-")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr operand, ParseUnary());
      auto expr = std::make_unique<PlExpr>();
      expr->kind = ExprKind::kUnary;
      expr->un_op = UnOp::kNeg;
      expr->lhs = std::move(operand);
      return expr;
    }
    return ParsePrimary();
  }

  StatusOr<PlExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kNumber) {
      Advance();
      auto expr = std::make_unique<PlExpr>();
      expr->kind = ExprKind::kLiteral;
      expr->literal = tok.is_float
                          ? PlValue(tok.number)
                          : PlValue(static_cast<int64_t>(tok.number));
      return expr;
    }
    if (tok.kind == TokKind::kString) {
      Advance();
      auto expr = std::make_unique<PlExpr>();
      expr->kind = ExprKind::kLiteral;
      expr->literal = PlValue(tok.str);
      return expr;
    }
    if (PeekOp("(")) {
      Advance();
      MURAL_ASSIGN_OR_RETURN(PlExprPtr inner, ParseExpr());
      MURAL_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "TRUE" || tok.text == "FALSE") {
        Advance();
        auto expr = std::make_unique<PlExpr>();
        expr->kind = ExprKind::kLiteral;
        expr->literal = PlValue(tok.text == "TRUE");
        return expr;
      }
      if (tok.text == "NULL") {
        Advance();
        auto expr = std::make_unique<PlExpr>();
        expr->kind = ExprKind::kLiteral;
        return expr;
      }
      std::string name = tok.text;
      Advance();
      PlExprPtr expr;
      if (PeekOp("(")) {
        MURAL_ASSIGN_OR_RETURN(expr, ParseCallAfterName(name));
      } else {
        expr = std::make_unique<PlExpr>();
        expr->kind = ExprKind::kVar;
        expr->name = name;
      }
      while (PeekOp("[")) {
        Advance();
        MURAL_ASSIGN_OR_RETURN(PlExprPtr index, ParseExpr());
        MURAL_RETURN_IF_ERROR(ExpectOp("]"));
        auto indexed = std::make_unique<PlExpr>();
        indexed->kind = ExprKind::kIndex;
        indexed->lhs = std::move(expr);
        indexed->rhs = std::move(index);
        expr = std::move(indexed);
      }
      return expr;
    }
    return Status::InvalidArgument("PL parse error near line " +
                                   std::to_string(tok.line));
  }

  StatusOr<PlExprPtr> ParseCallAfterName(const std::string& name) {
    MURAL_RETURN_IF_ERROR(ExpectOp("("));
    auto expr = std::make_unique<PlExpr>();
    expr->kind = ExprKind::kCall;
    expr->name = name;
    if (!PeekOp(")")) {
      while (true) {
        MURAL_ASSIGN_OR_RETURN(PlExprPtr arg, ParseExpr());
        expr->args.push_back(std::move(arg));
        if (PeekOp(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    MURAL_RETURN_IF_ERROR(ExpectOp(")"));
    return expr;
  }

  static PlExprPtr MakeBinary(BinOp op, PlExprPtr lhs, PlExprPtr rhs) {
    auto expr = std::make_unique<PlExpr>();
    expr->kind = ExprKind::kBinary;
    expr->bin_op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  // ------------------------------------------------------------ helpers

  const Token& Peek() const { return toks_[pos_]; }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool PeekIdent(const char* ident) const {
    return Peek().kind == TokKind::kIdent && Peek().text == ident;
  }
  bool PeekIdentType() const {
    return Peek().kind == TokKind::kIdent && IsTypeName(Peek().text);
  }
  bool PeekOp(const char* op) const {
    return Peek().kind == TokKind::kOp && Peek().text == op;
  }

  Status ExpectIdent(const char* ident) {
    if (!PeekIdent(ident)) {
      return Status::InvalidArgument(
          std::string("PL parse error: expected ") + ident + " near line " +
          std::to_string(Peek().line) + " (got '" + Peek().text + "')");
    }
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> TakeIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(
          "PL parse error: expected identifier near line " +
          std::to_string(Peek().line));
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Status ExpectOp(const char* op) {
    if (!PeekOp(op)) {
      return Status::InvalidArgument(
          std::string("PL parse error: expected '") + op + "' near line " +
          std::to_string(Peek().line) + " (got '" + Peek().text + "')");
    }
    Advance();
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<FunctionLibrary> ParseProgram(std::string_view source) {
  Lexer lexer(source);
  MURAL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace pl
}  // namespace mural
