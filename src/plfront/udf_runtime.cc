#include "plfront/udf_runtime.h"

#include "common/coding.h"

namespace mural {
namespace pl {

const char* StockUdfLibrarySource() {
  return R"PL(
-- Levenshtein edit distance between two phoneme strings, full dynamic
-- program with a per-row cut-off at threshold k.  This is the UDF form of
-- the paper's Figure-3 matching step.
FUNCTION EDITDIST(a TEXT, b TEXT, k INT) RETURNS INT AS
  m INT := LENGTH(a);
  n INT := LENGTH(b);
  prev ARRAY;
  cur ARRAY;
  i INT;
  j INT;
  cost INT;
  best INT;
BEGIN
  IF m - n > k OR n - m > k THEN
    RETURN k + 1;
  END IF;
  IF m = 0 THEN RETURN n; END IF;
  IF n = 0 THEN RETURN m; END IF;
  prev := ARRAY(n + 1, 0);
  cur := ARRAY(n + 1, 0);
  j := 0;
  WHILE j <= n LOOP
    prev[j] := j;
    j := j + 1;
  END LOOP;
  i := 1;
  WHILE i <= m LOOP
    cur[0] := i;
    best := i;
    j := 1;
    WHILE j <= n LOOP
      IF CODE(a, i) = CODE(b, j) THEN
        cost := 0;
      ELSE
        cost := 1;
      END IF;
      cur[j] := MIN(MIN(prev[j] + 1, cur[j - 1] + 1), prev[j - 1] + cost);
      IF cur[j] < best THEN
        best := cur[j];
      END IF;
      j := j + 1;
    END LOOP;
    IF best > k THEN
      RETURN k + 1;
    END IF;
    j := 0;
    WHILE j <= n LOOP
      prev[j] := cur[j];
      j := j + 1;
    END LOOP;
    i := i + 1;
  END LOOP;
  IF prev[n] <= k THEN
    RETURN prev[n];
  END IF;
  RETURN k + 1;
END;

-- Boolean LexEQUAL form.
FUNCTION LEXMATCH(a TEXT, b TEXT, k INT) RETURNS BOOL AS
BEGIN
  IF EDITDIST(a, b, k) <= k THEN
    RETURN TRUE;
  END IF;
  RETURN FALSE;
END;

-- Transitive closure of the synsets named by (lemma, lang), expanded
-- iteratively through SQL_CHILDREN / SQL_EQUIVALENTS host statements and
-- tracked in a TEMPSET (the temp table + index of a PL/SQL version).
-- Returns the tempset handle; caller frees it.
FUNCTION TCLOSURE(lemma TEXT, lang INT, follow INT) RETURNS INT AS
  visited INT;
  stack ARRAY;
  roots ARRAY;
  kids ARRAY;
  i INT;
  node INT;
BEGIN
  visited := TEMPSET_NEW();
  stack := ARRAY(0);
  roots := SQL_LOOKUP(lemma, lang);
  i := 0;
  WHILE i < LENGTH(roots) LOOP
    IF TEMPSET_ADD(visited, roots[i]) THEN
      APPEND(stack, roots[i]);
    END IF;
    i := i + 1;
  END LOOP;
  WHILE LENGTH(stack) > 0 LOOP
    node := POP(stack);
    kids := SQL_CHILDREN(node);
    i := 0;
    WHILE i < LENGTH(kids) LOOP
      IF TEMPSET_ADD(visited, kids[i]) THEN
        APPEND(stack, kids[i]);
      END IF;
      i := i + 1;
    END LOOP;
    IF follow = 1 THEN
      kids := SQL_EQUIVALENTS(node);
      i := 0;
      WHILE i < LENGTH(kids) LOOP
        IF TEMPSET_ADD(visited, kids[i]) THEN
          APPEND(stack, kids[i]);
        END IF;
        i := i + 1;
      END LOOP;
    END IF;
  END LOOP;
  RETURN visited;
END;

-- Size of the closure of (lemma, lang).
FUNCTION CLOSURE_SIZE(lemma TEXT, lang INT, follow INT) RETURNS INT AS
  h INT;
  n INT;
BEGIN
  h := TCLOSURE(lemma, lang, follow);
  n := TEMPSET_SIZE(h);
  TEMPSET_FREE(h);
  RETURN n;
END;

-- SemEQUAL: is some sense of (llemma, llang) inside the closure of
-- (rlemma, rlang)?
FUNCTION SEM_MATCH(llemma TEXT, llang INT, rlemma TEXT, rlang INT)
RETURNS BOOL AS
  h INT;
  ids ARRAY;
  i INT;
  found BOOL := FALSE;
BEGIN
  ids := SQL_LOOKUP(llemma, llang);
  IF LENGTH(ids) = 0 THEN
    RETURN FALSE;
  END IF;
  h := TCLOSURE(rlemma, rlang, 1);
  i := 0;
  WHILE i < LENGTH(ids) LOOP
    IF TEMPSET_CONTAINS(h, ids[i]) THEN
      found := TRUE;
    END IF;
    i := i + 1;
  END LOOP;
  TEMPSET_FREE(h);
  RETURN found;
END;
)PL";
}

StatusOr<std::unique_ptr<UdfRuntime>> UdfRuntime::Create() {
  MURAL_ASSIGN_OR_RETURN(FunctionLibrary lib,
                         ParseProgram(StockUdfLibrarySource()));
  auto interp = std::make_unique<Interpreter>(std::move(lib));
  return std::unique_ptr<UdfRuntime>(new UdfRuntime(std::move(interp)));
}

std::string UdfRuntime::SerializeArgs(const std::vector<PlValue>& args) {
  std::string wire;
  PutU32(&wire, static_cast<uint32_t>(args.size()));
  for (const PlValue& v : args) {
    if (v.is_null()) {
      PutU8(&wire, 0);
    } else if (v.is_bool()) {
      PutU8(&wire, 1);
      PutU8(&wire, v.AsBool() ? 1 : 0);
    } else if (v.is_int()) {
      PutU8(&wire, 2);
      PutU64(&wire, static_cast<uint64_t>(v.AsInt()));
    } else if (v.is_double()) {
      PutU8(&wire, 3);
      PutF64(&wire, v.AsDouble());
    } else if (v.is_string()) {
      PutU8(&wire, 4);
      PutLengthPrefixed(&wire, v.AsString());
    } else {
      // Arrays do not cross the wire (like PL/SQL collection params in
      // remote calls): encode as null.
      PutU8(&wire, 0);
    }
  }
  return wire;
}

StatusOr<std::vector<PlValue>> UdfRuntime::DeserializeArgs(
    std::string_view wire) {
  Decoder dec(wire);
  uint32_t count = 0;
  MURAL_RETURN_IF_ERROR(dec.GetU32(&count));
  // Every argument needs at least its one-byte tag, so a count larger
  // than the remaining payload is corrupt — reject before reserving
  // (a garbage count must not drive allocation).
  if (count > dec.remaining()) {
    return Status::Corruption("wire argument count exceeds payload");
  }
  std::vector<PlValue> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t tag = 0;
    MURAL_RETURN_IF_ERROR(dec.GetU8(&tag));
    switch (tag) {
      case 0:
        out.emplace_back();
        break;
      case 1: {
        uint8_t b = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU8(&b));
        out.emplace_back(b != 0);
        break;
      }
      case 2: {
        uint64_t v = 0;
        MURAL_RETURN_IF_ERROR(dec.GetU64(&v));
        out.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case 3: {
        double d = 0;
        MURAL_RETURN_IF_ERROR(dec.GetF64(&d));
        out.emplace_back(d);
        break;
      }
      case 4: {
        std::string s;
        MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&s));
        out.emplace_back(std::move(s));
        break;
      }
      default:
        return Status::Corruption("bad wire tag");
    }
  }
  return out;
}

StatusOr<PlValue> UdfRuntime::CallWire(const std::string& function,
                                       const std::vector<PlValue>& args) {
  ++stats_.calls;
  // Outbound: serialize, copy, deserialize — the process-boundary copies
  // a UDF in a separate execution space pays (paper §5.3: "overheads due
  // to the UDF invocations and execution in a separate process space").
  const std::string wire = SerializeArgs(args);
  stats_.wire_bytes += wire.size();
  MURAL_ASSIGN_OR_RETURN(const std::vector<PlValue> received,
                         DeserializeArgs(wire));
  MURAL_ASSIGN_OR_RETURN(PlValue result,
                         interpreter_->Call(function, received));
  // Inbound: result crosses back.
  const std::string back = SerializeArgs({result});
  stats_.wire_bytes += back.size();
  MURAL_ASSIGN_OR_RETURN(std::vector<PlValue> round,
                         DeserializeArgs(back));
  return round.empty() ? PlValue() : round[0];
}

}  // namespace pl
}  // namespace mural
