#include "plfront/pl_interpreter.h"

#include <algorithm>
#include <cmath>

namespace mural {
namespace pl {

namespace {

constexpr int kMaxDepth = 64;

StatusOr<PlValue> Compare(BinOp op, const PlValue& a, const PlValue& b) {
  int c;
  if (a.is_string() && b.is_string()) {
    c = a.AsString().compare(b.AsString());
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else if (a.is_numeric() && b.is_numeric()) {
    const double d = a.AsDouble() - b.AsDouble();
    c = d < 0 ? -1 : (d > 0 ? 1 : 0);
  } else if (a.is_null() || b.is_null()) {
    return PlValue();  // NULL propagates
  } else {
    return Status::InvalidArgument("PL: incomparable values");
  }
  switch (op) {
    case BinOp::kEq:
      return PlValue(c == 0);
    case BinOp::kNe:
      return PlValue(c != 0);
    case BinOp::kLt:
      return PlValue(c < 0);
    case BinOp::kLe:
      return PlValue(c <= 0);
    case BinOp::kGt:
      return PlValue(c > 0);
    case BinOp::kGe:
      return PlValue(c >= 0);
    default:
      return Status::Internal("not a comparison");
  }
}

}  // namespace

void Interpreter::RegisterHost(const std::string& name, HostFunction fn) {
  std::string key = name;
  for (char& c : key) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  host_[key] = std::move(fn);
}

StatusOr<PlValue> Interpreter::Call(const std::string& name,
                                    const std::vector<PlValue>& args) {
  std::string key = name;
  for (char& c : key) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  auto it = library_.find(key);
  if (it == library_.end()) {
    return Status::NotFound("no PL function: " + name);
  }
  const PlFunction& fn = it->second;
  if (args.size() != fn.params.size()) {
    return Status::InvalidArgument("PL function " + name + " expects " +
                                   std::to_string(fn.params.size()) +
                                   " args");
  }
  if (++depth_ > kMaxDepth) {
    --depth_;
    return Status::ResourceExhausted("PL recursion too deep");
  }
  ++stats_.function_calls;
  Scope scope;
  for (size_t i = 0; i < args.size(); ++i) {
    scope.vars[fn.params[i]] = args[i];
  }
  for (const PlDecl& decl : fn.decls) {
    PlValue init;
    if (decl.init != nullptr) {
      StatusOr<PlValue> v = Eval(*decl.init, &scope);
      if (!v.ok()) {
        --depth_;
        return v.status();
      }
      init = *v;
    }
    scope.vars[decl.name] = std::move(init);
  }
  Flow flow;
  const Status st = ExecBlock(fn.body, &scope, &flow);
  --depth_;
  MURAL_RETURN_IF_ERROR(st);
  if (!flow.returned) {
    return Status::InvalidArgument("PL function " + name +
                                   " fell off the end without RETURN");
  }
  return flow.value;
}

Status Interpreter::ExecBlock(const std::vector<PlStmtPtr>& body,
                              Scope* scope, Flow* flow) {
  for (const PlStmtPtr& stmt : body) {
    MURAL_RETURN_IF_ERROR(ExecStmt(*stmt, scope, flow));
    if (flow->returned) return Status::OK();
  }
  return Status::OK();
}

Status Interpreter::ExecStmt(const PlStmt& stmt, Scope* scope, Flow* flow) {
  ++stats_.statements;
  switch (stmt.kind) {
    case StmtKind::kAssign: {
      MURAL_ASSIGN_OR_RETURN(PlValue value, Eval(*stmt.expr, scope));
      if (stmt.index == nullptr) {
        scope->vars[stmt.target] = std::move(value);
        return Status::OK();
      }
      auto it = scope->vars.find(stmt.target);
      if (it == scope->vars.end() || !it->second.is_array()) {
        return Status::InvalidArgument("PL: '" + stmt.target +
                                       "' is not an array");
      }
      MURAL_ASSIGN_OR_RETURN(const PlValue idx, Eval(*stmt.index, scope));
      const int64_t i = idx.AsInt();
      auto& vec = *it->second.AsArray();
      if (i < 0 || static_cast<size_t>(i) >= vec.size()) {
        return Status::OutOfRange("PL: array index " + std::to_string(i) +
                                  " out of bounds");
      }
      vec[static_cast<size_t>(i)] = std::move(value);
      return Status::OK();
    }
    case StmtKind::kIf: {
      MURAL_ASSIGN_OR_RETURN(const PlValue cond, Eval(*stmt.expr, scope));
      if (!cond.is_null() && cond.AsBool()) {
        return ExecBlock(stmt.then_body, scope, flow);
      }
      for (const auto& [expr, body] : stmt.elsifs) {
        MURAL_ASSIGN_OR_RETURN(const PlValue c2, Eval(*expr, scope));
        if (!c2.is_null() && c2.AsBool()) {
          return ExecBlock(body, scope, flow);
        }
      }
      return ExecBlock(stmt.else_body, scope, flow);
    }
    case StmtKind::kWhile: {
      while (true) {
        MURAL_ASSIGN_OR_RETURN(const PlValue cond, Eval(*stmt.expr, scope));
        if (cond.is_null() || !cond.AsBool()) break;
        MURAL_RETURN_IF_ERROR(ExecBlock(stmt.then_body, scope, flow));
        if (flow->returned) break;
      }
      return Status::OK();
    }
    case StmtKind::kFor: {
      MURAL_ASSIGN_OR_RETURN(const PlValue lo, Eval(*stmt.for_lo, scope));
      MURAL_ASSIGN_OR_RETURN(const PlValue hi, Eval(*stmt.for_hi, scope));
      for (int64_t i = lo.AsInt(); i <= hi.AsInt(); ++i) {
        scope->vars[stmt.loop_var] = PlValue(i);
        MURAL_RETURN_IF_ERROR(ExecBlock(stmt.then_body, scope, flow));
        if (flow->returned) break;
      }
      return Status::OK();
    }
    case StmtKind::kReturn: {
      flow->returned = true;
      if (stmt.expr != nullptr) {
        MURAL_ASSIGN_OR_RETURN(flow->value, Eval(*stmt.expr, scope));
      } else {
        flow->value = PlValue();
      }
      return Status::OK();
    }
    case StmtKind::kExprStmt: {
      MURAL_ASSIGN_OR_RETURN(const PlValue ignored, Eval(*stmt.expr, scope));
      (void)ignored;
      return Status::OK();
    }
  }
  return Status::Internal("unknown PL statement kind");
}

StatusOr<PlValue> Interpreter::Eval(const PlExpr& expr, Scope* scope) {
  ++stats_.expressions;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kVar: {
      auto it = scope->vars.find(expr.name);
      if (it == scope->vars.end()) {
        return Status::NotFound("PL: unknown variable " + expr.name);
      }
      return it->second;
    }
    case ExprKind::kIndex: {
      MURAL_ASSIGN_OR_RETURN(const PlValue base, Eval(*expr.lhs, scope));
      MURAL_ASSIGN_OR_RETURN(const PlValue idx, Eval(*expr.rhs, scope));
      if (!base.is_array()) {
        return Status::InvalidArgument("PL: indexing a non-array");
      }
      const int64_t i = idx.AsInt();
      const auto& vec = *base.AsArray();
      if (i < 0 || static_cast<size_t>(i) >= vec.size()) {
        return Status::OutOfRange("PL: array index " + std::to_string(i) +
                                  " out of bounds");
      }
      return vec[static_cast<size_t>(i)];
    }
    case ExprKind::kUnary: {
      MURAL_ASSIGN_OR_RETURN(const PlValue v, Eval(*expr.lhs, scope));
      if (v.is_null()) return PlValue();
      if (expr.un_op == UnOp::kNeg) {
        if (v.is_int()) return PlValue(-v.AsInt());
        return PlValue(-v.AsDouble());
      }
      return PlValue(!v.AsBool());
    }
    case ExprKind::kBinary: {
      // Short-circuit logic first.
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        MURAL_ASSIGN_OR_RETURN(const PlValue l, Eval(*expr.lhs, scope));
        if (expr.bin_op == BinOp::kAnd) {
          if (!l.is_null() && !l.AsBool()) return PlValue(false);
          MURAL_ASSIGN_OR_RETURN(const PlValue r, Eval(*expr.rhs, scope));
          if (!r.is_null() && !r.AsBool()) return PlValue(false);
          if (l.is_null() || r.is_null()) return PlValue();
          return PlValue(true);
        }
        if (!l.is_null() && l.AsBool()) return PlValue(true);
        MURAL_ASSIGN_OR_RETURN(const PlValue r, Eval(*expr.rhs, scope));
        if (!r.is_null() && r.AsBool()) return PlValue(true);
        if (l.is_null() || r.is_null()) return PlValue();
        return PlValue(false);
      }
      MURAL_ASSIGN_OR_RETURN(const PlValue l, Eval(*expr.lhs, scope));
      MURAL_ASSIGN_OR_RETURN(const PlValue r, Eval(*expr.rhs, scope));
      switch (expr.bin_op) {
        case BinOp::kConcat:
          if (l.is_null() || r.is_null()) return PlValue();
          return PlValue(l.AsString() + r.AsString());
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod: {
          if (l.is_null() || r.is_null()) return PlValue();
          if (l.is_int() && r.is_int()) {
            const int64_t a = l.AsInt(), b = r.AsInt();
            switch (expr.bin_op) {
              case BinOp::kAdd:
                return PlValue(a + b);
              case BinOp::kSub:
                return PlValue(a - b);
              case BinOp::kMul:
                return PlValue(a * b);
              case BinOp::kDiv:
                if (b == 0) {
                  return Status::InvalidArgument("PL: division by zero");
                }
                return PlValue(a / b);
              case BinOp::kMod:
                if (b == 0) {
                  return Status::InvalidArgument("PL: division by zero");
                }
                return PlValue(a % b);
              default:
                break;
            }
          }
          const double a = l.AsDouble(), b = r.AsDouble();
          switch (expr.bin_op) {
            case BinOp::kAdd:
              return PlValue(a + b);
            case BinOp::kSub:
              return PlValue(a - b);
            case BinOp::kMul:
              return PlValue(a * b);
            case BinOp::kDiv:
              return PlValue(a / b);
            case BinOp::kMod:
              return PlValue(std::fmod(a, b));
            default:
              break;
          }
          return Status::Internal("unreachable arithmetic");
        }
        default:
          return Compare(expr.bin_op, l, r);
      }
    }
    case ExprKind::kCall:
      return EvalCall(expr, scope);
  }
  return Status::Internal("unknown PL expression kind");
}

StatusOr<PlValue> Interpreter::EvalCall(const PlExpr& expr, Scope* scope) {
  std::vector<PlValue> args;
  args.reserve(expr.args.size());
  for (const PlExprPtr& arg : expr.args) {
    MURAL_ASSIGN_OR_RETURN(PlValue v, Eval(*arg, scope));
    args.push_back(std::move(v));
  }
  bool handled = false;
  StatusOr<PlValue> builtin = Builtin(expr.name, args, &handled);
  if (handled) return builtin;
  auto hit = host_.find(expr.name);
  if (hit != host_.end()) {
    ++stats_.host_calls;
    return hit->second(args);
  }
  return Call(expr.name, args);
}

StatusOr<PlValue> Interpreter::Builtin(const std::string& name,
                                       const std::vector<PlValue>& args,
                                       bool* handled) {
  *handled = true;
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument("PL builtin " + name + " expects " +
                                     std::to_string(n) + " args");
    }
    return Status::OK();
  };
  if (name == "LENGTH") {
    MURAL_RETURN_IF_ERROR(need(1));
    if (args[0].is_array()) {
      return PlValue(static_cast<int64_t>(args[0].AsArray()->size()));
    }
    return PlValue(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (name == "SUBSTR") {
    MURAL_RETURN_IF_ERROR(need(3));
    const std::string& s = args[0].AsString();
    const int64_t pos = args[1].AsInt();  // 1-based, SQL style
    const int64_t len = args[2].AsInt();
    if (pos < 1 || len < 0 || static_cast<size_t>(pos - 1) > s.size()) {
      return PlValue(std::string());
    }
    return PlValue(s.substr(static_cast<size_t>(pos - 1),
                            static_cast<size_t>(len)));
  }
  if (name == "CODE") {  // CODE(s, i): char code at 1-based position
    MURAL_RETURN_IF_ERROR(need(2));
    const std::string& s = args[0].AsString();
    const int64_t pos = args[1].AsInt();
    if (pos < 1 || static_cast<size_t>(pos) > s.size()) {
      return PlValue(static_cast<int64_t>(-1));
    }
    return PlValue(static_cast<int64_t>(
        static_cast<unsigned char>(s[static_cast<size_t>(pos - 1)])));
  }
  if (name == "CHR") {
    MURAL_RETURN_IF_ERROR(need(1));
    return PlValue(std::string(1, static_cast<char>(args[0].AsInt())));
  }
  if (name == "ARRAY") {  // ARRAY(n [, init])
    if (args.empty() || args.size() > 2) {
      return Status::InvalidArgument("PL: ARRAY(n [, init])");
    }
    const int64_t n = args[0].AsInt();
    if (n < 0) return Status::InvalidArgument("PL: ARRAY size < 0");
    return MakeArray(static_cast<size_t>(n),
                     args.size() == 2 ? args[1] : PlValue());
  }
  if (name == "POP") {  // POP(arr): removes and returns the last element
    MURAL_RETURN_IF_ERROR(need(1));
    auto& vec = *args[0].AsArray();
    if (vec.empty()) return PlValue();
    PlValue back = vec.back();
    vec.pop_back();
    return back;
  }
  if (name == "APPEND") {  // APPEND(arr, v) mutates, returns new length
    MURAL_RETURN_IF_ERROR(need(2));
    args[0].AsArray()->push_back(args[1]);
    return PlValue(static_cast<int64_t>(args[0].AsArray()->size()));
  }
  if (name == "MIN" || name == "LEAST") {
    MURAL_RETURN_IF_ERROR(need(2));
    return args[0].AsDouble() <= args[1].AsDouble() ? args[0] : args[1];
  }
  if (name == "MAX" || name == "GREATEST") {
    MURAL_RETURN_IF_ERROR(need(2));
    return args[0].AsDouble() >= args[1].AsDouble() ? args[0] : args[1];
  }
  if (name == "ABS") {
    MURAL_RETURN_IF_ERROR(need(1));
    if (args[0].is_int()) return PlValue(std::abs(args[0].AsInt()));
    return PlValue(std::fabs(args[0].AsDouble()));
  }
  if (name == "FLOOR") {
    MURAL_RETURN_IF_ERROR(need(1));
    return PlValue(static_cast<int64_t>(std::floor(args[0].AsDouble())));
  }
  *handled = false;
  return PlValue();
}

}  // namespace pl
}  // namespace mural
