#include "plfront/pl_value.h"

#include "common/logging.h"

namespace mural {
namespace pl {

bool PlValue::AsBool() const {
  if (is_bool()) return std::get<bool>(rep_);
  if (is_int()) return std::get<int64_t>(rep_) != 0;
  MURAL_CHECK(false) << "PL value is not a boolean";
  return false;
}

int64_t PlValue::AsInt() const {
  if (is_int()) return std::get<int64_t>(rep_);
  if (is_bool()) return std::get<bool>(rep_) ? 1 : 0;
  if (is_double()) return static_cast<int64_t>(std::get<double>(rep_));
  MURAL_CHECK(false) << "PL value is not numeric";
  return 0;
}

double PlValue::AsDouble() const {
  if (is_double()) return std::get<double>(rep_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  if (is_bool()) return std::get<bool>(rep_) ? 1.0 : 0.0;
  MURAL_CHECK(false) << "PL value is not numeric";
  return 0;
}

const std::string& PlValue::AsString() const {
  MURAL_CHECK(is_string()) << "PL value is not a string";
  return std::get<std::string>(rep_);
}

const PlArray& PlValue::AsArray() const {
  MURAL_CHECK(is_array()) << "PL value is not an array";
  return std::get<PlArray>(rep_);
}

std::string PlValue::ToDisplay() const {
  if (is_null()) return "NULL";
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return std::to_string(AsDouble());
  if (is_string()) return "'" + AsString() + "'";
  return "ARRAY[" + std::to_string(AsArray()->size()) + "]";
}

PlValue MakeArray(size_t n, const PlValue& init) {
  auto arr = std::make_shared<std::vector<PlValue>>(n, init);
  return PlValue(std::move(arr));
}

}  // namespace pl
}  // namespace mural
