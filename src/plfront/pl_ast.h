// AST of the PL language.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "plfront/pl_value.h"

namespace mural {
namespace pl {

// ------------------------------------------------------------ expressions

enum class ExprKind {
  kLiteral,
  kVar,
  kIndex,     // base[index]
  kBinary,
  kUnary,
  kCall,
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kConcat,
};

enum class UnOp { kNeg, kNot };

struct PlExpr;
using PlExprPtr = std::unique_ptr<PlExpr>;

struct PlExpr {
  ExprKind kind;
  PlValue literal;            // kLiteral
  std::string name;           // kVar / kCall
  PlExprPtr lhs, rhs;         // kBinary; kIndex uses lhs=base rhs=index;
                              // kUnary uses lhs
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  std::vector<PlExprPtr> args;  // kCall
};

// ------------------------------------------------------------- statements

enum class StmtKind {
  kAssign,   // target[index]* := expr
  kIf,
  kWhile,
  kFor,
  kReturn,
  kExprStmt,  // bare call
};

struct PlStmt;
using PlStmtPtr = std::unique_ptr<PlStmt>;

struct PlStmt {
  StmtKind kind;
  // kAssign: `target` variable, optional `index` for one-dim element set
  std::string target;
  PlExprPtr index;  // null = whole-variable assignment
  PlExprPtr expr;   // assign RHS / return value / condition / expr-stmt

  std::vector<PlStmtPtr> then_body;   // if-then / while / for body
  std::vector<std::pair<PlExprPtr, std::vector<PlStmtPtr>>> elsifs;
  std::vector<PlStmtPtr> else_body;

  // kFor
  std::string loop_var;
  PlExprPtr for_lo, for_hi;
};

/// One declared local: name + optional initializer.
struct PlDecl {
  std::string name;
  PlExprPtr init;  // may be null
};

/// A stored function.
struct PlFunction {
  std::string name;
  std::vector<std::string> params;
  std::vector<PlDecl> decls;
  std::vector<PlStmtPtr> body;
};

}  // namespace pl
}  // namespace mural
