// PlValue: runtime values of the PL language (the outside-the-server
// UDF substrate, paper §5's PL/SQL-style baseline).
//
// Dynamically typed: null, bool, int, double, string, array.  Arrays have
// reference semantics (like PL/SQL collection variables).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace mural {
namespace pl {

class PlValue;
using PlArray = std::shared_ptr<std::vector<PlValue>>;

class PlValue {
 public:
  PlValue() : rep_(std::monostate{}) {}
  explicit PlValue(bool b) : rep_(b) {}
  explicit PlValue(int64_t i) : rep_(i) {}
  explicit PlValue(double d) : rep_(d) {}
  explicit PlValue(std::string s) : rep_(std::move(s)) {}
  explicit PlValue(PlArray a) : rep_(std::move(a)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(rep_);
  }
  bool is_array() const { return std::holds_alternative<PlArray>(rep_); }
  bool is_numeric() const { return is_int() || is_double() || is_bool(); }

  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const PlArray& AsArray() const;

  std::string ToDisplay() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, PlArray>
      rep_;
};

/// Creates a fresh array of `n` copies of `init`.
PlValue MakeArray(size_t n, const PlValue& init);

}  // namespace pl
}  // namespace mural
