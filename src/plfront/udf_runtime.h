// UdfRuntime: the outside-the-server UDF boundary.
//
// Models how an external PL/SQL-style procedure is invoked from query
// execution: arguments are serialized to a wire format, shipped across the
// call boundary, deserialized, interpreted, and the result serialized
// back.  Each crossing is counted; the copies and the interpretation are
// real work (no sleeps).
//
// Ships with the stock multilingual UDF library:
//   EDITDIST(a, b, k)        -- full-DP Levenshtein with row cut-off
//   LEXMATCH(a, b, k)        -- boolean threshold match
//   CLOSURE_SIZE(lemma,lang) / SEM_MATCH(l_lemma,l_lang,r_lemma,r_lang)
//      -- transitive closure by iterative expansion, reading taxonomy
//         edges through registered SQL_* host callbacks and tracking the
//         visited set through TEMPSET_* host callbacks (modelling the temp
//         table + index a PL/SQL implementation would use).

#pragma once

#include <memory>

#include "plfront/pl_interpreter.h"

namespace mural {
namespace pl {

/// Boundary-crossing counters.
struct UdfStats {
  uint64_t calls = 0;
  uint64_t wire_bytes = 0;

  void Reset() { *this = UdfStats(); }
};

class UdfRuntime {
 public:
  /// Builds the runtime with the stock UDF library loaded.
  static StatusOr<std::unique_ptr<UdfRuntime>> Create();

  /// Registers a host callback (SQL_CHILDREN etc.) on the interpreter.
  void RegisterHost(const std::string& name, HostFunction fn) {
    interpreter_->RegisterHost(name, std::move(fn));
  }

  /// Invokes `function` across the wire boundary: serializes `args`,
  /// deserializes on the "server-less" side, interprets, and serializes
  /// the result back.
  StatusOr<PlValue> CallWire(const std::string& function,
                             const std::vector<PlValue>& args);

  UdfStats& stats() { return stats_; }
  Interpreter& interpreter() { return *interpreter_; }

  /// Wire codec, exposed for tests.
  static std::string SerializeArgs(const std::vector<PlValue>& args);
  static StatusOr<std::vector<PlValue>> DeserializeArgs(
      std::string_view wire);

 private:
  explicit UdfRuntime(std::unique_ptr<Interpreter> interp)
      : interpreter_(std::move(interp)) {}

  std::unique_ptr<Interpreter> interpreter_;
  UdfStats stats_;
};

/// The PL source of the stock library (exposed for tests/docs).
const char* StockUdfLibrarySource();

}  // namespace pl
}  // namespace mural
