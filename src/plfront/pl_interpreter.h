// Tree-walking interpreter for the PL language.
//
// This is the *mechanism* behind the paper's outside-the-server numbers:
// every statement and expression dispatches dynamically, values are boxed,
// and each UDF invocation crosses a serialization boundary (see
// UdfRuntime) — the three real overheads that make UDF-based multilingual
// matching orders of magnitude slower than the native operators (§5.3).
// No artificial delays anywhere.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "plfront/pl_ast.h"
#include "plfront/pl_parser.h"

namespace mural {
namespace pl {

/// Host callback: models a SQL statement or server facility the PL code
/// invokes (e.g. reading the children of a taxonomy node).
using HostFunction =
    std::function<StatusOr<PlValue>(const std::vector<PlValue>&)>;

/// Interpreter effort counters.
struct PlStats {
  uint64_t statements = 0;
  uint64_t expressions = 0;
  uint64_t function_calls = 0;
  uint64_t host_calls = 0;

  void Reset() { *this = PlStats(); }
};

class Interpreter {
 public:
  explicit Interpreter(FunctionLibrary library)
      : library_(std::move(library)) {}

  /// Registers a host function (name is upper-cased).
  void RegisterHost(const std::string& name, HostFunction fn);

  /// Calls a PL function by name.
  StatusOr<PlValue> Call(const std::string& name,
                         const std::vector<PlValue>& args);

  PlStats& stats() { return stats_; }
  const FunctionLibrary& library() const { return library_; }

 private:
  struct Scope {
    std::map<std::string, PlValue> vars;
  };

  // Execution signals: a Return unwinds via this out-param scheme.
  struct Flow {
    bool returned = false;
    PlValue value;
  };

  Status ExecBlock(const std::vector<PlStmtPtr>& body, Scope* scope,
                   Flow* flow);
  Status ExecStmt(const PlStmt& stmt, Scope* scope, Flow* flow);
  StatusOr<PlValue> Eval(const PlExpr& expr, Scope* scope);
  StatusOr<PlValue> EvalCall(const PlExpr& expr, Scope* scope);
  StatusOr<PlValue> Builtin(const std::string& name,
                            const std::vector<PlValue>& args, bool* handled);

  FunctionLibrary library_;
  std::map<std::string, HostFunction> host_;
  PlStats stats_;
  int depth_ = 0;
};

}  // namespace pl
}  // namespace mural
