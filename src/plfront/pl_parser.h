// Lexer + recursive-descent parser for the PL language.
//
// The surface syntax is deliberately PL/SQL-flavoured:
//
//   FUNCTION editdist(a TEXT, b TEXT, k INT) RETURNS INT AS
//     m INT := LENGTH(a);
//   BEGIN
//     IF m > k THEN RETURN k + 1; END IF;
//     WHILE i <= m LOOP ... END LOOP;
//     RETURN d;
//   END;
//
// Keywords are case-insensitive; strings use single quotes; `--` starts a
// line comment; arrays are 0-based and indexed with `a[i]`.

#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "plfront/pl_ast.h"

namespace mural {
namespace pl {

/// A parsed library of functions keyed by upper-cased name.
using FunctionLibrary = std::map<std::string, PlFunction>;

/// Parses PL source containing one or more FUNCTION definitions.
StatusOr<FunctionLibrary> ParseProgram(std::string_view source);

}  // namespace pl
}  // namespace mural
