// Edit-distance algorithms for phoneme strings.
//
// The paper's LexEQUAL operator matches phonemic strings under the standard
// Levenshtein (unit-cost) edit distance, computed with the *diagonal
// transition* algorithm of Ukkonen (Navarro's survey [16] in the paper)
// which is O(k * min(m,n)) for threshold k rather than O(m*n).  We provide:
//
//   - Levenshtein         : textbook O(m*n) two-row DP (reference)
//   - BoundedLevenshtein  : Ukkonen banded/cut-off, O(k*min(m,n)); returns
//                           k+1 when the true distance exceeds k
//   - MyersLevenshtein    : Myers bit-parallel O(n*m/64); block-based
//                           extension beyond 64 phonemes (bounded_myers.h)
//   - WithinDistance      : boolean form with early termination
//
// The executor's production kernel is BoundedDistanceCounted, which
// dispatches to the bounded bit-parallel kernel (bounded_myers.h); the DP
// kernels above stay as the references the equivalence harness checks
// against and as the ablation baselines.
//
// All operate on byte strings (one byte == one phoneme in the canonical
// alphabet); a code-point variant handles raw UTF-8 text.  Unit-cost
// Levenshtein over any alphabet is a metric (identity, symmetry, triangle
// inequality) — the property the M-Tree's pruning relies on; the property
// tests assert it.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/utf8.h"

namespace mural {

/// Exact Levenshtein distance, O(m*n) time, O(min(m,n)) space.
int Levenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein with cut-off (Ukkonen's diagonal-transition scheme):
/// returns the exact distance if it is <= k, otherwise returns k+1.
/// O((2k+1) * min(m,n)) time.
int BoundedLevenshtein(std::string_view a, std::string_view b, int k);

/// Myers' bit-parallel algorithm; exact distance.  Pattern (the shorter
/// string) is processed 64 phonemes at a time; arbitrary lengths go
/// through the block-based extension.
int MyersLevenshtein(std::string_view a, std::string_view b);

/// True iff Levenshtein(a, b) <= k (uses the bounded algorithm).
bool WithinDistance(std::string_view a, std::string_view b, int k);

/// Levenshtein over decoded Unicode code points (one code point == one edit
/// unit), for matching raw multilingual text rather than phoneme strings.
int LevenshteinCodePoints(std::string_view utf8_a, std::string_view utf8_b);

/// Statistics counter the executor uses to report distance-computation
/// effort in EXPLAIN ANALYZE and benches.
struct DistanceStats {
  uint64_t calls = 0;
  uint64_t cells = 0;     // DP cells (or word-ops for Myers) touched
  uint64_t word_ops = 0;  // bit-parallel column advances only

  void Reset() { *this = DistanceStats(); }
};

/// Same as BoundedLevenshtein but accumulates effort into `stats`.
int BoundedLevenshteinCounted(std::string_view a, std::string_view b, int k,
                              DistanceStats* stats);

/// The production bounded-distance kernel: every threshold-bounded call
/// site in the executor (Psi filter, Psi join, M-Tree probes) routes
/// through this one dispatcher so the kernel choice — and therefore the
/// DistanceStats a query reports — is identical between the tuple-at-a-time
/// and batch paths.  Rules: k < 0 short-circuits (convention: returns 1),
/// k == 0 degenerates to an equality compare, everything else runs the
/// bounded bit-parallel kernel (bounded_myers.h).
int BoundedDistanceCounted(std::string_view a, std::string_view b, int k,
                           DistanceStats* stats);

}  // namespace mural
