// Bounded bit-parallel edit distance (Myers' algorithm composed with
// Ukkonen's cut-off).
//
// The kernel processes the pattern (the shorter string) as bit vectors —
// one 64-bit word below 65 phonemes, Hyyro's block-based extension above —
// and folds the threshold in as an early exit: after column j the running
// score is D[m][j+1], and the final distance can undercut it by at most
// one per remaining column, so `score - (n-1-j) > k` proves the pair
// exceeds the threshold without finishing the matrix.  A column costs one
// word-op per pattern block instead of the banded DP's (2k+1) cells, which
// is what makes the batch LexEQUAL pipeline's inner loop cheap.
//
// Equivalence with the DP kernels is proven exhaustively (all pairs up to
// length 9 on a binary alphabet) and at the 63/64/65 block boundaries in
// tests/distance_test.cc.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "distance/edit_distance.h"

namespace mural {

/// Returns the exact Levenshtein distance if it is <= k, otherwise k+1
/// (same contract as BoundedLevenshtein).  Handles arbitrary lengths.
int BoundedMyersLevenshtein(std::string_view a, std::string_view b, int k);

/// Same, accumulating effort into `stats`: each pattern-block column
/// advance counts one word-op (mirrored into `cells` so existing
/// effort reports stay comparable across kernels).
int BoundedMyersLevenshteinCounted(std::string_view a, std::string_view b,
                                   int k, DistanceStats* stats);

/// Exact (unbounded) distance via the block-based Myers extension; used by
/// MyersLevenshtein for patterns longer than one word.
int MyersBlockLevenshtein(std::string_view a, std::string_view b);

/// Prepared-pattern form of the bounded kernel for one fixed (pattern, k):
/// the 256-entry Peq table is built once at construction, so each
/// Distance() call runs only the column loop.  That is the per-row cost
/// that matters in the batch Psi scan, where one probe is compared against
/// every record — LexSelectOp hoists a matcher at Open.
///
/// Results and DistanceStats accounting are contractually identical to
/// `BoundedDistanceCounted(pattern, text, k, stats)` (the distance is
/// symmetric; word-op counts reflect the fixed pattern's block count
/// rather than the shorter string's, which is the same thing whenever the
/// bound admits a match).  Not thread-safe: the block form reuses member
/// scratch across calls — clone per worker like any operator state.
class BoundedMyersMatcher {
 public:
  BoundedMyersMatcher(std::string_view pattern, int k);

  /// Exact distance to `text` if <= k, else k+1.
  int Distance(std::string_view text, DistanceStats* stats);

 private:
  std::string pattern_;
  int k_;
  size_t blocks_ = 0;         // 0: pattern fits one word (peq_ is live)
  uint64_t peq_[256];         // one-word Peq, built iff blocks_ == 0
  std::vector<uint64_t> peq_blocks_;  // block Peq, 256 * blocks_ words
  std::vector<uint64_t> pv_, mv_;     // block carry scratch, per call
};

}  // namespace mural
