#include "distance/edit_distance.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "distance/bounded_myers.h"

namespace mural {

namespace {

inline int Min3(int a, int b, int c) { return std::min(a, std::min(b, c)); }

}  // namespace

int Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  const size_t m = a.size(), n = b.size();
  if (m == 0) return static_cast<int>(n);

  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = static_cast<int>(j);
    const char bj = b[j - 1];
    for (size_t i = 1; i <= m; ++i) {
      const int sub = prev[i - 1] + (a[i - 1] == bj ? 0 : 1);
      cur[i] = Min3(sub, prev[i] + 1, cur[i - 1] + 1);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

int BoundedLevenshtein(std::string_view a, std::string_view b, int k) {
  return BoundedLevenshteinCounted(a, b, k, nullptr);
}

int BoundedLevenshteinCounted(std::string_view a, std::string_view b, int k,
                              DistanceStats* stats) {
  if (k < 0) return 1;  // any distance exceeds a negative threshold
  if (a.size() > b.size()) std::swap(a, b);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (stats != nullptr) ++stats->calls;
  // Length difference is a lower bound on the distance.
  if (n - m > k) return k + 1;
  if (m == 0) return n;  // n <= k here

  // Banded DP: only diagonals within k of the main diagonal can yield a
  // distance <= k.  Row i covers columns [i-k, i+k] clipped to [0, n].
  const int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> prev(n + 1, kInf), cur(n + 1, kInf);
  for (int j = 0; j <= std::min(n, k); ++j) prev[j] = j;
  uint64_t cells = 0;
  for (int i = 1; i <= m; ++i) {
    const int lo = std::max(1, i - k);
    const int hi = std::min(n, i + k);
    cur[lo - 1] = (lo - 1 == 0) ? i : kInf;
    int row_min = cur[lo - 1];
    const char ai = a[i - 1];
    for (int j = lo; j <= hi; ++j) {
      const int sub = prev[j - 1] + (ai == b[j - 1] ? 0 : 1);
      const int del = (j <= i + k - 1) ? prev[j] + 1 : kInf;
      const int ins = cur[j - 1] + 1;
      cur[j] = Min3(sub, del, ins);
      row_min = std::min(row_min, cur[j]);
    }
    cells += static_cast<uint64_t>(hi - lo + 1);
    if (row_min > k) {
      if (stats != nullptr) stats->cells += cells;
      return k + 1;  // cut-off: no extension can come back under k
    }
    // No need to clear `cur` after the swap: within a row every cell is
    // written before it is read (cur[lo-1] explicitly, cur[j-1] just
    // before cur[j]), and out-of-band prev[] reads are guarded above.
    std::swap(prev, cur);
  }
  if (stats != nullptr) stats->cells += cells;
  const int d = prev[n];
  return d <= k ? d : k + 1;
}

int MyersLevenshtein(std::string_view a, std::string_view b) {
  // `a` is the pattern (kept <= 64 per block); swap so a is shorter.
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  if (m == 0) return static_cast<int>(n);
  if (m > 64) {
    return MyersBlockLevenshtein(a, b);
  }

  // Peq[c] has bit i set iff a[i] == c.
  uint64_t peq[256];
  std::memset(peq, 0, sizeof(peq));
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= (1ULL << i);
  }

  uint64_t pv = ~0ULL;
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  const uint64_t high_bit = 1ULL << (m - 1);

  for (size_t j = 0; j < n; ++j) {
    const uint64_t eq = peq[static_cast<unsigned char>(b[j])];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & high_bit) ++score;
    if (mh & high_bit) --score;
    ph = (ph << 1) | 1;
    mh = (mh << 1);
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

bool WithinDistance(std::string_view a, std::string_view b, int k) {
  if (k < 0) return false;
  return BoundedDistanceCounted(a, b, k, nullptr) <= k;
}

int BoundedDistanceCounted(std::string_view a, std::string_view b, int k,
                           DistanceStats* stats) {
  if (k < 0) return 1;  // matches the BoundedLevenshtein convention
  if (k == 0) {
    // Zero threshold is an exact-match probe; no matrix needed.
    if (stats != nullptr) ++stats->calls;
    return a == b ? 0 : 1;
  }
  return BoundedMyersLevenshteinCounted(a, b, k, stats);
}

int LevenshteinCodePoints(std::string_view utf8_a, std::string_view utf8_b) {
  const std::vector<CodePoint> a = utf8::Decode(utf8_a);
  const std::vector<CodePoint> b = utf8::Decode(utf8_b);
  const size_t m = a.size(), n = b.size();
  if (m == 0) return static_cast<int>(n);
  if (n == 0) return static_cast<int>(m);
  std::vector<int> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= n; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = Min3(sub, prev[j] + 1, cur[j - 1] + 1);
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace mural
