#include "distance/bounded_myers.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace mural {

namespace {

/// Column loop of single-word Myers with the Ukkonen cut-off; requires
/// 1 <= m <= 64 and a prebuilt 256-entry Peq table for the pattern.
/// Returns the exact distance if <= k, else k+1; *words counts column
/// advances.
int OneWordColumns(const uint64_t* peq, size_t m, std::string_view b, int k,
                   uint64_t* words) {
  const size_t n = b.size();
  uint64_t pv = ~0ULL;
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  const uint64_t high_bit = 1ULL << (m - 1);

  for (size_t j = 0; j < n; ++j) {
    const uint64_t eq = peq[static_cast<unsigned char>(b[j])];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & high_bit) ++score;
    if (mh & high_bit) --score;
    ph = (ph << 1) | 1;
    mh = (mh << 1);
    pv = mh | ~(xv | ph);
    mv = ph & xv;
    ++*words;
    // Cut-off: score == D[m][j+1]; the remaining n-1-j columns can lower
    // the final distance by at most one each.
    if (score - static_cast<int>(n - 1 - j) > k) return k + 1;
  }
  return score;
}

/// Column loop of block-based Myers (Hyyro's extension) with the same
/// cut-off; requires m > 64, a prebuilt Peq table (peq[c * blocks + blk]),
/// and caller-provided pv/mv scratch of `blocks` words each (reset here).
int BlockColumns(const uint64_t* peq, size_t blocks, size_t m,
                 std::string_view b, int k, uint64_t* pv, uint64_t* mv,
                 uint64_t* words) {
  const size_t n = b.size();
  for (size_t blk = 0; blk < blocks; ++blk) {
    pv[blk] = ~0ULL;
    mv[blk] = 0;
  }
  int score = static_cast<int>(m);
  const size_t last = blocks - 1;
  const uint64_t last_bit = 1ULL << ((m - 1) % 64);

  for (size_t j = 0; j < n; ++j) {
    const uint64_t* eq_row =
        &peq[static_cast<size_t>(static_cast<unsigned char>(b[j])) * blocks];
    // hin: the horizontal delta D[blk*64][j+1] - D[blk*64][j] carried into
    // the block; +1 at the top boundary (row 0 holds j+1 vs j).
    int hin = 1;
    for (size_t blk = 0; blk < blocks; ++blk) {
      uint64_t eq = eq_row[blk];
      const uint64_t pvb = pv[blk];
      const uint64_t mvb = mv[blk];
      const uint64_t xv = eq | mvb;
      if (hin < 0) eq |= 1;
      const uint64_t xh = (((eq & pvb) + pvb) ^ pvb) | eq;
      uint64_t ph = mvb | ~(xh | pvb);
      uint64_t mh = pvb & xh;
      if (blk == last) {
        if (ph & last_bit) ++score;
        if (mh & last_bit) --score;
      }
      int hout = 0;
      if (ph >> 63) hout = 1;
      else if (mh >> 63) hout = -1;
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) ph |= 1;
      else if (hin < 0) mh |= 1;
      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    *words += blocks;
    if (score - static_cast<int>(n - 1 - j) > k) return k + 1;
  }
  return score;
}

void BuildOneWordPeq(std::string_view pattern, uint64_t* peq) {
  std::memset(peq, 0, 256 * sizeof(uint64_t));
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= (1ULL << i);
  }
}

void BuildBlockPeq(std::string_view pattern, size_t blocks, uint64_t* peq) {
  std::memset(peq, 0, 256 * blocks * sizeof(uint64_t));
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<size_t>(static_cast<unsigned char>(pattern[i])) * blocks +
        i / 64] |= (1ULL << (i % 64));
  }
}

}  // namespace

int BoundedMyersLevenshtein(std::string_view a, std::string_view b, int k) {
  return BoundedMyersLevenshteinCounted(a, b, k, nullptr);
}

int BoundedMyersLevenshteinCounted(std::string_view a, std::string_view b,
                                   int k, DistanceStats* stats) {
  if (k < 0) return 1;  // any distance exceeds a negative threshold
  if (a.size() > b.size()) std::swap(a, b);  // a is the pattern
  const size_t m = a.size(), n = b.size();
  if (stats != nullptr) ++stats->calls;
  // Length difference is a lower bound on the distance.
  if (n - m > static_cast<size_t>(k)) return k + 1;
  if (m == 0) return static_cast<int>(n);  // n <= k here

  uint64_t words = 0;
  int d;
  if (m <= 64) {
    uint64_t peq[256];
    BuildOneWordPeq(a, peq);
    d = OneWordColumns(peq, m, b, k, &words);
  } else {
    // One heap allocation per call for the per-block Peq table and carry
    // vectors — fine off the phoneme hot path, where patterns fit one
    // word (the hot path preps the table once via BoundedMyersMatcher).
    const size_t blocks = (m + 63) / 64;
    std::vector<uint64_t> peq(256 * blocks);
    BuildBlockPeq(a, blocks, peq.data());
    std::vector<uint64_t> pv(blocks), mv(blocks);
    d = BlockColumns(peq.data(), blocks, m, b, k, pv.data(), mv.data(),
                     &words);
  }
  if (stats != nullptr) {
    stats->cells += words;
    stats->word_ops += words;
  }
  return d <= k ? d : k + 1;
}

int MyersBlockLevenshtein(std::string_view a, std::string_view b) {
  // With k = max(m, n) the bound can never trip, so the result is exact.
  const int k = static_cast<int>(std::max(a.size(), b.size()));
  return BoundedMyersLevenshtein(a, b, k);
}

BoundedMyersMatcher::BoundedMyersMatcher(std::string_view pattern, int k)
    : pattern_(pattern), k_(k) {
  const size_t m = pattern_.size();
  if (m <= 64) {
    blocks_ = 0;
    BuildOneWordPeq(pattern_, peq_);
  } else {
    blocks_ = (m + 63) / 64;
    peq_blocks_.resize(256 * blocks_);
    BuildBlockPeq(pattern_, blocks_, peq_blocks_.data());
    pv_.resize(blocks_);
    mv_.resize(blocks_);
  }
}

int BoundedMyersMatcher::Distance(std::string_view text,
                                  DistanceStats* stats) {
  // Mirrors BoundedDistanceCounted(pattern, text, k, stats) exactly —
  // same results, same counting rules — minus the per-call table build.
  if (k_ < 0) return 1;
  if (stats != nullptr) ++stats->calls;
  if (k_ == 0) return text == pattern_ ? 0 : 1;
  const size_t m = pattern_.size(), n = text.size();
  const size_t diff = m > n ? m - n : n - m;
  if (diff > static_cast<size_t>(k_)) return k_ + 1;
  if (m == 0) return static_cast<int>(n);  // n <= k_ here
  if (n == 0) return static_cast<int>(m);  // m <= k_ here

  uint64_t words = 0;
  const int d =
      blocks_ == 0
          ? OneWordColumns(peq_, m, text, k_, &words)
          : BlockColumns(peq_blocks_.data(), blocks_, m, text, k_,
                         pv_.data(), mv_.data(), &words);
  if (stats != nullptr) {
    stats->cells += words;
    stats->word_ops += words;
  }
  return d <= k_ ? d : k_ + 1;
}

}  // namespace mural
