#include "exec/basic_ops.h"

#include <algorithm>

namespace mural {

StatusOr<bool> FilterOp::NextImpl(Row* out) {
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(out));
    if (!more) return false;
    MURAL_ASSIGN_OR_RETURN(const bool keep,
                           EvalPredicate(*predicate_, *out, ctx_));
    if (keep) {
      CountRow();
      return true;
    }
  }
}

StatusOr<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  // Pulls child batches and compacts the selection vector in place; rows
  // never move.  Loops past batches the predicate empties so callers see
  // at most one empty batch (the exhausted one).
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(out));
    std::vector<uint32_t>& sel = out->selection();
    size_t kept = 0;
    for (size_t i = 0; i < sel.size(); ++i) {
      MURAL_ASSIGN_OR_RETURN(
          const bool keep,
          EvalPredicate(*predicate_, out->SelectedRow(i), ctx_));
      if (keep) sel[kept++] = sel[i];
    }
    sel.resize(kept);
    CountRows(kept);
    if (!more) return !out->empty();
    if (kept > 0) return true;
  }
}

OpPtr ProjectOp::ByColumns(ExecContext* ctx, OpPtr child,
                           const std::vector<size_t>& columns) {
  const Schema& in = child->output_schema();
  std::vector<ExprPtr> exprs;
  std::vector<Column> cols;
  for (size_t c : columns) {
    exprs.push_back(Col(c, in.column(c).name));
    cols.push_back(in.column(c));
  }
  return std::make_unique<ProjectOp>(ctx, std::move(child), std::move(exprs),
                                     Schema(std::move(cols)));
}

StatusOr<bool> ProjectOp::NextImpl(Row* out) {
  Row in;
  MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(&in));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    MURAL_ASSIGN_OR_RETURN(Value v, e->Evaluate(in, ctx_));
    out->push_back(std::move(v));
  }
  CountRow();
  return true;
}

std::string ProjectOp::DisplayName() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

StatusOr<bool> LimitOp::NextImpl(Row* out) {
  if (seen_ >= limit_) return false;
  MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(out));
  if (!more) return false;
  ++seen_;
  CountRow();
  return true;
}

Status MaterializeOp::OpenImpl() {
  pos_ = 0;
  if (rows_.has_value()) return Status::OK();  // rescan: replay
  MURAL_RETURN_IF_ERROR(child_->Open());
  rows_.emplace();
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(&row));
    if (!more) break;
    rows_->push_back(row);
  }
  return child_->Close();
}

StatusOr<bool> MaterializeOp::NextImpl(Row* out) {
  if (pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  CountRow();
  return true;
}

Status MaterializeOp::CloseImpl() {
  // No-op unless a failed Open left the child mid-drain (Close is
  // idempotent); releases it so no span dangles.
  return child_->Close();
}

StatusOr<bool> UnionAllOp::NextImpl(Row* out) {
  if (!on_right_) {
    MURAL_ASSIGN_OR_RETURN(const bool more, left_->Next(out));
    if (more) {
      CountRow();
      return true;
    }
    on_right_ = true;
  }
  MURAL_ASSIGN_OR_RETURN(const bool more, right_->Next(out));
  if (more) CountRow();
  return more;
}

Status SortOp::OpenImpl() {
  MURAL_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  pos_ = 0;
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(&row));
    if (!more) break;
    rows_.push_back(std::move(row));
    row.clear();
  }
  MURAL_RETURN_IF_ERROR(child_->Close());
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       const int c = a[k.column].Compare(b[k.column]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

StatusOr<bool> SortOp::NextImpl(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  CountRow();
  return true;
}

Status SortOp::CloseImpl() {
  rows_.clear();
  return child_->Close();
}

std::string SortOp::DisplayName() const {
  std::string out = "Sort(";
  const Schema& schema = child_->output_schema();
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(keys_[i].column).name;
    if (!keys_[i].ascending) out += " DESC";
  }
  out += ")";
  return out;
}

}  // namespace mural
