#include "exec/expression.h"

#include "common/string_util.h"
#include "phonetic/phoneme_cache.h"

namespace mural {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

StatusOr<Value> ColumnRefExpr::Evaluate(const Row& row,
                                        ExecContext* ctx) const {
  (void)ctx;
  if (index_ >= row.size()) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of row bounds");
  }
  return row[index_];
}

StatusOr<Value> LiteralExpr::Evaluate(const Row& row,
                                      ExecContext* ctx) const {
  (void)row;
  (void)ctx;
  return value_;
}

StatusOr<Value> ComparisonExpr::Evaluate(const Row& row,
                                         ExecContext* ctx) const {
  MURAL_ASSIGN_OR_RETURN(const Value l, left_->Evaluate(row, ctx));
  MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  ++ctx->stats.predicate_evals;
  const int c = l.Compare(r);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("unknown comparison op");
}

std::string ComparisonExpr::ToString() const {
  return left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString();
}

StatusOr<Value> LogicalExpr::Evaluate(const Row& row,
                                      ExecContext* ctx) const {
  MURAL_ASSIGN_OR_RETURN(const Value l, left_->Evaluate(row, ctx));
  if (op_ == LogicalOp::kNot) {
    if (l.is_null()) return Value::Null();
    return Value::Bool(!l.bool_val());
  }
  // Three-valued short-circuit.
  if (op_ == LogicalOp::kAnd) {
    if (!l.is_null() && !l.bool_val()) return Value::Bool(false);
    MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
    if (!r.is_null() && !r.bool_val()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  if (!l.is_null() && l.bool_val()) return Value::Bool(true);
  MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
  if (!r.is_null() && r.bool_val()) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value::Bool(false);
}

std::string LogicalExpr::ToString() const {
  switch (op_) {
    case LogicalOp::kNot:
      return "NOT (" + left_->ToString() + ")";
    case LogicalOp::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case LogicalOp::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }
  return "?";
}

StatusOr<Value> FullEqualsExpr::Evaluate(const Row& row,
                                         ExecContext* ctx) const {
  MURAL_ASSIGN_OR_RETURN(const Value l, left_->Evaluate(row, ctx));
  MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.type() != TypeId::kUniText || r.type() != TypeId::kUniText) {
    return Status::InvalidArgument("=== requires UNITEXT operands");
  }
  ++ctx->stats.predicate_evals;
  return Value::Bool(l.unitext().FullEquals(r.unitext()));
}

// Cache-aware G2P: a hit costs a lookup, a miss costs (and counts) the
// transform.  Without a session cache every call is a transform, which is
// the pre-cache behavior the counters' consumers expect.
PhonemeString TransformPhonemesCounted(std::string_view text, LangId lang,
                                       ExecContext* ctx) {
  if (ctx->phoneme_cache != nullptr) {
    bool was_hit = false;
    PhonemeString p =
        ctx->phoneme_cache->GetOrCompute(text, lang, *ctx->transformer,
                                         &was_hit);
    if (was_hit) {
      ++ctx->stats.phoneme_cache_hits;
    } else {
      ++ctx->stats.phoneme_cache_misses;
      ++ctx->stats.phoneme_transforms;
    }
    return p;
  }
  ++ctx->stats.phoneme_transforms;
  return ctx->transformer->Transform(text, lang);
}

StatusOr<PhonemeString> PhonemesOf(const Value& v, ExecContext* ctx) {
  if (v.type() == TypeId::kUniText) {
    const UniText& u = v.unitext();
    if (u.has_phonemes()) return *u.phonemes();
    return TransformPhonemesCounted(u.text(), u.lang(), ctx);
  }
  if (v.type() == TypeId::kText) {
    return TransformPhonemesCounted(v.text(), lang::kEnglish, ctx);
  }
  return Status::InvalidArgument("LexEQUAL operand must be UNITEXT or TEXT");
}

StatusOr<Value> LexEqualExpr::Evaluate(const Row& row,
                                       ExecContext* ctx) const {
  MURAL_ASSIGN_OR_RETURN(const Value l, left_->Evaluate(row, ctx));
  MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  MURAL_ASSIGN_OR_RETURN(const PhonemeString pl, PhonemesOf(l, ctx));
  MURAL_ASSIGN_OR_RETURN(const PhonemeString pr, PhonemesOf(r, ctx));
  ++ctx->stats.predicate_evals;
  const int k = EffectiveThreshold(ctx);
  const int d = BoundedDistanceCounted(pl, pr, k, &ctx->stats.distance);
  return Value::Bool(d <= k);
}

std::string LexEqualExpr::ToString() const {
  std::string out = left_->ToString() + " LexEQUAL " + right_->ToString();
  if (threshold_override_ >= 0) {
    out += StringFormat(" {t=%d}", threshold_override_);
  }
  return out;
}

StatusOr<Value> SemEqualExpr::Evaluate(const Row& row,
                                       ExecContext* ctx) const {
  if (ctx->taxonomy == nullptr) {
    return Status::InvalidArgument(
        "SemEQUAL requires a taxonomy pinned in the session");
  }
  MURAL_ASSIGN_OR_RETURN(const Value l, left_->Evaluate(row, ctx));
  MURAL_ASSIGN_OR_RETURN(const Value r, right_->Evaluate(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.type() != TypeId::kUniText || r.type() != TypeId::kUniText) {
    return Status::InvalidArgument("SemEQUAL requires UNITEXT operands");
  }
  ++ctx->stats.predicate_evals;
  const Taxonomy& tax = *ctx->taxonomy;
  const std::vector<SynsetId> lhs = tax.Lookup(l.unitext());
  if (lhs.empty()) return Value::Bool(false);
  const std::vector<SynsetId> rhs = tax.Lookup(r.unitext());
  if (rhs.empty()) return Value::Bool(false);
  // Memoized closures when the session provides a cache (paper §4.3);
  // otherwise compute per evaluation (the naive path, used as an ablation
  // baseline).
  if (ctx->closure_cache != nullptr) {
    for (SynsetId root : rhs) {
      const uint64_t misses_before = ctx->closure_cache->misses();
      const Closure& closure = ctx->closure_cache->Get(root);
      if (ctx->closure_cache->misses() > misses_before) {
        ++ctx->stats.closure_computations;
      } else {
        ++ctx->stats.closure_reuses;
      }
      for (SynsetId id : lhs) {
        if (closure.count(id) > 0) return Value::Bool(true);
      }
    }
    return Value::Bool(false);
  }
  ++ctx->stats.closure_computations;
  const Closure closure = tax.TransitiveClosureOfAll(rhs);
  for (SynsetId id : lhs) {
    if (closure.count(id) > 0) return Value::Bool(true);
  }
  return Value::Bool(false);
}

StatusOr<Value> LangInExpr::Evaluate(const Row& row, ExecContext* ctx) const {
  MURAL_ASSIGN_OR_RETURN(const Value v, operand_->Evaluate(row, ctx));
  if (v.is_null()) return Value::Null();
  if (v.type() != TypeId::kUniText) {
    return Status::InvalidArgument("IN <languages> requires UNITEXT operand");
  }
  return Value::Bool(langs_.count(v.unitext().lang()) > 0);
}

std::string LangInExpr::ToString() const {
  std::vector<std::string> names;
  for (LangId id : langs_) {
    names.push_back(LanguageRegistry::Default().NameOf(id));
  }
  return operand_->ToString() + " IN " + Join(names, ", ");
}

ExprPtr Col(size_t index, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ComparisonExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(e));
}
ExprPtr LexEq(ExprPtr l, ExprPtr r, int threshold) {
  return std::make_shared<LexEqualExpr>(std::move(l), std::move(r),
                                        threshold);
}
ExprPtr SemEq(ExprPtr l, ExprPtr r) {
  return std::make_shared<SemEqualExpr>(std::move(l), std::move(r));
}
ExprPtr LangIn(ExprPtr operand, std::set<LangId> langs) {
  return std::make_shared<LangInExpr>(std::move(operand), std::move(langs));
}

StatusOr<bool> EvalPredicate(const Expr& e, const Row& row,
                             ExecContext* ctx) {
  MURAL_ASSIGN_OR_RETURN(const Value v, e.Evaluate(row, ctx));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to boolean");
  }
  return v.bool_val();
}

}  // namespace mural
