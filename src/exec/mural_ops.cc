#include "exec/mural_ops.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "catalog/tuple_codec.h"

namespace mural {

LexSelectOp::LexSelectOp(ExecContext* ctx, const TableInfo* table,
                         size_t key_col, Value probe, int threshold_override)
    : PhysicalOp(ctx),
      table_(table),
      key_col_(key_col),
      probe_(std::move(probe)),
      threshold_override_(threshold_override) {}

Status LexSelectOp::OpenImpl() {
  k_ = threshold_override_ >= 0 ? threshold_override_
                                : ctx_->lexequal_threshold;
  probe_null_ = probe_.is_null();
  if (!probe_null_) {
    // Hoisted once per scan; the legacy Filter path re-resolves the
    // constant's phonemes per row (a cache hit each time).  The matcher
    // also pre-builds the kernel's Peq table for the probe, leaving only
    // the column loop as per-row work.
    MURAL_ASSIGN_OR_RETURN(probe_phonemes_, PhonemesOf(probe_, ctx_));
    matcher_.emplace(probe_phonemes_, k_);
  }
  it_.emplace(table_->heap->Begin());
  page_idx_ = 0;
  slot_ = 0;
  return Status::OK();
}

StatusOr<bool> LexSelectOp::RecordMatches(std::string_view record) {
  UniTextColumnView view;
  MURAL_RETURN_IF_ERROR(
      TupleCodec::PeekUniText(table_->schema, record, key_col_, &view));
  if (view.is_null) return false;  // NULL never matches (SQL WHERE)
  ++ctx_->stats.predicate_evals;
  int d;
  if (view.has_phonemes) {
    d = matcher_->Distance(view.phonemes, &ctx_->stats.distance);
  } else {
    const LangId lang = table_->schema.column(key_col_).type == TypeId::kText
                            ? lang::kEnglish
                            : view.lang;
    const PhonemeString ph = TransformPhonemesCounted(view.text, lang, ctx_);
    d = matcher_->Distance(ph, &ctx_->stats.distance);
  }
  return d <= k_;
}

StatusOr<bool> LexSelectOp::NextImpl(Row* out) {
  if (probe_null_) return false;
  while (it_->Valid()) {
    const std::string& record = it_->record();
    MURAL_ASSIGN_OR_RETURN(const bool match, RecordMatches(record));
    if (match) {
      MURAL_RETURN_IF_ERROR(
          TupleCodec::Deserialize(table_->schema, record, out));
      it_->Next();
      CountRow();
      return true;
    }
    it_->Next();
  }
  MURAL_RETURN_IF_ERROR(it_->status());
  return false;
}

StatusOr<bool> LexSelectOp::NextBatchImpl(RowBatch* out) {
  if (probe_null_) return false;
  // The hot loop of the vectorized Psi scan walks the heap page-wise over
  // the page directory (chain order == the tuple iterator's emission
  // order): one Fetch and one shared latch per page, records matched in
  // place from the page bytes — no per-record copy — and deserialized
  // only on a hit.  Holding the read guard across the kernel follows the
  // parallel morsel scan's precedent (parallel_ops.cc).
  const std::vector<PageId>& pages = table_->heap->pages();
  BufferPool* pool = table_->heap->pool();
  while (page_idx_ < pages.size() && !out->full()) {
    MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard,
                           pool->Fetch(pages[page_idx_]));
    const Page* page = guard.get();
    while (slot_ < page->NumSlots() && !out->full()) {
      StatusOr<Slice> record = page->Get(static_cast<SlotId>(slot_++));
      if (!record.ok()) continue;  // tombstone
      MURAL_ASSIGN_OR_RETURN(const bool match,
                             RecordMatches(record->ToStringView()));
      if (match) {
        MURAL_RETURN_IF_ERROR(TupleCodec::Deserialize(
            table_->schema, record->ToStringView(), out->PushRow()));
      }
    }
    if (slot_ >= page->NumSlots()) {
      ++page_idx_;
      slot_ = 0;
    }
  }
  CountRows(out->num_selected());
  return page_idx_ < pages.size() || !out->empty();
}

Status LexSelectOp::CloseImpl() {
  it_.reset();
  matcher_.reset();
  return Status::OK();
}

std::string LexSelectOp::DisplayName() const {
  std::string out = "LexSelect(" + table_->name + "." +
                    table_->schema.column(key_col_).name + " LexEQUAL " +
                    probe_.ToString();
  if (threshold_override_ >= 0) {
    out += StringFormat(" {t=%d}", threshold_override_);
  }
  out += StringFormat(", batch=%zu)", ctx_->batch_size);
  return out;
}

LexJoinOp::LexJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner,
                     size_t outer_col, size_t inner_col, Options options)
    : PhysicalOp(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_col_(outer_col),
      inner_col_(inner_col),
      options_(options) {
  Schema concat = Schema::Concat(outer_->output_schema(),
                                 inner_->output_schema());
  if (options_.tag_distance) {
    std::vector<Column> cols = concat.columns();
    cols.emplace_back("psi_distance", TypeId::kInt32);
    schema_ = Schema(std::move(cols));
  } else {
    schema_ = std::move(concat);
  }
}

Status LexJoinOp::OpenImpl() {
  MURAL_RETURN_IF_ERROR(outer_->Open());
  inner_rows_.clear();
  inner_phonemes_.clear();
  inner_valid_.clear();
  results_.clear();
  result_pos_ = 0;
  const int dop = options_.dop;
  parallel_mode_ = dop > 1 && ctx_->thread_pool != nullptr;
  if (parallel_mode_ && options_.inner_table != nullptr) {
    // The build side is a bare table: skip the inner child entirely and
    // let build workers drain the heap through page-range morsels.
    MURAL_RETURN_IF_ERROR(ParallelHeapBuild(dop));
    outer_valid_ = false;
    inner_pos_ = 0;
    return OpenParallel(dop, /*build_done=*/true);
  }
  MURAL_RETURN_IF_ERROR(inner_->Open());
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, inner_->Next(&row));
    if (!more) break;
    const Value& v = row[inner_col_];
    if (v.is_null()) {
      inner_phonemes_.emplace_back();
      inner_valid_.push_back(false);
    } else if (parallel_mode_) {
      // Slot reserved here; filled by the parallel build in OpenParallel.
      inner_phonemes_.emplace_back();
      inner_valid_.push_back(true);
    } else {
      MURAL_ASSIGN_OR_RETURN(PhonemeString ph, PhonemesOf(v, ctx_));
      inner_phonemes_.push_back(std::move(ph));
      inner_valid_.push_back(true);
    }
    inner_rows_.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(inner_->Close());
  outer_valid_ = false;
  inner_pos_ = 0;
  if (parallel_mode_) return OpenParallel(dop, /*build_done=*/false);
  return Status::OK();
}

Status LexJoinOp::ParallelHeapBuild(int dop) {
  // Page-range morsels over the inner table's heap: each worker fetches
  // its pages through read guards, deserializes, and converts phonemes
  // into a private slot; the gather concatenates slots in morsel order
  // (= page chain order), which is exactly the serial drain order.
  struct BuildSlot {
    std::vector<Row> rows;
    std::vector<PhonemeString> phonemes;
    std::vector<bool> valid;
  };
  const TableInfo* table = options_.inner_table;
  const HeapFile* heap = table->heap.get();
  BufferPool* pool = heap->pool();
  const std::vector<PageId>& pages = heap->pages();
  const size_t n = pages.size();
  const size_t morsel = std::max<size_t>(1, options_.build_morsel_pages);
  const size_t num_morsels = n == 0 ? 0 : (n + morsel - 1) / morsel;
  std::vector<BuildSlot> slots(num_morsels);
  std::vector<ExecContext> build_ctxs(num_morsels, ctx_->WorkerClone());
  MURAL_RETURN_IF_ERROR(ParallelMorsels(
      ctx_->thread_pool, n, morsel, dop,
      [this, table, pool, &pages, &slots, &build_ctxs](
          size_t m, size_t begin, size_t end) {
        ExecContext* wctx = &build_ctxs[m];
        BuildSlot* slot = &slots[m];
        Row row;
        for (size_t p = begin; p < end; ++p) {
          MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard,
                                 pool->Fetch(pages[p]));
          const Page* page = guard.get();
          for (SlotId s = 0; s < page->NumSlots(); ++s) {
            StatusOr<Slice> record = page->Get(s);
            if (!record.ok()) continue;  // tombstone
            MURAL_RETURN_IF_ERROR(TupleCodec::Deserialize(
                table->schema, record->ToStringView(), &row));
            const Value& v = row[inner_col_];
            if (v.is_null()) {
              slot->phonemes.emplace_back();
              slot->valid.push_back(false);
            } else {
              MURAL_ASSIGN_OR_RETURN(PhonemeString ph, PhonemesOf(v, wctx));
              slot->phonemes.push_back(std::move(ph));
              slot->valid.push_back(true);
            }
            slot->rows.push_back(row);
          }
        }
        return Status::OK();
      }));
  size_t total = 0;
  for (const BuildSlot& slot : slots) total += slot.rows.size();
  inner_rows_.reserve(total);
  inner_phonemes_.reserve(total);
  inner_valid_.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    ctx_->stats.Merge(build_ctxs[m].stats);
    cache_hits_ += build_ctxs[m].stats.phoneme_cache_hits;
    cache_misses_ += build_ctxs[m].stats.phoneme_cache_misses;
    for (Row& r : slots[m].rows) inner_rows_.push_back(std::move(r));
    for (PhonemeString& ph : slots[m].phonemes) {
      inner_phonemes_.push_back(std::move(ph));
    }
    for (const bool v : slots[m].valid) inner_valid_.push_back(v);
  }
  return Status::OK();
}

Status LexJoinOp::OpenParallel(int dop, bool build_done) {
  const int k = options_.threshold >= 0 ? options_.threshold
                                        : ctx_->lexequal_threshold;
  const size_t morsel = std::max<size_t>(1, options_.morsel_size);

  // Build phase: convert the materialized inner side's phonemes in
  // parallel.  Morsels own disjoint index ranges, so the writes to
  // inner_phonemes_ slots never alias; each morsel gets its own context
  // clone so stats accumulation is race-free (merged below, in order).
  // Skipped when the heap build already converted during its drain.
  const size_t n_inner = inner_rows_.size();
  const size_t build_morsels =
      build_done || n_inner == 0 ? 0 : (n_inner + morsel - 1) / morsel;
  std::vector<ExecContext> build_ctxs(build_morsels, ctx_->WorkerClone());
  MURAL_RETURN_IF_ERROR(ParallelMorsels(
      ctx_->thread_pool, build_done ? 0 : n_inner, morsel, dop,
      [this, &build_ctxs](size_t m, size_t begin, size_t end) {
        ExecContext* wctx = &build_ctxs[m];
        for (size_t i = begin; i < end; ++i) {
          if (!inner_valid_[i]) continue;
          MURAL_ASSIGN_OR_RETURN(inner_phonemes_[i],
                                 PhonemesOf(inner_rows_[i][inner_col_], wctx));
        }
        return Status::OK();
      }));

  // Drain the outer side serially (children are not thread-safe).
  std::vector<Row> outer_rows;
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, outer_->Next(&row));
    if (!more) break;
    outer_rows.push_back(row);
  }

  // Probe phase: each outer morsel joins against the whole inner side into
  // its own result slot.  The outer row's phonemes are computed once per
  // row (hoisted) through the shared cache.
  const size_t n_outer = outer_rows.size();
  const size_t probe_morsels =
      n_outer == 0 ? 0 : (n_outer + morsel - 1) / morsel;
  std::vector<std::vector<Row>> slots(probe_morsels);
  std::vector<ExecContext> probe_ctxs(probe_morsels, ctx_->WorkerClone());
  MURAL_RETURN_IF_ERROR(ParallelMorsels(
      ctx_->thread_pool, n_outer, morsel, dop,
      [this, k, &outer_rows, &slots, &probe_ctxs](size_t m, size_t begin,
                                                  size_t end) {
        ExecContext* wctx = &probe_ctxs[m];
        std::vector<Row>* slot = &slots[m];
        for (size_t o = begin; o < end; ++o) {
          const Value& v = outer_rows[o][outer_col_];
          if (v.is_null()) continue;
          MURAL_ASSIGN_OR_RETURN(const PhonemeString outer_ph,
                                 PhonemesOf(v, wctx));
          for (size_t i = 0; i < inner_rows_.size(); ++i) {
            if (!inner_valid_[i]) continue;
            ++wctx->stats.predicate_evals;
            const int d = BoundedDistanceCounted(
                outer_ph, inner_phonemes_[i], k, &wctx->stats.distance);
            if (d > k) continue;
            Row out;
            out.reserve(schema_.NumColumns());
            out.insert(out.end(), outer_rows[o].begin(), outer_rows[o].end());
            out.insert(out.end(), inner_rows_[i].begin(),
                       inner_rows_[i].end());
            if (options_.tag_distance) out.push_back(Value::Int32(d));
            slot->push_back(std::move(out));
          }
        }
        return Status::OK();
      }));

  // Gather: merge stats and flatten slots in morsel-index order, which is
  // exactly the serial emission order (outer order x inner order).
  for (const ExecContext& wctx : build_ctxs) {
    ctx_->stats.Merge(wctx.stats);
    cache_hits_ += wctx.stats.phoneme_cache_hits;
    cache_misses_ += wctx.stats.phoneme_cache_misses;
  }
  size_t total = 0;
  for (const std::vector<Row>& slot : slots) total += slot.size();
  results_.reserve(total);
  for (size_t m = 0; m < probe_morsels; ++m) {
    ctx_->stats.Merge(probe_ctxs[m].stats);
    cache_hits_ += probe_ctxs[m].stats.phoneme_cache_hits;
    cache_misses_ += probe_ctxs[m].stats.phoneme_cache_misses;
    for (Row& r : slots[m]) results_.push_back(std::move(r));
  }
  return Status::OK();
}

StatusOr<bool> LexJoinOp::NextImpl(Row* out) {
  if (parallel_mode_) {
    if (result_pos_ >= results_.size()) return false;
    *out = results_[result_pos_++];
    CountRow();
    return true;
  }
  const int k = options_.threshold >= 0 ? options_.threshold
                                        : ctx_->lexequal_threshold;
  while (true) {
    if (!outer_valid_) {
      MURAL_ASSIGN_OR_RETURN(const bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      const Value& v = outer_row_[outer_col_];
      outer_null_ = v.is_null();
      if (!outer_null_) {
        MURAL_ASSIGN_OR_RETURN(outer_phonemes_, PhonemesOf(v, ctx_));
      }
      outer_valid_ = true;
      inner_pos_ = 0;
    }
    if (outer_null_) {
      outer_valid_ = false;
      continue;
    }
    while (inner_pos_ < inner_rows_.size()) {
      const size_t i = inner_pos_++;
      if (!inner_valid_[i]) continue;
      ++ctx_->stats.predicate_evals;
      const int d = BoundedDistanceCounted(
          outer_phonemes_, inner_phonemes_[i], k, &ctx_->stats.distance);
      if (d > k) continue;
      out->clear();
      out->reserve(schema_.NumColumns());
      out->insert(out->end(), outer_row_.begin(), outer_row_.end());
      out->insert(out->end(), inner_rows_[i].begin(), inner_rows_[i].end());
      if (options_.tag_distance) out->push_back(Value::Int32(d));
      CountRow();
      return true;
    }
    outer_valid_ = false;
  }
}

Status LexJoinOp::CloseImpl() {
  inner_rows_.clear();
  inner_phonemes_.clear();
  inner_valid_.clear();
  results_.clear();
  result_pos_ = 0;
  const Status outer_st = outer_->Close();
  const Status inner_st = inner_->Close();  // no-op unless Open failed
  MURAL_RETURN_IF_ERROR(outer_st);
  return inner_st;
}

std::string LexJoinOp::DisplayName() const {
  std::string name = StringFormat(
      "LexJoin(%s ~ %s, t=%d%s",
      outer_->output_schema().column(outer_col_).name.c_str(),
      inner_->output_schema().column(inner_col_).name.c_str(),
      options_.threshold >= 0 ? options_.threshold
                              : ctx_->lexequal_threshold,
      options_.tag_distance ? ", tagged" : "");
  if (options_.dop > 1) {
    // Cache counters go live after Open; EXPLAIN ANALYZE re-renders this
    // name so they show up like the closure-cache stats do.
    name += StringFormat(", dop=%d, cache h=%llu m=%llu", options_.dop,
                         static_cast<unsigned long long>(cache_hits_),
                         static_cast<unsigned long long>(cache_misses_));
  }
  name += ")";
  return name;
}

SemJoinOp::SemJoinOp(ExecContext* ctx, OpPtr lhs_child, OpPtr rhs_child,
                     size_t lhs_col, size_t rhs_col, Options options)
    : PhysicalOp(ctx),
      lhs_(std::move(lhs_child)),
      rhs_(std::move(rhs_child)),
      lhs_col_(lhs_col),
      rhs_col_(rhs_col),
      options_(options),
      schema_(Schema::Concat(lhs_->output_schema(),
                             rhs_->output_schema())) {}

Status SemJoinOp::ComputeClosureFor(const Value& rhs_value) {
  const Taxonomy& tax = *ctx_->taxonomy;
  const std::vector<SynsetId> roots = tax.Lookup(rhs_value.unitext());
  if (roots.empty()) {
    local_closure_.clear();
    current_closure_ = &local_closure_;
    return Status::OK();
  }
  if (options_.use_closure_cache && ctx_->closure_cache != nullptr &&
      roots.size() == 1) {
    const uint64_t misses_before = ctx_->closure_cache->misses();
    current_closure_ = &ctx_->closure_cache->Get(roots[0]);
    if (ctx_->closure_cache->misses() > misses_before) {
      ++ctx_->stats.closure_computations;
    } else {
      ++ctx_->stats.closure_reuses;
    }
    return Status::OK();
  }
  ++ctx_->stats.closure_computations;
  local_closure_ = tax.TransitiveClosureOfAll(roots);
  current_closure_ = &local_closure_;
  return Status::OK();
}

Status SemJoinOp::OpenImpl() {
  if (ctx_->taxonomy == nullptr) {
    return Status::InvalidArgument(
        "SemJoin requires a taxonomy pinned in the session");
  }
  // Materialize the probe (LHS) side.
  MURAL_RETURN_IF_ERROR(lhs_->Open());
  lhs_rows_.clear();
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, lhs_->Next(&row));
    if (!more) break;
    lhs_rows_.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(lhs_->Close());

  // Materialize the RHS (outer) side; sort for unique-closure processing
  // when requested.
  MURAL_RETURN_IF_ERROR(rhs_->Open());
  rhs_rows_.clear();
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, rhs_->Next(&row));
    if (!more) break;
    rhs_rows_.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(rhs_->Close());
  if (options_.sort_unique_rhs) {
    std::stable_sort(rhs_rows_.begin(), rhs_rows_.end(),
                     [this](const Row& a, const Row& b) {
                       return a[rhs_col_].Compare(b[rhs_col_]) < 0;
                     });
  }
  rhs_pos_ = 0;
  lhs_pos_ = 0;
  rhs_open_ = false;
  current_closure_ = nullptr;
  last_rhs_key_.reset();
  return Status::OK();
}

StatusOr<bool> SemJoinOp::NextImpl(Row* out) {
  while (true) {
    if (!rhs_open_) {
      if (rhs_pos_ >= rhs_rows_.size()) return false;
      const Value& rhs_value = rhs_rows_[rhs_pos_][rhs_col_];
      if (rhs_value.is_null() ||
          rhs_value.type() != TypeId::kUniText) {
        ++rhs_pos_;
        continue;
      }
      // With sorted RHS, equal consecutive values reuse the closure even
      // without the cache.
      const std::string key = rhs_value.unitext().text() + "\x1f" +
                              std::to_string(rhs_value.unitext().lang());
      if (!options_.sort_unique_rhs || !last_rhs_key_.has_value() ||
          *last_rhs_key_ != key) {
        MURAL_RETURN_IF_ERROR(ComputeClosureFor(rhs_value));
        last_rhs_key_ = key;
      } else {
        ++ctx_->stats.closure_reuses;
      }
      rhs_open_ = true;
      lhs_pos_ = 0;
    }
    const Row& rhs_row = rhs_rows_[rhs_pos_];
    while (lhs_pos_ < lhs_rows_.size()) {
      const Row& lhs_row = lhs_rows_[lhs_pos_++];
      const Value& lhs_value = lhs_row[lhs_col_];
      if (lhs_value.is_null() || lhs_value.type() != TypeId::kUniText) {
        continue;
      }
      ++ctx_->stats.predicate_evals;
      const std::vector<SynsetId> ids =
          ctx_->taxonomy->Lookup(lhs_value.unitext());
      bool match = false;
      for (SynsetId id : ids) {
        if (current_closure_->count(id) > 0) {
          match = true;
          break;
        }
      }
      if (!match) continue;
      out->clear();
      out->reserve(schema_.NumColumns());
      out->insert(out->end(), lhs_row.begin(), lhs_row.end());
      out->insert(out->end(), rhs_row.begin(), rhs_row.end());
      CountRow();
      return true;
    }
    rhs_open_ = false;
    ++rhs_pos_;
  }
}

Status SemJoinOp::CloseImpl() {
  lhs_rows_.clear();
  rhs_rows_.clear();
  current_closure_ = nullptr;
  // Both sides are normally drained and closed in Open; these are no-ops
  // unless a failed Open left one mid-drain.
  const Status lhs_st = lhs_->Close();
  const Status rhs_st = rhs_->Close();
  MURAL_RETURN_IF_ERROR(lhs_st);
  return rhs_st;
}

std::string SemJoinOp::DisplayName() const {
  return StringFormat(
      "SemJoin(%s under %s%s%s)",
      lhs_->output_schema().column(lhs_col_).name.c_str(),
      rhs_->output_schema().column(rhs_col_).name.c_str(),
      options_.use_closure_cache ? "" : ", no-cache",
      options_.sort_unique_rhs ? ", sorted-unique" : "");
}

}  // namespace mural

namespace mural {

LexIndexJoinOp::LexIndexJoinOp(ExecContext* ctx, OpPtr outer,
                               const TableInfo* inner_table,
                               const IndexInfo* inner_index,
                               size_t outer_col, int threshold)
    : PhysicalOp(ctx),
      outer_(std::move(outer)),
      inner_table_(inner_table),
      inner_index_(inner_index),
      outer_col_(outer_col),
      threshold_(threshold),
      schema_(Schema::Concat(outer_->output_schema(),
                             inner_table->schema)) {}

Status LexIndexJoinOp::OpenImpl() {
  outer_valid_ = false;
  matches_.clear();
  match_pos_ = 0;
  return outer_->Open();
}

StatusOr<bool> LexIndexJoinOp::NextImpl(Row* out) {
  const int k = threshold_ >= 0 ? threshold_ : ctx_->lexequal_threshold;
  std::string record;
  while (true) {
    if (!outer_valid_) {
      MURAL_ASSIGN_OR_RETURN(const bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      const Value& v = outer_row_[outer_col_];
      matches_.clear();
      match_pos_ = 0;
      if (!v.is_null()) {
        MURAL_ASSIGN_OR_RETURN(const PhonemeString ph, PhonemesOf(v, ctx_));
        ++ctx_->stats.index_probes;
        MURAL_RETURN_IF_ERROR(inner_index_->index->SearchWithin(
            Value::Text(ph), k, &matches_));
      }
      outer_valid_ = true;
    }
    while (match_pos_ < matches_.size()) {
      const Rid rid = matches_[match_pos_++];
      MURAL_RETURN_IF_ERROR(inner_table_->heap->Get(rid, &record));
      Row inner_row;
      MURAL_RETURN_IF_ERROR(TupleCodec::Deserialize(inner_table_->schema,
                                                    record, &inner_row));
      out->clear();
      out->reserve(schema_.NumColumns());
      out->insert(out->end(), outer_row_.begin(), outer_row_.end());
      out->insert(out->end(), inner_row.begin(), inner_row.end());
      CountRow();
      return true;
    }
    outer_valid_ = false;
  }
}

Status LexIndexJoinOp::CloseImpl() {
  matches_.clear();
  return outer_->Close();
}

std::string LexIndexJoinOp::DisplayName() const {
  return StringFormat("LexIndexJoin(%s ~ %s.%s via %s, t=%d)",
                      outer_->output_schema().column(outer_col_).name.c_str(),
                      inner_table_->name.c_str(),
                      inner_index_->column.c_str(),
                      inner_index_->name.c_str(),
                      threshold_ >= 0 ? threshold_
                                      : ctx_->lexequal_threshold);
}

}  // namespace mural
