// ParallelLexScanOp: morsel-driven parallel evaluation of a Psi (LexEQUAL)
// selection predicate directly over a table's heap pages.
//
// Table 3 makes the no-index Psi scan CPU-bound (G2P conversion + banded
// edit distance per row), but the scan itself need not be serial either:
// the storage layer's latched page guards (ReadPageGuard) make concurrent
// page reads safe, so workers claim page-range morsels over the heap's
// page directory and drive deserialization + predicate evaluation end to
// end.  There is no serial child-drain phase — this operator is a leaf.
//
// Determinism: morsels own disjoint page ranges in chain order, each
// filters into its own result slot, and the gather concatenates slots in
// morsel-index order — so the output sequence is bit-identical to a
// serial Filter(SeqScan) regardless of thread scheduling.  The
// differential harness (tests/parallel_differential_test.cc) pins this
// down for DOP in {1, 2, 4, 8}.

#pragma once

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

class ParallelLexScanOp : public PhysicalOp {
 public:
  /// Pages per morsel.  A page holds on the order of 10²–10³ name rows,
  /// so even a handful of pages amortizes the worker hand-off.
  static constexpr size_t kDefaultMorselPages = 4;

  /// Scans `table`'s heap.  `dop` > 1 with a thread pool in the context
  /// runs page-range morsels on the pool; otherwise the operator degrades
  /// to an inline serial scan (same code path, one strip at a time).
  /// `morsel_pages` is the morsel granularity in heap pages.
  ParallelLexScanOp(ExecContext* ctx, const TableInfo* table,
                    ExprPtr predicate, int dop,
                    size_t morsel_pages = kDefaultMorselPages);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] StatusOr<bool> NextBatchImpl(RowBatch* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return table_->schema; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override { return {}; }

 private:
  const TableInfo* table_;
  ExprPtr predicate_;
  int dop_;
  size_t morsel_pages_;

  std::vector<Row> results_;
  size_t result_pos_ = 0;
  uint64_t cache_hits_ = 0;    // phoneme-cache lookups by this operator
  uint64_t cache_misses_ = 0;
};

}  // namespace mural
