// ParallelLexScanOp: morsel-driven parallel evaluation of a Psi (LexEQUAL)
// selection predicate.
//
// Table 3 makes the no-index Psi scan CPU-bound (G2P conversion + banded
// edit distance per row), so the operator splits its materialized input
// into fixed-size morsels and evaluates the predicate on the session's
// worker pool.  The child is drained serially first — storage (BufferPool,
// HeapFile) is not thread-safe — so only the pure CPU work parallelizes.
//
// Determinism: each morsel filters into its own result slot and the gather
// concatenates slots in morsel-index order, so the output sequence is
// bit-identical to a serial Filter(child) regardless of thread scheduling.
// The differential harness (tests/parallel_differential_test.cc) pins this
// down for DOP in {1, 2, 4, 8}.

#pragma once

#include <cstdint>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

class ParallelLexScanOp : public PhysicalOp {
 public:
  static constexpr size_t kDefaultMorselSize = 2048;

  /// `dop` > 1 with a thread pool in the context runs morsels on the
  /// pool; otherwise the operator degrades to an inline serial filter
  /// (same code path, one strip).
  ParallelLexScanOp(ExecContext* ctx, OpPtr child, ExprPtr predicate,
                    int dop, size_t morsel_size = kDefaultMorselSize);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  ExprPtr predicate_;
  int dop_;
  size_t morsel_size_;

  std::vector<Row> results_;
  size_t result_pos_ = 0;
  uint64_t cache_hits_ = 0;    // phoneme-cache lookups by this operator
  uint64_t cache_misses_ = 0;
};

}  // namespace mural
