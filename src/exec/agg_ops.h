// Hash aggregation: GROUP BY + COUNT/SUM/AVG/MIN/MAX.

#pragma once

#include <map>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggKindToString(AggKind kind);

/// One aggregate to compute.  `column` is ignored for kCountStar.
struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  size_t column = 0;
  std::string output_name = "agg";
};

/// Groups child rows by `group_by` columns and computes aggregates.
/// Output schema: group columns (in order) followed by one column per
/// aggregate.  With no group columns, emits exactly one row (aggregates
/// over the whole input; zero-input COUNT is 0, others NULL).
class AggregateOp : public PhysicalOp {
 public:
  AggregateOp(ExecContext* ctx, OpPtr child, std::vector<size_t> group_by,
              std::vector<AggSpec> aggs);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0;
    bool saw_value = false;
    Value min, max;
  };

  [[nodiscard]]
  Status Accumulate(const Row& row, std::vector<AggState>* states) const;
  Row Finalize(const Row& group, const std::vector<AggState>& states) const;

  OpPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace mural
