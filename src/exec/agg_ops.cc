#include "exec/agg_ops.h"

#include <algorithm>

namespace mural {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

namespace {

TypeId AggOutputType(const AggSpec& spec, const Schema& in) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kSum:
    case AggKind::kAvg:
      return TypeId::kFloat64;
    case AggKind::kMin:
    case AggKind::kMax:
      return in.column(spec.column).type;
  }
  return TypeId::kNull;
}

}  // namespace

AggregateOp::AggregateOp(ExecContext* ctx, OpPtr child,
                         std::vector<size_t> group_by,
                         std::vector<AggSpec> aggs)
    : PhysicalOp(ctx),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const Schema& in = child_->output_schema();
  std::vector<Column> cols;
  for (size_t g : group_by_) cols.push_back(in.column(g));
  for (const AggSpec& a : aggs_) {
    cols.emplace_back(a.output_name, AggOutputType(a, in));
  }
  schema_ = Schema(std::move(cols));
}

Status AggregateOp::Accumulate(const Row& row,
                               std::vector<AggState>* states) const {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    AggState& state = (*states)[i];
    if (spec.kind == AggKind::kCountStar) {
      ++state.count;
      continue;
    }
    const Value& v = row[spec.column];
    if (v.is_null()) continue;  // SQL: aggregates skip NULLs
    switch (spec.kind) {
      case AggKind::kCount:
        ++state.count;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        state.sum += v.AsDouble();
        ++state.count;
        break;
      case AggKind::kMin:
        if (!state.saw_value || v.Compare(state.min) < 0) state.min = v;
        break;
      case AggKind::kMax:
        if (!state.saw_value || v.Compare(state.max) > 0) state.max = v;
        break;
      case AggKind::kCountStar:
        break;
    }
    state.saw_value = true;
  }
  return Status::OK();
}

Row AggregateOp::Finalize(const Row& group,
                          const std::vector<AggState>& states) const {
  Row out = group;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    const AggState& state = states[i];
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        out.push_back(Value::Int64(state.count));
        break;
      case AggKind::kSum:
        out.push_back(state.saw_value ? Value::Float64(state.sum)
                                      : Value::Null());
        break;
      case AggKind::kAvg:
        out.push_back(state.count > 0
                          ? Value::Float64(state.sum /
                                           static_cast<double>(state.count))
                          : Value::Null());
        break;
      case AggKind::kMin:
        out.push_back(state.saw_value ? state.min : Value::Null());
        break;
      case AggKind::kMax:
        out.push_back(state.saw_value ? state.max : Value::Null());
        break;
    }
  }
  return out;
}

Status AggregateOp::OpenImpl() {
  MURAL_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  pos_ = 0;

  // Ordered map over group-key display forms keeps output deterministic.
  std::map<std::string, std::pair<Row, std::vector<AggState>>> groups;
  Row row;
  uint64_t input_rows = 0;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(&row));
    if (!more) break;
    ++input_rows;
    std::string key;
    Row group;
    for (size_t g : group_by_) {
      key += row[g].ToString();
      key.push_back('\x1f');
      group.push_back(row[g]);
    }
    auto [it, inserted] = groups.try_emplace(
        key, std::make_pair(std::move(group),
                            std::vector<AggState>(aggs_.size())));
    MURAL_RETURN_IF_ERROR(Accumulate(row, &it->second.second));
  }
  MURAL_RETURN_IF_ERROR(child_->Close());

  if (groups.empty() && group_by_.empty()) {
    // Global aggregate over zero rows still emits one row.
    results_.push_back(Finalize({}, std::vector<AggState>(aggs_.size())));
  } else {
    for (const auto& [key, entry] : groups) {
      results_.push_back(Finalize(entry.first, entry.second));
    }
  }
  return Status::OK();
}

StatusOr<bool> AggregateOp::NextImpl(Row* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  CountRow();
  return true;
}

Status AggregateOp::CloseImpl() {
  results_.clear();
  return child_->Close();
}

std::string AggregateOp::DisplayName() const {
  std::string out = "Aggregate(";
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) out += ", ";
    out += in.column(group_by_[i]).name;
  }
  if (!group_by_.empty() && !aggs_.empty()) out += "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindToString(aggs_[i].kind);
  }
  out += ")";
  return out;
}

}  // namespace mural
