// PhysicalOp: the Volcano-style iterator interface all physical operators
// implement, plus EXPLAIN-tree rendering.
//
// The public Open/Next/Close entry points are non-virtual: they time the
// call through SpanClock into a per-operator trace span, maintain the
// process-wide `exec.spans_in_progress` gauge, and delegate to the
// protected OpenImpl/NextImpl/CloseImpl virtuals that subclasses override.
// Close() is idempotent and safe after a failed Open, so a driver can
// unconditionally Close a plan on any error and leave no span dangling.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "exec/exec_context.h"

namespace mural {

class PhysicalOp;
using OpPtr = std::unique_ptr<PhysicalOp>;

/// Wall-time trace span for one operator, split by iterator phase.
/// Next time is inclusive of children (parents drive children from their
/// NextImpl), matching the EXPLAIN ANALYZE convention.
///
/// `storage_ns` attributes buffer-pool time to the operator: the delta of
/// the process-wide storage.buffer_pool.fetch_nanos counter across each
/// Open/Next/Close call.  Like the wall times it is inclusive of
/// children, and being a process-global counter it also absorbs fetches
/// issued by concurrent queries — a per-query attribution would need
/// per-context counters.  Within the bench harness and EXPLAIN ANALYZE
/// (one query at a time) it reads as "time this subtree spent in the
/// buffer pool".
struct OpSpan {
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;
  uint64_t close_ns = 0;
  uint64_t storage_ns = 0;

  uint64_t TotalNanos() const { return open_ns + next_ns + close_ns; }
  double TotalMillis() const {
    return static_cast<double>(TotalNanos()) * 1e-6;
  }
  double StorageMillis() const {
    return static_cast<double>(storage_ns) * 1e-6;
  }
};

/// A batch of rows plus a selection vector — the unit of the vectorized
/// execution path (DESIGN.md "Vectorized execution").
///
/// Row storage is persistent across Reset() so a pipeline reuses one
/// allocation per operator; `sel_` lists the indices of rows that are
/// live after filtering.  Producers PushRow() (which self-selects the
/// row); filters shrink the selection in place without moving rows.
class RowBatch {
 public:
  explicit RowBatch(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.resize(capacity_);
    sel_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }

  /// Number of selected (live) rows.
  size_t num_selected() const { return sel_.size(); }
  bool empty() const { return sel_.empty(); }

  /// Clears the selection and logical row count; storage is kept.
  void Reset() {
    count_ = 0;
    sel_.clear();
  }

  /// Returns the next writable row slot and marks it selected.  Must not
  /// be called more than capacity() times between Resets.
  Row* PushRow() {
    sel_.push_back(static_cast<uint32_t>(count_));
    return &rows_[count_++];
  }
  bool full() const { return count_ == capacity_; }

  /// i-th *selected* row (0 <= i < num_selected()).
  Row& SelectedRow(size_t i) { return rows_[sel_[i]]; }
  const Row& SelectedRow(size_t i) const { return rows_[sel_[i]]; }

  /// The selection vector itself, for filters that compact it in place.
  std::vector<uint32_t>& selection() { return sel_; }

 private:
  size_t capacity_;
  size_t count_ = 0;            // rows written since Reset
  std::vector<Row> rows_;       // persistent storage, capacity_ slots
  std::vector<uint32_t> sel_;   // indices of live rows, ascending
};

/// Base class for physical operators.
class PhysicalOp {
 public:
  explicit PhysicalOp(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~PhysicalOp();

  /// Prepares for iteration.  May be called again after Close (rescan).
  /// On failure the operator still counts as in progress; call Close()
  /// to release it (the span gauge invariant relies on this).
  [[nodiscard]] Status Open();

  /// Produces the next row into *out; returns false when exhausted.
  [[nodiscard]] StatusOr<bool> Next(Row* out);

  /// Produces the next batch of rows into *out (Reset + refilled); returns
  /// false when exhausted and the batch is empty.  Timed into the same
  /// span as Next().  The default NextBatchImpl loops NextImpl, so every
  /// operator supports the batch protocol; hot operators override it.
  [[nodiscard]] StatusOr<bool> NextBatch(RowBatch* out);

  /// Idempotent; a no-op unless a prior Open is outstanding.
  [[nodiscard]] Status Close();

  virtual const Schema& output_schema() const = 0;

  /// Operator name + arguments for EXPLAIN ("SeqScan(Book)").
  virtual std::string DisplayName() const = 0;

  virtual std::vector<const PhysicalOp*> Children() const { return {}; }

  uint64_t rows_produced() const { return rows_produced_; }

  /// Non-empty batches emitted via NextBatch (0 on the tuple path).
  uint64_t batches_produced() const { return batches_produced_; }

  /// Trace span accumulated across Open/Next/Close calls so far.
  const OpSpan& span() const { return span_; }

  ExecContext* context() const { return ctx_; }

  /// Planner's cardinality estimate for this node; -1 = not estimated.
  int64_t estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(int64_t rows) { estimated_rows_ = rows; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual StatusOr<bool> NextImpl(Row* out) = 0;
  virtual Status CloseImpl() = 0;

  /// Default batch implementation: loops NextImpl until the batch is full
  /// or the operator is exhausted.  Overrides must keep the same counter
  /// semantics as the tuple path (CountRow/CountRows per emitted row).
  virtual StatusOr<bool> NextBatchImpl(RowBatch* out);

  /// Subclasses call this when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ++ctx_->stats.rows_emitted;
  }

  /// Batch form of CountRow: `n` rows emitted at once.
  void CountRows(uint64_t n) {
    rows_produced_ += n;
    ctx_->stats.rows_emitted += n;
  }

  ExecContext* ctx_;
  uint64_t rows_produced_ = 0;

 private:
  OpSpan span_;
  uint64_t batches_produced_ = 0;
  int64_t estimated_rows_ = -1;
  bool in_progress_ = false;
};

/// Renders an indented operator tree (EXPLAIN-style).  With
/// `with_actuals`, appends each operator's produced-row count — call
/// after execution for EXPLAIN ANALYZE output.
std::string ExplainTree(const PhysicalOp& root, bool with_actuals = false);

/// Rendering options for TraceTree.
struct TraceOptions {
  bool with_times = true;      // per-operator wall time from the span
  bool with_estimates = true;  // est rows + per-node q-error where known
};

/// Renders the executed plan as a timed tree: estimated vs actual rows,
/// per-node q-error, and per-operator wall time.  The `actual rows=N`
/// annotation matches ExplainTree's EXPLAIN ANALYZE format.
std::string TraceTree(const PhysicalOp& root,
                      const TraceOptions& opts = TraceOptions());

/// q-error between an estimate and an observation, both floored at one
/// row: max(est/actual, actual/est) >= 1, with 1 = perfect.
double QError(double estimated, double actual);

/// Drives a plan to completion, collecting all rows.  The plan is always
/// Closed before returning — also on Open/Next failure — so no operator
/// is left with an in-progress span.
StatusOr<std::vector<Row>> CollectAll(PhysicalOp* root);

}  // namespace mural
