// PhysicalOp: the Volcano-style iterator interface all physical operators
// implement (Open / Next / Close), plus EXPLAIN-tree rendering.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "exec/exec_context.h"

namespace mural {

class PhysicalOp;
using OpPtr = std::unique_ptr<PhysicalOp>;

/// Base class for physical operators.
class PhysicalOp {
 public:
  explicit PhysicalOp(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~PhysicalOp() = default;

  /// Prepares for iteration.  May be called again after Close (rescan).
  virtual Status Open() = 0;

  /// Produces the next row into *out; returns false when exhausted.
  virtual StatusOr<bool> Next(Row* out) = 0;

  virtual Status Close() = 0;

  virtual const Schema& output_schema() const = 0;

  /// Operator name + arguments for EXPLAIN ("SeqScan(Book)").
  virtual std::string DisplayName() const = 0;

  virtual std::vector<const PhysicalOp*> Children() const { return {}; }

  uint64_t rows_produced() const { return rows_produced_; }

 protected:
  /// Subclasses call this when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ++ctx_->stats.rows_emitted;
  }

  ExecContext* ctx_;
  uint64_t rows_produced_ = 0;
};

/// Renders an indented operator tree (EXPLAIN-style).  With
/// `with_actuals`, appends each operator's produced-row count — call
/// after execution for EXPLAIN ANALYZE output.
std::string ExplainTree(const PhysicalOp& root, bool with_actuals = false);

/// Drives a plan to completion, collecting all rows.
StatusOr<std::vector<Row>> CollectAll(PhysicalOp* root);

}  // namespace mural
