// PhysicalOp: the Volcano-style iterator interface all physical operators
// implement, plus EXPLAIN-tree rendering.
//
// The public Open/Next/Close entry points are non-virtual: they time the
// call through SpanClock into a per-operator trace span, maintain the
// process-wide `exec.spans_in_progress` gauge, and delegate to the
// protected OpenImpl/NextImpl/CloseImpl virtuals that subclasses override.
// Close() is idempotent and safe after a failed Open, so a driver can
// unconditionally Close a plan on any error and leave no span dangling.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "exec/exec_context.h"

namespace mural {

class PhysicalOp;
using OpPtr = std::unique_ptr<PhysicalOp>;

/// Wall-time trace span for one operator, split by iterator phase.
/// Next time is inclusive of children (parents drive children from their
/// NextImpl), matching the EXPLAIN ANALYZE convention.
///
/// `storage_ns` attributes buffer-pool time to the operator: the delta of
/// the process-wide storage.buffer_pool.fetch_nanos counter across each
/// Open/Next/Close call.  Like the wall times it is inclusive of
/// children, and being a process-global counter it also absorbs fetches
/// issued by concurrent queries — a per-query attribution would need
/// per-context counters.  Within the bench harness and EXPLAIN ANALYZE
/// (one query at a time) it reads as "time this subtree spent in the
/// buffer pool".
struct OpSpan {
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;
  uint64_t close_ns = 0;
  uint64_t storage_ns = 0;

  uint64_t TotalNanos() const { return open_ns + next_ns + close_ns; }
  double TotalMillis() const {
    return static_cast<double>(TotalNanos()) * 1e-6;
  }
  double StorageMillis() const {
    return static_cast<double>(storage_ns) * 1e-6;
  }
};

/// Base class for physical operators.
class PhysicalOp {
 public:
  explicit PhysicalOp(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~PhysicalOp();

  /// Prepares for iteration.  May be called again after Close (rescan).
  /// On failure the operator still counts as in progress; call Close()
  /// to release it (the span gauge invariant relies on this).
  [[nodiscard]] Status Open();

  /// Produces the next row into *out; returns false when exhausted.
  [[nodiscard]] StatusOr<bool> Next(Row* out);

  /// Idempotent; a no-op unless a prior Open is outstanding.
  [[nodiscard]] Status Close();

  virtual const Schema& output_schema() const = 0;

  /// Operator name + arguments for EXPLAIN ("SeqScan(Book)").
  virtual std::string DisplayName() const = 0;

  virtual std::vector<const PhysicalOp*> Children() const { return {}; }

  uint64_t rows_produced() const { return rows_produced_; }

  /// Trace span accumulated across Open/Next/Close calls so far.
  const OpSpan& span() const { return span_; }

  /// Planner's cardinality estimate for this node; -1 = not estimated.
  int64_t estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(int64_t rows) { estimated_rows_ = rows; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual StatusOr<bool> NextImpl(Row* out) = 0;
  virtual Status CloseImpl() = 0;

  /// Subclasses call this when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ++ctx_->stats.rows_emitted;
  }

  ExecContext* ctx_;
  uint64_t rows_produced_ = 0;

 private:
  OpSpan span_;
  int64_t estimated_rows_ = -1;
  bool in_progress_ = false;
};

/// Renders an indented operator tree (EXPLAIN-style).  With
/// `with_actuals`, appends each operator's produced-row count — call
/// after execution for EXPLAIN ANALYZE output.
std::string ExplainTree(const PhysicalOp& root, bool with_actuals = false);

/// Rendering options for TraceTree.
struct TraceOptions {
  bool with_times = true;      // per-operator wall time from the span
  bool with_estimates = true;  // est rows + per-node q-error where known
};

/// Renders the executed plan as a timed tree: estimated vs actual rows,
/// per-node q-error, and per-operator wall time.  The `actual rows=N`
/// annotation matches ExplainTree's EXPLAIN ANALYZE format.
std::string TraceTree(const PhysicalOp& root,
                      const TraceOptions& opts = TraceOptions());

/// q-error between an estimate and an observation, both floored at one
/// row: max(est/actual, actual/est) >= 1, with 1 = perfect.
double QError(double estimated, double actual);

/// Drives a plan to completion, collecting all rows.  The plan is always
/// Closed before returning — also on Open/Next failure — so no operator
/// is left with an in-progress span.
StatusOr<std::vector<Row>> CollectAll(PhysicalOp* root);

}  // namespace mural
