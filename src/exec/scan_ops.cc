#include "exec/scan_ops.h"

#include "catalog/tuple_codec.h"

namespace mural {

Status SeqScanOp::OpenImpl() {
  it_.emplace(table_->heap->Begin());
  return Status::OK();
}

StatusOr<bool> SeqScanOp::NextImpl(Row* out) {
  while (it_->Valid()) {
    const std::string& record = it_->record();
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(table_->schema, record, out));
    it_->Next();
    CountRow();
    return true;
  }
  MURAL_RETURN_IF_ERROR(it_->status());
  return false;
}

StatusOr<bool> SeqScanOp::NextBatchImpl(RowBatch* out) {
  // Native batch scan: fills the batch directly from the heap iterator,
  // skipping the per-row virtual dispatch and span bookkeeping of the
  // tuple path.
  while (it_->Valid() && !out->full()) {
    Row* slot = out->PushRow();
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(table_->schema, it_->record(), slot));
    it_->Next();
  }
  CountRows(out->num_selected());
  if (!it_->Valid()) {
    MURAL_RETURN_IF_ERROR(it_->status());
    return !out->empty();
  }
  return true;
}

Status SeqScanOp::CloseImpl() {
  it_.reset();
  return Status::OK();
}

std::string IndexProbe::ToString() const {
  switch (kind) {
    case Kind::kEqual:
      return "= " + key.ToString();
    case Kind::kRange:
      return "[" + lo.ToString() + " .. " + hi.ToString() + "]";
    case Kind::kWithin:
      return "within " + std::to_string(radius) + " of " + key.ToString();
  }
  return "?";
}

Status IndexScanOp::OpenImpl() {
  rids_.clear();
  pos_ = 0;
  ++ctx_->stats.index_probes;
  switch (probe_.kind) {
    case IndexProbe::Kind::kEqual:
      MURAL_RETURN_IF_ERROR(index_->index->SearchEqual(probe_.key, &rids_));
      break;
    case IndexProbe::Kind::kRange:
      MURAL_RETURN_IF_ERROR(
          index_->index->SearchRange(probe_.lo, probe_.hi, &rids_));
      break;
    case IndexProbe::Kind::kWithin:
      MURAL_RETURN_IF_ERROR(
          index_->index->SearchWithin(probe_.key, probe_.radius, &rids_));
      break;
  }
  return Status::OK();
}

StatusOr<bool> IndexScanOp::NextImpl(Row* out) {
  std::string record;
  while (pos_ < rids_.size()) {
    const Rid rid = rids_[pos_++];
    MURAL_RETURN_IF_ERROR(table_->heap->Get(rid, &record));
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(table_->schema, record, out));
    if (residual_ != nullptr) {
      MURAL_ASSIGN_OR_RETURN(const bool keep,
                             EvalPredicate(*residual_, *out, ctx_));
      if (!keep) continue;
    }
    CountRow();
    return true;
  }
  return false;
}

Status IndexScanOp::CloseImpl() {
  rids_.clear();
  return Status::OK();
}

std::string IndexScanOp::DisplayName() const {
  std::string out = std::string(IndexKindToString(index_->kind)) +
                    "IndexScan(" + table_->name + "." + index_->column +
                    " " + probe_.ToString();
  if (residual_ != nullptr) out += " recheck: " + residual_->ToString();
  out += ")";
  return out;
}

}  // namespace mural
