#include "exec/parallel_ops.h"

#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace mural {

ParallelLexScanOp::ParallelLexScanOp(ExecContext* ctx, OpPtr child,
                                     ExprPtr predicate, int dop,
                                     size_t morsel_size)
    : PhysicalOp(ctx),
      child_(std::move(child)),
      predicate_(std::move(predicate)),
      dop_(dop < 1 ? 1 : dop),
      morsel_size_(morsel_size == 0 ? kDefaultMorselSize : morsel_size) {}

Status ParallelLexScanOp::OpenImpl() {
  results_.clear();
  result_pos_ = 0;

  // Serial drain: the storage layer under the child is not thread-safe.
  MURAL_RETURN_IF_ERROR(child_->Open());
  std::vector<Row> input;
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, child_->Next(&row));
    if (!more) break;
    input.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(child_->Close());

  // Parallel predicate evaluation, one result slot per morsel.  Per-morsel
  // context clones keep the stats counters race-free; they merge below in
  // morsel order, so counters are deterministic too.
  const size_t n = input.size();
  const size_t num_morsels =
      n == 0 ? 0 : (n + morsel_size_ - 1) / morsel_size_;
  std::vector<std::vector<Row>> slots(num_morsels);
  std::vector<ExecContext> worker_ctxs(num_morsels, ctx_->WorkerClone());
  MURAL_RETURN_IF_ERROR(ParallelMorsels(
      ctx_->thread_pool, n, morsel_size_, dop_,
      [this, &input, &slots, &worker_ctxs](size_t m, size_t begin,
                                           size_t end) {
        ExecContext* wctx = &worker_ctxs[m];
        std::vector<Row>* slot = &slots[m];
        for (size_t i = begin; i < end; ++i) {
          MURAL_ASSIGN_OR_RETURN(const bool pass,
                                 EvalPredicate(*predicate_, input[i], wctx));
          if (pass) slot->push_back(input[i]);
        }
        return Status::OK();
      }));

  size_t total = 0;
  for (const std::vector<Row>& slot : slots) total += slot.size();
  results_.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    ctx_->stats.Merge(worker_ctxs[m].stats);
    cache_hits_ += worker_ctxs[m].stats.phoneme_cache_hits;
    cache_misses_ += worker_ctxs[m].stats.phoneme_cache_misses;
    for (Row& r : slots[m]) results_.push_back(std::move(r));
  }
  return Status::OK();
}

StatusOr<bool> ParallelLexScanOp::NextImpl(Row* out) {
  if (result_pos_ >= results_.size()) return false;
  *out = results_[result_pos_++];
  CountRow();
  return true;
}

Status ParallelLexScanOp::CloseImpl() {
  results_.clear();
  result_pos_ = 0;
  return child_->Close();  // no-op unless Open failed mid-drain
}

std::string ParallelLexScanOp::DisplayName() const {
  // Cache counters go live after Open; EXPLAIN ANALYZE re-renders this
  // name, so hit/miss totals appear alongside the actual row counts.
  return StringFormat("ParallelLexScan(%s, dop=%d, cache h=%llu m=%llu)",
                      predicate_->ToString().c_str(), dop_,
                      static_cast<unsigned long long>(cache_hits_),
                      static_cast<unsigned long long>(cache_misses_));
}

}  // namespace mural
