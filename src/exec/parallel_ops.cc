#include "exec/parallel_ops.h"

#include <utility>

#include "catalog/tuple_codec.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace mural {

ParallelLexScanOp::ParallelLexScanOp(ExecContext* ctx, const TableInfo* table,
                                     ExprPtr predicate, int dop,
                                     size_t morsel_pages)
    : PhysicalOp(ctx),
      table_(table),
      predicate_(std::move(predicate)),
      dop_(dop < 1 ? 1 : dop),
      morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages : morsel_pages) {}

Status ParallelLexScanOp::OpenImpl() {
  results_.clear();
  result_pos_ = 0;

  // Workers claim page-range morsels over the heap's page directory and
  // scan through read guards: the buffer pool's shared latches make the
  // concurrent page accesses safe, so the storage walk parallelizes along
  // with the CPU work.  Per-morsel context clones keep the stats counters
  // race-free; they merge below in morsel order, so counters are
  // deterministic too.
  const HeapFile* heap = table_->heap.get();
  BufferPool* pool = heap->pool();
  const std::vector<PageId>& pages = heap->pages();
  const size_t n = pages.size();
  const size_t num_morsels =
      n == 0 ? 0 : (n + morsel_pages_ - 1) / morsel_pages_;
  std::vector<std::vector<Row>> slots(num_morsels);
  std::vector<ExecContext> worker_ctxs(num_morsels, ctx_->WorkerClone());
  MURAL_RETURN_IF_ERROR(ParallelMorsels(
      ctx_->thread_pool, n, morsel_pages_, dop_,
      [this, pool, &pages, &slots, &worker_ctxs](size_t m, size_t begin,
                                                 size_t end) {
        ExecContext* wctx = &worker_ctxs[m];
        std::vector<Row>* slot = &slots[m];
        Row row;
        for (size_t p = begin; p < end; ++p) {
          MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard,
                                 pool->Fetch(pages[p]));
          const Page* page = guard.get();
          for (SlotId s = 0; s < page->NumSlots(); ++s) {
            StatusOr<Slice> record = page->Get(s);
            if (!record.ok()) continue;  // tombstone
            MURAL_RETURN_IF_ERROR(TupleCodec::Deserialize(
                table_->schema, record->ToStringView(), &row));
            MURAL_ASSIGN_OR_RETURN(const bool pass,
                                   EvalPredicate(*predicate_, row, wctx));
            if (pass) slot->push_back(row);
          }
        }
        return Status::OK();
      }));

  // Gather: flatten slots in morsel-index order (= page chain order = the
  // serial SeqScan emission order) and merge stats the same way.
  size_t total = 0;
  for (const std::vector<Row>& slot : slots) total += slot.size();
  results_.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    ctx_->stats.Merge(worker_ctxs[m].stats);
    cache_hits_ += worker_ctxs[m].stats.phoneme_cache_hits;
    cache_misses_ += worker_ctxs[m].stats.phoneme_cache_misses;
    for (Row& r : slots[m]) results_.push_back(std::move(r));
  }
  return Status::OK();
}

StatusOr<bool> ParallelLexScanOp::NextImpl(Row* out) {
  if (result_pos_ >= results_.size()) return false;
  *out = results_[result_pos_++];
  CountRow();
  return true;
}

StatusOr<bool> ParallelLexScanOp::NextBatchImpl(RowBatch* out) {
  // The morsel gather already materialized the matches in deterministic
  // order (OpenImpl); the batch path replays that buffer a batch at a
  // time instead of a row at a time.
  while (result_pos_ < results_.size() && !out->full()) {
    *out->PushRow() = results_[result_pos_++];
  }
  CountRows(out->num_selected());
  return result_pos_ < results_.size() || !out->empty();
}

Status ParallelLexScanOp::CloseImpl() {
  results_.clear();
  result_pos_ = 0;
  return Status::OK();
}

std::string ParallelLexScanOp::DisplayName() const {
  // Cache counters go live after Open; EXPLAIN ANALYZE re-renders this
  // name, so hit/miss totals appear alongside the actual row counts.
  return StringFormat("ParallelLexScan(%s, %s, dop=%d, cache h=%llu m=%llu)",
                      table_->name.c_str(), predicate_->ToString().c_str(),
                      dop_, static_cast<unsigned long long>(cache_hits_),
                      static_cast<unsigned long long>(cache_misses_));
}

}  // namespace mural
