// Row-shaping operators: Filter, Project, Limit, Materialize, Sort.

#pragma once

#include <optional>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

/// Emits child rows satisfying a predicate.
class FilterOp : public PhysicalOp {
 public:
  FilterOp(ExecContext* ctx, OpPtr child, ExprPtr predicate)
      : PhysicalOp(ctx),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  [[nodiscard]] Status OpenImpl() override { return child_->Open(); }
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] StatusOr<bool> NextBatchImpl(RowBatch* out) override;
  [[nodiscard]] Status CloseImpl() override { return child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string DisplayName() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  ExprPtr predicate_;
};

/// Projects expressions into a new schema.
class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(ExecContext* ctx, OpPtr child, std::vector<ExprPtr> exprs,
            Schema schema)
      : PhysicalOp(ctx),
        child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(schema)) {}

  /// Convenience: project child columns by index, deriving the schema.
  static OpPtr ByColumns(ExecContext* ctx, OpPtr child,
                         const std::vector<size_t>& columns);

  [[nodiscard]] Status OpenImpl() override { return child_->Open(); }
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override { return child_->Close(); }
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Emits at most `limit` rows.
class LimitOp : public PhysicalOp {
 public:
  LimitOp(ExecContext* ctx, OpPtr child, uint64_t limit)
      : PhysicalOp(ctx), child_(std::move(child)), limit_(limit) {}

  [[nodiscard]] Status OpenImpl() override {
    seen_ = 0;
    return child_->Open();
  }
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override { return child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string DisplayName() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  uint64_t limit_;
  uint64_t seen_ = 0;
};

/// Materializes the child once; replays from memory on rescans (the inner
/// side of nested-loop joins, Fig. 7's Materialize nodes).
class MaterializeOp : public PhysicalOp {
 public:
  MaterializeOp(ExecContext* ctx, OpPtr child)
      : PhysicalOp(ctx), child_(std::move(child)) {}

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string DisplayName() const override { return "Materialize"; }
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::optional<std::vector<Row>> rows_;
  size_t pos_ = 0;
};

/// One sort key.
struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

/// In-memory sort.
class SortOp : public PhysicalOp {
 public:
  SortOp(ExecContext* ctx, OpPtr child, std::vector<SortKey> keys)
      : PhysicalOp(ctx), child_(std::move(child)), keys_(std::move(keys)) {}

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Concatenates two inputs with compatible schemas (bag union).
class UnionAllOp : public PhysicalOp {
 public:
  UnionAllOp(ExecContext* ctx, OpPtr left, OpPtr right)
      : PhysicalOp(ctx), left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]] Status OpenImpl() override {
    on_right_ = false;
    MURAL_RETURN_IF_ERROR(left_->Open());
    return right_->Open();
  }
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override {
    // Close both children even if the left one fails, so the right
    // subtree's buffer-pool pins are released; report the first error.
    const Status left_st = left_->Close();
    const Status right_st = right_->Close();
    MURAL_RETURN_IF_ERROR(left_st);
    return right_st;
  }
  const Schema& output_schema() const override {
    return left_->output_schema();
  }
  std::string DisplayName() const override { return "UnionAll"; }
  std::vector<const PhysicalOp*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OpPtr left_, right_;
  bool on_right_ = false;
};

/// A leaf operator replaying pre-built rows (tests, VALUES lists).
class ValuesOp : public PhysicalOp {
 public:
  ValuesOp(ExecContext* ctx, Schema schema, std::vector<Row> rows)
      : PhysicalOp(ctx),
        schema_(std::move(schema)),
        rows_(std::move(rows)) {}

  [[nodiscard]] Status OpenImpl() override {
    pos_ = 0;
    return Status::OK();
  }
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    CountRow();
    return true;
  }
  [[nodiscard]] Status CloseImpl() override { return Status::OK(); }
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override {
    return "Values(" + std::to_string(rows_.size()) + " rows)";
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace mural
