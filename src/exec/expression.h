// Expression trees evaluated against rows.
//
// Includes the standard relational predicates plus the multilingual ones:
//   - LexEqualExpr (Psi):  phoneme edit-distance match under the session
//     threshold (paper Fig. 3);
//   - SemEqualExpr (Omega): transitive-closure membership in the pinned
//     taxonomy (paper Fig. 5);
//   - FullEqualsExpr:      the UniText 'both components' equality;
//   - LangInExpr:          the "IN English, Tamil, ..." language filter of
//     the paper's SQL surface.

#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/status.h"
#include "exec/exec_context.h"

namespace mural {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Comparison operators for ComparisonExpr.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// Base expression.  Evaluate returns a Value (kBool for predicates; NULL
/// propagates SQL-style).
class Expr {
 public:
  virtual ~Expr() = default;

  [[nodiscard]]
  virtual StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const = 0;

  /// Display form for EXPLAIN.
  virtual std::string ToString() const = 0;

  /// Column indexes this expression reads (for pushdown legality checks).
  virtual void CollectColumns(std::set<size_t>* out) const = 0;
};

/// A reference to the i-th column of the input row.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::set<size_t>* out) const override {
    out->insert(index_);
  }

  size_t index() const { return index_; }

 private:
  size_t index_;
  std::string name_;
};

/// A literal constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::set<size_t>*) const override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison with SQL NULL semantics (NULL operand -> NULL).
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<size_t>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

/// AND / OR / NOT with three-valued logic.
enum class LogicalOp { kAnd, kOr, kNot };

class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right = nullptr)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<size_t>* out) const override {
    left_->CollectColumns(out);
    if (right_) right_->CollectColumns(out);
  }

  LogicalOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  LogicalOp op_;
  ExprPtr left_, right_;
};

/// The UniText full-equality operator (text AND language must match).
class FullEqualsExpr : public Expr {
 public:
  FullEqualsExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override {
    return left_->ToString() + " === " + right_->ToString();
  }
  void CollectColumns(std::set<size_t>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  ExprPtr left_, right_;
};

/// Psi: LexEQUAL(left, right) under the session threshold.  Operands must
/// evaluate to UNITEXT (or TEXT, treated as phoneme-transformable English).
///
/// `threshold_override` < 0 means "use ctx->lexequal_threshold" (the
/// paper's workaround for PostgreSQL's binary-operator limit, §4.2).
class LexEqualExpr : public Expr {
 public:
  LexEqualExpr(ExprPtr left, ExprPtr right, int threshold_override = -1)
      : left_(std::move(left)),
        right_(std::move(right)),
        threshold_override_(threshold_override) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<size_t>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  int threshold_override() const { return threshold_override_; }

  /// Resolves the effective threshold for a context.
  int EffectiveThreshold(const ExecContext* ctx) const {
    return threshold_override_ >= 0 ? threshold_override_
                                    : ctx->lexequal_threshold;
  }

 private:
  ExprPtr left_, right_;
  int threshold_override_;
};

/// Omega: SemEQUAL(left, right) — true iff some sense of `left` is in the
/// transitive closure of `right` in the pinned taxonomy.
class SemEqualExpr : public Expr {
 public:
  SemEqualExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override {
    return left_->ToString() + " SemEQUAL " + right_->ToString();
  }
  void CollectColumns(std::set<size_t>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  ExprPtr left_, right_;
};

/// "attr IN (English, Tamil, ...)": true iff the UNITEXT operand's
/// language id is in the set.
class LangInExpr : public Expr {
 public:
  LangInExpr(ExprPtr operand, std::set<LangId> langs)
      : operand_(std::move(operand)), langs_(std::move(langs)) {}

  [[nodiscard]]
  StatusOr<Value> Evaluate(const Row& row, ExecContext* ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<size_t>* out) const override {
    operand_->CollectColumns(out);
  }

  const std::set<LangId>& langs() const { return langs_; }

 private:
  ExprPtr operand_;
  std::set<LangId> langs_;
};

// ------------------------------------------------------ builder helpers

ExprPtr Col(size_t index, std::string name);
ExprPtr Lit(Value v);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr LexEq(ExprPtr l, ExprPtr r, int threshold = -1);
ExprPtr SemEq(ExprPtr l, ExprPtr r);
ExprPtr LangIn(ExprPtr operand, std::set<LangId> langs);

/// Helper used by both the expression evaluator and physical operators:
/// the phoneme string of a value (materialized if available, else
/// transformed; TEXT values transform with the English rules).
[[nodiscard]]
StatusOr<PhonemeString> PhonemesOf(const Value& v, ExecContext* ctx);

/// Cache-aware grapheme-to-phoneme transform with the same counter
/// accounting PhonemesOf uses (cache hits/misses, transforms).  The batch
/// LexEQUAL scan calls this directly when it peeks a key column that has
/// no materialized phonemes.
PhonemeString TransformPhonemesCounted(std::string_view text, LangId lang,
                                       ExecContext* ctx);

/// Helper: evaluates a predicate expression to a definite boolean (NULL ->
/// false, matching SQL WHERE semantics).
[[nodiscard]]
StatusOr<bool> EvalPredicate(const Expr& e, const Row& row, ExecContext* ctx);

}  // namespace mural
