#include "exec/join_ops.h"

namespace mural {

namespace {

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

NestedLoopJoinOp::NestedLoopJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner,
                                   ExprPtr predicate)
    : PhysicalOp(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)),
      schema_(Schema::Concat(outer_->output_schema(),
                             inner_->output_schema())) {}

Status NestedLoopJoinOp::OpenImpl() {
  MURAL_RETURN_IF_ERROR(outer_->Open());
  MURAL_RETURN_IF_ERROR(inner_->Open());
  inner_rows_.clear();
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, inner_->Next(&row));
    if (!more) break;
    inner_rows_.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(inner_->Close());
  outer_valid_ = false;
  inner_pos_ = 0;
  return Status::OK();
}

StatusOr<bool> NestedLoopJoinOp::NextImpl(Row* out) {
  while (true) {
    if (!outer_valid_) {
      MURAL_ASSIGN_OR_RETURN(const bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      outer_valid_ = true;
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_rows_.size()) {
      Row candidate = ConcatRows(outer_row_, inner_rows_[inner_pos_++]);
      bool keep = true;
      if (predicate_ != nullptr) {
        MURAL_ASSIGN_OR_RETURN(keep,
                               EvalPredicate(*predicate_, candidate, ctx_));
      }
      if (keep) {
        *out = std::move(candidate);
        CountRow();
        return true;
      }
    }
    outer_valid_ = false;
  }
}

Status NestedLoopJoinOp::CloseImpl() {
  inner_rows_.clear();
  const Status outer_st = outer_->Close();
  const Status inner_st = inner_->Close();  // no-op unless Open failed
  MURAL_RETURN_IF_ERROR(outer_st);
  return inner_st;
}

HashJoinOp::HashJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner,
                       size_t outer_col, size_t inner_col)
    : PhysicalOp(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_col_(outer_col),
      inner_col_(inner_col),
      schema_(Schema::Concat(outer_->output_schema(),
                             inner_->output_schema())) {}

Status HashJoinOp::OpenImpl() {
  MURAL_RETURN_IF_ERROR(outer_->Open());
  MURAL_RETURN_IF_ERROR(inner_->Open());
  table_.clear();
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, inner_->Next(&row));
    if (!more) break;
    const Value& key = row[inner_col_];
    if (key.is_null()) continue;  // NULL never joins
    table_.emplace(key.Hash(), row);
  }
  MURAL_RETURN_IF_ERROR(inner_->Close());
  outer_valid_ = false;
  matches_open_ = false;
  return Status::OK();
}

StatusOr<bool> HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (!matches_open_) {
      MURAL_ASSIGN_OR_RETURN(const bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      const Value& key = outer_row_[outer_col_];
      if (key.is_null()) continue;
      matches_ = table_.equal_range(key.Hash());
      matches_open_ = true;
    }
    while (matches_.first != matches_.second) {
      const Row& inner_row = matches_.first->second;
      ++matches_.first;
      // Re-check: hash collision safety.
      if (!outer_row_[outer_col_].Equals(inner_row[inner_col_])) continue;
      *out = Row();
      out->reserve(outer_row_.size() + inner_row.size());
      out->insert(out->end(), outer_row_.begin(), outer_row_.end());
      out->insert(out->end(), inner_row.begin(), inner_row.end());
      CountRow();
      return true;
    }
    matches_open_ = false;
  }
}

Status HashJoinOp::CloseImpl() {
  table_.clear();
  const Status outer_st = outer_->Close();
  const Status inner_st = inner_->Close();  // no-op unless Open failed
  MURAL_RETURN_IF_ERROR(outer_st);
  return inner_st;
}

std::string HashJoinOp::DisplayName() const {
  return "HashJoin(" + outer_->output_schema().column(outer_col_).name +
         " = " + inner_->output_schema().column(inner_col_).name + ")";
}

}  // namespace mural
