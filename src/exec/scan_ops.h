// Scan operators: sequential heap scans and index scans (B-Tree equality /
// range probes, M-Tree metric probes, MDI candidate probes with recheck).

#pragma once

#include <optional>

#include "catalog/catalog.h"
#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

/// Full scan over a table's heap.
class SeqScanOp : public PhysicalOp {
 public:
  SeqScanOp(ExecContext* ctx, const TableInfo* table)
      : PhysicalOp(ctx), table_(table) {}

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] StatusOr<bool> NextBatchImpl(RowBatch* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return table_->schema; }
  std::string DisplayName() const override {
    return "SeqScan(" + table_->name + ")";
  }

 private:
  const TableInfo* table_;
  std::optional<HeapFile::Iterator> it_;
};

/// What an index scan probes for.
struct IndexProbe {
  enum class Kind { kEqual, kRange, kWithin };
  Kind kind = Kind::kEqual;
  Value key;       // kEqual / kWithin
  Value lo, hi;    // kRange (NULL = unbounded)
  int radius = 0;  // kWithin

  std::string ToString() const;
};

/// Index scan: probes the access method for rids, fetches heap tuples, and
/// applies an optional residual predicate.
///
/// The residual matters twice in this system: MDI probes return candidate
/// supersets that must be re-verified (paper's outside-the-server index
/// path), and LexEQUAL index scans still need the "IN <languages>" filter.
class IndexScanOp : public PhysicalOp {
 public:
  IndexScanOp(ExecContext* ctx, const TableInfo* table,
              const IndexInfo* index, IndexProbe probe,
              ExprPtr residual = nullptr)
      : PhysicalOp(ctx),
        table_(table),
        index_(index),
        probe_(std::move(probe)),
        residual_(std::move(residual)) {}

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return table_->schema; }
  std::string DisplayName() const override;

 private:
  const TableInfo* table_;
  const IndexInfo* index_;
  IndexProbe probe_;
  ExprPtr residual_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

}  // namespace mural
