// Physical operators for the multilingual algebra (paper §3.2, §4):
//
//  - LexJoinOp (Psi join): phoneme-space approximate join.  The algebraic
//    Psi tags every pair of the Cartesian product with the phonemic edit
//    distance; this operator folds in the threshold selection (as every
//    query in the paper does) and optionally emits the distance as an
//    extra column for downstream operators.
//
//  - SemJoinOp (Omega join): taxonomy-subsumption join.  Implements the
//    optimizations of §4.3: the RHS operand drives the (outer) loop so one
//    materialized closure serves all LHS probes; closures are memoized in
//    the session's hash-table cache; optionally RHS values are sorted and
//    deduplicated so each distinct value's closure is computed exactly
//    once even without the cache.

#pragma once

#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "distance/bounded_myers.h"
#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

/// Psi selection pushed into the scan: a fused heap-scan + LexEQUAL filter
/// leaf, the batch-native form of Filter(Psi(col, constant)) over SeqScan.
///
/// The probe constant's phonemes are hoisted once at Open; per record the
/// operator peeks only the key column out of the serialized tuple
/// (TupleCodec::PeekUniText, zero-copy) and runs the bounded bit-parallel
/// kernel, deserializing the full row only for matches (late
/// materialization).  Distance calls go through a BoundedMyersMatcher
/// prepared once at Open — result- and call-count-identical to the
/// BoundedDistanceCounted path the Filter-over-SeqScan plan takes, so
/// rows, predicate_evals, and distance_calls agree with that plan; only
/// word-op and phoneme-cache counters can differ (the matcher's Peq table
/// and the constant's phonemes are built once, not per row).
class LexSelectOp : public PhysicalOp {
 public:
  /// `threshold_override` < 0 means "use ctx->lexequal_threshold".
  LexSelectOp(ExecContext* ctx, const TableInfo* table, size_t key_col,
              Value probe, int threshold_override = -1);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] StatusOr<bool> NextBatchImpl(RowBatch* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return table_->schema; }
  std::string DisplayName() const override;

 private:
  /// Peeks the key column of `record`, runs the kernel, and reports
  /// whether the row matches (NULL key never matches).
  [[nodiscard]] StatusOr<bool> RecordMatches(std::string_view record);

  const TableInfo* table_;
  size_t key_col_;
  Value probe_;
  int threshold_override_;

  std::optional<HeapFile::Iterator> it_;  // tuple-path cursor
  size_t page_idx_ = 0;                   // batch-path cursor (page-wise)
  int slot_ = 0;
  PhonemeString probe_phonemes_;
  std::optional<BoundedMyersMatcher> matcher_;  // prepared at Open
  bool probe_null_ = false;
  int k_ = 0;  // effective threshold, resolved at Open
};

/// Psi join: matches outer.col_left with inner.col_right under the
/// phonemic edit-distance threshold.
struct LexJoinOptions {
  /// -1: use the session threshold (ctx->lexequal_threshold).
  int threshold = -1;
  /// Append an INT column "psi_distance" with the pair's distance.
  bool tag_distance = false;
  /// Degree of parallelism for the build/probe phases.  > 1 (with a
  /// thread pool in the context) switches to the morsel-parallel path:
  /// inner phoneme construction and outer probing run as morsels on the
  /// pool, gathered in morsel order so output order is identical to the
  /// serial path.
  int dop = 1;
  /// Rows per morsel in the parallel phases (tests shrink this to force
  /// multi-morsel execution on small inputs).
  size_t morsel_size = 2048;
  /// When the inner input is a bare table scan, the planner passes the
  /// table here and the parallel path skips the inner child entirely:
  /// build workers claim page-range morsels over the heap and drain it
  /// through read guards (deserialize + G2P per morsel), gathered in
  /// chain order so the build side is bit-identical to a serial drain.
  /// nullptr (or dop <= 1) falls back to draining the inner child.
  const TableInfo* inner_table = nullptr;
  /// Heap pages per build morsel when `inner_table` drives the build.
  size_t build_morsel_pages = 4;
};

class LexJoinOp : public PhysicalOp {
 public:
  using Options = LexJoinOptions;

  LexJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner, size_t outer_col,
            size_t inner_col, Options options = Options());

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  /// `build_done` skips the phoneme build phase (ParallelHeapBuild
  /// already produced inner_phonemes_ during its heap drain).
  [[nodiscard]] Status OpenParallel(int dop, bool build_done);
  [[nodiscard]] Status ParallelHeapBuild(int dop);

  OpPtr outer_, inner_;
  size_t outer_col_, inner_col_;
  Options options_;
  Schema schema_;

  // Materialized inner side with precomputed phoneme strings (§4.2: the
  // materialization avoids repeated conversions during join processing).
  std::vector<Row> inner_rows_;
  std::vector<PhonemeString> inner_phonemes_;
  std::vector<bool> inner_valid_;

  Row outer_row_;
  PhonemeString outer_phonemes_;
  bool outer_valid_ = false;
  bool outer_null_ = false;
  size_t inner_pos_ = 0;

  // Parallel (dop > 1) path: the join result is computed during Open and
  // replayed by Next in deterministic (serial-identical) order.
  bool parallel_mode_ = false;
  std::vector<Row> results_;
  size_t result_pos_ = 0;
  uint64_t cache_hits_ = 0;    // phoneme-cache lookups by this operator
  uint64_t cache_misses_ = 0;
};

/// Omega join: emits outer x inner pairs where the LHS value is subsumed
/// by the RHS value in the pinned taxonomy.
///
/// Column roles: `lhs_col` indexes the *probe* side (set-membership tested
/// against the closure), `rhs_col` the closure side, matching the paper's
/// Omega(LHS, RHS) semantics.  Physically the RHS child is the outer loop.
/// The output schema is Concat(lhs_child, rhs_child) regardless.
struct SemJoinOptions {
  /// Use the session closure cache (§4.3).  Off = recompute per RHS row
  /// (the ablation baseline).
  bool use_closure_cache = true;
  /// Sort RHS rows by value and skip duplicates' recomputation even
  /// without the cache (§4.3 "sorting the RHS values and computing the
  /// closure only for unique values").
  bool sort_unique_rhs = false;
};

class SemJoinOp : public PhysicalOp {
 public:
  using Options = SemJoinOptions;

  SemJoinOp(ExecContext* ctx, OpPtr lhs_child, OpPtr rhs_child,
            size_t lhs_col, size_t rhs_col, Options options = Options());

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {lhs_.get(), rhs_.get()};
  }

 private:
  [[nodiscard]] Status ComputeClosureFor(const Value& rhs_value);

  OpPtr lhs_, rhs_;
  size_t lhs_col_, rhs_col_;
  Options options_;
  Schema schema_;

  std::vector<Row> lhs_rows_;           // materialized probe side
  std::vector<Row> rhs_rows_;           // outer loop (sorted if requested)
  size_t rhs_pos_ = 0;
  size_t lhs_pos_ = 0;
  bool rhs_open_ = false;

  // Closure of the current RHS value (points into the cache, or local).
  const Closure* current_closure_ = nullptr;
  Closure local_closure_;
  std::optional<std::string> last_rhs_key_;  // for sort_unique_rhs reuse
};

/// Index nested-loop Psi join: for each outer row, probes the inner
/// table's M-Tree with the outer value's phonemes at the threshold radius
/// and fetches matching heap tuples (Table 3's join-with-approx-index
/// case).  Output schema: Concat(outer, inner_table).
class LexIndexJoinOp : public PhysicalOp {
 public:
  LexIndexJoinOp(ExecContext* ctx, OpPtr outer, const TableInfo* inner_table,
                 const IndexInfo* inner_index, size_t outer_col,
                 int threshold = -1);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {outer_.get()};
  }

 private:
  OpPtr outer_;
  const TableInfo* inner_table_;
  const IndexInfo* inner_index_;
  size_t outer_col_;
  int threshold_;
  Schema schema_;

  Row outer_row_;
  bool outer_valid_ = false;
  std::vector<Rid> matches_;
  size_t match_pos_ = 0;
};

}  // namespace mural
