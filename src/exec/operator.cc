#include "exec/operator.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace mural {

namespace {

Gauge* SpansInProgressGauge() {
  static Gauge* gauge =
      MetricsRegistry::Global().GetGauge("exec.spans_in_progress");
  return gauge;
}

/// The buffer pool's fetch-time counter (see BufferPool::Fetch); span
/// deltas of it attribute storage time to operators.
Counter* FetchNanosCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.fetch_nanos");
  return counter;
}

void ExplainRec(const PhysicalOp& op, int depth, bool with_actuals,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("-> ");
  out->append(op.DisplayName());
  if (with_actuals) {
    out->append(" (actual rows=");
    out->append(std::to_string(op.rows_produced()));
    out->append(")");
  }
  out->push_back('\n');
  for (const PhysicalOp* child : op.Children()) {
    ExplainRec(*child, depth + 1, with_actuals, out);
  }
}

void TraceRec(const PhysicalOp& op, int depth, const TraceOptions& opts,
              std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("-> ");
  out->append(op.DisplayName());
  out->append(" (");
  if (opts.with_estimates && op.estimated_rows() >= 0) {
    out->append(StringFormat("est rows=%lld ",
                             static_cast<long long>(op.estimated_rows())));
  }
  out->append(StringFormat("actual rows=%llu",
                           static_cast<unsigned long long>(
                               op.rows_produced())));
  if (opts.with_estimates && op.estimated_rows() >= 0) {
    out->append(StringFormat(
        " q=%.2f", QError(static_cast<double>(op.estimated_rows()),
                          static_cast<double>(op.rows_produced()))));
  }
  if (op.batches_produced() > 0) {
    out->append(StringFormat(
        " batches=%llu rows/batch=%.1f",
        static_cast<unsigned long long>(op.batches_produced()),
        static_cast<double>(op.rows_produced()) /
            static_cast<double>(op.batches_produced())));
  }
  if (opts.with_times) {
    out->append(StringFormat(" time=%.3fms", op.span().TotalMillis()));
    // Buffer-pool attribution only when the subtree touched storage, so
    // pure compute plans keep the compact line.
    if (op.span().storage_ns > 0) {
      out->append(StringFormat(" storage=%.3fms", op.span().StorageMillis()));
    }
  }
  out->append(")\n");
  for (const PhysicalOp* child : op.Children()) {
    TraceRec(*child, depth + 1, opts, out);
  }
}

}  // namespace

PhysicalOp::~PhysicalOp() {
  // Safety net: a plan destroyed without Close (driver bug) must not leak
  // an in-progress span in the process-wide gauge.
  if (in_progress_) SpansInProgressGauge()->Add(-1);
}

Status PhysicalOp::Open() {
  if (!in_progress_) {
    in_progress_ = true;
    SpansInProgressGauge()->Add(1);
  }
  const uint64_t t0 = SpanClock::NowNanos();
  const uint64_t f0 = FetchNanosCounter()->value();
  Status s = OpenImpl();
  span_.open_ns += SpanClock::NowNanos() - t0;
  span_.storage_ns += FetchNanosCounter()->value() - f0;
  return s;
}

StatusOr<bool> PhysicalOp::Next(Row* out) {
  const uint64_t t0 = SpanClock::NowNanos();
  const uint64_t f0 = FetchNanosCounter()->value();
  StatusOr<bool> r = NextImpl(out);
  span_.next_ns += SpanClock::NowNanos() - t0;
  span_.storage_ns += FetchNanosCounter()->value() - f0;
  return r;
}

StatusOr<bool> PhysicalOp::NextBatch(RowBatch* out) {
  const uint64_t t0 = SpanClock::NowNanos();
  const uint64_t f0 = FetchNanosCounter()->value();
  out->Reset();
  StatusOr<bool> r = NextBatchImpl(out);
  if (r.ok() && *r && !out->empty()) ++batches_produced_;
  span_.next_ns += SpanClock::NowNanos() - t0;
  span_.storage_ns += FetchNanosCounter()->value() - f0;
  return r;
}

StatusOr<bool> PhysicalOp::NextBatchImpl(RowBatch* out) {
  // Compatibility shim: any operator without a native batch path produces
  // a batch by looping its tuple-at-a-time NextImpl.  Row counters are
  // maintained by NextImpl itself (CountRow), exactly as on the tuple
  // path, so counter parity holds by construction.
  while (!out->full()) {
    Row* slot = out->PushRow();
    MURAL_ASSIGN_OR_RETURN(const bool more, NextImpl(slot));
    if (!more) {
      out->selection().pop_back();  // the slot was never filled
      return !out->empty();
    }
  }
  return true;
}

Status PhysicalOp::Close() {
  if (!in_progress_) return Status::OK();
  const uint64_t t0 = SpanClock::NowNanos();
  const uint64_t f0 = FetchNanosCounter()->value();
  Status s = CloseImpl();
  span_.close_ns += SpanClock::NowNanos() - t0;
  span_.storage_ns += FetchNanosCounter()->value() - f0;
  in_progress_ = false;
  SpansInProgressGauge()->Add(-1);
  return s;
}

std::string ExplainTree(const PhysicalOp& root, bool with_actuals) {
  std::string out;
  ExplainRec(root, 0, with_actuals, &out);
  return out;
}

std::string TraceTree(const PhysicalOp& root, const TraceOptions& opts) {
  std::string out;
  TraceRec(root, 0, opts, &out);
  return out;
}

double QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

StatusOr<std::vector<Row>> CollectAll(PhysicalOp* root) {
  Status status = root->Open();
  std::vector<Row> rows;
  const size_t batch_size = root->context()->batch_size;
  if (status.ok() && batch_size > 0) {
    RowBatch batch(batch_size);
    while (true) {
      StatusOr<bool> more = root->NextBatch(&batch);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      for (size_t i = 0; i < batch.num_selected(); ++i) {
        rows.push_back(std::move(batch.SelectedRow(i)));
      }
      if (!*more) break;
    }
  } else if (status.ok()) {
    Row row;
    while (true) {
      StatusOr<bool> more = root->Next(&row);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      rows.push_back(row);
    }
  }
  // Close even on failure: operators release resources and the span
  // gauge returns to zero.  The execution error wins over a close error.
  const Status close_status = root->Close();
  MURAL_RETURN_IF_ERROR(status);
  MURAL_RETURN_IF_ERROR(close_status);
  return rows;
}

}  // namespace mural
