#include "exec/operator.h"

namespace mural {

namespace {

void ExplainRec(const PhysicalOp& op, int depth, bool with_actuals,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("-> ");
  out->append(op.DisplayName());
  if (with_actuals) {
    out->append(" (actual rows=");
    out->append(std::to_string(op.rows_produced()));
    out->append(")");
  }
  out->push_back('\n');
  for (const PhysicalOp* child : op.Children()) {
    ExplainRec(*child, depth + 1, with_actuals, out);
  }
}

}  // namespace

std::string ExplainTree(const PhysicalOp& root, bool with_actuals) {
  std::string out;
  ExplainRec(root, 0, with_actuals, &out);
  return out;
}

StatusOr<std::vector<Row>> CollectAll(PhysicalOp* root) {
  MURAL_RETURN_IF_ERROR(root->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const bool more, root->Next(&row));
    if (!more) break;
    rows.push_back(row);
  }
  MURAL_RETURN_IF_ERROR(root->Close());
  return rows;
}

}  // namespace mural
