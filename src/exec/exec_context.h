// ExecContext: per-query runtime state shared by expressions and physical
// operators.
//
// Carries the session settings the paper routes through system tables
// (§4.2: the LexEQUAL threshold is a user/administrator-settable value, not
// a third operand), the pinned taxonomy + closure cache for SemEQUAL
// (§4.3), the phonetic transformer, and the effort counters that EXPLAIN
// ANALYZE and the benchmarks report.

#pragma once

#include <cstdint>

#include "distance/edit_distance.h"
#include "phonetic/transformer.h"
#include "taxonomy/taxonomy.h"

namespace mural {

class PhonemeCache;
class ThreadPool;

/// Effort counters accumulated during one query execution.
struct ExecStats {
  uint64_t rows_emitted = 0;
  uint64_t predicate_evals = 0;
  uint64_t phoneme_transforms = 0;     // non-materialized conversions
  uint64_t phoneme_cache_hits = 0;     // phoneme cache lookups served
  uint64_t phoneme_cache_misses = 0;   // phoneme cache lookups computed
  uint64_t closure_computations = 0;   // closure cache misses
  uint64_t closure_reuses = 0;         // closure cache hits
  uint64_t index_probes = 0;
  uint64_t udf_calls = 0;              // outside-the-server boundary calls
  DistanceStats distance;

  void Reset() { *this = ExecStats(); }

  /// Folds a worker thread's counters into this (post-gather merge).
  void Merge(const ExecStats& other) {
    rows_emitted += other.rows_emitted;
    predicate_evals += other.predicate_evals;
    phoneme_transforms += other.phoneme_transforms;
    phoneme_cache_hits += other.phoneme_cache_hits;
    phoneme_cache_misses += other.phoneme_cache_misses;
    closure_computations += other.closure_computations;
    closure_reuses += other.closure_reuses;
    index_probes += other.index_probes;
    udf_calls += other.udf_calls;
    distance.calls += other.distance.calls;
    distance.cells += other.distance.cells;
  }
};

/// Shared query-execution context.  Not owned by operators; the engine's
/// session owns one and threads it through the plan.
struct ExecContext {
  /// LexEQUAL mismatch threshold (paper's user-settable system value).
  int lexequal_threshold = 2;

  /// Pinned multilingual taxonomy for SemEQUAL; may be null for queries
  /// that do not use the Omega operator.
  const Taxonomy* taxonomy = nullptr;

  /// Materialized-closure cache (paper §4.3); owned by the session so
  /// closures persist across queries.
  ClosureCache* closure_cache = nullptr;

  /// Text-to-phoneme engine for non-materialized UniText values.
  const PhoneticTransformer* transformer = &PhoneticTransformer::Default();

  /// Shared G2P memoization (thread-safe, session-owned); null = compute
  /// every transform directly.
  PhonemeCache* phoneme_cache = nullptr;

  /// Worker pool for morsel-parallel operators; null = serial execution
  /// regardless of degree_of_parallelism.
  ThreadPool* thread_pool = nullptr;

  /// Session degree of parallelism for Psi operators (1 = serial plans).
  int degree_of_parallelism = 1;

  ExecStats stats;

  /// A context for one morsel worker: same session state, fresh stats,
  /// and no nested parallelism or non-thread-safe caches.  Workers merge
  /// their stats back after the gather (ExecStats::Merge).
  ExecContext WorkerClone() const {
    ExecContext clone = *this;
    clone.stats.Reset();
    clone.thread_pool = nullptr;
    clone.degree_of_parallelism = 1;
    clone.closure_cache = nullptr;  // ClosureCache is not thread-safe
    return clone;
  }
};

}  // namespace mural
