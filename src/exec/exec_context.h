// ExecContext: per-query runtime state shared by expressions and physical
// operators.
//
// Carries the session settings the paper routes through system tables
// (§4.2: the LexEQUAL threshold is a user/administrator-settable value, not
// a third operand), the pinned taxonomy + closure cache for SemEQUAL
// (§4.3), the phonetic transformer, and the effort counters that EXPLAIN
// ANALYZE and the benchmarks report.

#pragma once

#include <cstdint>

#include "distance/edit_distance.h"
#include "phonetic/transformer.h"
#include "taxonomy/taxonomy.h"

namespace mural {

/// Effort counters accumulated during one query execution.
struct ExecStats {
  uint64_t rows_emitted = 0;
  uint64_t predicate_evals = 0;
  uint64_t phoneme_transforms = 0;     // non-materialized conversions
  uint64_t closure_computations = 0;   // closure cache misses
  uint64_t closure_reuses = 0;         // closure cache hits
  uint64_t index_probes = 0;
  uint64_t udf_calls = 0;              // outside-the-server boundary calls
  DistanceStats distance;

  void Reset() { *this = ExecStats(); }
};

/// Shared query-execution context.  Not owned by operators; the engine's
/// session owns one and threads it through the plan.
struct ExecContext {
  /// LexEQUAL mismatch threshold (paper's user-settable system value).
  int lexequal_threshold = 2;

  /// Pinned multilingual taxonomy for SemEQUAL; may be null for queries
  /// that do not use the Omega operator.
  const Taxonomy* taxonomy = nullptr;

  /// Materialized-closure cache (paper §4.3); owned by the session so
  /// closures persist across queries.
  ClosureCache* closure_cache = nullptr;

  /// Text-to-phoneme engine for non-materialized UniText values.
  const PhoneticTransformer* transformer = &PhoneticTransformer::Default();

  ExecStats stats;
};

}  // namespace mural
