// ExecContext: per-query runtime state shared by expressions and physical
// operators.
//
// Carries the session settings the paper routes through system tables
// (§4.2: the LexEQUAL threshold is a user/administrator-settable value, not
// a third operand), the pinned taxonomy + closure cache for SemEQUAL
// (§4.3), the phonetic transformer, and the effort counters that EXPLAIN
// ANALYZE and the benchmarks report.

#pragma once

#include <cstdint>

#include "distance/edit_distance.h"
#include "phonetic/transformer.h"
#include "taxonomy/taxonomy.h"

namespace mural {

class PhonemeCache;
class ThreadPool;

/// Effort counters accumulated during one query execution.
///
/// Every counter must be listed in ForEachCounter, which drives Merge and
/// the per-query delta in Database::Query.  The static_assert below checks
/// the field count against the struct size, so adding a field without
/// extending the visitor fails to compile instead of silently dropping the
/// new counter on the morsel-gather merge.
struct ExecStats {
  uint64_t rows_emitted = 0;
  uint64_t predicate_evals = 0;
  uint64_t phoneme_transforms = 0;     // non-materialized conversions
  uint64_t phoneme_cache_hits = 0;     // phoneme cache lookups served
  uint64_t phoneme_cache_misses = 0;   // phoneme cache lookups computed
  uint64_t closure_computations = 0;   // closure cache misses
  uint64_t closure_reuses = 0;         // closure cache hits
  uint64_t index_probes = 0;
  uint64_t udf_calls = 0;              // outside-the-server boundary calls
  DistanceStats distance;

  /// Number of uint64 counters, including the DistanceStats members.
  static constexpr size_t kNumCounters = 12;

  /// Visits every counter as (name, uint64&).  `Self` is ExecStats or
  /// const ExecStats; the visitor sees const refs in the latter case.
  template <typename Self, typename Fn>
  static void ForEachCounter(Self& s, Fn&& fn) {
    fn("rows_emitted", s.rows_emitted);
    fn("predicate_evals", s.predicate_evals);
    fn("phoneme_transforms", s.phoneme_transforms);
    fn("phoneme_cache_hits", s.phoneme_cache_hits);
    fn("phoneme_cache_misses", s.phoneme_cache_misses);
    fn("closure_computations", s.closure_computations);
    fn("closure_reuses", s.closure_reuses);
    fn("index_probes", s.index_probes);
    fn("udf_calls", s.udf_calls);
    fn("distance_calls", s.distance.calls);
    fn("distance_cells", s.distance.cells);
    fn("distance_word_ops", s.distance.word_ops);
  }

  void Reset() { *this = ExecStats(); }

  /// Folds a worker thread's counters into this (post-gather merge).
  void Merge(const ExecStats& other) {
    const uint64_t* theirs[kNumCounters];
    size_t n = 0;
    ForEachCounter(other,
                   [&](const char*, const uint64_t& v) { theirs[n++] = &v; });
    size_t i = 0;
    ForEachCounter(*this, [&](const char*, uint64_t& v) { v += *theirs[i++]; });
  }

  /// Subtracts `before` from every counter (per-query delta against a
  /// session-cumulative snapshot).
  void SubtractBaseline(const ExecStats& before) {
    const uint64_t* base[kNumCounters];
    size_t n = 0;
    ForEachCounter(before,
                   [&](const char*, const uint64_t& v) { base[n++] = &v; });
    size_t i = 0;
    ForEachCounter(*this, [&](const char*, uint64_t& v) { v -= *base[i++]; });
  }
};

// Completeness guard: if a field is added to ExecStats (or DistanceStats)
// without bumping kNumCounters + extending ForEachCounter, this trips.
static_assert(sizeof(ExecStats) == ExecStats::kNumCounters * sizeof(uint64_t),
              "ExecStats field added: update kNumCounters and "
              "ForEachCounter so Merge does not silently drop it");

/// Shared query-execution context.  Not owned by operators; the engine's
/// session owns one and threads it through the plan.
struct ExecContext {
  /// LexEQUAL mismatch threshold (paper's user-settable system value).
  int lexequal_threshold = 2;

  /// Pinned multilingual taxonomy for SemEQUAL; may be null for queries
  /// that do not use the Omega operator.
  const Taxonomy* taxonomy = nullptr;

  /// Materialized-closure cache (paper §4.3); owned by the session so
  /// closures persist across queries.
  ClosureCache* closure_cache = nullptr;

  /// Text-to-phoneme engine for non-materialized UniText values.
  const PhoneticTransformer* transformer = &PhoneticTransformer::Default();

  /// Shared G2P memoization (thread-safe, session-owned); null = compute
  /// every transform directly.
  PhonemeCache* phoneme_cache = nullptr;

  /// Worker pool for morsel-parallel operators; null = serial execution
  /// regardless of degree_of_parallelism.
  ThreadPool* thread_pool = nullptr;

  /// Session degree of parallelism for Psi operators (1 = serial plans).
  int degree_of_parallelism = 1;

  /// Rows per RowBatch on the vectorized path; 0 forces tuple-at-a-time
  /// execution (Operator::NextBatch still works — it loops NextImpl with a
  /// capacity of one).
  size_t batch_size = 1024;

  ExecStats stats;

  /// A context for one morsel worker: same session state, fresh stats,
  /// and no nested parallelism.  Workers merge their stats back after the
  /// gather (ExecStats::Merge).  The closure and phoneme caches are both
  /// internally synchronized (GUARDED_BY-annotated mutexes, see
  /// common/mutex.h), so workers share the session instances.
  ExecContext WorkerClone() const {
    ExecContext clone = *this;
    clone.stats.Reset();
    clone.thread_pool = nullptr;
    clone.degree_of_parallelism = 1;
    return clone;
  }
};

}  // namespace mural
