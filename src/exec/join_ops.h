// Join operators: generic nested-loop join (arbitrary predicate) and hash
// join (equi-predicates).  The multilingual joins live in mural_ops.h.

#pragma once

#include <unordered_map>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace mural {

/// Nested-loop inner join; the inner (right) side is materialized once.
/// Predicate may be null (pure Cartesian product).
class NestedLoopJoinOp : public PhysicalOp {
 public:
  NestedLoopJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner,
                   ExprPtr predicate);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override {
    return "NestedLoopJoin(" +
           (predicate_ ? predicate_->ToString() : std::string("true")) + ")";
  }
  std::vector<const PhysicalOp*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  OpPtr outer_, inner_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;
};

/// Hash inner join on left.column == right.column (SQL '=' semantics over
/// the Value equality used throughout; NULL keys never join).
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(ExecContext* ctx, OpPtr outer, OpPtr inner, size_t outer_col,
             size_t inner_col);

  [[nodiscard]] Status OpenImpl() override;
  [[nodiscard]] StatusOr<bool> NextImpl(Row* out) override;
  [[nodiscard]] Status CloseImpl() override;
  const Schema& output_schema() const override { return schema_; }
  std::string DisplayName() const override;
  std::vector<const PhysicalOp*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  OpPtr outer_, inner_;
  size_t outer_col_, inner_col_;
  Schema schema_;
  // build side: hash(value) -> candidate rows (collisions re-checked)
  std::unordered_multimap<uint64_t, Row> table_;
  Row outer_row_;
  bool outer_valid_ = false;
  std::pair<std::unordered_multimap<uint64_t, Row>::iterator,
            std::unordered_multimap<uint64_t, Row>::iterator>
      matches_;
  bool matches_open_ = false;
};

}  // namespace mural
