// Wall-clock timing helpers for benchmarks and the EXPLAIN ANALYZE path.
//
// All engine timing goes through SpanClock so tests can substitute a fake
// clock; mural_lint's no-direct-clock rule forbids direct
// std::chrono::steady_clock::now() calls outside common/.

#pragma once

#include <atomic>
#include <cstdint>

namespace mural {

/// The engine's monotonic nanosecond clock.  Reads a real steady clock by
/// default; tests install a deterministic source with SetNowFnForTest so
/// span output is reproducible.
class SpanClock {
 public:
  using NowFn = uint64_t (*)();

  /// Nanoseconds from an arbitrary monotonic epoch.
  static uint64_t NowNanos() {
    NowFn fn = now_fn_.load(std::memory_order_relaxed);
    return fn != nullptr ? fn() : RealNowNanos();
  }

  /// Installs `fn` as the clock source; nullptr restores the real clock.
  /// Returns the previous override (nullptr if none) for restoration.
  static NowFn SetNowFnForTest(NowFn fn) {
    return now_fn_.exchange(fn, std::memory_order_relaxed);
  }

 private:
  static uint64_t RealNowNanos();
  static std::atomic<NowFn> now_fn_;
};

/// Monotonic stopwatch over SpanClock.  Start() resets; Elapsed*() read
/// without stopping.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ns_ = SpanClock::NowNanos(); }

  uint64_t ElapsedNanos() const { return SpanClock::NowNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) * 1e-3;
  }

 private:
  uint64_t start_ns_ = 0;
};

}  // namespace mural
