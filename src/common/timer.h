// Wall-clock timing helpers for benchmarks and the EXPLAIN ANALYZE path.

#pragma once

#include <chrono>
#include <cstdint>

namespace mural {

/// Monotonic stopwatch.  Start() resets; Elapsed*() read without stopping.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mural
