#include "common/logging.h"

#include <atomic>

namespace mural {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  stream_ << "\n";
  std::cerr << stream_.str();
}

LogMessageFatal::LogMessageFatal(const char* file, int line,
                                 const char* condition) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: "
          << condition << " ";
}

LogMessageFatal::~LogMessageFatal() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace mural
