// Slice: a non-owning view over a byte range (RocksDB idiom).
//
// Used at storage boundaries where std::string_view's char focus is
// misleading; convertible both ways.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace mural {

/// A pointer + length pair referencing externally owned bytes.
///
/// The referenced storage must outlive the Slice.  Cheap to copy.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  /// From a NUL-terminated C string.
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}   // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way comparison by unsigned byte value, then by length.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ && std::memcmp(a.data_, b.data_, a.size_) == 0;
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
  friend bool operator<(const Slice& a, const Slice& b) {
    return a.Compare(b) < 0;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace mural
