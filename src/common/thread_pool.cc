#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/metrics.h"

namespace mural {

namespace {

Gauge* QueueDepthGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("exec.thread_pool.queue_depth");
  return g;
}

Counter* TasksRunCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("exec.thread_pool.tasks_run");
  return c;
}

Counter* MorselsRunCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("exec.morsels_run");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

// Shutdown() joins workers; std::thread::join is statically throwing, but
// every join here is guarded by joinable(), and if one threw anyway the
// right outcome for a pool dying mid-teardown is std::terminate.
// NOLINTNEXTLINE(bugprone-exception-escape)
ThreadPool::~ThreadPool() { Shutdown(); }

std::future<Status> ThreadPool::Submit(Task task) {
  // The wrapper funnels any escaping exception into the Status channel so
  // workers never unwind across the queue (which would std::terminate).
  std::packaged_task<Status()> wrapped([task = std::move(task)] {
    try {
      return task();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      return Status::Internal("task threw a non-std exception");
    }
  });
  std::future<Status> future = wrapped.get_future();
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      std::promise<Status> aborted;
      aborted.set_value(Status::Aborted("thread pool is shut down"));
      return aborted.get_future();
    }
    queue_.push_back(std::move(wrapped));
    QueueDepthGauge()->Add(1);
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the cv.wait(lock, pred) overload): the
      // thread-safety analysis cannot see that a predicate lambda runs with
      // the lock held, whereas this loop body visibly does.
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Add(-1);
    }
    TasksRunCounter()->Increment();
    task();  // result flows through the packaged_task's future
  }
}

size_t ThreadPool::HardwareConcurrency() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

Status ParallelMorsels(
    ThreadPool* pool, size_t count, size_t morsel_size, int dop,
    const std::function<Status(size_t morsel_index, size_t begin,
                               size_t end)>& fn) {
  if (count == 0) return Status::OK();
  morsel_size = std::max<size_t>(1, morsel_size);
  const size_t num_morsels = (count + morsel_size - 1) / morsel_size;
  // ceil(count / morsel_size), independent of DOP and scheduling — the
  // metrics-determinism tests rely on this.
  MorselsRunCounter()->Add(num_morsels);

  auto run_strip = [&, num_morsels](size_t strip, size_t stride) {
    for (size_t m = strip; m < num_morsels; m += stride) {
      const size_t begin = m * morsel_size;
      const size_t end = std::min(count, begin + morsel_size);
      MURAL_RETURN_IF_ERROR(fn(m, begin, end));
    }
    return Status::OK();
  };

  const size_t strips =
      std::min<size_t>(dop <= 1 ? 1 : static_cast<size_t>(dop), num_morsels);
  if (pool == nullptr || strips <= 1) return run_strip(0, 1);

  // Strip 0 runs on the calling thread so a dop-way loop occupies only
  // dop - 1 pool workers (and still makes progress on a saturated pool).
  std::vector<std::future<Status>> futures;
  futures.reserve(strips - 1);
  for (size_t s = 1; s < strips; ++s) {
    futures.push_back(
        pool->Submit([&run_strip, s, strips] { return run_strip(s, strips); }));
  }
  Status first_error = run_strip(0, strips);
  for (std::future<Status>& future : futures) {
    Status status = future.get();
    if (first_error.ok() && !status.ok()) first_error = std::move(status);
  }
  return first_error;
}

}  // namespace mural
