// Clang thread-safety-analysis annotations (a.k.a. "capability" attributes).
//
// These macros let the compiler verify the repo's lock discipline at build
// time: fields carry GUARDED_BY(mu), functions carry REQUIRES(mu) /
// ACQUIRE(mu) / RELEASE(mu), and the `tsa` CMake preset turns on
// `-Wthread-safety -Werror=thread-safety` (Clang only) so an unguarded
// access to a protected field is a compile error, not a lucky TSan find.
//
// Under GCC (or any compiler without the capability attributes) every macro
// expands to nothing, so the annotations are free for non-Clang builds.
//
// The macro set mirrors the Abseil / LevelDB `thread_annotations.h`
// lineage; see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for
// the analysis semantics.  The annotated lock types themselves live in
// common/mutex.h (mural::Mutex / SharedMutex / MutexLock).

#pragma once

#if defined(__clang__)
#define MURAL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MURAL_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define CAPABILITY(x) MURAL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY MURAL_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define GUARDED_BY(x) MURAL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define PT_GUARDED_BY(x) MURAL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities exclusively (not acquired or
/// released by the function).
#define REQUIRES(...) MURAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least shared.
#define REQUIRES_SHARED(...) \
  MURAL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define ACQUIRE(...) MURAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define ACQUIRE_SHARED(...) \
  MURAL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define RELEASE(...) MURAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define RELEASE_SHARED(...) \
  MURAL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases a capability whether it was held shared or exclusive
/// (use on destructors of reader/writer scoped locks).
#define RELEASE_GENERIC(...) \
  MURAL_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define TRY_ACQUIRE(...) \
  MURAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  MURAL_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// non-reentrant locks).
#define EXCLUDES(...) MURAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a static lock order: this mutex must be acquired before the
/// listed ones.  Clang only enforces these under -Wthread-safety-beta, but
/// mural_lint's guarded-field rule reads the declared order and rejects a
/// subsystem that declares the inverse edge (see tools/lint/lint.h).
#define ACQUIRED_BEFORE(...) \
  MURAL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Inverse of ACQUIRED_BEFORE: this mutex must be acquired after the
/// listed ones.
#define ACQUIRED_AFTER(...) \
  MURAL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring anything).
#define ASSERT_CAPABILITY(x) MURAL_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  MURAL_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability that guards something.
#define RETURN_CAPABILITY(x) MURAL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function.  Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  MURAL_THREAD_ANNOTATION(no_thread_safety_analysis)
