#include "common/random.h"

#include <cmath>

namespace mural {

ZipfGenerator::ZipfGenerator(uint64_t n, double s, uint64_t seed)
    : rng_(seed) {
  MURAL_CHECK(n > 0);
  cdf_.reserve(n);
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) v /= acc;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace mural
