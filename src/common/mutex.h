// The engine's annotated lock vocabulary: mural::Mutex, mural::SharedMutex,
// their RAII guards, and a CondVar that interoperates with Mutex.
//
// Raw std::mutex / std::lock_guard outside common/ is rejected by
// mural_lint's no-raw-mutex rule: all engine locking goes through these
// wrappers so Clang's thread-safety analysis (common/thread_annotations.h,
// the `tsa` CMake preset) can prove the lock discipline at compile time —
// a field declared GUARDED_BY(mu_) cannot be touched without holding mu_.
//
// Conventions:
//   * Prefer the scoped guards (MutexLock / ReaderMutexLock /
//     WriterMutexLock) over manual Lock/Unlock pairs.
//   * Never call into G2P transforms or disk I/O while holding a lock
//     (mural_lint's no-lock-across-g2p-io rule); compute outside, re-lock
//     to publish.
//   * Condition waits loop on the predicate with the lock held:
//       MutexLock lock(mu_);
//       while (!ready_) cv_.Wait(mu_);

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mural {

class CondVar;

/// An exclusive mutex carrying Clang capability annotations.  Wraps
/// std::mutex; zero overhead beyond it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis) that the mutex is held on this path.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;  // CondVar::Wait adopts the underlying handle
  std::mutex mu_;
};

/// A reader/writer mutex with shared-capability annotations.  The
/// storage layer is built on it: BufferPool's frame table and per-frame
/// page latches, and Catalog's metadata maps, all take it shared on the
/// read paths (see DESIGN.md "Storage concurrency").  Not reentrant.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard over Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive guard over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) guard over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with mural::Mutex.  Wait atomically releases
/// and reacquires the mutex (the LevelDB adopt-lock construction), so from
/// the caller's — and the analysis's — point of view the mutex is held
/// continuously across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; may wake spuriously, so callers loop on their
  /// predicate.  `mu` must be the mutex every waiter and notifier of this
  /// CondVar uses.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's guard
  }

  /// Like Wait but gives up after `millis`.  Returns false on timeout,
  /// true when notified (or woken spuriously — callers loop on their
  /// predicate either way).  The mutex is held again on return.
  bool WaitForMillis(Mutex& mu, int64_t millis) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, std::chrono::milliseconds(millis)) ==
        std::cv_status::no_timeout;
    lock.release();  // ownership stays with the caller's guard
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mural
