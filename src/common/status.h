// Status / StatusOr: the library-wide error model.
//
// Mural does not throw exceptions on hot paths; fallible functions return a
// Status (or StatusOr<T> when they produce a value).  The idiom follows
// RocksDB/Arrow: check `ok()`, propagate with MURAL_RETURN_IF_ERROR.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace mural {

/// Broad machine-readable classification of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kInternal,
  kIOError,
  kAborted,
  /// The engine declined to run the request because the admission-control
  /// gate is at its concurrency limit and the queue is full (or the queue
  /// wait timed out).  Retryable by the client after backoff.
  kOverloaded,
};

/// Returns a stable human-readable name for `code` ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The result of a fallible operation: a code plus an optional message.
///
/// Status is cheap to copy in the OK case (no allocation) and cheap to move
/// always.  Functions that can fail return Status (or StatusOr<T>); callers
/// must consult ok() before using any out-parameters.
///
/// The class-level [[nodiscard]] makes the compiler reject any call site
/// that silently drops a returned Status; use MURAL_IGNORE_ERROR for the
/// rare case where dropping is intentional.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status; never both, never neither.
///
/// Access the value only after checking ok().  ValueOrDie-style accessors
/// assert in debug builds.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.  Constructing from an OK
  /// status is a programming error.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok());
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK() if this holds a value.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace mural

/// Propagates a non-OK Status to the caller.
#define MURAL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::mural::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Documents an intentionally discarded Status or StatusOr at a call site
/// where failure is acceptable (best-effort cleanup, background prefetch).
/// This is the only sanctioned way to drop a [[nodiscard]] result.
#define MURAL_IGNORE_ERROR(expr)                   \
  do {                                             \
    [[maybe_unused]] auto&& _ignored = (expr);     \
  } while (0)

#define MURAL_CONCAT_INNER_(a, b) a##b
#define MURAL_CONCAT_(a, b) MURAL_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr expression; on success binds the value to `lhs`,
/// on failure returns the error to the caller.
#define MURAL_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto MURAL_CONCAT_(_statusor_, __LINE__) = (expr);            \
  if (!MURAL_CONCAT_(_statusor_, __LINE__).ok())                \
    return MURAL_CONCAT_(_statusor_, __LINE__).status();        \
  lhs = std::move(MURAL_CONCAT_(_statusor_, __LINE__)).value()
