#include "common/utf8.h"

namespace mural {
namespace utf8 {

namespace {

bool IsSurrogate(CodePoint cp) { return cp >= 0xD800 && cp <= 0xDFFF; }

bool IsContinuation(unsigned char b) { return (b & 0xC0) == 0x80; }

}  // namespace

void Append(CodePoint cp, std::string* out) {
  if (cp > kMaxCodePoint || IsSurrogate(cp)) cp = kReplacementChar;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string Encode(const std::vector<CodePoint>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (CodePoint cp : cps) Append(cp, &out);
  return out;
}

CodePoint DecodeNext(std::string_view data, size_t* pos) {
  const size_t n = data.size();
  size_t i = *pos;
  if (i >= n) {
    return kReplacementChar;
  }
  const unsigned char b0 = static_cast<unsigned char>(data[i]);
  if (b0 < 0x80) {
    *pos = i + 1;
    return b0;
  }
  int len;
  CodePoint cp;
  CodePoint min_cp;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
    min_cp = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
    min_cp = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
    min_cp = 0x10000;
  } else {
    *pos = i + 1;
    return kReplacementChar;
  }
  if (i + static_cast<size_t>(len) > n) {
    *pos = i + 1;
    return kReplacementChar;
  }
  for (int k = 1; k < len; ++k) {
    const unsigned char bk = static_cast<unsigned char>(data[i + k]);
    if (!IsContinuation(bk)) {
      *pos = i + 1;
      return kReplacementChar;
    }
    cp = (cp << 6) | (bk & 0x3F);
  }
  if (cp < min_cp || cp > kMaxCodePoint || IsSurrogate(cp)) {
    *pos = i + 1;
    return kReplacementChar;
  }
  *pos = i + len;
  return cp;
}

std::vector<CodePoint> Decode(std::string_view data) {
  std::vector<CodePoint> out;
  out.reserve(data.size());
  size_t pos = 0;
  while (pos < data.size()) out.push_back(DecodeNext(data, &pos));
  return out;
}

StatusOr<std::vector<CodePoint>> DecodeStrict(std::string_view data) {
  std::vector<CodePoint> out;
  out.reserve(data.size());
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t before = pos;
    const CodePoint cp = DecodeNext(data, &pos);
    if (cp == kReplacementChar &&
        // A genuine U+FFFD in the input decodes from 3 well-formed bytes.
        !(pos - before == 3 &&
          static_cast<unsigned char>(data[before]) == 0xEF &&
          static_cast<unsigned char>(data[before + 1]) == 0xBF &&
          static_cast<unsigned char>(data[before + 2]) == 0xBD)) {
      return Status::InvalidArgument("malformed UTF-8 at byte offset " +
                                     std::to_string(before));
    }
    out.push_back(cp);
  }
  return out;
}

bool IsValid(std::string_view data) { return DecodeStrict(data).ok(); }

size_t Length(std::string_view data) {
  size_t pos = 0, count = 0;
  while (pos < data.size()) {
    DecodeNext(data, &pos);
    ++count;
  }
  return count;
}

std::string AsciiLower(std::string_view data) {
  std::string out(data);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace utf8
}  // namespace mural
