// ThreadPool: the engine's only sanctioned source of threads.
//
// A fixed set of workers drains a FIFO task queue; tasks are
// Status-returning closures and their results come back through
// std::future<Status>, so the engine's no-exceptions error model survives
// the thread boundary (a task that *does* throw — e.g. a std::bad_alloc
// escaping a standard-library call — is converted to Status::Internal by
// the submission wrapper rather than calling std::terminate).
//
// All intra-query parallelism (morsel-driven Psi scans and joins, the
// parallel stress harness) is built on this pool; bare std::thread outside
// common/ is rejected by mural_lint's no-bare-thread rule.

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mural {

/// A fixed-size worker pool executing Status-returning tasks.
class ThreadPool {
 public:
  using Task = std::function<Status()>;

  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Shuts down (drains queued tasks, joins workers).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Schedules `task` for execution.  The returned future yields the
  /// task's Status; if the task throws, the exception is converted to
  /// Status::Internal.  After Shutdown the future is immediately ready
  /// with Status::Aborted.
  [[nodiscard]] std::future<Status> Submit(Task task);

  /// Stops accepting tasks, runs everything already queued, and joins the
  /// workers.  Idempotent; also called by the destructor.
  void Shutdown();

  /// The degree of parallelism the hardware supports (>= 1 even when the
  /// runtime reports 0).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<Status()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Filled once in the constructor and joined in Shutdown; never resized
  // while workers run, so num_threads() may read it without the lock.
  std::vector<std::thread> workers_;  // lint: unguarded(immutable set after construction; Shutdown joins before destruction)
};

/// Morsel-driven parallel loop: partitions [0, count) into fixed-size
/// morsels and processes them with `dop` concurrent strips on `pool`.
/// Strip s handles morsels s, s + dop, s + 2*dop, ... so the assignment of
/// morsels to strips is deterministic; callers that write results into a
/// per-morsel slot get bit-identical output regardless of scheduling.
///
/// `fn(morsel_index, begin, end)` is invoked once per morsel, concurrently
/// across strips but sequentially within one strip.  Runs inline on the
/// calling thread when `pool` is null, `dop` <= 1, or there is a single
/// morsel.  Returns the error of the lowest-numbered failing strip (a
/// strip stops at its first error).
[[nodiscard]] Status ParallelMorsels(
    ThreadPool* pool, size_t count, size_t morsel_size, int dop,
    const std::function<Status(size_t morsel_index, size_t begin,
                               size_t end)>& fn);

}  // namespace mural
