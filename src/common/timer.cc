#include "common/timer.h"

#include <chrono>

namespace mural {

std::atomic<SpanClock::NowFn> SpanClock::now_fn_{nullptr};

uint64_t SpanClock::RealNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mural
