// Process-wide metrics registry: counters, gauges, and fixed-bucket
// latency histograms with a lock-free fast path.
//
// Usage pattern: resolve the metric once (the registry hands out stable
// pointers that live for the process lifetime) and update it with relaxed
// atomics on the hot path:
//
//   static Counter* hits =
//       MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
//   hits->Increment();
//
// Registration takes a mutex; updates never do.  ResetForTest() zeroes
// every value in place without invalidating cached pointers, so tests can
// take clean deltas.  TextExposition() renders the whole registry in the
// Prometheus text format (see tools/metrics_dump).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mural {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-progress spans).  May go negative
/// transiently under concurrent updates; Set/Add are individually atomic.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram.  Bucket upper bounds are set at registration
/// and immutable afterwards; Observe() is lock-free (one relaxed
/// fetch_add per bucket/count plus a CAS loop for the running sum).
class Histogram {
 public:
  /// Records one observation.
  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count for bucket i (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void ResetForTest();

  std::vector<double> bounds_;  // sorted upper bounds, exclusive of +Inf
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency-histogram bounds in milliseconds.
std::vector<double> DefaultLatencyBoundsMillis();

/// Default bounds for q-error style ratio histograms.
std::vector<double> DefaultRatioBounds();

/// Named registry of process-wide metrics.  Metric objects are never
/// destroyed or moved once registered, so pointers from Get* may be
/// cached indefinitely.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Registers (first call) or looks up (later calls) a metric by name.
  /// Names use dotted lowercase ("storage.io_errors").
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration and must be sorted
  /// ascending; later calls return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Renders every metric in Prometheus text-exposition format.  Dots in
  /// names become underscores and everything is prefixed "mural_".
  std::string TextExposition() const;

  /// Zeroes every registered value in place.  Cached pointers stay valid.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  // The mutex guards the name->metric maps only; the metric objects
  // themselves are internally atomic and are updated lock-free through
  // the stable pointers Get* hands out.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace mural
