// Engine-wide lock ranks for ACQUIRED_BEFORE / ACQUIRED_AFTER edges.
//
// Clang's thread-safety attributes can only name a lock the expression
// grammar can reach: a member of the same class, or a namespace-scope
// variable.  Two of the engine's lock-order edges cross those boundaries
// (Catalog::mu_ is acquired before BufferPool::table_mu_, and the buffer
// pool's table lock before any per-frame latch — the latches are dynamic,
// one per frame, so no single declaration can stand for them).  The rank
// objects below are never-locked SharedMutexes that exist purely as
// namespace-scope names for those levels, so every real lock can declare
// its position in the global order:
//
//   kCatalog  >  kBufferTable  >  kFrameLatch
//
// mural_lint's lock-order rule (tools/lint) collects every
// ACQUIRED_BEFORE/ACQUIRED_AFTER edge across the tree and fails the build
// on a contradictory (cyclic) declaration, so the order is machine-checked
// even under GCC, where the attributes expand to nothing.

#pragma once

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mural::lock_rank {

/// Rank of every per-frame page latch (BufferPool::Frame::latch).
inline SharedMutex kFrameLatch;

/// Rank of BufferPool::table_mu_ (frame table, LRU, pin counts).
inline SharedMutex kBufferTable ACQUIRED_BEFORE(kFrameLatch);

/// Rank of Catalog::mu_ (table/index maps).  DDL holds it while creating
/// heaps through the buffer pool, hence catalog-before-buffer-table.
inline SharedMutex kCatalog ACQUIRED_BEFORE(kBufferTable);

}  // namespace mural::lock_rank
