// Fixed-width encodings for tuple and index-page layouts.
//
// Invariant (enforced by review + the ubsan preset): every multi-byte load
// or store in this file goes through std::memcpy, never a pointer cast, so
// the codec is alignment-safe on any buffer offset — tuple fields are
// packed back-to-back in slotted pages and land on odd addresses all the
// time.  Keep it that way when adding encodings.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mural {

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutF64(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor-style decoder over a byte string; every Get* fails cleanly on
/// truncated input instead of reading out of bounds.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  Status GetU8(uint8_t* v) { return GetRaw(v, 1); }
  Status GetU16(uint16_t* v) { return GetRaw(v, 2); }
  Status GetU32(uint32_t* v) { return GetRaw(v, 4); }
  Status GetU64(uint64_t* v) { return GetRaw(v, 8); }
  Status GetF64(double* v) { return GetRaw(v, 8); }

  Status GetLengthPrefixed(std::string* out) {
    uint32_t len = 0;
    MURAL_RETURN_IF_ERROR(GetU32(&len));
    if (remaining() < len) {
      return Status::Corruption("length-prefixed field truncated");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Zero-copy variant: *out views into the decoder's underlying buffer,
  /// so it is valid only as long as that buffer is.  The batch scan uses
  /// this to peek at the key column without materializing the row.
  Status GetLengthPrefixedView(std::string_view* out) {
    uint32_t len = 0;
    MURAL_RETURN_IF_ERROR(GetU32(&len));
    if (remaining() < len) {
      return Status::Corruption("length-prefixed field truncated");
    }
    *out = std::string_view(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Advances past `n` bytes without reading them.
  Status Skip(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("decode past end of buffer");
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  Status GetRaw(void* out, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("decode past end of buffer");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace mural
