// Hash utilities: a 64-bit byte-string hash (FNV-1a with avalanche finish)
// used by hash joins, closure caches, and the buffer pool's page table.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mural {

/// 64-bit FNV-1a over a byte range, followed by a murmur-style finalizer so
/// low bits are well mixed (hash tables mask the low bits).
inline uint64_t Hash64(const void* data, size_t size, uint64_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t Hash64(std::string_view sv, uint64_t seed = 0) {
  return Hash64(sv.data(), sv.size(), seed);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace mural
