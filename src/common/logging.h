// Minimal leveled logging + assertion macros.
//
// Logging goes to stderr.  The level is process-global and settable at
// runtime (benchmarks silence INFO noise).  MURAL_CHECK* abort on violation
// in all build types; MURAL_DCHECK* only in debug builds.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mural {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line, const char* condition);
  [[noreturn]] ~LogMessageFatal();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace mural

#define MURAL_LOG(level)                                                   \
  if (static_cast<int>(::mural::LogLevel::k##level) <                      \
      static_cast<int>(::mural::GetLogLevel())) {                          \
  } else                                                                   \
    ::mural::internal::LogMessage(::mural::LogLevel::k##level, __FILE__,   \
                                  __LINE__)                                \
        .stream()

/// Aborts the process with a message if `cond` is false (all builds).
#define MURAL_CHECK(cond)                                               \
  if (cond) {                                                           \
  } else                                                                \
    ::mural::internal::LogMessageFatal(__FILE__, __LINE__, #cond).stream()

#define MURAL_CHECK_EQ(a, b) MURAL_CHECK((a) == (b))
#define MURAL_CHECK_NE(a, b) MURAL_CHECK((a) != (b))
#define MURAL_CHECK_LT(a, b) MURAL_CHECK((a) < (b))
#define MURAL_CHECK_LE(a, b) MURAL_CHECK((a) <= (b))
#define MURAL_CHECK_GT(a, b) MURAL_CHECK((a) > (b))
#define MURAL_CHECK_GE(a, b) MURAL_CHECK((a) >= (b))

#ifdef NDEBUG
#define MURAL_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::mural::internal::NullStream()
#else
#define MURAL_DCHECK(cond) MURAL_CHECK(cond)
#endif
