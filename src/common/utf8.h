// UTF-8 codec, written from scratch.
//
// UniText stores Unicode strings as UTF-8 bytes; the phonetic layer and the
// edit-distance operators work over decoded code points so that a multi-byte
// character counts as a single edit unit.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mural {

/// A Unicode code point (scalar value).
using CodePoint = uint32_t;

constexpr CodePoint kReplacementChar = 0xFFFD;
constexpr CodePoint kMaxCodePoint = 0x10FFFF;

namespace utf8 {

/// Appends the UTF-8 encoding of `cp` to `out`.  Invalid scalar values
/// (surrogates, > U+10FFFF) encode the replacement character instead.
void Append(CodePoint cp, std::string* out);

/// Encodes a code-point sequence to UTF-8.
std::string Encode(const std::vector<CodePoint>& cps);

/// Decodes one code point starting at `data[*pos]`, advancing *pos past it.
/// Malformed input yields kReplacementChar and advances one byte.
CodePoint DecodeNext(std::string_view data, size_t* pos);

/// Decodes a whole UTF-8 string; malformed bytes become replacement chars.
std::vector<CodePoint> Decode(std::string_view data);

/// Strict decode: returns InvalidArgument on any malformed sequence
/// (overlong encodings, surrogates, truncation).
StatusOr<std::vector<CodePoint>> DecodeStrict(std::string_view data);

/// True iff `data` is well-formed UTF-8.
bool IsValid(std::string_view data);

/// Number of code points in a (possibly malformed) UTF-8 string; malformed
/// bytes count one each.
size_t Length(std::string_view data);

/// ASCII-only lowercase fold (non-ASCII code points pass through); adequate
/// for the romanized orthographies used by the phonetic rules.
std::string AsciiLower(std::string_view data);

}  // namespace utf8
}  // namespace mural
