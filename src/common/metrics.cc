#include "common/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace mural {

namespace {

/// "storage.io_errors" -> "mural_storage_io_errors".
std::string PromName(const std::string& name) {
  std::string out = "mural_";
  for (char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out.push_back(word ? c : '_');
  }
  return out;
}

std::string PromDouble(double v) {
  std::string s = StringFormat("%.9g", v);
  return s;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() +
                                                         1)) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::ResetForTest() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBoundsMillis() {
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

std::vector<double> DefaultRatioBounds() {
  return {1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  // Function-local static: registered metric objects stay valid until
  // process exit (the registry never erases entries).
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

std::string MetricsRegistry::TextExposition() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist->bounds().size(); ++i) {
      cumulative += hist->bucket_count(i);
      out += prom + "_bucket{le=\"" + PromDouble(hist->bounds()[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += hist->bucket_count(hist->bounds().size());
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + PromDouble(hist->sum()) + "\n";
    out += prom + "_count " + std::to_string(hist->count()) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, hist] : histograms_) hist->ResetForTest();
}

}  // namespace mural
