// Deterministic PRNG utilities.
//
// All data generators and property tests take explicit seeds so every run is
// reproducible.  The generator is xoshiro256**, small and fast enough to sit
// inside tuple-generation inner loops.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace mural {

/// xoshiro256** by Blackman & Vigna; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the full state from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion avoids correlated lanes for small seeds.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) {
    MURAL_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MURAL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(
                    static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Picks one element of a non-empty vector uniformly.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    MURAL_DCHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Zipf(s) sampler over ranks 1..n using inverse-CDF on a precomputed table.
///
/// Used by the data generators to produce skewed duplicate distributions
/// (the paper perturbs histogram inputs by introducing duplicates, §5.2).
class ZipfGenerator {
 public:
  /// n: universe size; s: skew (0 = uniform-ish, 1 = classic Zipf).
  ZipfGenerator(uint64_t n, double s, uint64_t seed = 42);

  /// Returns a rank in [0, n).
  uint64_t Next();

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace mural
