// Small string helpers used across the codebase.

#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace mural {

/// Splits on a single-character delimiter; empty fields are preserved.
inline std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Joins with a separator.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    out += p;
    first = false;
  }
  return out;
}

/// printf-style formatting into a std::string.
inline std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StringFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

/// Strips ASCII whitespace from both ends.
inline std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// Case-insensitive ASCII equality (for SQL keywords).
inline bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace mural
