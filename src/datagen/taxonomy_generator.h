// WordNet-shaped taxonomy generator (paper §5.1 methodology).
//
// Builds a base (English) noun hierarchy with configurable size, fanout
// distribution and height, then *replicates* it into additional languages
// and links corresponding synsets with equivalence edges — exactly how the
// paper simulated multilingual WordNets ("replicating English WordNet in
// Unicode, and creating an equivalence link between corresponding
// synsets").

#pragma once

#include <memory>

#include "common/random.h"
#include "taxonomy/taxonomy.h"

namespace mural {

struct TaxonomyGenOptions {
  uint64_t seed = 42;
  /// Synsets in the base hierarchy (English WordNet nouns ~ 80k; scale to
  /// taste).
  size_t base_synsets = 20000;
  /// Mean children per internal node (WordNet nouns average ~4-5).
  double mean_fanout = 4.5;
  /// Languages: the base plus (languages.size()-1) replicas.
  std::vector<LangId> languages = {lang::kEnglish, lang::kTamil,
                                   lang::kFrench};
  /// Fraction of extra DAG edges (multiple hypernyms), WordNet has a few.
  double dag_edge_fraction = 0.01;
};

/// The generated hierarchy plus bookkeeping the experiments use.
struct GeneratedTaxonomy {
  std::unique_ptr<Taxonomy> taxonomy;
  /// Base-language synsets ordered by id (replicas follow the same order).
  std::vector<SynsetId> base_synsets;
  /// For each base synset, its replica in each additional language.
  std::vector<std::vector<SynsetId>> replicas;
};

GeneratedTaxonomy GenerateTaxonomy(const TaxonomyGenOptions& options);

/// Finds base-language synsets whose closure size (within the base
/// language only) is as close as possible to `target` — used to drive the
/// closure-size sweeps of Figure 8.
std::vector<SynsetId> FindRootsWithClosureSize(const Taxonomy& taxonomy,
                                               const std::vector<SynsetId>&
                                                   candidates,
                                               size_t target,
                                               size_t max_results = 5);

}  // namespace mural
