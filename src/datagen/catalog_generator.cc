#include "datagen/catalog_generator.h"

#include "common/logging.h"

namespace mural {

BooksDataset GenerateBooks(const BooksGenOptions& options,
                           const GeneratedTaxonomy& taxonomy) {
  MURAL_CHECK(!options.languages.empty());
  Rng rng(options.seed);
  BooksDataset out;

  // Authors: one rendering of a fresh base each.
  std::vector<std::string> author_bases;
  author_bases.reserve(options.num_authors);
  for (size_t i = 0; i < options.num_authors; ++i) {
    const std::string base = RandomBaseName(&rng);
    author_bases.push_back(base);
    const LangId lang = options.languages[rng.Uniform(
        options.languages.size())];
    out.authors.push_back(AuthorRow{
        static_cast<int32_t>(i),
        UniText(RenderNameInLanguage(base, lang, &rng, 0.2), lang)});
  }

  // Publishers: a fraction reuse an author's base (homophones across
  // languages), the rest are fresh.
  for (size_t i = 0; i < options.num_publishers; ++i) {
    std::string base;
    if (rng.Bernoulli(options.publisher_author_overlap) &&
        !author_bases.empty()) {
      base = author_bases[rng.Uniform(author_bases.size())];
    } else {
      base = RandomBaseName(&rng);
    }
    const LangId lang = options.languages[rng.Uniform(
        options.languages.size())];
    out.publishers.push_back(PublisherRow{
        static_cast<int32_t>(i),
        UniText(RenderNameInLanguage(base, lang, &rng, 0.2), lang)});
  }

  // Books: foreign keys uniform; categories Zipf over base synsets,
  // rendered in the base language or a replica language.
  const Taxonomy& tax = *taxonomy.taxonomy;
  ZipfGenerator category_zipf(
      std::max<size_t>(1, taxonomy.base_synsets.size()), 0.8,
      options.seed ^ 0xc0ffee);
  for (size_t i = 0; i < options.num_books; ++i) {
    BookRow book;
    book.book_id = static_cast<int32_t>(i);
    book.author_id =
        static_cast<int32_t>(rng.Uniform(options.num_authors));
    book.publisher_id =
        static_cast<int32_t>(rng.Uniform(options.num_publishers));
    const LangId title_lang = options.languages[rng.Uniform(
        options.languages.size())];
    book.title = UniText("the " + RandomBaseName(&rng) + " chronicles",
                         title_lang);
    // Category: a synset lemma in one of the taxonomy's languages.
    const size_t base_idx = category_zipf.Next();
    SynsetId synset = taxonomy.base_synsets[base_idx];
    if (!taxonomy.replicas[base_idx].empty() && rng.Bernoulli(0.5)) {
      synset = taxonomy.replicas[base_idx][rng.Uniform(
          taxonomy.replicas[base_idx].size())];
    }
    const Synset& s = tax.Get(synset);
    book.category = UniText(s.lemma, s.lang);
    out.books.push_back(std::move(book));
  }
  return out;
}

}  // namespace mural
