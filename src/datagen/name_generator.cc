#include "datagen/name_generator.h"

#include <array>

#include "common/logging.h"

namespace mural {

namespace {

// Syllable inventory used to assemble base surnames.  Weighted toward the
// phonotactics of the paper's multilingual catalog (Indic + European
// names).
// Restricted to graphemes whose pronunciation is stable across the
// English / Indic / Romance rule families, so that renderings of one base
// stay within a small phonemic distance regardless of name length (the
// aspirated digraphs, th, w, j etc. map differently per family and would
// make cross-lingual drift grow with length).
const std::array<const char*, 30> kOnsets = {
    "b",  "d",  "g",  "h",  "k",  "l",  "m",  "n",  "p",  "r",
    "s",  "sh", "t",  "v",  "y",  "br", "dr", "gr", "kr", "pr",
    "tr", "sr", "sm", "st", "sl", "pl", "gl", "kl", "fl", "fr"};

const std::array<const char*, 12> kNuclei = {
    "a", "e", "i", "o", "u", "aa", "ee", "oo", "ya", "ia", "e", "a"};

const std::array<const char*, 16> kCodas = {
    "",  "",  "",  "n",  "m",  "r",  "l",  "sh",
    "t", "k", "p", "nd", "nt", "rm", "rt", "s"};

}  // namespace

std::string RandomBaseName(Rng* rng) {
  // 3-4 syllables: the multilingual proper names of the paper's dataset
  // (Indic + European surnames) run long — phoneme strings of ~9-14
  // symbols — which is also what gives reference-distance filters (MDI)
  // any spread to work with.
  const size_t syllables = 3 + rng->Uniform(2);
  std::string name;
  for (size_t s = 0; s < syllables; ++s) {
    name += kOnsets[rng->Uniform(kOnsets.size())];
    name += kNuclei[rng->Uniform(kNuclei.size())];
    if (s + 1 == syllables || rng->Bernoulli(0.3)) {
      name += kCodas[rng->Uniform(kCodas.size())];
    }
  }
  return name;
}

namespace {

/// Applies one spelling substitution drawn from a language's conventions.
std::string ApplyConvention(const std::string& name,
                            const std::vector<std::pair<const char*,
                                                        const char*>>& subs,
                            Rng* rng) {
  std::string out = name;
  // One substitution at the first occurrence: enough to vary spelling
  // while keeping variants within the paper's matching thresholds.
  const auto& [from, to] = subs[rng->Uniform(subs.size())];
  const size_t pos = out.find(from);
  if (pos != std::string::npos) {
    out.replace(pos, std::string(from).size(), to);
  }
  return out;
}

}  // namespace

std::string RenderNameInLanguage(const std::string& base, LangId lang,
                                 Rng* rng, double noise_prob) {
  // Language-specific orthographic conventions: phonemically (near-)
  // neutral respellings of the same name.
  static const std::vector<std::pair<const char*, const char*>> kEnglish = {
      {"aa", "a"},  {"ee", "ea"}, {"oo", "ou"}, {"sh", "sh"},
      {"k", "c"},   {"f", "ph"},  {"au", "aw"}, {"ai", "ay"}};
  static const std::vector<std::pair<const char*, const char*>> kIndic = {
      {"a", "aa"},  {"i", "ee"},  {"u", "oo"},  {"c", "k"},
      {"ay", "ai"}, {"aw", "au"}, {"ph", "f"},  {"w", "v"}};
  static const std::vector<std::pair<const char*, const char*>> kFrench = {
      {"oo", "ou"}, {"sh", "ch"}, {"k", "qu"},  {"ee", "i"},
      {"w", "v"},   {"au", "eau"}};
  static const std::vector<std::pair<const char*, const char*>> kGerman = {
      {"sh", "sch"}, {"v", "w"},  {"f", "v"},   {"k", "ck"},
      {"ai", "ei"},  {"oo", "u"}};

  const LanguageInfo* info = LanguageRegistry::Default().Find(lang);
  const std::vector<std::pair<const char*, const char*>>* subs = &kEnglish;
  if (info != nullptr) {
    switch (info->g2p) {
      case G2pFamily::kIndic:
        subs = &kIndic;
        break;
      case G2pFamily::kRomance:
        subs = &kFrench;
        break;
      case G2pFamily::kGermanic:
        subs = &kGerman;
        break;
      default:
        subs = &kEnglish;
        break;
    }
  }
  std::string out = ApplyConvention(base, *subs, rng);
  if (rng->Bernoulli(noise_prob)) {
    // Small spelling perturbation: double a consonant or drop a vowel of
    // a doubled pair — noise that stays phonemically close.
    const size_t pos = rng->Uniform(out.size());
    const char c = out[pos];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
      out.insert(pos, 1, c);  // lengthen vowel
    } else {
      out.insert(pos, 1, c);  // double consonant
    }
  }
  return out;
}

std::vector<NameRecord> GenerateNames(const NameGenOptions& options) {
  MURAL_CHECK(!options.languages.empty());
  Rng rng(options.seed);
  std::vector<NameRecord> records;
  records.reserve(options.num_bases * options.variants_per_base);
  uint32_t next_id = 0;
  for (uint32_t b = 0; b < options.num_bases; ++b) {
    const std::string base = RandomBaseName(&rng);
    for (size_t v = 0; v < options.variants_per_base; ++v) {
      const LangId lang = options.languages[v % options.languages.size()];
      NameRecord rec;
      rec.id = next_id++;
      rec.base_id = b;
      rec.name = UniText(
          RenderNameInLanguage(base, lang, &rng, options.noise_prob), lang);
      records.push_back(std::move(rec));
    }
  }
  return records;
}

}  // namespace mural
