// Generator for the Books.com-style relational schema of the paper's
// motivating example (Fig. 1) and the optimization example of §5.2.1:
// Author(AuthorID, AName), Publisher(PublisherID, PName),
// Book(BookID, AuthorID, PublisherID, Title, Category).
//
// Author and publisher names come from the multilingual name generator
// (some publishers share a name base with some authors, so the "author
// sounds like publisher" Psi join has real matches); categories come from
// a generated taxonomy.

#pragma once

#include "datagen/name_generator.h"
#include "datagen/taxonomy_generator.h"

namespace mural {

struct BooksGenOptions {
  uint64_t seed = 42;
  size_t num_authors = 3000;
  size_t num_publishers = 500;
  size_t num_books = 10000;
  /// Fraction of publishers whose name is a homophone variant of some
  /// author's name.
  double publisher_author_overlap = 0.1;
  std::vector<LangId> languages = {lang::kEnglish, lang::kHindi,
                                   lang::kTamil, lang::kFrench};
};

struct AuthorRow {
  int32_t author_id;
  UniText name;
};
struct PublisherRow {
  int32_t publisher_id;
  UniText name;
};
struct BookRow {
  int32_t book_id;
  int32_t author_id;
  int32_t publisher_id;
  UniText title;
  UniText category;  // lemma of a taxonomy synset, in the row's language
};

struct BooksDataset {
  std::vector<AuthorRow> authors;
  std::vector<PublisherRow> publishers;
  std::vector<BookRow> books;
};

/// `taxonomy` supplies category values; pass the result of
/// GenerateTaxonomy.  Categories are drawn Zipf-skewed over base synsets
/// and rendered in a random language of the synset.
BooksDataset GenerateBooks(const BooksGenOptions& options,
                           const GeneratedTaxonomy& taxonomy);

}  // namespace mural
