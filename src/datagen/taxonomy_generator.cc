#include "datagen/taxonomy_generator.h"

#include <algorithm>

#include "common/logging.h"

namespace mural {

namespace {

/// Deterministic lemma for (base index, language): "concept<i>_<lang>".
/// Lemmas differ across languages (they are "translations"), while the
/// equivalence links record that they denote the same concept.
std::string LemmaFor(size_t index, LangId lang) {
  return "concept" + std::to_string(index) + "_" + std::to_string(lang);
}

}  // namespace

GeneratedTaxonomy GenerateTaxonomy(const TaxonomyGenOptions& options) {
  MURAL_CHECK(!options.languages.empty());
  Rng rng(options.seed);
  GeneratedTaxonomy out;
  out.taxonomy = std::make_unique<Taxonomy>();
  Taxonomy& tax = *out.taxonomy;

  const LangId base_lang = options.languages[0];
  const size_t n = options.base_synsets;

  // Base hierarchy: level-structured random tree.  Level l holds roughly
  // f^l nodes (f = mean_fanout) and every node's parent is drawn
  // uniformly from the previous level, so the generated tree has
  // WordNet-like shape: height ~ log_f(n), average internal fanout ~ f.
  out.base_synsets.reserve(n);
  std::vector<size_t> parent_of(n, 0);
  std::vector<std::pair<size_t, size_t>> extra_edges;  // (child, parent)
  size_t prev_lo = 0;     // previous level: [prev_lo, level_lo)
  size_t level_lo = 0;    // current level:  [level_lo, level_hi)
  size_t level_hi = 1;    // level 0 = the single root
  for (size_t i = 0; i < n; ++i) {
    out.base_synsets.push_back(tax.AddSynset(base_lang, LemmaFor(i,
                                                                 base_lang)));
    if (i == 0) continue;
    if (i >= level_hi) {
      // Advance a level: the next one is f times wider.
      const size_t width = level_hi - level_lo;
      const size_t next_width = std::max<size_t>(
          width + 1,
          static_cast<size_t>(static_cast<double>(width) *
                              options.mean_fanout));
      prev_lo = level_lo;
      level_lo = level_hi;
      level_hi = level_lo + next_width;
    }
    // Parent: uniform over the previous level.
    const size_t parent = prev_lo + rng.Uniform(level_lo - prev_lo);
    parent_of[i] = parent;
    MURAL_CHECK(
        tax.AddIsA(out.base_synsets[i], out.base_synsets[parent]).ok());
    // Occasional extra hypernym (DAG edge), like WordNet's multiple
    // inheritance.
    if (options.dag_edge_fraction > 0 &&
        rng.Bernoulli(options.dag_edge_fraction) && parent > 0) {
      const size_t extra = rng.Uniform(parent);
      if (extra != parent) {
        if (tax.AddIsA(out.base_synsets[i], out.base_synsets[extra]).ok()) {
          extra_edges.emplace_back(i, extra);
        }
      }
    }
  }

  // Replicate into the remaining languages and interlink.
  out.replicas.resize(n);
  for (size_t li = 1; li < options.languages.size(); ++li) {
    const LangId lang = options.languages[li];
    std::vector<SynsetId> replica(n);
    for (size_t i = 0; i < n; ++i) {
      replica[i] = tax.AddSynset(lang, LemmaFor(i, lang));
    }
    for (size_t i = 1; i < n; ++i) {
      MURAL_CHECK(tax.AddIsA(replica[i], replica[parent_of[i]]).ok());
    }
    // Replicas mirror the base's extra (DAG) hypernyms too, keeping the
    // per-language hierarchies isomorphic.
    for (const auto& [child, parent] : extra_edges) {
      MURAL_CHECK(tax.AddIsA(replica[child], replica[parent]).ok());
    }
    for (size_t i = 0; i < n; ++i) {
      MURAL_CHECK(
          tax.AddEquivalence(out.base_synsets[i], replica[i]).ok());
      out.replicas[i].push_back(replica[i]);
    }
  }
  return out;
}

std::vector<SynsetId> FindRootsWithClosureSize(
    const Taxonomy& taxonomy, const std::vector<SynsetId>& candidates,
    size_t target, size_t max_results) {
  std::vector<std::pair<size_t, SynsetId>> scored;  // (|size - target|, id)
  for (SynsetId id : candidates) {
    const size_t size =
        taxonomy.TransitiveClosure(id, /*follow_equivalence=*/false).size();
    const size_t err = size > target ? size - target : target - size;
    scored.emplace_back(err, id);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<SynsetId> out;
  for (size_t i = 0; i < scored.size() && i < max_results; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace mural
