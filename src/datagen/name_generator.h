// Synthetic multilingual names dataset (substitute for the paper's
// pre-tagged ~30k-name dataset, §5.1).
//
// Construction: a pool of base surnames is rendered into per-language
// romanized orthographies by deterministic spelling transforms (the same
// name spelled as an English, Hindi, Tamil, Kannada, French or German
// writer would), optionally perturbed with small spelling noise.  Names
// derived from one base are true cross-lingual homophones — their phoneme
// strings land within a small edit distance — while distinct bases stay
// far apart.  Every knob is explicit and the generator is seeded, so
// experiments are reproducible.

#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "text/language.h"
#include "text/unitext.h"

namespace mural {

/// One generated name record.
struct NameRecord {
  uint32_t id = 0;
  uint32_t base_id = 0;  // names sharing base_id are homophone variants
  UniText name;          // romanized rendering, tagged with its language
};

struct NameGenOptions {
  uint64_t seed = 42;
  /// Number of distinct base names.
  size_t num_bases = 6000;
  /// Renderings per base (languages cycle; > languages means spelling
  /// variants within a language).
  size_t variants_per_base = 5;
  /// Probability of one extra spelling perturbation per rendering.
  double noise_prob = 0.25;
  /// Languages to render into.
  std::vector<LangId> languages = {lang::kEnglish, lang::kHindi,
                                   lang::kTamil, lang::kKannada,
                                   lang::kFrench};
};

/// Generates the dataset; size = num_bases * variants_per_base.
std::vector<NameRecord> GenerateNames(const NameGenOptions& options);

/// A single random romanized base name (public for reuse by benches).
std::string RandomBaseName(Rng* rng);

/// Renders `base` into the orthographic conventions of `lang`,
/// deterministically given the rng state.
std::string RenderNameInLanguage(const std::string& base, LangId lang,
                                 Rng* rng, double noise_prob);

}  // namespace mural
