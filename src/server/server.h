// A socket front end running N concurrent sessions against one Database.
//
// Each accepted connection gets its own Session (so per-connection SET,
// prepared statements, and effort counters are isolated) while storage,
// catalog, statistics, the plan cache, and the admission gate are shared —
// the concurrent-engine split this PR's API redesign exists to serve.
//
// Transport: an AF_UNIX socket (preferred; sandbox- and test-friendly) or
// loopback TCP (port 0 = kernel-assigned, see port()).  At most
// max_connections clients are served at once; later connects are turned
// away with a protocol error line.
//
// Line protocol (everything is '\n'-terminated text):
//
//   client:  one SQL statement per line, e.g.
//              CREATE TABLE Book (Author UNITEXT MATERIALIZE PHONEMES);
//              SELECT Author FROM Book WHERE Author LexEQUAL 'Nehru';
//            special commands: \q (quit), \metrics (Prometheus dump)
//   server:  zero or more data lines (row values joined with " | ";
//            engine values never embed newlines), then one terminator:
//              -- ok rows=<n> runtime_ms=<t> queue_wait_ms=<w> session=<id>
//            or, on failure (including kOverloaded from admission):
//              -- error <Code>: <message>
//
// Threading: one ThreadPool task per live connection plus one for the
// accept loop; no bare threads.  Stop() (also run by the destructor)
// shuts down the listener and every live connection, then joins the pool.
//
// Exported metrics: server.connections.active (gauge),
// server.connections.total / server.connections.rejected and
// server.statements (counters).

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/session_state.h"

namespace mural {

class Database;

struct ServerOptions {
  /// AF_UNIX listening path; takes precedence when non-empty.  The path
  /// is unlinked before bind and after shutdown.
  std::string unix_path;
  /// Loopback TCP port when unix_path is empty; 0 = kernel-assigned.
  int tcp_port = 0;
  /// Max simultaneously served connections; later connects are refused
  /// with a protocol error line.
  int max_connections = 32;
  /// Session knobs every new connection starts from.
  SessionOptions session_defaults;
};

class Server {
 public:
  /// Binds, listens, and starts the accept loop.  `db` must outlive the
  /// returned Server.
  [[nodiscard]] static StatusOr<std::unique_ptr<Server>> Start(
      Database* db, ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, disconnects every client, joins all connection
  /// tasks.  Idempotent.
  void Stop();

  /// "path" for AF_UNIX, "127.0.0.1:<port>" for TCP.
  const std::string& endpoint() const { return endpoint_; }
  /// The bound TCP port (resolved when tcp_port was 0); -1 for AF_UNIX.
  int port() const { return port_; }

 private:
  Server(Database* db, ServerOptions options);

  [[nodiscard]] Status Listen();
  /// Accept-loop pool task; exits when Stop() shuts the listener down.
  [[nodiscard]] Status AcceptLoop();
  /// Per-connection pool task: mints a Session and speaks the protocol.
  [[nodiscard]] Status ServeConnection(int fd);

  /// Registers fd as live unless at capacity or stopping.
  bool TryRegisterConnection(int fd);
  void UnregisterConnection(int fd);

  Database* const db_;  // lint: unguarded(set once in the ctor; Database is internally synchronized)
  const ServerOptions options_;
  std::string endpoint_;  // lint: unguarded(written only during single-threaded Start)
  int port_ = -1;  // lint: unguarded(written only during single-threaded Start)
  int listen_fd_ = -1;  // lint: unguarded(set in Start before threads exist; Stop only shutdowns it until the pool is joined)
  std::atomic<bool> stopping_{false};
  std::unique_ptr<ThreadPool> pool_;  // lint: unguarded(set in Start before threads exist; reset only in Stop after the listener wakes)

  Mutex mu_;
  std::set<int> conns_ GUARDED_BY(mu_);
  std::vector<std::future<Status>> tasks_ GUARDED_BY(mu_);
};

}  // namespace mural
