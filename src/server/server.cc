#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "session/session.h"

namespace mural {

namespace {

struct ServerMetrics {
  Gauge* active;
  Counter* total;
  Counter* rejected;
  Counter* statements;
};

ServerMetrics& Metrics() {
  static ServerMetrics m = {
      MetricsRegistry::Global().GetGauge("server.connections.active"),
      MetricsRegistry::Global().GetCounter("server.connections.total"),
      MetricsRegistry::Global().GetCounter("server.connections.rejected"),
      MetricsRegistry::Global().GetCounter("server.statements"),
  };
  return m;
}

// The server's blocking socket I/O, named here so mural_lint's latch-scope
// rule rejects any mutex guard held across a call into them.
// lint: blocking(AcceptConnFd, RecvSome, SendAll)

/// Blocks until a client connects; returns -1 on error/shutdown.
int AcceptConnFd(int listen_fd) {
  return ::accept(listen_fd, nullptr, nullptr);
}

/// Blocks until some bytes arrive; 0 = orderly EOF, -1 = error/shutdown.
ssize_t RecvSome(int fd, char* buf, size_t n) {
  ssize_t r;
  do {
    r = ::recv(fd, buf, n, 0);
  } while (r < 0 && errno == EINTR);
  return r;
}

/// Blocks until all of `data` is written (or the peer goes away).
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

/// Buffered '\n'-delimited reads over RecvSome.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF / connection error with no complete line left.
  bool GetLine(std::string* line) {
    while (true) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t r = RecvSome(fd_, chunk, sizeof(chunk));
      if (r <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(r));
    }
  }

 private:
  const int fd_;
  std::string buf_;
};

std::string Terminator(size_t rows, double runtime_ms, double queue_wait_ms,
                       uint64_t session_id) {
  return StringFormat(
      "-- ok rows=%zu runtime_ms=%.2f queue_wait_ms=%.2f session=%llu\n",
      rows, runtime_ms, queue_wait_ms,
      static_cast<unsigned long long>(session_id));
}

std::string RenderResponse(const StatusOr<QueryResult>& result) {
  if (!result.ok()) {
    return std::string("-- error ") +
           StatusCodeToString(result.status().code()) + ": " +
           result.status().message() + "\n";
  }
  const QueryResult& r = *result;
  std::string out;
  for (const Row& row : r.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c].ToString();
    }
    out += "\n";
  }
  out += Terminator(r.rows.size(), r.runtime_ms, r.queue_wait_ms,
                    r.session_id);
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(Database* db,
                                                ServerOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start: null database");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument(
        "Server::Start: max_connections must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(db, std::move(options)));
  MURAL_RETURN_IF_ERROR(server->Listen());
  // One slot per servable connection plus the accept loop itself.
  server->pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(server->options_.max_connections) + 1);
  Server* raw = server.get();
  std::future<Status> accept_task =
      server->pool_->Submit([raw] { return raw->AcceptLoop(); });
  {
    MutexLock lock(server->mu_);
    server->tasks_.push_back(std::move(accept_task));
  }
  return server;
}

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Listen() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket(AF_UNIX): ") +
                              std::strerror(errno));
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal("bind(" + options_.unix_path +
                              "): " + std::strerror(errno));
    }
    endpoint_ = options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("socket(AF_INET): ") +
                              std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal(
          "bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
          "): " + std::strerror(errno));
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Status::Internal(std::string("getsockname: ") +
                              std::strerror(errno));
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
    endpoint_ = "127.0.0.1:" + std::to_string(port_);
  }
  if (::listen(listen_fd_, options_.max_connections) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = AcceptConnFd(listen_fd_);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure (e.g. aborted handshake)
    }
    Metrics().total->Increment();
    if (!TryRegisterConnection(fd)) {
      Metrics().rejected->Increment();
      // Turned away politely: tell the client before hanging up, without
      // occupying a connection slot.
      (void)SendAll(fd,
                    "-- error Overloaded: server connection limit "
                    "reached\n");
      ::close(fd);
      continue;
    }
    Server* self = this;
    std::future<Status> task =
        pool_->Submit([self, fd] { return self->ServeConnection(fd); });
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  return Status::OK();
}

Status Server::ServeConnection(int fd) {
  Metrics().active->Add(1);
  {
    auto connected = db_->Connect(options_.session_defaults);
    if (!connected.ok()) {
      (void)SendAll(fd, RenderResponse(connected.status()));
    } else {
      std::unique_ptr<Session> session = std::move(*connected);
      LineReader reader(fd);
      std::string line;
      while (!stopping_.load(std::memory_order_acquire) &&
             reader.GetLine(&line)) {
        const std::string trimmed(Trim(line));
        if (trimmed.empty()) continue;
        if (trimmed == "\\q") {
          (void)SendAll(fd, "-- bye\n");
          break;
        }
        if (trimmed == "\\metrics") {
          std::string dump = MetricsRegistry::Global().TextExposition();
          const size_t lines =
              static_cast<size_t>(
                  std::count(dump.begin(), dump.end(), '\n'));
          dump += Terminator(lines, 0, 0, session->id());
          if (!SendAll(fd, dump)) break;
          continue;
        }
        Metrics().statements->Increment();
        if (!SendAll(fd, RenderResponse(session->Sql(trimmed)))) break;
      }
    }
  }
  ::close(fd);
  UnregisterConnection(fd);
  Metrics().active->Add(-1);
  return Status::OK();
}

bool Server::TryRegisterConnection(int fd) {
  MutexLock lock(mu_);
  // The accept loop occupies one of the tasks_ slots conceptually but a
  // dedicated pool thread permanently, hence max_connections + 1 workers.
  if (stopping_.load(std::memory_order_acquire) ||
      static_cast<int>(conns_.size()) >= options_.max_connections) {
    return false;
  }
  conns_.insert(fd);
  return true;
}

void Server::UnregisterConnection(int fd) {
  MutexLock lock(mu_);
  conns_.erase(fd);
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the accept loop and every connection blocked in RecvSome; fds
  // stay open (shutdown, not close) so no task can race a recycled fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    MutexLock lock(mu_);
    for (const int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains + joins accept loop and connection tasks
  std::vector<std::future<Status>> tasks;
  {
    MutexLock lock(mu_);
    tasks.swap(tasks_);
  }
  for (std::future<Status>& task : tasks) {
    const Status status = task.get();
    if (!status.ok()) {
      MURAL_LOG(Warn) << "server task: " << status.ToString();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

}  // namespace mural
