// WordNet-style multilingual taxonomic hierarchies (paper §2.2, §4.3).
//
// A Taxonomy holds synsets (concept nodes) for many languages plus two
// relation kinds:
//   - hypernym/hyponym edges (IS-A) *within* a language, forming a DAG;
//   - equivalence links *across* languages connecting synsets that denote
//     the same concept (the paper simulates multilingual WordNets by
//     replicating English WordNet and adding such links, §5.1 — our
//     generator in datagen/ does exactly that).
//
// SemEQUAL(A, B) is membership of A in the transitive closure (self +
// descendants, expanded across equivalence links) of B.  Closure
// computation follows §4.3: the hierarchy is pinned in memory, closures are
// materialized as hash sets and memoized for reuse across probe values.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "text/language.h"
#include "text/unitext.h"

namespace mural {

/// Dense synset identifier (index into the taxonomy's node arrays).
using SynsetId = uint32_t;

constexpr SynsetId kInvalidSynset = 0xFFFFFFFFu;

/// One concept node.
struct Synset {
  SynsetId id = kInvalidSynset;
  LangId lang = kLangUnknown;
  /// Primary lemma (word form) naming the concept in its language.
  std::string lemma;
};

/// The set of synsets reachable from a root: the paper's TC(x, MLTH).
using Closure = std::unordered_set<SynsetId>;

/// Structural statistics used by the Omega cost/cardinality models
/// (Table 2: f_T = average fan-out, h_T = height; n_T = #synsets).
struct TaxonomyStats {
  uint64_t num_synsets = 0;
  uint64_t num_isa_edges = 0;
  uint64_t num_equiv_edges = 0;
  double avg_fanout = 0.0;   // f_T over internal nodes
  uint32_t height = 0;       // h_T: longest root-to-leaf path
  uint32_t num_languages = 0;
};

/// An interlinked multilingual taxonomic hierarchy, pinned in memory.
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Adds a synset; returns its id.
  SynsetId AddSynset(LangId lang, std::string lemma);

  /// Adds an IS-A edge: `child` is a kind of `parent` (same language).
  Status AddIsA(SynsetId child, SynsetId parent);

  /// Adds a cross-language equivalence link (symmetric).
  Status AddEquivalence(SynsetId a, SynsetId b);

  size_t size() const { return synsets_.size(); }
  const Synset& Get(SynsetId id) const { return synsets_[id]; }
  bool Valid(SynsetId id) const { return id < synsets_.size(); }

  const std::vector<SynsetId>& ChildrenOf(SynsetId id) const {
    return children_[id];
  }
  const std::vector<SynsetId>& ParentsOf(SynsetId id) const {
    return parents_[id];
  }
  const std::vector<SynsetId>& EquivalentsOf(SynsetId id) const {
    return equivalents_[id];
  }

  /// All synsets whose lemma is `lemma` in language `lang` (homonyms
  /// possible).  Empty if the word is not in the taxonomy.
  std::vector<SynsetId> Lookup(std::string_view lemma, LangId lang) const;

  /// Resolves a UniText value to synset ids (lemma in its language).
  std::vector<SynsetId> Lookup(const UniText& value) const;

  /// Transitive closure of `root`: root itself, all IS-A descendants, and —
  /// when `follow_equivalence` — the equivalence images of every member
  /// together with *their* descendants (so a Tamil 'Charitram' node under
  /// an equivalent of 'History' is found).  Iterative DFS; no recursion.
  Closure TransitiveClosure(SynsetId root,
                            bool follow_equivalence = true) const;

  /// Union of the closures of several roots (homonymous query lemmas).
  Closure TransitiveClosureOfAll(const std::vector<SynsetId>& roots,
                                 bool follow_equivalence = true) const;

  /// SemEQUAL truth value on raw values: true iff some synset of `a` lies
  /// in the transitive closure of some synset of `b` (paper Fig. 5).
  bool SemMatch(const UniText& a, const UniText& b) const;

  /// Structural statistics (computed on demand, O(n)).
  TaxonomyStats ComputeStats() const;

  /// Exposes every synset for scans/serialization.
  const std::vector<Synset>& synsets() const { return synsets_; }

 private:
  std::vector<Synset> synsets_;
  std::vector<std::vector<SynsetId>> children_;
  std::vector<std::vector<SynsetId>> parents_;
  std::vector<std::vector<SynsetId>> equivalents_;
  uint64_t num_isa_edges_ = 0;
  uint64_t num_equiv_edges_ = 0;
  // (lemma bytes, lang) -> synset ids; key is lemma + '\0' + lang digits.
  std::unordered_map<std::string, std::vector<SynsetId>> lemma_index_;

  static std::string IndexKey(std::string_view lemma, LangId lang);
};

/// Memoizing cache of materialized closures (paper §4.3): closures are
/// stored as hash tables keyed by root synset and reused both across LHS
/// probe values and across duplicate RHS values.
///
/// Thread-safe: morsel workers may share one instance.  Closure
/// computation (a taxonomy traversal) runs *outside* the lock — the same
/// compute-then-publish discipline as PhonemeCache — so a slow closure
/// never serializes unrelated probes; a duplicate compute under contention
/// is benign because TransitiveClosure is deterministic.
class ClosureCache {
 public:
  explicit ClosureCache(const Taxonomy* taxonomy) : taxonomy_(taxonomy) {}

  /// The closure of `root`; computed on first use, shared thereafter.  The
  /// returned reference stays valid until Clear() (entries are never
  /// evicted; unordered_map nodes are reference-stable under insertion).
  const Closure& Get(SynsetId root, bool follow_equivalence = true);

  /// Drops all materialized closures.  Must not run concurrently with
  /// readers still holding references from Get().
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  const Taxonomy* taxonomy_;
  mutable Mutex mu_;
  // key encodes (root, follow_equivalence)
  std::unordered_map<uint64_t, Closure> cache_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace mural
