#include "taxonomy/taxonomy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace mural {

std::string Taxonomy::IndexKey(std::string_view lemma, LangId lang) {
  std::string key(lemma);
  key.push_back('\0');
  key += std::to_string(lang);
  return key;
}

SynsetId Taxonomy::AddSynset(LangId lang, std::string lemma) {
  const SynsetId id = static_cast<SynsetId>(synsets_.size());
  lemma_index_[IndexKey(lemma, lang)].push_back(id);
  synsets_.push_back(Synset{id, lang, std::move(lemma)});
  children_.emplace_back();
  parents_.emplace_back();
  equivalents_.emplace_back();
  return id;
}

Status Taxonomy::AddIsA(SynsetId child, SynsetId parent) {
  if (!Valid(child) || !Valid(parent)) {
    return Status::InvalidArgument("IS-A edge references unknown synset");
  }
  if (child == parent) {
    return Status::InvalidArgument("IS-A self-loop rejected");
  }
  if (synsets_[child].lang != synsets_[parent].lang) {
    return Status::InvalidArgument(
        "IS-A edges must stay within one language; use AddEquivalence");
  }
  children_[parent].push_back(child);
  parents_[child].push_back(parent);
  ++num_isa_edges_;
  return Status::OK();
}

Status Taxonomy::AddEquivalence(SynsetId a, SynsetId b) {
  if (!Valid(a) || !Valid(b)) {
    return Status::InvalidArgument("equivalence references unknown synset");
  }
  if (a == b) {
    return Status::InvalidArgument("equivalence self-loop rejected");
  }
  equivalents_[a].push_back(b);
  equivalents_[b].push_back(a);
  ++num_equiv_edges_;
  return Status::OK();
}

std::vector<SynsetId> Taxonomy::Lookup(std::string_view lemma,
                                       LangId lang) const {
  auto it = lemma_index_.find(IndexKey(lemma, lang));
  if (it == lemma_index_.end()) return {};
  return it->second;
}

std::vector<SynsetId> Taxonomy::Lookup(const UniText& value) const {
  return Lookup(value.text(), value.lang());
}

Closure Taxonomy::TransitiveClosure(SynsetId root,
                                    bool follow_equivalence) const {
  return TransitiveClosureOfAll({root}, follow_equivalence);
}

Closure Taxonomy::TransitiveClosureOfAll(const std::vector<SynsetId>& roots,
                                         bool follow_equivalence) const {
  Closure closure;
  std::vector<SynsetId> stack;
  for (SynsetId root : roots) {
    if (!Valid(root)) continue;
    if (closure.insert(root).second) stack.push_back(root);
  }
  while (!stack.empty()) {
    const SynsetId id = stack.back();
    stack.pop_back();
    for (SynsetId child : children_[id]) {
      if (closure.insert(child).second) stack.push_back(child);
    }
    if (follow_equivalence) {
      for (SynsetId eq : equivalents_[id]) {
        if (closure.insert(eq).second) stack.push_back(eq);
      }
    }
  }
  return closure;
}

bool Taxonomy::SemMatch(const UniText& a, const UniText& b) const {
  const std::vector<SynsetId> lhs = Lookup(a);
  if (lhs.empty()) return false;
  const std::vector<SynsetId> rhs = Lookup(b);
  if (rhs.empty()) return false;
  const Closure closure = TransitiveClosureOfAll(rhs);
  for (SynsetId id : lhs) {
    if (closure.count(id) > 0) return true;
  }
  return false;
}

TaxonomyStats Taxonomy::ComputeStats() const {
  TaxonomyStats stats;
  stats.num_synsets = synsets_.size();
  stats.num_isa_edges = num_isa_edges_;
  stats.num_equiv_edges = num_equiv_edges_;

  uint64_t internal = 0, child_sum = 0;
  std::unordered_set<LangId> langs;
  for (const Synset& s : synsets_) langs.insert(s.lang);
  stats.num_languages = static_cast<uint32_t>(langs.size());

  // Height by DP over the DAG: depth[v] = 1 + max(depth of children).
  // Process in reverse topological order via iterative post-order from the
  // roots (nodes with no parents).  The IS-A relation is acyclic by
  // construction in our generators; cycles would make height undefined, so
  // we guard with a visited-state machine and treat back edges as absent.
  std::vector<uint32_t> depth(synsets_.size(), 0);
  std::vector<uint8_t> state(synsets_.size(), 0);  // 0=new 1=open 2=done
  for (SynsetId v = 0; v < synsets_.size(); ++v) {
    if (!children_[v].empty()) {
      ++internal;
      child_sum += children_[v].size();
    }
    if (state[v] != 0) continue;
    std::vector<std::pair<SynsetId, size_t>> stack{{v, 0}};
    state[v] = 1;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < children_[node].size()) {
        const SynsetId c = children_[node][next_child++];
        if (state[c] == 0) {
          state[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        uint32_t d = 0;
        for (SynsetId c : children_[node]) {
          if (state[c] == 2) d = std::max(d, depth[c] + 1);
        }
        depth[node] = d;
        state[node] = 2;
        stack.pop_back();
      }
    }
  }
  uint32_t height = 0;
  for (SynsetId v = 0; v < synsets_.size(); ++v) {
    if (parents_[v].empty()) height = std::max(height, depth[v]);
  }
  stats.height = height;
  stats.avg_fanout =
      internal == 0 ? 0.0
                    : static_cast<double>(child_sum) /
                          static_cast<double>(internal);
  return stats;
}

const Closure& ClosureCache::Get(SynsetId root, bool follow_equivalence) {
  static Counter* hits_counter =
      MetricsRegistry::Global().GetCounter("taxonomy.closure_cache.hits");
  static Counter* misses_counter =
      MetricsRegistry::Global().GetCounter("taxonomy.closure_cache.misses");
  const uint64_t key =
      (static_cast<uint64_t>(root) << 1) | (follow_equivalence ? 1u : 0u);
  {
    MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      hits_counter->Increment();
      return it->second;
    }
    ++misses_;
  }
  misses_counter->Increment();
  // Traverse outside the lock: closures can span thousands of synsets and
  // holding mu_ here would serialize every concurrent probe on one root.
  Closure closure = taxonomy_->TransitiveClosure(root, follow_equivalence);
  MutexLock lock(mu_);
  // emplace is a no-op if a racing thread published the same key first;
  // both computed the identical closure.
  return cache_.emplace(key, std::move(closure)).first->second;
}

void ClosureCache::Clear() {
  MutexLock lock(mu_);
  cache_.clear();
  hits_ = misses_ = 0;
}

uint64_t ClosureCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t ClosureCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

size_t ClosureCache::size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

}  // namespace mural
