// ReachabilityIndex: constant-time subsumption tests without closure
// materialization — the direction the paper's §4.3.1 sketches via the
// Hopi 2-hop cover and leaves to future work.
//
// Observation the index exploits: WordNet-style hierarchies are trees
// plus a very small number of extra (multiple-inheritance) edges.  We
// therefore label every synset with a pre/post-order interval over a
// spanning tree of its language's hierarchy: u is a tree-descendant of v
// iff  interval(v) contains interval(u)  — an O(1) test.  The few
// non-tree IS-A edges get 2-hop-style *hop entries*: child c with extra
// parent p contributes hop (p -> c), and a reachability query
// "is u under v?" succeeds if some hop (p -> c) has p under v (tree test)
// and u under c (recursive, bounded by the hop count).  Equivalence links
// across languages are handled by testing the query against each
// language's image of the root.
//
// Complexity: build O(V + E); space O(V + #extra-edges); query
// O((#hops + #equivalents) * cost(tree test)) — effectively O(1) for
// WordNet-shaped inputs.  Compare the materialized-closure path: O(|TC|)
// build per root plus hashing; the ablation bench contrasts the two.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "taxonomy/taxonomy.h"

namespace mural {

class ReachabilityIndex;

/// A prepared reachability query: the closure of one root represented as
/// a set of disjoint preorder intervals (root subtree + activated hop
/// subtrees + equivalence-image subtrees).  Membership tests are a
/// binary search — the access pattern of an Omega scan, where one query
/// concept is probed with many category values.
class PreparedReachability {
 public:
  /// True iff `node` is in the prepared root's transitive closure.
  bool Contains(SynsetId node) const;

  /// Number of covering intervals (compactness measure; contrast with
  /// |TC| hash-set entries for the materialized closure).
  size_t num_intervals() const { return pres_.size(); }

  /// Exact closure size (sum of covered preorder positions).
  size_t size() const { return covered_; }

 private:
  friend class ReachabilityIndex;
  const ReachabilityIndex* index_ = nullptr;
  // Disjoint, sorted covering intervals [pres_[i], posts_[i]].
  std::vector<uint32_t> pres_;
  std::vector<uint32_t> posts_;
  size_t covered_ = 0;
};

class ReachabilityIndex {
 public:
  /// Builds labels for `taxonomy` (not owned; must outlive the index and
  /// not change afterwards).
  static StatusOr<ReachabilityIndex> Build(const Taxonomy* taxonomy);

  /// True iff `node` is in TC(root): node == root, a tree descendant, a
  /// descendant through an extra IS-A edge, or — when follow_equivalence
  /// — any of the above for an equivalence image of a closure member.
  bool Reaches(SynsetId root, SynsetId node,
               bool follow_equivalence = true) const;

  /// Exact closure size |TC(root)| computed through the labels (used by
  /// the optimizer's Omega estimates without materializing the set).
  size_t ClosureSize(SynsetId root, bool follow_equivalence = true) const;

  /// Number of non-tree IS-A edges that required hop entries.
  size_t num_hops() const { return hops_.size(); }

  /// Prepares the closure of `root` for repeated membership probes.
  /// Cost: O((#hops + #equivalence-edges) * iterations); thereafter each
  /// Contains() is O(log #intervals).
  PreparedReachability Prepare(SynsetId root,
                               bool follow_equivalence = true) const;

 private:
  struct Interval {
    uint32_t pre = 0;   // preorder entry
    uint32_t post = 0;  // preorder exit (max pre in subtree)
  };
  struct Hop {
    SynsetId parent;  // extra-edge head (the hypernym)
    SynsetId child;   // extra-edge tail (the hyponym)
  };

  explicit ReachabilityIndex(const Taxonomy* taxonomy)
      : taxonomy_(taxonomy) {}

  bool TreeDescendant(SynsetId root, SynsetId node) const {
    const Interval& r = intervals_[root];
    const Interval& n = intervals_[node];
    return r.pre <= n.pre && n.post <= r.post;
  }

  bool ReachesWithinLanguage(SynsetId root, SynsetId node,
                             int hop_budget) const;

  /// Tree-subtree size from intervals (post - pre + 1 over the spanning
  /// tree); extra-edge contributions are added by walking hops.
  size_t SubtreeSize(SynsetId root) const;

  friend class PreparedReachability;

  const Taxonomy* taxonomy_;
  std::vector<Interval> intervals_;
  std::vector<uint32_t> subtree_size_;  // spanning-tree subtree sizes
  std::vector<Hop> hops_;
  // All equivalence edges, flattened (both directions present).
  std::vector<Hop> equiv_edges_;
};

}  // namespace mural
