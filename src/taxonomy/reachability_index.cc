#include "taxonomy/reachability_index.h"

#include <algorithm>

#include "common/logging.h"

namespace mural {

StatusOr<ReachabilityIndex> ReachabilityIndex::Build(
    const Taxonomy* taxonomy) {
  if (taxonomy == nullptr) {
    return Status::InvalidArgument("null taxonomy");
  }
  ReachabilityIndex index(taxonomy);
  const size_t n = taxonomy->size();
  index.intervals_.resize(n);
  index.subtree_size_.assign(n, 1);

  // Spanning tree: each node's first parent is its tree parent; every
  // further parent contributes a hop entry.
  std::vector<std::vector<SynsetId>> tree_children(n);
  std::vector<SynsetId> roots;
  for (SynsetId v = 0; v < n; ++v) {
    const auto& parents = taxonomy->ParentsOf(v);
    if (parents.empty()) {
      roots.push_back(v);
      continue;
    }
    tree_children[parents[0]].push_back(v);
    for (size_t p = 1; p < parents.size(); ++p) {
      index.hops_.push_back(Hop{parents[p], v});
    }
  }
  for (SynsetId v = 0; v < n; ++v) {
    for (SynsetId eq : taxonomy->EquivalentsOf(v)) {
      index.equiv_edges_.push_back(Hop{v, eq});
    }
  }

  // Iterative preorder numbering; post = max pre within the subtree, so a
  // subtree occupies the contiguous interval [pre, post].
  uint32_t counter = 0;
  std::vector<uint8_t> visited(n, 0);
  for (SynsetId root : roots) {
    // (node, child cursor)
    std::vector<std::pair<SynsetId, size_t>> stack{{root, 0}};
    if (visited[root]) continue;
    visited[root] = 1;
    index.intervals_[root].pre = counter++;
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      if (cursor < tree_children[node].size()) {
        const SynsetId child = tree_children[node][cursor++];
        if (!visited[child]) {
          visited[child] = 1;
          index.intervals_[child].pre = counter++;
          stack.emplace_back(child, 0);
        }
      } else {
        index.intervals_[node].post = counter - 1;
        index.subtree_size_[node] =
            counter - index.intervals_[node].pre;
        stack.pop_back();
      }
    }
  }
  for (SynsetId v = 0; v < n; ++v) {
    if (!visited[v]) {
      // Cycle-guard: nodes unreachable from any root (should not occur in
      // well-formed hierarchies) get singleton intervals.
      index.intervals_[v].pre = counter;
      index.intervals_[v].post = counter;
      ++counter;
    }
  }
  return index;
}

bool ReachabilityIndex::ReachesWithinLanguage(SynsetId root, SynsetId node,
                                              int hop_budget) const {
  (void)hop_budget;
  if (TreeDescendant(root, node)) return true;
  if (hops_.empty()) return false;
  // Fixpoint over hop entries: a hop (p -> c) activates c's subtree when
  // p lies in the root's subtree or in an already-activated subtree.
  // O(#hops^2) worst case; #hops is the handful of multiple-inheritance
  // edges of a WordNet-shaped hierarchy.
  std::vector<SynsetId> active;
  std::vector<uint8_t> in_active(hops_.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t h = 0; h < hops_.size(); ++h) {
      if (in_active[h]) continue;
      bool parent_reached = TreeDescendant(root, hops_[h].parent);
      for (size_t a = 0; !parent_reached && a < active.size(); ++a) {
        parent_reached = TreeDescendant(active[a], hops_[h].parent);
      }
      if (parent_reached) {
        in_active[h] = 1;
        active.push_back(hops_[h].child);
        changed = true;
      }
    }
  }
  for (SynsetId a : active) {
    if (TreeDescendant(a, node)) return true;
  }
  return false;
}

bool ReachabilityIndex::Reaches(SynsetId root, SynsetId node,
                                bool follow_equivalence) const {
  if (!taxonomy_->Valid(root) || !taxonomy_->Valid(node)) return false;
  const int hop_budget = static_cast<int>(hops_.size()) + 1;

  // Source set: the root plus (when crossing languages) its equivalence
  // images — for interlinked replicated WordNets every language's copy of
  // the root is one equivalence edge away.
  std::vector<SynsetId> sources{root};
  if (follow_equivalence) {
    for (SynsetId eq : taxonomy_->EquivalentsOf(root)) {
      sources.push_back(eq);
    }
  }
  for (SynsetId r : sources) {
    if (ReachesWithinLanguage(r, node, hop_budget)) return true;
  }
  if (!follow_equivalence) return false;

  // Member-image bridge: node is in the closure when some spanning-tree
  // ancestor b of node is the equivalence image of a closure member a
  // (e.g. Suyasarithai under Charitram = image of Autobiography under
  // History).  Walk node's ancestor chain and test each ancestor's images
  // against every source.
  SynsetId b = node;
  while (true) {
    for (SynsetId eq : taxonomy_->EquivalentsOf(b)) {
      for (SynsetId r : sources) {
        if (ReachesWithinLanguage(r, eq, hop_budget)) return true;
      }
    }
    const auto& parents = taxonomy_->ParentsOf(b);
    if (parents.empty()) break;
    b = parents[0];
  }
  return false;
}

size_t ReachabilityIndex::SubtreeSize(SynsetId root) const {
  return subtree_size_[root];
}

size_t ReachabilityIndex::ClosureSize(SynsetId root,
                                      bool follow_equivalence) const {
  if (!taxonomy_->Valid(root)) return 0;
  // Exact for pure trees; hop and image contributions are added without
  // overlap subtraction, so this is an upper-bound estimate on DAGs (the
  // optimizer consumer only needs the magnitude).
  size_t total = SubtreeSize(root);
  const int hop_budget = static_cast<int>(hops_.size()) + 1;
  for (const Hop& hop : hops_) {
    if (ReachesWithinLanguage(root, hop.parent, hop_budget) &&
        !TreeDescendant(root, hop.child)) {
      total += SubtreeSize(hop.child);
    }
  }
  if (follow_equivalence) {
    for (SynsetId eq : taxonomy_->EquivalentsOf(root)) {
      total += ClosureSize(eq, false);
    }
  }
  return total;
}

PreparedReachability ReachabilityIndex::Prepare(
    SynsetId root, bool follow_equivalence) const {
  PreparedReachability prepared;
  prepared.index_ = this;
  if (!taxonomy_->Valid(root)) return prepared;

  // Accumulate covering intervals to a fixpoint: the root's subtree seeds
  // the cover; a hop (p -> c) adds c's subtree once p is covered; an
  // equivalence edge (a -> b) adds b's subtree once a is covered.
  std::vector<Interval> cover;
  auto covered = [&cover](uint32_t pre) {
    for (const Interval& iv : cover) {
      if (iv.pre <= pre && pre <= iv.post) return true;
    }
    return false;
  };
  auto add = [&cover, &covered, this](SynsetId v) {
    if (covered(intervals_[v].pre)) return false;
    cover.push_back(intervals_[v]);
    return true;
  };
  add(root);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hop& hop : hops_) {
      if (covered(intervals_[hop.parent].pre)) changed |= add(hop.child);
    }
    if (follow_equivalence) {
      for (const Hop& edge : equiv_edges_) {
        if (covered(intervals_[edge.parent].pre)) {
          changed |= add(edge.child);
        }
      }
    }
  }

  // Normalize: drop intervals nested in others, sort, merge adjacency.
  std::sort(cover.begin(), cover.end(),
            [](const Interval& a, const Interval& b) {
              if (a.pre != b.pre) return a.pre < b.pre;
              return a.post > b.post;
            });
  for (const Interval& iv : cover) {
    if (!prepared.posts_.empty() && iv.post <= prepared.posts_.back()) {
      continue;  // nested in the previous interval
    }
    if (!prepared.posts_.empty() &&
        iv.pre <= prepared.posts_.back() + 1) {
      prepared.posts_.back() = iv.post;  // overlap/adjacent: extend
      continue;
    }
    prepared.pres_.push_back(iv.pre);
    prepared.posts_.push_back(iv.post);
  }
  for (size_t i = 0; i < prepared.pres_.size(); ++i) {
    prepared.covered_ += prepared.posts_[i] - prepared.pres_[i] + 1;
  }
  return prepared;
}

bool PreparedReachability::Contains(SynsetId node) const {
  if (index_ == nullptr || !index_->taxonomy_->Valid(node)) return false;
  const uint32_t pre = index_->intervals_[node].pre;
  // Last interval starting at or before `pre`.
  const auto it =
      std::upper_bound(pres_.begin(), pres_.end(), pre) - 1;
  if (it < pres_.begin()) return false;
  const size_t i = static_cast<size_t>(it - pres_.begin());
  return pre <= posts_[i];
}

}  // namespace mural
