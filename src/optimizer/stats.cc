#include "optimizer/stats.h"

#include <algorithm>
#include <unordered_map>

#include "catalog/tuple_codec.h"
#include "exec/expression.h"

namespace mural {

uint64_t ColumnStats::MfvMass() const {
  uint64_t total = 0;
  for (const auto& [v, c] : mfvs) total += c;
  return total;
}

uint64_t ColumnStats::MfvCount(const Value& v) const {
  for (const auto& [mv, c] : mfvs) {
    if (mv.Equals(v)) return c;
  }
  return 0;
}

const ColumnStats* TableStats::Column(const std::string& name) const {
  std::string key = name;
  for (char& c : key) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  auto it = columns.find(key);
  return it == columns.end() ? nullptr : &it->second;
}

namespace {

std::string LowerName(const std::string& name) {
  std::string key = name;
  for (char& c : key) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return key;
}

bool IsTextLike(TypeId t) {
  return t == TypeId::kText || t == TypeId::kUniText;
}

}  // namespace

Status StatsCatalog::Analyze(const TableInfo& table, ExecContext* ctx) {
  TableStats stats;
  stats.num_pages = table.heap->num_pages();

  const size_t ncols = table.schema.NumColumns();
  // Value frequency maps keyed by display form (equality-consistent for
  // same-typed column values).
  std::vector<std::unordered_map<std::string, std::pair<Value, uint64_t>>>
      freq(ncols);
  std::vector<uint64_t> non_null(ncols, 0);
  std::vector<double> len_sum(ncols, 0.0);
  std::vector<double> ph_len_sum(ncols, 0.0);
  std::vector<std::vector<Value>> samples(ncols);
  double row_len_sum = 0.0;

  Row row;
  for (auto it = table.heap->Begin(); it.Valid(); it.Next()) {
    MURAL_RETURN_IF_ERROR(
        TupleCodec::Deserialize(table.schema, it.record(), &row));
    ++stats.num_rows;
    row_len_sum += static_cast<double>(it.record().size());
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      ++non_null[c];
      if (v.type() == TypeId::kText) {
        len_sum[c] += static_cast<double>(v.text().size());
      } else if (v.type() == TypeId::kUniText) {
        len_sum[c] += static_cast<double>(v.unitext().text().size());
        if (v.unitext().has_phonemes()) {
          ph_len_sum[c] +=
              static_cast<double>(v.unitext().phonemes()->size());
        }
      }
      auto [fit, inserted] =
          freq[c].try_emplace(v.ToString(), std::make_pair(v, 0));
      ++fit->second.second;
      samples[c].push_back(v);
    }
  }

  for (size_t c = 0; c < ncols; ++c) {
    const Column& col = table.schema.column(c);
    ColumnStats cs;
    cs.non_null = non_null[c];
    cs.ndv = freq[c].size();
    cs.avg_len = non_null[c] ? len_sum[c] / non_null[c] : 0.0;
    cs.avg_phoneme_len = non_null[c] ? ph_len_sum[c] / non_null[c] : 0.0;

    // End-biased histogram: exact top-k frequencies.
    std::vector<std::pair<Value, uint64_t>> entries;
    entries.reserve(freq[c].size());
    for (auto& [key, vc] : freq[c]) entries.push_back(vc);
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first.Compare(b.first) < 0;  // deterministic ties
              });
    if (entries.size() > kNumMfvs) entries.resize(kNumMfvs);
    cs.mfvs = std::move(entries);
    if (IsTextLike(col.type)) {
      for (const auto& [v, count] : cs.mfvs) {
        StatusOr<PhonemeString> ph = PhonemesOf(v, ctx);
        cs.mfv_phonemes.push_back(ph.ok() ? *ph : PhonemeString());
      }
    }

    // Equi-depth bounds from the full value list.
    if (!samples[c].empty()) {
      std::sort(samples[c].begin(), samples[c].end(),
                [](const Value& a, const Value& b) {
                  return a.Compare(b) < 0;
                });
      const size_t n = samples[c].size();
      for (size_t b = 0; b <= kNumHistogramBounds; ++b) {
        const size_t idx =
            std::min(n - 1, b * (n - 1) / kNumHistogramBounds);
        cs.bounds.push_back(samples[c][idx]);
      }
    }
    stats.columns[LowerName(col.name)] = std::move(cs);
  }

  stats.avg_row_len =
      stats.num_rows ? row_len_sum / static_cast<double>(stats.num_rows)
                     : 0.0;
  auto snapshot = std::make_shared<const TableStats>(std::move(stats));
  {
    WriterMutexLock lock(mu_);
    tables_[LowerName(table.name)] = std::move(snapshot);
  }
  return Status::OK();
}

std::shared_ptr<const TableStats> StatsCatalog::Get(
    const std::string& table) const {
  ReaderMutexLock lock(mu_);
  auto it = tables_.find(LowerName(table));
  return it == tables_.end() ? nullptr : it->second;
}

void StatsCatalog::Drop(const std::string& table) {
  WriterMutexLock lock(mu_);
  tables_.erase(LowerName(table));
}

}  // namespace mural
