// The operator cost model (paper §3.3, Tables 2 & 3).
//
// Costs are split into CPU and disk-I/O components, in PostgreSQL-style
// abstract units (one sequential page read = 1.0).  The formulas are the
// concrete instantiations of Table 3's big-O rows:
//
//   Psi scan,  no index:   CPU n_l * k * L_ph          IO  P_l
//   Psi scan,  approx idx: CPU frac(k) * n_l * k * L   IO  frac(k) * P_AI
//   Psi join,  no index:   CPU n_l * n_r * k * L       IO  P_l + P_r
//   Psi join,  approx idx: CPU n_l * frac(k)*n_r*k*L   IO  P_l + n_l*frac*P_AI
//   Omega scan, no index:  CPU levels*n_T + n_l        IO  P_l + h_T * P_T
//   Omega scan, B+Tree:    CPU |TC|*(h_B + f_T) + n_l  IO  P_l + |TC| * h_B
//   Omega join:            scan cost with the closure amortized over
//                          unique RHS values + n_l * n_r membership probes
//
// frac(k) — the fraction of an approximate (metric) index scanned — is
// modelled as a linear function of the error threshold, following the
// paper's empirical observation (§3.3 last paragraph).
//
// All edit-distance computations use the diagonal-transition algorithm, so
// a single distance evaluation costs O(k * L) cells (paper §3.3).

#pragma once

#include <cstdint>
#include <string>

#include "common/string_util.h"

namespace mural {

/// Tunable cost constants (PostgreSQL-flavoured defaults).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 2.0;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  /// Cost of one DP cell of the diagonal-transition edit distance.
  double cpu_distance_cell_cost = 0.0002;
  double cpu_hash_probe_cost = 0.004;
  /// Cost of visiting one taxonomy node during closure expansion.
  double closure_node_cost = 0.004;
  /// Approximate-index scan fraction: frac(k) = min(1, base + slope * k).
  double mtree_frac_base = 0.05;
  double mtree_frac_slope = 0.30;
  /// Fixed cost of launching a morsel-parallel phase (gather, slots).
  double parallel_setup_cost = 10.0;
  /// Per-worker coordination cost of a parallel phase.
  double parallel_worker_cost = 2.0;
  /// Per-row CPU on the vectorized path: what remains of cpu_tuple_cost
  /// once the per-tuple virtual dispatch, span bookkeeping, and full-row
  /// materialization are amortized over a batch (late materialization
  /// deserializes matches only).
  double cpu_batch_row_cost = 0.0025;
};

/// A (cpu, io) cost pair.
struct Cost {
  double cpu = 0.0;
  double io = 0.0;

  double total() const { return cpu + io; }
  Cost operator+(const Cost& o) const { return {cpu + o.cpu, io + o.io}; }
  Cost& operator+=(const Cost& o) {
    cpu += o.cpu;
    io += o.io;
    return *this;
  }
  std::string ToString() const {
    return StringFormat("cost{cpu=%.1f io=%.1f total=%.1f}", cpu, io,
                        total());
  }
};

/// Inputs describing one operand relation (the subscripted symbols of
/// Table 2).
struct RelProfile {
  double rows = 0;        // n
  double pages = 0;       // P
  double avg_len = 0;     // L (bytes of the matched attribute)
  double index_pages = 0; // P_AI / P_I when an index participates
  double index_height = 2;
};

/// The cost model.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Fraction of an approximate (metric) index scanned at threshold k.
  double ApproxIndexFraction(int k) const;

  // ------------------------------------------------------------ scans
  Cost SeqScan(const RelProfile& rel) const;
  Cost BTreeProbe(const RelProfile& rel, double match_rows) const;

  /// Psi scan-type (Attr ~ Const), Table 3 rows 1-2.
  Cost PsiScanNoIndex(const RelProfile& rel, int k) const;
  Cost PsiScanMTree(const RelProfile& rel, int k) const;

  /// Vectorized Psi scan (the fused LexSelect leaf): same I/O and distance
  /// terms as PsiScanNoIndex — the kernel is shared between paths — but
  /// the per-tuple dispatch cost is paid once per batch, with a smaller
  /// per-row residual (cpu_batch_row_cost).
  Cost PsiScanBatched(const RelProfile& rel, int k, size_t batch_size) const;

  /// Omega scan-type: closure computed once, then n membership probes.
  Cost OmegaScanNoIndex(const RelProfile& rel, double closure_size,
                        double tax_nodes, double tax_pages,
                        double tax_height) const;
  Cost OmegaScanBTree(const RelProfile& rel, double closure_size,
                      double btree_height, double fanout) const;

  // ------------------------------------------------------------ joins
  /// Generic nested-loop join with materialized inner.
  Cost NestedLoopJoin(const RelProfile& outer, const RelProfile& inner,
                      double per_pair_cpu) const;
  Cost HashJoin(const RelProfile& outer, const RelProfile& inner) const;

  /// Psi join-type, Table 3 rows 5-8.
  Cost PsiJoinNoIndex(const RelProfile& left, const RelProfile& right,
                      int k) const;
  Cost PsiJoinMTree(const RelProfile& probe, const RelProfile& indexed,
                    int k) const;

  /// Omega join-type: closures for unique RHS values + membership probes.
  Cost OmegaJoin(const RelProfile& lhs, const RelProfile& rhs,
                 double rhs_unique, double closure_size, double tax_nodes,
                 double tax_pages, double tax_height, bool btree,
                 double btree_height, double fanout) const;

  // ------------------------------------------------- parallelism
  /// Cost of running a CPU-bound operator with `dop` morsel workers: the
  /// Table-3 CPU term divides by dop (morsels are embarrassingly
  /// parallel), the I/O term does not (input is drained serially), and
  /// setup/coordination overhead is added so small inputs stay serial.
  Cost Parallelize(const Cost& serial, int dop) const;

  // ------------------------------------------------------- other ops
  Cost Filter(double rows) const;
  Cost Project(double rows) const;
  Cost Sort(double rows) const;
  Cost Aggregate(double rows) const;
  Cost Materialize(double rows) const;

 private:
  /// CPU of one diagonal-transition distance evaluation.
  double DistanceEvalCost(int k, double len) const {
    // The band has (2k+1) diagonals over ~len columns; at least one cell.
    const double cells = std::max(1.0, (2.0 * k + 1.0) * len);
    return cells * params_.cpu_distance_cell_cost;
  }

  CostParams params_;
};

}  // namespace mural
