// Table/column statistics and ANALYZE.
//
// Column summaries are PostgreSQL-style *end-biased histograms* (Ioannidis
// [8,9]; paper §3.4.1): the ten most-frequent values are stored exactly
// with their frequencies, the remaining mass is assumed uniform over the
// remaining distinct values, plus equi-depth bounds for range predicates.
// UniText columns additionally record the phoneme strings of their MFVs —
// that is what the Psi selectivity estimator probes.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/exec_context.h"

namespace mural {

/// Number of most-frequent values kept per column (paper: ten).
constexpr size_t kNumMfvs = 10;

/// Number of equi-depth histogram bounds.
constexpr size_t kNumHistogramBounds = 20;

/// Per-column summary.
struct ColumnStats {
  uint64_t non_null = 0;
  uint64_t ndv = 0;       // distinct values
  double avg_len = 0.0;   // avg text length (strings) — the L of Table 2
  double avg_phoneme_len = 0.0;  // UniText only

  /// Most-frequent values with exact counts, descending by count.
  std::vector<std::pair<Value, uint64_t>> mfvs;
  /// Phoneme strings of the MFVs (UniText/Text columns only), parallel to
  /// `mfvs`.
  std::vector<PhonemeString> mfv_phonemes;
  /// Equi-depth bounds (including min and max) for range estimation.
  std::vector<Value> bounds;

  /// Total row count of MFVs.
  uint64_t MfvMass() const;
  /// Frequency of `v` if it is an MFV; 0 otherwise.
  uint64_t MfvCount(const Value& v) const;
};

/// Per-table summary (the n, L, P of Table 2).
struct TableStats {
  uint64_t num_rows = 0;
  uint32_t num_pages = 0;
  double avg_row_len = 0.0;
  std::map<std::string, ColumnStats> columns;  // by lower-cased name

  const ColumnStats* Column(const std::string& name) const;
};

/// Holds statistics for all analyzed tables.
///
/// Thread-safe: many sessions plan concurrently against one StatsCatalog
/// while ANALYZE may be rebuilding a table's entry.  Published TableStats
/// are immutable snapshots handed out by shared_ptr, so a planner keeps a
/// consistent view for the whole planning pass even if a concurrent
/// ANALYZE swaps the entry underneath it.
class StatsCatalog {
 public:
  /// Scans `table` and (re)builds its statistics.  Phoneme strings for
  /// text-like MFVs are computed through `ctx`'s transformer.  The scan
  /// and G2P work run outside the lock; the finished snapshot is swapped
  /// in atomically.
  Status Analyze(const TableInfo& table, ExecContext* ctx);

  /// Snapshot of a table's stats; nullptr if never analyzed.  The
  /// returned snapshot never mutates — a later ANALYZE publishes a new
  /// one instead.
  std::shared_ptr<const TableStats> Get(const std::string& table) const;

  void Drop(const std::string& table);

 private:
  mutable SharedMutex mu_;
  std::map<std::string, std::shared_ptr<const TableStats>> tables_
      GUARDED_BY(mu_);
};

}  // namespace mural
