// The cost-based physical planner.
//
// Turns a logical plan into a physical operator tree, choosing access
// paths (seq scan vs B-Tree vs M-Tree vs MDI) and join strategies (hash vs
// nested loop vs index-nested-loop Psi vs RHS-outer SemJoin) by the Table-3
// cost model and the §3.4 selectivity estimates.  Hints replicate the
// paper's methodology of forcing alternative plans by enabling/disabling
// optimizer options (§5.2.1).

#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "exec/join_ops.h"
#include "exec/mural_ops.h"
#include "exec/scan_ops.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/logical_plan.h"

namespace mural {

/// PostgreSQL-style enable_* switches.
struct PlannerHints {
  bool enable_indexscan = true;    // B-Tree / MDI access paths
  bool enable_mtree = true;        // metric index access paths
  bool enable_hashjoin = true;
  bool enable_materialize = true;  // wrap NLJ inners
  /// Force join children exactly as written (no commuting).
  bool force_join_order = false;
  /// Treat multilingual predicates as optimizer-opaque black boxes with
  /// default selectivity and no index support — how an engine sees
  /// outside-the-server UDFs.
  bool opaque_multilingual = false;
  /// Degree of parallelism for morsel-parallel Psi operators.
  /// -1 = inherit the session setting (ctx->degree_of_parallelism);
  ///  1 = force serial plans.  Parallel candidates are only generated
  /// when the session has a thread pool.
  int degree_of_parallelism = -1;
};

/// A planned query: the executable tree plus the optimizer's predictions.
struct PhysicalPlan {
  OpPtr root;
  double predicted_rows = 0;
  Cost predicted_cost;

  std::string Explain() const;
};

class Planner {
 public:
  Planner(Catalog* catalog, const StatsCatalog* stats, ExecContext* ctx,
          CostModel cost_model = CostModel(),
          CardinalityParams card_params = CardinalityParams())
      : catalog_(catalog),
        stats_(stats),
        ctx_(ctx),
        cost_model_(cost_model),
        estimator_(stats, ctx->taxonomy, card_params) {}

  /// Plans `root` under the hints.
  StatusOr<PhysicalPlan> Plan(const LogicalPtr& root,
                              PlannerHints hints = PlannerHints());

  const CostModel& cost_model() const { return cost_model_; }
  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  struct Planned {
    OpPtr op;
    double rows = 0;
    Cost cost;
    /// Set when the node is a bare table scan (enables index joins).
    const TableInfo* base_table = nullptr;
    /// Stats snapshot held for the planning pass (StatsCatalog::Get hands
    /// out immutable shared_ptr snapshots; a concurrent ANALYZE publishes
    /// a replacement without invalidating this one).
    std::shared_ptr<const TableStats> base_stats;
  };

  /// Dispatches to the per-kind planners and stamps the winning operator
  /// with its cardinality estimate (plan-vs-actual feedback).
  StatusOr<Planned> PlanNode(const LogicalNode& node,
                             const PlannerHints& hints);
  StatusOr<Planned> PlanNodeImpl(const LogicalNode& node,
                                 const PlannerHints& hints);
  StatusOr<Planned> PlanScan(const LogicalNode& node,
                             const PlannerHints& hints);
  StatusOr<Planned> PlanEquiJoin(const LogicalNode& node,
                                 const PlannerHints& hints);
  StatusOr<Planned> PlanPsiJoin(const LogicalNode& node,
                                const PlannerHints& hints);
  StatusOr<Planned> PlanOmegaJoin(const LogicalNode& node,
                                  const PlannerHints& hints);

  RelProfile ProfileOf(const Planned& planned, size_t key_col) const;

  /// The DOP parallel plan candidates are costed at: the hint override or
  /// the session setting, forced to 1 without a worker pool.
  int EffectiveDop(const PlannerHints& hints) const;

  Catalog* catalog_;
  const StatsCatalog* stats_;
  ExecContext* ctx_;
  CostModel cost_model_;
  CardinalityEstimator estimator_;
};

}  // namespace mural
