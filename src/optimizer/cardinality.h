// Selectivity / output-cardinality estimation (paper §3.4).
//
// Psi (§3.4.1): probe the end-biased histogram — the exact frequencies of
// the ten most-frequent values are matched against the query constant in
// phoneme space at the query threshold; that gives the first
// approximation, which is then inflated by a threshold-dependent factor to
// model fuzzy matches among non-frequent values.
//
// Omega (§3.4.2): selectivity from the taxonomy's structural parameters
// (f_T, h_T, n_T) — scan selectivity f^h / n_T — or, when the closure is
// materialized/cheaply computable, the exact |TC(c)| / n_T.

#pragma once

#include "exec/exec_context.h"
#include "exec/expression.h"
#include "optimizer/stats.h"
#include "taxonomy/taxonomy.h"

namespace mural {

/// Calibration constants for the heuristic parts of §3.4.
struct CardinalityParams {
  /// Per-threshold-unit inflation applied to the non-MFV mass in Psi
  /// estimates (the "fraction corresponding to the threshold factor").
  double psi_tail_fraction_per_k = 0.002;
  /// Floor selectivity (never estimate zero rows).
  double min_selectivity = 1e-6;
  /// Default selectivity for opaque predicates (outside-the-server UDFs).
  double opaque_selectivity = 1.0 / 3.0;
};

class CardinalityEstimator {
 public:
  CardinalityEstimator(const StatsCatalog* stats,
                       const Taxonomy* taxonomy = nullptr,
                       CardinalityParams params = CardinalityParams())
      : stats_(stats), taxonomy_(taxonomy), params_(params) {}

  // ------------------------------------------------------------- Psi

  /// Selectivity of `col Psi const` at threshold k (§3.4.1).
  double PsiScanSelectivity(const ColumnStats& col, const Value& constant,
                            int k, ExecContext* ctx) const;

  /// Selectivity of `l Psi r` joins: MFV-cross-probe base rate inflated by
  /// the threshold factor.
  double PsiJoinSelectivity(const ColumnStats& left,
                            const ColumnStats& right, int k) const;

  // ----------------------------------------------------------- Omega

  /// Expected closure size: exact when the constant resolves in the
  /// pinned taxonomy, else the f^h structural heuristic.
  double OmegaClosureSize(const Value* constant) const;

  /// Selectivity of `col Omega const` (§3.4.2): |TC(c)| / n_T projected
  /// onto the column's distinct values.
  double OmegaScanSelectivity(const ColumnStats& col,
                              const Value* constant) const;

  /// Selectivity of an Omega join.
  double OmegaJoinSelectivity(const ColumnStats& lhs,
                              const ColumnStats& rhs) const;

  // -------------------------------------------------------- standard

  /// Equality selectivity from the end-biased histogram.
  double EqSelectivity(const ColumnStats& col, const Value& constant) const;

  /// Range selectivity from equi-depth bounds (NULL bound = unbounded).
  double RangeSelectivity(const ColumnStats& col, const Value& lo,
                          const Value& hi) const;

  /// Equi-join selectivity: 1 / max(ndv_l, ndv_r).
  double EquiJoinSelectivity(const ColumnStats& left,
                             const ColumnStats& right) const;

  /// Walks a predicate over a single table's columns and estimates its
  /// combined selectivity (independence assumed across conjuncts).
  double PredicateSelectivity(const Expr& expr, const TableStats& table,
                              const Schema& schema, ExecContext* ctx) const;

  const CardinalityParams& params() const { return params_; }
  const StatsCatalog* stats() const { return stats_; }

 private:
  double Clamp(double sel) const;

  const StatsCatalog* stats_;
  const Taxonomy* taxonomy_;
  CardinalityParams params_;
};

}  // namespace mural
