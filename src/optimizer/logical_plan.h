// Logical plans: the optimizer's input, produced by the SQL binder or the
// Mural algebra builder.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/agg_ops.h"
#include "exec/basic_ops.h"
#include "exec/expression.h"

namespace mural {

enum class LogicalKind {
  kScan,       // base table (optionally with a pushed-down predicate)
  kFilter,
  kProject,
  kJoin,       // generic inner join with arbitrary predicate
  kEquiJoin,   // left.col = right.col
  kPsiJoin,    // left.col LexEQUAL right.col
  kOmegaJoin,  // left.col SemEQUAL right.col (left is the probe side)
  kAggregate,
  kSort,
  kLimit,
  kUnionAll,
};

const char* LogicalKindToString(LogicalKind kind);

struct LogicalNode;
using LogicalPtr = std::shared_ptr<LogicalNode>;

/// One logical operator.  Field use depends on `kind`; unused fields are
/// default-initialized.
struct LogicalNode {
  LogicalKind kind = LogicalKind::kScan;
  LogicalPtr left, right;  // right only for joins/union

  // kScan
  std::string table;

  // kFilter / kJoin (and optional pushed-down predicate on kScan)
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> output_names;

  // kEquiJoin / kPsiJoin / kOmegaJoin: column positions in each child's
  // output schema.
  size_t left_col = 0;
  size_t right_col = 0;
  int psi_threshold = -1;   // -1 = session threshold
  bool psi_tag_distance = false;

  // kAggregate
  std::vector<size_t> group_by;
  std::vector<AggSpec> aggs;

  // kSort / kLimit
  std::vector<SortKey> sort_keys;
  uint64_t limit = 0;

  /// One-line description for logical EXPLAIN.
  std::string ToString() const;
};

// Builder helpers.
LogicalPtr LScan(std::string table, ExprPtr predicate = nullptr);
LogicalPtr LFilter(LogicalPtr child, ExprPtr predicate);
LogicalPtr LProject(LogicalPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, ExprPtr predicate);
LogicalPtr LEquiJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                     size_t right_col);
LogicalPtr LPsiJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                    size_t right_col, int threshold = -1,
                    bool tag_distance = false);
LogicalPtr LOmegaJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                      size_t right_col);
LogicalPtr LAggregate(LogicalPtr child, std::vector<size_t> group_by,
                      std::vector<AggSpec> aggs);
LogicalPtr LSort(LogicalPtr child, std::vector<SortKey> keys);
LogicalPtr LLimit(LogicalPtr child, uint64_t limit);
LogicalPtr LUnionAll(LogicalPtr left, LogicalPtr right);

/// Renders the logical tree, indented.
std::string ExplainLogical(const LogicalNode& root);

/// Deep copy (rewrite rules mutate copies, never inputs).
LogicalPtr CloneLogical(const LogicalPtr& node);

}  // namespace mural
