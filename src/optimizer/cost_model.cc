#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mural {

double CostModel::ApproxIndexFraction(int k) const {
  return std::min(1.0, params_.mtree_frac_base +
                           params_.mtree_frac_slope * std::max(0, k));
}

Cost CostModel::SeqScan(const RelProfile& rel) const {
  return {rel.rows * params_.cpu_tuple_cost,
          rel.pages * params_.seq_page_cost};
}

Cost CostModel::BTreeProbe(const RelProfile& rel, double match_rows) const {
  return {match_rows * params_.cpu_tuple_cost,
          (rel.index_height + std::max(1.0, match_rows / 100.0)) *
              params_.random_page_cost};
}

Cost CostModel::PsiScanNoIndex(const RelProfile& rel, int k) const {
  Cost c = SeqScan(rel);
  c.cpu += rel.rows * DistanceEvalCost(k, rel.avg_len);
  return c;
}

Cost CostModel::PsiScanBatched(const RelProfile& rel, int k,
                               size_t batch_size) const {
  if (batch_size == 0) return PsiScanNoIndex(rel, k);
  Cost c;
  c.io = rel.pages * params_.seq_page_cost;
  const double batches =
      std::ceil(rel.rows / static_cast<double>(batch_size));
  c.cpu = rel.rows *
              (DistanceEvalCost(k, rel.avg_len) + params_.cpu_batch_row_cost) +
          batches * params_.cpu_tuple_cost;
  return c;
}

Cost CostModel::PsiScanMTree(const RelProfile& rel, int k) const {
  const double frac = ApproxIndexFraction(k);
  Cost c;
  // The metric index prunes to a fraction of its pages; every visited
  // entry pays a distance evaluation (routing objects included).
  c.io = frac * rel.index_pages * params_.random_page_cost;
  c.cpu = frac * rel.rows * DistanceEvalCost(k, rel.avg_len);
  // Matched tuples are fetched from the heap.
  c.io += frac * rel.rows * 0.01 * params_.random_page_cost;
  return c;
}

Cost CostModel::OmegaScanNoIndex(const RelProfile& rel, double closure_size,
                                 double tax_nodes, double tax_pages,
                                 double tax_height) const {
  Cost c = SeqScan(rel);
  // Closure by levelwise expansion over the taxonomy table: each of the
  // ~h_T levels scans the edge table once.
  const double levels = std::max(1.0, tax_height);
  c.io += levels * tax_pages * params_.seq_page_cost;
  c.cpu += levels * tax_nodes * params_.cpu_operator_cost;
  c.cpu += closure_size * params_.closure_node_cost;
  c.cpu += rel.rows * params_.cpu_hash_probe_cost;
  return c;
}

Cost CostModel::OmegaScanBTree(const RelProfile& rel, double closure_size,
                               double btree_height, double fanout) const {
  Cost c = SeqScan(rel);
  // Each closure member costs one B+Tree descent to find its children.
  c.io += closure_size * btree_height * params_.random_page_cost;
  c.cpu += closure_size * (btree_height + fanout) *
           params_.cpu_operator_cost;
  c.cpu += closure_size * params_.closure_node_cost;
  c.cpu += rel.rows * params_.cpu_hash_probe_cost;
  return c;
}

Cost CostModel::NestedLoopJoin(const RelProfile& outer,
                               const RelProfile& inner,
                               double per_pair_cpu) const {
  Cost c;
  c.io = (outer.pages + inner.pages) * params_.seq_page_cost;
  c.cpu = outer.rows * inner.rows *
              (params_.cpu_operator_cost + per_pair_cpu) +
          (outer.rows + inner.rows) * params_.cpu_tuple_cost;
  return c;
}

Cost CostModel::HashJoin(const RelProfile& outer,
                         const RelProfile& inner) const {
  Cost c;
  c.io = (outer.pages + inner.pages) * params_.seq_page_cost;
  c.cpu = inner.rows * (params_.cpu_tuple_cost + params_.cpu_hash_probe_cost) +
          outer.rows * (params_.cpu_tuple_cost + params_.cpu_hash_probe_cost);
  return c;
}

Cost CostModel::PsiJoinNoIndex(const RelProfile& left,
                               const RelProfile& right, int k) const {
  const double len = std::max(left.avg_len, right.avg_len);
  return NestedLoopJoin(left, right, DistanceEvalCost(k, len));
}

Cost CostModel::PsiJoinMTree(const RelProfile& probe,
                             const RelProfile& indexed, int k) const {
  const double frac = ApproxIndexFraction(k);
  Cost c;
  c.io = probe.pages * params_.seq_page_cost +
         probe.rows * frac * indexed.index_pages * params_.random_page_cost;
  c.cpu = probe.rows * frac * indexed.rows *
          DistanceEvalCost(k, indexed.avg_len);
  return c;
}

Cost CostModel::OmegaJoin(const RelProfile& lhs, const RelProfile& rhs,
                          double rhs_unique, double closure_size,
                          double tax_nodes, double tax_pages,
                          double tax_height, bool btree,
                          double btree_height, double fanout) const {
  Cost c;
  c.io = (lhs.pages + rhs.pages) * params_.seq_page_cost;
  // One closure per *unique* RHS value (§4.3 memoization / sort-unique).
  const double uniq = std::max(1.0, rhs_unique);
  if (btree) {
    c.io += uniq * closure_size * btree_height * params_.random_page_cost;
    c.cpu += uniq * closure_size * (btree_height + fanout) *
             params_.cpu_operator_cost;
  } else {
    const double levels = std::max(1.0, tax_height);
    c.io += levels * tax_pages * params_.seq_page_cost;
    c.cpu += uniq * levels * tax_nodes * params_.cpu_operator_cost;
  }
  c.cpu += uniq * closure_size * params_.closure_node_cost;
  // Membership probes: every (lhs, rhs) pair is one hash probe.
  c.cpu += lhs.rows * rhs.rows * params_.cpu_hash_probe_cost;
  return c;
}

Cost CostModel::Filter(double rows) const {
  return {rows * params_.cpu_operator_cost, 0.0};
}

Cost CostModel::Project(double rows) const {
  return {rows * params_.cpu_operator_cost, 0.0};
}

Cost CostModel::Sort(double rows) const {
  const double n = std::max(2.0, rows);
  return {n * std::log2(n) * params_.cpu_operator_cost, 0.0};
}

Cost CostModel::Aggregate(double rows) const {
  return {rows * (params_.cpu_operator_cost + params_.cpu_hash_probe_cost),
          0.0};
}

Cost CostModel::Materialize(double rows) const {
  return {rows * params_.cpu_tuple_cost, 0.0};
}

Cost CostModel::Parallelize(const Cost& serial, int dop) const {
  if (dop <= 1) return serial;
  const double d = static_cast<double>(dop);
  return {serial.cpu / d + params_.parallel_setup_cost +
              params_.parallel_worker_cost * d,
          serial.io};
}

}  // namespace mural
