#include "optimizer/logical_plan.h"

namespace mural {

const char* LogicalKindToString(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
      return "Scan";
    case LogicalKind::kFilter:
      return "Filter";
    case LogicalKind::kProject:
      return "Project";
    case LogicalKind::kJoin:
      return "Join";
    case LogicalKind::kEquiJoin:
      return "EquiJoin";
    case LogicalKind::kPsiJoin:
      return "PsiJoin";
    case LogicalKind::kOmegaJoin:
      return "OmegaJoin";
    case LogicalKind::kAggregate:
      return "Aggregate";
    case LogicalKind::kSort:
      return "Sort";
    case LogicalKind::kLimit:
      return "Limit";
    case LogicalKind::kUnionAll:
      return "UnionAll";
  }
  return "?";
}

std::string LogicalNode::ToString() const {
  std::string out = LogicalKindToString(kind);
  switch (kind) {
    case LogicalKind::kScan:
      out += "(" + table;
      if (predicate) out += ", " + predicate->ToString();
      out += ")";
      break;
    case LogicalKind::kFilter:
    case LogicalKind::kJoin:
      if (predicate) out += "(" + predicate->ToString() + ")";
      break;
    case LogicalKind::kEquiJoin:
    case LogicalKind::kPsiJoin:
    case LogicalKind::kOmegaJoin:
      out += "(#" + std::to_string(left_col) + ", #" +
             std::to_string(right_col) + ")";
      break;
    case LogicalKind::kLimit:
      out += "(" + std::to_string(limit) + ")";
      break;
    default:
      break;
  }
  return out;
}

namespace {

LogicalPtr MakeNode(LogicalKind kind) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = kind;
  return node;
}

void ExplainRec(const LogicalNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("-> ");
  out->append(node.ToString());
  out->push_back('\n');
  if (node.left) ExplainRec(*node.left, depth + 1, out);
  if (node.right) ExplainRec(*node.right, depth + 1, out);
}

}  // namespace

LogicalPtr LScan(std::string table, ExprPtr predicate) {
  auto node = MakeNode(LogicalKind::kScan);
  node->table = std::move(table);
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LFilter(LogicalPtr child, ExprPtr predicate) {
  auto node = MakeNode(LogicalKind::kFilter);
  node->left = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LProject(LogicalPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  auto node = MakeNode(LogicalKind::kProject);
  node->left = std::move(child);
  node->exprs = std::move(exprs);
  node->output_names = std::move(names);
  return node;
}

LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, ExprPtr predicate) {
  auto node = MakeNode(LogicalKind::kJoin);
  node->left = std::move(left);
  node->right = std::move(right);
  node->predicate = std::move(predicate);
  return node;
}

LogicalPtr LEquiJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                     size_t right_col) {
  auto node = MakeNode(LogicalKind::kEquiJoin);
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_col = left_col;
  node->right_col = right_col;
  return node;
}

LogicalPtr LPsiJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                    size_t right_col, int threshold, bool tag_distance) {
  auto node = MakeNode(LogicalKind::kPsiJoin);
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_col = left_col;
  node->right_col = right_col;
  node->psi_threshold = threshold;
  node->psi_tag_distance = tag_distance;
  return node;
}

LogicalPtr LOmegaJoin(LogicalPtr left, LogicalPtr right, size_t left_col,
                      size_t right_col) {
  auto node = MakeNode(LogicalKind::kOmegaJoin);
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_col = left_col;
  node->right_col = right_col;
  return node;
}

LogicalPtr LAggregate(LogicalPtr child, std::vector<size_t> group_by,
                      std::vector<AggSpec> aggs) {
  auto node = MakeNode(LogicalKind::kAggregate);
  node->left = std::move(child);
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  return node;
}

LogicalPtr LSort(LogicalPtr child, std::vector<SortKey> keys) {
  auto node = MakeNode(LogicalKind::kSort);
  node->left = std::move(child);
  node->sort_keys = std::move(keys);
  return node;
}

LogicalPtr LLimit(LogicalPtr child, uint64_t limit) {
  auto node = MakeNode(LogicalKind::kLimit);
  node->left = std::move(child);
  node->limit = limit;
  return node;
}

LogicalPtr LUnionAll(LogicalPtr left, LogicalPtr right) {
  auto node = MakeNode(LogicalKind::kUnionAll);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::string ExplainLogical(const LogicalNode& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

LogicalPtr CloneLogical(const LogicalPtr& node) {
  if (node == nullptr) return nullptr;
  auto copy = std::make_shared<LogicalNode>(*node);
  copy->left = CloneLogical(node->left);
  copy->right = CloneLogical(node->right);
  return copy;
}

}  // namespace mural
