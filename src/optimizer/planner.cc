#include "optimizer/planner.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/parallel_ops.h"

namespace mural {

std::string PhysicalPlan::Explain() const {
  std::string out = StringFormat("Predicted: rows=%.0f %s\n", predicted_rows,
                                 predicted_cost.ToString().c_str());
  out += ExplainTree(*root);
  return out;
}

namespace {

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(expr.get())) {
    if (logical->op() == LogicalOp::kAnd) {
      FlattenConjuncts(logical->left(), out);
      FlattenConjuncts(logical->right(), out);
      return;
    }
  }
  out->push_back(expr);
}

/// Matches `expr` as Psi(colref, literal) in either operand order (Psi
/// commutes, Table 1).  Returns the column index and the literal.
bool MatchPsiConstant(const Expr& expr, size_t* col, Value* constant,
                      int* threshold_override) {
  const auto* psi = dynamic_cast<const LexEqualExpr*>(&expr);
  if (psi == nullptr) return false;
  const auto* c = dynamic_cast<const ColumnRefExpr*>(psi->left().get());
  const auto* l = dynamic_cast<const LiteralExpr*>(psi->right().get());
  if (c == nullptr || l == nullptr) {
    c = dynamic_cast<const ColumnRefExpr*>(psi->right().get());
    l = dynamic_cast<const LiteralExpr*>(psi->left().get());
  }
  if (c == nullptr || l == nullptr) return false;
  *col = c->index();
  *constant = l->value();
  *threshold_override = psi->threshold_override();
  return true;
}

bool MatchEqConstant(const Expr& expr, size_t* col, Value* constant) {
  const auto* cmp = dynamic_cast<const ComparisonExpr*>(&expr);
  if (cmp == nullptr || cmp->op() != CompareOp::kEq) return false;
  const auto* c = dynamic_cast<const ColumnRefExpr*>(cmp->left().get());
  const auto* l = dynamic_cast<const LiteralExpr*>(cmp->right().get());
  if (c == nullptr || l == nullptr) {
    c = dynamic_cast<const ColumnRefExpr*>(cmp->right().get());
    l = dynamic_cast<const LiteralExpr*>(cmp->left().get());
  }
  if (c == nullptr || l == nullptr) return false;
  *col = c->index();
  *constant = l->value();
  return true;
}

bool ContainsPsi(const Expr& expr) {
  if (dynamic_cast<const LexEqualExpr*>(&expr) != nullptr) return true;
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&expr)) {
    if (ContainsPsi(*logical->left())) return true;
    if (logical->right() && ContainsPsi(*logical->right())) return true;
  }
  return false;
}

bool ContainsOmega(const Expr& expr) {
  if (dynamic_cast<const SemEqualExpr*>(&expr) != nullptr) return true;
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&expr)) {
    if (ContainsOmega(*logical->left())) return true;
    if (logical->right() && ContainsOmega(*logical->right())) return true;
  }
  return false;
}

}  // namespace

int Planner::EffectiveDop(const PlannerHints& hints) const {
  if (ctx_->thread_pool == nullptr) return 1;
  const int dop = hints.degree_of_parallelism >= 0
                      ? hints.degree_of_parallelism
                      : ctx_->degree_of_parallelism;
  return std::max(1, dop);
}

RelProfile Planner::ProfileOf(const Planned& planned, size_t key_col) const {
  RelProfile profile;
  profile.rows = planned.rows;
  if (planned.base_table != nullptr) {
    profile.pages = planned.base_table->heap->num_pages();
  } else {
    // Intermediate results are pipelined/materialized in memory; charge a
    // synthetic page count from the row estimate.
    profile.pages = std::max(1.0, planned.rows / 80.0);
  }
  profile.avg_len = 12.0;  // default phoneme-string length
  if (planned.base_stats != nullptr &&
      key_col < planned.op->output_schema().NumColumns()) {
    const ColumnStats* cs = planned.base_stats->Column(
        planned.op->output_schema().column(key_col).name);
    if (cs != nullptr) {
      profile.avg_len =
          cs->avg_phoneme_len > 0 ? cs->avg_phoneme_len : cs->avg_len;
    }
  }
  return profile;
}

StatusOr<PhysicalPlan> Planner::Plan(const LogicalPtr& root,
                                     PlannerHints hints) {
  if (root == nullptr) {
    return Status::InvalidArgument("null logical plan");
  }
  MURAL_ASSIGN_OR_RETURN(Planned planned, PlanNode(*root, hints));
  PhysicalPlan plan;
  plan.root = std::move(planned.op);
  plan.predicted_rows = planned.rows;
  plan.predicted_cost = planned.cost;
  return plan;
}

StatusOr<Planner::Planned> Planner::PlanNode(const LogicalNode& node,
                                             const PlannerHints& hints) {
  MURAL_ASSIGN_OR_RETURN(Planned planned, PlanNodeImpl(node, hints));
  if (planned.op != nullptr) {
    // Stamp the estimate on the operator so EXPLAIN ANALYZE can report
    // estimated-vs-actual rows and the per-node q-error.
    planned.op->set_estimated_rows(
        static_cast<int64_t>(planned.rows + 0.5));
  }
  return planned;
}

StatusOr<Planner::Planned> Planner::PlanNodeImpl(const LogicalNode& node,
                                                 const PlannerHints& hints) {
  switch (node.kind) {
    case LogicalKind::kScan:
      return PlanScan(node, hints);
    case LogicalKind::kEquiJoin:
      return PlanEquiJoin(node, hints);
    case LogicalKind::kPsiJoin:
      return PlanPsiJoin(node, hints);
    case LogicalKind::kOmegaJoin:
      return PlanOmegaJoin(node, hints);
    case LogicalKind::kFilter: {
      MURAL_ASSIGN_OR_RETURN(Planned child, PlanNode(*node.left, hints));
      Planned out;
      double sel = estimator_.params().opaque_selectivity;
      if (child.base_table != nullptr && child.base_stats != nullptr) {
        sel = estimator_.PredicateSelectivity(*node.predicate,
                                              *child.base_stats,
                                              child.base_table->schema, ctx_);
      }
      out.rows = std::max(1.0, child.rows * sel);
      out.cost = child.cost + cost_model_.Filter(child.rows);
      if (ContainsPsi(*node.predicate)) {
        // Each surviving row pays a distance evaluation.
        RelProfile rel;
        rel.rows = child.rows;
        rel.pages = 0;
        rel.avg_len = 12.0;
        Cost psi = cost_model_.PsiScanNoIndex(rel, ctx_->lexequal_threshold);
        out.cost.cpu += psi.cpu;
      }
      out.base_table = child.base_table;
      out.base_stats = child.base_stats;
      out.op = std::make_unique<FilterOp>(ctx_, std::move(child.op),
                                          node.predicate);
      return out;
    }
    case LogicalKind::kProject: {
      MURAL_ASSIGN_OR_RETURN(Planned child, PlanNode(*node.left, hints));
      Planned out;
      out.rows = child.rows;
      out.cost = child.cost + cost_model_.Project(child.rows);
      std::vector<Column> cols;
      for (size_t i = 0; i < node.exprs.size(); ++i) {
        // Column type: propagate when the expression is a bare reference.
        TypeId type = TypeId::kText;
        if (const auto* ref = dynamic_cast<const ColumnRefExpr*>(
                node.exprs[i].get())) {
          type = child.op->output_schema().column(ref->index()).type;
        }
        const std::string name = i < node.output_names.size()
                                     ? node.output_names[i]
                                     : node.exprs[i]->ToString();
        cols.emplace_back(name, type);
      }
      out.op = std::make_unique<ProjectOp>(ctx_, std::move(child.op),
                                           node.exprs, Schema(cols));
      return out;
    }
    case LogicalKind::kAggregate: {
      MURAL_ASSIGN_OR_RETURN(Planned child, PlanNode(*node.left, hints));
      Planned out;
      out.rows = node.group_by.empty()
                     ? 1.0
                     : std::max(1.0, child.rows / 10.0);
      out.cost = child.cost + cost_model_.Aggregate(child.rows);
      out.op = std::make_unique<AggregateOp>(ctx_, std::move(child.op),
                                             node.group_by, node.aggs);
      return out;
    }
    case LogicalKind::kSort: {
      MURAL_ASSIGN_OR_RETURN(Planned child, PlanNode(*node.left, hints));
      Planned out;
      out.rows = child.rows;
      out.cost = child.cost + cost_model_.Sort(child.rows);
      out.op = std::make_unique<SortOp>(ctx_, std::move(child.op),
                                        node.sort_keys);
      return out;
    }
    case LogicalKind::kLimit: {
      MURAL_ASSIGN_OR_RETURN(Planned child, PlanNode(*node.left, hints));
      Planned out;
      out.rows = std::min<double>(child.rows,
                                  static_cast<double>(node.limit));
      out.cost = child.cost;
      out.op = std::make_unique<LimitOp>(ctx_, std::move(child.op),
                                         node.limit);
      return out;
    }
    case LogicalKind::kUnionAll: {
      MURAL_ASSIGN_OR_RETURN(Planned l, PlanNode(*node.left, hints));
      MURAL_ASSIGN_OR_RETURN(Planned r, PlanNode(*node.right, hints));
      Planned out;
      out.rows = l.rows + r.rows;
      out.cost = l.cost + r.cost;
      out.op = std::make_unique<UnionAllOp>(ctx_, std::move(l.op),
                                            std::move(r.op));
      return out;
    }
    case LogicalKind::kJoin: {
      MURAL_ASSIGN_OR_RETURN(Planned l, PlanNode(*node.left, hints));
      MURAL_ASSIGN_OR_RETURN(Planned r, PlanNode(*node.right, hints));
      Planned out;
      const double sel = estimator_.params().opaque_selectivity;
      out.rows = std::max(1.0, l.rows * r.rows * sel);
      out.cost = l.cost + r.cost +
                 cost_model_.NestedLoopJoin(ProfileOf(l, 0), ProfileOf(r, 0),
                                            0.0);
      OpPtr inner = std::move(r.op);
      if (hints.enable_materialize) {
        inner = std::make_unique<MaterializeOp>(ctx_, std::move(inner));
      }
      out.op = std::make_unique<NestedLoopJoinOp>(
          ctx_, std::move(l.op), std::move(inner), node.predicate);
      return out;
    }
  }
  return Status::Internal("unknown logical node kind");
}

StatusOr<Planner::Planned> Planner::PlanScan(const LogicalNode& node,
                                             const PlannerHints& hints) {
  MURAL_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(node.table));
  const std::shared_ptr<const TableStats> tstats = stats_->Get(node.table);
  const double base_rows =
      tstats != nullptr ? static_cast<double>(tstats->num_rows)
                        : static_cast<double>(table->heap->num_records());

  RelProfile rel;
  rel.rows = base_rows;
  rel.pages = table->heap->num_pages();
  rel.avg_len = tstats != nullptr ? tstats->avg_row_len : 64.0;

  Planned seq;
  seq.base_table = table;
  seq.base_stats = tstats;
  seq.rows = base_rows;
  seq.cost = cost_model_.SeqScan(rel);
  if (node.predicate == nullptr) {
    seq.op = std::make_unique<SeqScanOp>(ctx_, table);
    return seq;
  }

  // Selectivity of the full predicate.
  double sel = estimator_.params().opaque_selectivity;
  if (tstats != nullptr && !hints.opaque_multilingual) {
    sel = estimator_.PredicateSelectivity(*node.predicate, *tstats,
                                          table->schema, ctx_);
  }
  const double out_rows = std::max(1.0, base_rows * sel);

  // --- candidate 1: seq scan + filter
  Planned best;
  best.base_table = table;
  best.base_stats = tstats;
  best.rows = out_rows;
  // Whole-predicate Psi(col, constant) match, shared by the tuple-path
  // costing here and the vectorized-leaf swap at the end of this function.
  size_t psi_col = 0;
  Value psi_const;
  int psi_k_override = -1;
  RelProfile psi_rel = rel;
  int psi_k = ctx_->lexequal_threshold;
  const bool whole_psi =
      !hints.opaque_multilingual &&
      MatchPsiConstant(*node.predicate, &psi_col, &psi_const,
                       &psi_k_override);
  // Tracks whether `best` is still the tuple-at-a-time filter scan when
  // all candidates have been compared (the vectorized swap's guard).
  bool best_is_filter_scan = true;
  {
    if (whole_psi) {
      const ColumnStats* cs =
          tstats != nullptr
              ? tstats->Column(table->schema.column(psi_col).name)
              : nullptr;
      psi_rel.avg_len = cs != nullptr && cs->avg_phoneme_len > 0
                            ? cs->avg_phoneme_len
                            : 12.0;
      psi_k = psi_k_override >= 0 ? psi_k_override
                                  : ctx_->lexequal_threshold;
      best.cost = cost_model_.PsiScanNoIndex(psi_rel, psi_k);
    } else if (!hints.opaque_multilingual && ContainsPsi(*node.predicate)) {
      best.cost = cost_model_.PsiScanNoIndex(rel, ctx_->lexequal_threshold);
    } else {
      best.cost = cost_model_.SeqScan(rel);
      best.cost.cpu += base_rows * cost_model_.params().cpu_operator_cost;
      if (hints.opaque_multilingual && ContainsPsi(*node.predicate)) {
        // The engine still executes the UDF per row; it simply cannot
        // model it.  Charge the generic operator cost only — this is
        // exactly the mis-costing that makes outside-the-server plans
        // poor (paper §5.3 discussion).
      }
    }
    best.op = std::make_unique<FilterOp>(
        ctx_, std::make_unique<SeqScanOp>(ctx_, table), node.predicate);
  }

  // --- candidate 1b: morsel-parallel Psi scan.  The Table-3 CPU term
  // divides by DOP; setup/worker overhead keeps small inputs serial.
  // Omega predicates are excluded: the closure cache is not thread-safe,
  // so workers would recompute closures per morsel.
  const int dop = EffectiveDop(hints);
  if (dop > 1 && !hints.opaque_multilingual &&
      ContainsPsi(*node.predicate) && !ContainsOmega(*node.predicate)) {
    const Cost par_cost = cost_model_.Parallelize(best.cost, dop);
    if (par_cost.total() < best.cost.total()) {
      best.cost = par_cost;
      best.op = std::make_unique<ParallelLexScanOp>(ctx_, table,
                                                    node.predicate, dop);
      best_is_filter_scan = false;
    }
  }

  // --- candidate 2: index scans over one indexable conjunct
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(node.predicate, &conjuncts);
  for (const ExprPtr& conjunct : conjuncts) {
    size_t col;
    Value constant;
    int k_override;
    if (!hints.opaque_multilingual && hints.enable_mtree &&
        MatchPsiConstant(*conjunct, &col, &constant, &k_override)) {
      const std::string& col_name = table->schema.column(col).name;
      for (IndexInfo* index : catalog_->FindIndexes(node.table, col_name)) {
        if (!index->on_phonemes) continue;
        if (index->kind != IndexKind::kMTree &&
            index->kind != IndexKind::kMdi) {
          continue;
        }
        StatusOr<PhonemeString> ph = PhonemesOf(constant, ctx_);
        if (!ph.ok()) continue;
        const int k = k_override >= 0 ? k_override
                                      : ctx_->lexequal_threshold;
        RelProfile irel = rel;
        irel.index_pages = index->index->NumPages();
        const ColumnStats* cs =
            tstats != nullptr ? tstats->Column(col_name) : nullptr;
        irel.avg_len = cs != nullptr && cs->avg_phoneme_len > 0
                           ? cs->avg_phoneme_len
                           : 12.0;
        Cost cost = cost_model_.PsiScanMTree(irel, k);
        cost.cpu += out_rows * cost_model_.params().cpu_tuple_cost;
        if (cost.total() < best.cost.total()) {
          IndexProbe probe;
          probe.kind = IndexProbe::Kind::kWithin;
          probe.key = Value::Text(*ph);
          probe.radius = k;
          // The M-Tree is exact on the phoneme metric, but the full
          // predicate may carry more conjuncts (language filters); MDI is
          // approximate and always needs the recheck.
          best.cost = cost;
          best.rows = out_rows;
          best.op = std::make_unique<IndexScanOp>(ctx_, table, index, probe,
                                                  node.predicate);
          best_is_filter_scan = false;
        }
      }
    }
    if (hints.enable_indexscan && MatchEqConstant(*conjunct, &col,
                                                  &constant)) {
      const std::string& col_name = table->schema.column(col).name;
      for (IndexInfo* index : catalog_->FindIndexes(node.table, col_name)) {
        if (index->kind != IndexKind::kBTree || index->on_phonemes) continue;
        const ColumnStats* cs =
            tstats != nullptr ? tstats->Column(col_name) : nullptr;
        const double eq_sel =
            cs != nullptr ? estimator_.EqSelectivity(*cs, constant)
                          : estimator_.params().opaque_selectivity;
        RelProfile irel = rel;
        irel.index_height = 2 + index->index->NumPages() / 500.0;
        Cost cost = cost_model_.BTreeProbe(irel, base_rows * eq_sel);
        if (cost.total() < best.cost.total()) {
          IndexProbe probe;
          probe.kind = IndexProbe::Kind::kEqual;
          probe.key = constant;
          best.cost = cost;
          best.rows = out_rows;
          best.op = std::make_unique<IndexScanOp>(ctx_, table, index, probe,
                                                  node.predicate);
          best_is_filter_scan = false;
        }
      }
    }
  }

  // --- candidate 1c: vectorized Psi scan (the fused LexSelect leaf).
  // Considered only when the tuple filter scan is still the winner: the
  // index-vs-scan and parallel-vs-serial races above stay on the paper's
  // per-tuple cost basis (Table 3), and batching then upgrades the serial
  // scan it costs with per-batch dispatch + per-row residual terms.
  if (best_is_filter_scan && whole_psi && ctx_->batch_size > 0) {
    const Cost batch_cost =
        cost_model_.PsiScanBatched(psi_rel, psi_k, ctx_->batch_size);
    if (batch_cost.total() < best.cost.total()) {
      best.cost = batch_cost;
      best.rows = out_rows;
      best.op = std::make_unique<LexSelectOp>(ctx_, table, psi_col,
                                              psi_const, psi_k_override);
    }
  }
  return best;
}

StatusOr<Planner::Planned> Planner::PlanEquiJoin(const LogicalNode& node,
                                                 const PlannerHints& hints) {
  MURAL_ASSIGN_OR_RETURN(Planned l, PlanNode(*node.left, hints));
  MURAL_ASSIGN_OR_RETURN(Planned r, PlanNode(*node.right, hints));

  double sel = 0.01;
  const ColumnStats* lcs = nullptr;
  const ColumnStats* rcs = nullptr;
  if (l.base_stats != nullptr) {
    lcs = l.base_stats->Column(
        l.op->output_schema().column(node.left_col).name);
  }
  if (r.base_stats != nullptr) {
    rcs = r.base_stats->Column(
        r.op->output_schema().column(node.right_col).name);
  }
  if (lcs != nullptr && rcs != nullptr) {
    sel = estimator_.EquiJoinSelectivity(*lcs, *rcs);
  }

  Planned out;
  out.rows = std::max(1.0, l.rows * r.rows * sel);
  const RelProfile lp = ProfileOf(l, node.left_col);
  const RelProfile rp = ProfileOf(r, node.right_col);
  const Cost hash_cost = cost_model_.HashJoin(lp, rp);
  const Cost nlj_cost = cost_model_.NestedLoopJoin(lp, rp, 0.0);
  if (hints.enable_hashjoin && hash_cost.total() <= nlj_cost.total()) {
    out.cost = l.cost + r.cost + hash_cost;
    out.op = std::make_unique<HashJoinOp>(ctx_, std::move(l.op),
                                          std::move(r.op), node.left_col,
                                          node.right_col);
  } else {
    out.cost = l.cost + r.cost + nlj_cost;
    ExprPtr pred = Eq(Col(node.left_col,
                          l.op->output_schema().column(node.left_col).name),
                      Col(l.op->output_schema().NumColumns() + node.right_col,
                          r.op->output_schema().column(node.right_col).name));
    OpPtr inner = std::move(r.op);
    if (hints.enable_materialize) {
      inner = std::make_unique<MaterializeOp>(ctx_, std::move(inner));
    }
    out.op = std::make_unique<NestedLoopJoinOp>(ctx_, std::move(l.op),
                                                std::move(inner), pred);
  }
  return out;
}

StatusOr<Planner::Planned> Planner::PlanPsiJoin(const LogicalNode& node,
                                                const PlannerHints& hints) {
  MURAL_ASSIGN_OR_RETURN(Planned l, PlanNode(*node.left, hints));
  MURAL_ASSIGN_OR_RETURN(Planned r, PlanNode(*node.right, hints));
  const int k = node.psi_threshold >= 0 ? node.psi_threshold
                                        : ctx_->lexequal_threshold;

  double sel = estimator_.params().opaque_selectivity;
  if (!hints.opaque_multilingual) {
    const ColumnStats* lcs =
        l.base_stats != nullptr
            ? l.base_stats->Column(
                  l.op->output_schema().column(node.left_col).name)
            : nullptr;
    const ColumnStats* rcs =
        r.base_stats != nullptr
            ? r.base_stats->Column(
                  r.op->output_schema().column(node.right_col).name)
            : nullptr;
    sel = (lcs != nullptr && rcs != nullptr)
              ? estimator_.PsiJoinSelectivity(*lcs, *rcs, k)
              : 0.001 * (k + 1);
  }

  Planned out;
  out.rows = std::max(1.0, l.rows * r.rows * sel);
  const RelProfile lp = ProfileOf(l, node.left_col);
  const RelProfile rp = ProfileOf(r, node.right_col);
  const Cost serial_nlj_cost = cost_model_.PsiJoinNoIndex(lp, rp, k);

  // Morsel-parallel build/probe: the quadratic CPU term divides by DOP.
  const int dop = EffectiveDop(hints);
  const Cost par_nlj_cost =
      hints.opaque_multilingual
          ? serial_nlj_cost
          : cost_model_.Parallelize(serial_nlj_cost, dop);
  const bool parallel_wins =
      dop > 1 && par_nlj_cost.total() < serial_nlj_cost.total();
  const Cost nlj_cost = parallel_wins ? par_nlj_cost : serial_nlj_cost;

  // Index-nested-loop via an M-Tree on the right side's base table.
  const IndexInfo* mtree = nullptr;
  if (!hints.opaque_multilingual && hints.enable_mtree &&
      r.base_table != nullptr) {
    const std::string& col_name =
        r.op->output_schema().column(node.right_col).name;
    for (IndexInfo* index :
         catalog_->FindIndexes(r.base_table->name, col_name)) {
      if (index->kind == IndexKind::kMTree && index->on_phonemes) {
        mtree = index;
        break;
      }
    }
  }
  if (mtree != nullptr) {
    RelProfile ip = rp;
    ip.index_pages = mtree->index->NumPages();
    const Cost idx_cost = cost_model_.PsiJoinMTree(lp, ip, k);
    if (idx_cost.total() < nlj_cost.total()) {
      out.cost = l.cost + r.cost + idx_cost;
      out.op = std::make_unique<LexIndexJoinOp>(ctx_, std::move(l.op),
                                                r.base_table, mtree,
                                                node.left_col,
                                                node.psi_threshold);
      return out;
    }
  }
  out.cost = l.cost + r.cost + nlj_cost;
  LexJoinOp::Options options;
  options.threshold = node.psi_threshold;
  options.tag_distance = node.psi_tag_distance;
  if (parallel_wins) {
    options.dop = dop;
    // Bare table scan on the build side: let the join's build workers
    // drain the heap directly through page-range morsels instead of
    // serializing behind the child operator.
    if (r.base_table != nullptr &&
        dynamic_cast<const SeqScanOp*>(r.op.get()) != nullptr) {
      options.inner_table = r.base_table;
    }
  }
  out.op = std::make_unique<LexJoinOp>(ctx_, std::move(l.op),
                                       std::move(r.op), node.left_col,
                                       node.right_col, options);
  return out;
}

StatusOr<Planner::Planned> Planner::PlanOmegaJoin(const LogicalNode& node,
                                                  const PlannerHints& hints) {
  MURAL_ASSIGN_OR_RETURN(Planned l, PlanNode(*node.left, hints));
  MURAL_ASSIGN_OR_RETURN(Planned r, PlanNode(*node.right, hints));

  double sel = estimator_.params().opaque_selectivity;
  double rhs_unique = std::max(1.0, r.rows / 10.0);
  if (!hints.opaque_multilingual) {
    const ColumnStats* lcs =
        l.base_stats != nullptr
            ? l.base_stats->Column(
                  l.op->output_schema().column(node.left_col).name)
            : nullptr;
    const ColumnStats* rcs =
        r.base_stats != nullptr
            ? r.base_stats->Column(
                  r.op->output_schema().column(node.right_col).name)
            : nullptr;
    if (lcs != nullptr && rcs != nullptr) {
      sel = estimator_.OmegaJoinSelectivity(*lcs, *rcs);
      rhs_unique = static_cast<double>(std::max<uint64_t>(1, rcs->ndv));
    }
  }

  Planned out;
  out.rows = std::max(1.0, l.rows * r.rows * sel);
  double tax_nodes = 1, tax_pages = 1, tax_height = 1;
  if (ctx_->taxonomy != nullptr) {
    const TaxonomyStats ts = ctx_->taxonomy->ComputeStats();
    tax_nodes = static_cast<double>(ts.num_synsets);
    tax_pages = std::max(1.0, tax_nodes / 150.0);
    tax_height = std::max<double>(1.0, ts.height);
  }
  const double closure = estimator_.OmegaClosureSize(nullptr);
  out.cost = l.cost + r.cost +
             cost_model_.OmegaJoin(ProfileOf(l, node.left_col),
                                   ProfileOf(r, node.right_col), rhs_unique,
                                   closure, tax_nodes, tax_pages, tax_height,
                                   /*btree=*/false, 2.0, 8.0);
  SemJoinOp::Options options;
  out.op = std::make_unique<SemJoinOp>(ctx_, std::move(l.op),
                                       std::move(r.op), node.left_col,
                                       node.right_col, options);
  return out;
}

}  // namespace mural
