#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "distance/edit_distance.h"

namespace mural {

double CardinalityEstimator::Clamp(double sel) const {
  return std::min(1.0, std::max(params_.min_selectivity, sel));
}

double CardinalityEstimator::PsiScanSelectivity(const ColumnStats& col,
                                                const Value& constant,
                                                int k,
                                                ExecContext* ctx) const {
  if (col.non_null == 0) return params_.min_selectivity;
  StatusOr<PhonemeString> q = PhonemesOf(constant, ctx);
  if (!q.ok()) return params_.opaque_selectivity;

  // First approximation: exact MFV frequencies whose phonemes match.
  uint64_t matched_mass = 0;
  for (size_t i = 0; i < col.mfvs.size(); ++i) {
    if (i < col.mfv_phonemes.size() &&
        WithinDistance(col.mfv_phonemes[i], *q, k)) {
      matched_mass += col.mfvs[i].second;
    }
  }
  double sel = static_cast<double>(matched_mass) /
               static_cast<double>(col.non_null);

  // Inflate for fuzzy matches among the non-frequent tail (§3.4.1).
  const double tail_mass = 1.0 - static_cast<double>(col.MfvMass()) /
                                     static_cast<double>(col.non_null);
  sel += tail_mass * params_.psi_tail_fraction_per_k *
         static_cast<double>(k + 1);
  return Clamp(sel);
}

double CardinalityEstimator::PsiJoinSelectivity(const ColumnStats& left,
                                                const ColumnStats& right,
                                                int k) const {
  // Base rate: cross-probe the two MFV phoneme sets, weighting by their
  // exact frequencies.
  double matched = 0.0, total = 0.0;
  for (size_t i = 0; i < left.mfvs.size(); ++i) {
    for (size_t j = 0; j < right.mfvs.size(); ++j) {
      const double w = static_cast<double>(left.mfvs[i].second) *
                       static_cast<double>(right.mfvs[j].second);
      total += w;
      if (i < left.mfv_phonemes.size() && j < right.mfv_phonemes.size() &&
          WithinDistance(left.mfv_phonemes[i], right.mfv_phonemes[j], k)) {
        matched += w;
      }
    }
  }
  double sel = total > 0 ? matched / total : 0.0;
  // The tail inflation covers non-frequent x non-frequent fuzzy matches.
  sel += params_.psi_tail_fraction_per_k * static_cast<double>(k + 1);
  return Clamp(sel);
}

double CardinalityEstimator::OmegaClosureSize(const Value* constant) const {
  if (taxonomy_ != nullptr && constant != nullptr &&
      constant->type() == TypeId::kUniText) {
    const std::vector<SynsetId> roots =
        taxonomy_->Lookup(constant->unitext());
    if (!roots.empty()) {
      // Exact: |TC(c)| (closures are cheap on the pinned hierarchy).
      return static_cast<double>(
          taxonomy_->TransitiveClosureOfAll(roots).size());
    }
  }
  if (taxonomy_ != nullptr) {
    // Structural heuristic: f^h of an average-depth subtree.  A node
    // halfway down a tree of height h roots a subtree of height ~h/2.
    const TaxonomyStats ts = taxonomy_->ComputeStats();
    const double f = std::max(1.01, ts.avg_fanout);
    const double h = std::max(1.0, ts.height / 2.0);
    return std::min(static_cast<double>(ts.num_synsets), std::pow(f, h));
  }
  return 1.0;
}

double CardinalityEstimator::OmegaScanSelectivity(
    const ColumnStats& col, const Value* constant) const {
  (void)col;  // per-value category frequencies are future work (§3.4.2)
  if (taxonomy_ == nullptr || taxonomy_->size() == 0) {
    return params_.opaque_selectivity;
  }
  const double closure = OmegaClosureSize(constant);
  const double n_t = static_cast<double>(taxonomy_->size());
  // Fraction of concepts subsumed; assume column values spread uniformly
  // over concepts (paper's |TC(c)| / n_T with n_T from Table 2).
  return Clamp(closure / n_t);
}

double CardinalityEstimator::OmegaJoinSelectivity(
    const ColumnStats& lhs, const ColumnStats& rhs) const {
  (void)lhs;
  (void)rhs;
  if (taxonomy_ == nullptr || taxonomy_->size() == 0) {
    return params_.opaque_selectivity;
  }
  // Sum over RHS values of |TC(c_i)| / (n_l * n_T) — with the average
  // closure standing in for each |TC(c_i)| (paper §3.4.2).
  const double closure = OmegaClosureSize(nullptr);
  return Clamp(closure / static_cast<double>(taxonomy_->size()));
}

double CardinalityEstimator::EqSelectivity(const ColumnStats& col,
                                           const Value& constant) const {
  if (col.non_null == 0) return params_.min_selectivity;
  const uint64_t mfv = col.MfvCount(constant);
  if (mfv > 0) {
    return Clamp(static_cast<double>(mfv) /
                 static_cast<double>(col.non_null));
  }
  const uint64_t tail_ndv =
      col.ndv > col.mfvs.size() ? col.ndv - col.mfvs.size() : 1;
  const double tail_mass = static_cast<double>(col.non_null - col.MfvMass());
  return Clamp(tail_mass / static_cast<double>(tail_ndv) /
               static_cast<double>(col.non_null));
}

double CardinalityEstimator::RangeSelectivity(const ColumnStats& col,
                                              const Value& lo,
                                              const Value& hi) const {
  if (col.bounds.size() < 2) return params_.opaque_selectivity;
  const size_t nb = col.bounds.size() - 1;  // number of buckets
  double covered = 0.0;
  for (size_t b = 0; b < nb; ++b) {
    const Value& blo = col.bounds[b];
    const Value& bhi = col.bounds[b + 1];
    const bool above_lo = lo.is_null() || bhi.Compare(lo) >= 0;
    const bool below_hi = hi.is_null() || blo.Compare(hi) <= 0;
    if (above_lo && below_hi) covered += 1.0;
  }
  return Clamp(covered / static_cast<double>(nb));
}

double CardinalityEstimator::EquiJoinSelectivity(
    const ColumnStats& left, const ColumnStats& right) const {
  const double ndv =
      static_cast<double>(std::max<uint64_t>(1, std::max(left.ndv,
                                                         right.ndv)));
  return Clamp(1.0 / ndv);
}

double CardinalityEstimator::PredicateSelectivity(const Expr& expr,
                                                  const TableStats& table,
                                                  const Schema& schema,
                                                  ExecContext* ctx) const {
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&expr)) {
    switch (logical->op()) {
      case LogicalOp::kAnd: {
        // Conjunction: independence assumption.
        const double l = PredicateSelectivity(*logical->left(), table,
                                              schema, ctx);
        const double r = PredicateSelectivity(*logical->right(), table,
                                              schema, ctx);
        return Clamp(l * r);
      }
      case LogicalOp::kOr: {
        const double l = PredicateSelectivity(*logical->left(), table,
                                              schema, ctx);
        const double r = PredicateSelectivity(*logical->right(), table,
                                              schema, ctx);
        return Clamp(l + r - l * r);
      }
      case LogicalOp::kNot:
        return Clamp(1.0 - PredicateSelectivity(*logical->left(), table,
                                                schema, ctx));
    }
  }
  if (const auto* cmp = dynamic_cast<const ComparisonExpr*>(&expr)) {
    const auto* col = dynamic_cast<const ColumnRefExpr*>(cmp->left().get());
    const auto* lit = dynamic_cast<const LiteralExpr*>(cmp->right().get());
    if (col != nullptr && lit != nullptr &&
        col->index() < schema.NumColumns()) {
      const ColumnStats* cs =
          table.Column(schema.column(col->index()).name);
      if (cs != nullptr) {
        switch (cmp->op()) {
          case CompareOp::kEq:
            return EqSelectivity(*cs, lit->value());
          case CompareOp::kNe:
            return Clamp(1.0 - EqSelectivity(*cs, lit->value()));
          case CompareOp::kLt:
          case CompareOp::kLe:
            return RangeSelectivity(*cs, Value::Null(), lit->value());
          case CompareOp::kGt:
          case CompareOp::kGe:
            return RangeSelectivity(*cs, lit->value(), Value::Null());
        }
      }
    }
    return params_.opaque_selectivity;
  }
  if (const auto* psi = dynamic_cast<const LexEqualExpr*>(&expr)) {
    const auto* col = dynamic_cast<const ColumnRefExpr*>(psi->left().get());
    const auto* lit = dynamic_cast<const LiteralExpr*>(psi->right().get());
    // Psi commutes: accept the constant on either side (Table 1).
    if (col == nullptr || lit == nullptr) {
      col = dynamic_cast<const ColumnRefExpr*>(psi->right().get());
      lit = dynamic_cast<const LiteralExpr*>(psi->left().get());
    }
    if (col != nullptr && lit != nullptr &&
        col->index() < schema.NumColumns()) {
      const ColumnStats* cs =
          table.Column(schema.column(col->index()).name);
      if (cs != nullptr) {
        return PsiScanSelectivity(*cs, lit->value(),
                                  psi->EffectiveThreshold(ctx), ctx);
      }
    }
    return params_.opaque_selectivity;
  }
  if (const auto* omega = dynamic_cast<const SemEqualExpr*>(&expr)) {
    const auto* col =
        dynamic_cast<const ColumnRefExpr*>(omega->left().get());
    const auto* lit =
        dynamic_cast<const LiteralExpr*>(omega->right().get());
    if (col != nullptr && lit != nullptr &&
        col->index() < schema.NumColumns()) {
      const ColumnStats* cs =
          table.Column(schema.column(col->index()).name);
      if (cs != nullptr) {
        const Value& v = lit->value();
        return OmegaScanSelectivity(*cs, &v);
      }
    }
    return params_.opaque_selectivity;
  }
  if (const auto* lang = dynamic_cast<const LangInExpr*>(&expr)) {
    // Assume languages are uniform over the registry's population.
    const size_t total =
        std::max<size_t>(1, LanguageRegistry::Default().All().size());
    return Clamp(static_cast<double>(lang->langs().size()) /
                 static_cast<double>(total));
  }
  return params_.opaque_selectivity;
}

}  // namespace mural
