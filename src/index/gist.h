// GiST: a Generalized Search Tree in the spirit of Hellerstein, Naughton &
// Pfeffer (VLDB'95), which PostgreSQL exposes and through which the paper
// implements its M-Tree metric index (§4.2.1).
//
// The framework manages a height-balanced tree of 8 KiB nodes; the key
// semantics (when can a subtree match, how keys union, where an entry
// prefers to live, how an overflowing node splits) are delegated to a
// GistOps strategy object.  Keys are opaque byte strings to the framework.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace mural {

/// One tree entry: an opaque key plus either a child pointer (internal
/// nodes) or a heap rid (leaves).
struct GistEntry {
  std::string key;
  PageId child = kInvalidPage;
  Rid rid;
};

/// Query predicate handed to GistOps::Consistent.  `key` is the query
/// object in the ops' own key encoding; `radius` parameterizes distance
/// queries (metric ops) and is ignored by ops that do not need it.
struct GistQuery {
  std::string key;
  int radius = 0;
};

/// Extension interface: the four classic GiST methods.
class GistOps {
 public:
  virtual ~GistOps() = default;

  /// May the subtree/leaf described by `entry.key` contain a match?
  /// False positives are allowed (cost), false negatives are not
  /// (correctness).
  virtual bool Consistent(const GistEntry& entry, const GistQuery& query,
                          bool is_leaf) const = 0;

  /// A key covering all of `entries` (the parent entry's key).
  virtual std::string Union(const std::vector<GistEntry>& entries) const = 0;

  /// Cost of routing `new_key` into the subtree summarized by
  /// `subtree_key`; insertion descends into the minimum-penalty child.
  virtual double Penalty(std::string_view subtree_key,
                         std::string_view new_key) const = 0;

  /// Partitions `entries` (which overflow one node) into two non-empty
  /// groups.  Implementations may reorder but not drop entries.
  virtual void PickSplit(std::vector<GistEntry> entries,
                         std::vector<GistEntry>* left,
                         std::vector<GistEntry>* right) const = 0;
};

/// Search-effort counters (the M-Tree pruning-efficiency ablation reads
/// these).
struct GistStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_entries_tested = 0;
  uint64_t internal_entries_tested = 0;
  uint64_t inserts = 0;
  uint64_t splits = 0;

  void Reset() { *this = GistStats(); }
};

/// The balanced tree manager.
class GistTree {
 public:
  /// Creates an empty tree; `ops` must outlive the tree.
  [[nodiscard]]
  static StatusOr<GistTree> Create(BufferPool* pool, const GistOps* ops);

  /// Inserts a (key, rid) pair.
  [[nodiscard]] Status Insert(std::string key, Rid rid);

  /// Calls `fn` for every leaf entry consistent with `query`; traversal
  /// prunes subtrees whose entries are not Consistent.
  [[nodiscard]] Status Search(const GistQuery& query,
                const std::function<void(const GistEntry&)>& fn) const;

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const { return num_pages_; }
  uint32_t height() const { return height_; }
  GistStats& stats() const { return stats_; }

 private:
  GistTree(BufferPool* pool, const GistOps* ops, PageId root)
      : pool_(pool), ops_(ops), root_(root) {}

  struct SplitResult {
    bool split = false;
    std::string left_union;
    std::string right_union;
    PageId right = kInvalidPage;
  };

  [[nodiscard]]
  Status InsertRec(PageId node, GistEntry entry, uint16_t target_level,
                   SplitResult* out, std::string* new_union);
  [[nodiscard]]
  Status SplitNode(WritePageGuard* guard, std::vector<GistEntry> entries,
                   SplitResult* out);

  BufferPool* pool_;
  const GistOps* ops_;
  PageId root_;
  uint64_t num_entries_ = 0;
  uint32_t num_pages_ = 1;
  uint32_t height_ = 1;
  mutable GistStats stats_;
};

}  // namespace mural
