// B+Tree: the engine's ordered access method, page-based over the buffer
// pool.  Used for equality/range probes, as the backing structure of the
// MDI baseline index, and on the taxonomy table's parent attribute for the
// SemEQUAL experiments (paper §5.4).
//
// Layout
//   - Every node is one slotted Page; header `level` is 0 for leaves.
//   - Slots are kept in key-sorted order (nodes are rewritten on insert,
//     which is cheap at 8 KiB and keeps lookups a pure binary search).
//   - Leaf entry:     [u32 klen][key][u32 rid.page][u16 rid.slot]
//   - Internal entry: [u32 klen][key][u32 child]; entry keys are
//     separators — entry i covers keys >= key_i and < key_{i+1}; the first
//     separator is the empty string (= -infinity).
//   - Leaves are chained via next_page for range scans.
//
// Keys are opaque byte strings compared with memcmp (see KeyCodec).
// Duplicate keys are fully supported.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "catalog/access_method.h"
#include "common/status.h"
#include "index/key_codec.h"
#include "storage/buffer_pool.h"

namespace mural {

/// Raw byte-key B+Tree.
class BTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  [[nodiscard]] static StatusOr<BTree> Create(BufferPool* pool);

  /// Inserts (key, rid); duplicates allowed.
  [[nodiscard]] Status Insert(std::string_view key, Rid rid);

  /// Invokes `fn` for every entry with lo <= key <= hi, in key order, until
  /// it returns false.  Empty `lo` means unbounded below; `unbounded_hi`
  /// ignores `hi`.
  [[nodiscard]]
  Status Scan(std::string_view lo, std::string_view hi, bool unbounded_hi,
              const std::function<bool(std::string_view key, Rid rid)>& fn)
      const;

  /// Bulk-loads from (key, rid) pairs, replacing the current contents.
  /// Entries need not be pre-sorted.  Builds the tree bottom-up.
  [[nodiscard]]
  Status BulkLoad(std::vector<std::pair<std::string, Rid>> entries);

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const { return num_pages_; }
  uint32_t height() const { return height_; }
  PageId root() const { return root_; }

 private:
  explicit BTree(BufferPool* pool, PageId root)
      : pool_(pool), root_(root) {}

  struct SplitResult {
    bool split = false;
    std::string separator;  // first key of the new right sibling
    PageId right = kInvalidPage;
  };

  [[nodiscard]] Status InsertRec(PageId node, std::string_view key, Rid rid,
                   SplitResult* out);

  BufferPool* pool_;
  PageId root_;
  uint64_t num_entries_ = 0;
  uint32_t num_pages_ = 1;
  uint32_t height_ = 1;
};

/// AccessMethod adapter: a B+Tree keyed by an order-preserving encoding of
/// a column value (or of the materialized phoneme string).
class BTreeIndex : public AccessMethod {
 public:
  [[nodiscard]]
  static StatusOr<std::unique_ptr<BTreeIndex>> Create(BufferPool* pool);

  IndexKind kind() const override { return IndexKind::kBTree; }

  [[nodiscard]] Status Insert(const Value& key, Rid rid) override;
  [[nodiscard]]
  Status SearchEqual(const Value& key, std::vector<Rid>* out) override;
  [[nodiscard]] Status SearchRange(const Value& lo, const Value& hi,
                     std::vector<Rid>* out) override;

  uint64_t NumEntries() const override { return tree_.num_entries(); }
  uint32_t NumPages() const override { return tree_.num_pages(); }

  BTree& tree() { return tree_; }

 private:
  explicit BTreeIndex(BTree tree) : tree_(std::move(tree)) {}
  BTree tree_;
};

}  // namespace mural
