#include "index/mtree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "distance/bounded_myers.h"

namespace mural {

std::string MTreeOps::MakeKey(uint32_t radius, std::string_view object) {
  std::string key;
  key.reserve(4 + object.size());
  char buf[4];
  std::memcpy(buf, &radius, 4);
  key.append(buf, 4);
  key.append(object.data(), object.size());
  return key;
}

std::pair<uint32_t, std::string_view> MTreeOps::ParseKey(
    std::string_view key) {
  MURAL_DCHECK(key.size() >= 4);
  uint32_t radius = 0;
  std::memcpy(&radius, key.data(), 4);
  return {radius, key.substr(4)};
}

int MTreeOps::Distance(std::string_view a, std::string_view b) const {
  ++distance_calls_;
  return Levenshtein(a, b);
}

int MTreeOps::BoundedDistance(std::string_view a, std::string_view b,
                              int k) const {
  ++distance_calls_;
  // Same contract as BoundedLevenshtein (exact if <= k, else k+1), via the
  // bit-parallel kernel the executor uses.
  return BoundedMyersLevenshtein(a, b, k);
}

bool MTreeOps::Consistent(const GistEntry& entry, const GistQuery& query,
                          bool is_leaf) const {
  const auto [radius, object] = ParseKey(entry.key);
  const int slack =
      is_leaf ? query.radius : query.radius + static_cast<int>(radius);
  return BoundedDistance(object, query.key, slack) <= slack;
}

std::string MTreeOps::Union(const std::vector<GistEntry>& entries) const {
  MURAL_CHECK(!entries.empty());
  // Routing object: the first member's object (cheap, stable).  Covering
  // radius: max over members of d(routing, member) + member_radius — a
  // conservative cover, exact enough for correct pruning.
  const auto [first_radius, routing] = ParseKey(entries[0].key);
  uint32_t cover = first_radius;
  for (size_t i = 1; i < entries.size(); ++i) {
    const auto [r, obj] = ParseKey(entries[i].key);
    const uint32_t need =
        static_cast<uint32_t>(Distance(routing, obj)) + r;
    cover = std::max(cover, need);
  }
  return MakeKey(cover, routing);
}

double MTreeOps::Penalty(std::string_view subtree_key,
                         std::string_view new_key) const {
  const auto [sub_radius, sub_obj] = ParseKey(subtree_key);
  const auto [new_radius, new_obj] = ParseKey(new_key);
  const int d = Distance(sub_obj, new_obj);
  const double increase =
      std::max(0.0, static_cast<double>(d) + new_radius -
                        static_cast<double>(sub_radius));
  // Prefer no-radius-growth subtrees; among those, the closest routing
  // object.  The 1e6 factor keeps the two criteria lexicographic.
  return increase * 1e6 + d;
}

void MTreeOps::PickSplit(std::vector<GistEntry> entries,
                         std::vector<GistEntry>* left,
                         std::vector<GistEntry>* right) const {
  left->clear();
  right->clear();
  const size_t n = entries.size();
  MURAL_CHECK(n >= 2) << "cannot split fewer than two entries";
  // Random promotion (the paper's chosen policy): two random distinct
  // seeds; generalized-hyperplane distribution assigns each entry to the
  // closer seed.
  const size_t s1 = rng_.Uniform(n);
  size_t s2 = rng_.Uniform(n - 1);
  if (s2 >= s1) ++s2;
  const auto [r1, o1] = ParseKey(entries[s1].key);
  const auto [r2, o2] = ParseKey(entries[s2].key);
  const std::string seed1(o1);
  const std::string seed2(o2);
  for (size_t i = 0; i < n; ++i) {
    const auto [r, obj] = ParseKey(entries[i].key);
    const int d1 = Distance(obj, seed1);
    const int d2 = Distance(obj, seed2);
    if (d1 < d2 || (d1 == d2 && left->size() <= right->size())) {
      left->push_back(std::move(entries[i]));
    } else {
      right->push_back(std::move(entries[i]));
    }
  }
  // Both sides must be non-empty for the tree to stay balanced.
  if (left->empty()) {
    left->push_back(std::move(right->back()));
    right->pop_back();
  } else if (right->empty()) {
    right->push_back(std::move(left->back()));
    left->pop_back();
  }
}

StatusOr<std::unique_ptr<MTreeIndex>> MTreeIndex::Create(BufferPool* pool,
                                                         uint64_t seed) {
  auto ops = std::make_unique<MTreeOps>(seed);
  MURAL_ASSIGN_OR_RETURN(GistTree tree, GistTree::Create(pool, ops.get()));
  return std::unique_ptr<MTreeIndex>(
      new MTreeIndex(std::move(ops), std::make_unique<GistTree>(std::move(tree))));
}

Status MTreeIndex::Insert(const Value& key, Rid rid) {
  if (key.type() != TypeId::kText) {
    return Status::InvalidArgument(
        "M-Tree keys must be TEXT phoneme strings");
  }
  return tree_->Insert(MTreeOps::MakeKey(0, key.text()), rid);
}

Status MTreeIndex::SearchEqual(const Value& key, std::vector<Rid>* out) {
  return SearchWithin(key, 0, out);
}

Status MTreeIndex::SearchWithin(const Value& key, int radius,
                                std::vector<Rid>* out) {
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("index.mtree.probes");
  probes->Increment();
  if (key.type() != TypeId::kText) {
    return Status::InvalidArgument(
        "M-Tree queries must be TEXT phoneme strings");
  }
  GistQuery query;
  query.key = key.text();
  query.radius = radius;
  return tree_->Search(query, [out](const GistEntry& e) {
    out->push_back(e.rid);
  });
}

}  // namespace mural
