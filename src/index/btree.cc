#include "index/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace mural {

namespace {

struct LeafEntry {
  std::string key;
  Rid rid;
};

struct InternalEntry {
  std::string key;  // separator; "" = -infinity for the first entry
  PageId child;
};

std::string EncodeLeaf(std::string_view key, Rid rid) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(key.size()));
  out.append(key.data(), key.size());
  PutU32(&out, rid.page);
  PutU16(&out, rid.slot);
  return out;
}

std::string EncodeInternal(std::string_view key, PageId child) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(key.size()));
  out.append(key.data(), key.size());
  PutU32(&out, child);
  return out;
}

Status DecodeLeaf(Slice record, LeafEntry* out) {
  Decoder dec(record.ToStringView());
  MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->key));
  MURAL_RETURN_IF_ERROR(dec.GetU32(&out->rid.page));
  MURAL_RETURN_IF_ERROR(dec.GetU16(&out->rid.slot));
  return Status::OK();
}

Status DecodeInternal(Slice record, InternalEntry* out) {
  Decoder dec(record.ToStringView());
  MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->key));
  MURAL_RETURN_IF_ERROR(dec.GetU32(&out->child));
  return Status::OK();
}

Status ReadLeafEntries(const Page* page, std::vector<LeafEntry>* out) {
  out->clear();
  out->reserve(page->NumSlots());
  for (SlotId s = 0; s < page->NumSlots(); ++s) {
    MURAL_ASSIGN_OR_RETURN(const Slice rec, page->Get(s));
    LeafEntry e;
    MURAL_RETURN_IF_ERROR(DecodeLeaf(rec, &e));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Status ReadInternalEntries(const Page* page, std::vector<InternalEntry>* out) {
  out->clear();
  out->reserve(page->NumSlots());
  for (SlotId s = 0; s < page->NumSlots(); ++s) {
    MURAL_ASSIGN_OR_RETURN(const Slice rec, page->Get(s));
    InternalEntry e;
    MURAL_RETURN_IF_ERROR(DecodeInternal(rec, &e));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Status WriteLeafEntries(Page* page, const std::vector<LeafEntry>& entries) {
  page->Clear();
  for (const LeafEntry& e : entries) {
    MURAL_RETURN_IF_ERROR(page->Insert(EncodeLeaf(e.key, e.rid)).status());
  }
  return Status::OK();
}

Status WriteInternalEntries(Page* page,
                            const std::vector<InternalEntry>& entries) {
  page->Clear();
  for (const InternalEntry& e : entries) {
    MURAL_RETURN_IF_ERROR(
        page->Insert(EncodeInternal(e.key, e.child)).status());
  }
  return Status::OK();
}

/// Index of the child covering `key` for inserts: last separator <= key.
size_t ChildIndexFor(const std::vector<InternalEntry>& entries,
                     std::string_view key) {
  // entries[0].key is "" (-inf): key >= "" always, so lo starts valid.
  size_t lo = 0;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].key <= key) {
      lo = i;
    } else {
      break;
    }
  }
  return lo;
}

/// Index of the child where a scan for keys >= `key` must start: last
/// separator strictly below `key`.  With duplicate keys a run equal to
/// `key` can span several children whose separators all equal `key`; the
/// <= rule would land past the first of them and silently skip matches.
size_t ChildIndexForScan(const std::vector<InternalEntry>& entries,
                         std::string_view key) {
  size_t lo = 0;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].key < key) {
      lo = i;
    } else {
      break;
    }
  }
  return lo;
}

constexpr size_t kMaxEntryBytes = kPageSize / 4;

}  // namespace

StatusOr<BTree> BTree::Create(BufferPool* pool) {
  MURAL_ASSIGN_OR_RETURN(WritePageGuard root, pool->NewPage());
  root->Init();
  root->set_level(0);
  root.MarkDirty();
  return BTree(pool, root.id());
}

Status BTree::Insert(std::string_view key, Rid rid) {
  if (key.size() > kMaxEntryBytes) {
    return Status::InvalidArgument("index key too large");
  }
  SplitResult split;
  MURAL_RETURN_IF_ERROR(InsertRec(root_, key, rid, &split));
  if (split.split) {
    // Grow a new root above the old one.
    MURAL_ASSIGN_OR_RETURN(ReadPageGuard old_root, pool_->Fetch(root_));
    const uint16_t old_level = old_root->level();
    old_root.Release();
    MURAL_ASSIGN_OR_RETURN(WritePageGuard new_root, pool_->NewPage());
    new_root->Init();
    new_root->set_level(static_cast<uint16_t>(old_level + 1));
    std::vector<InternalEntry> entries;
    entries.push_back({"", root_});
    entries.push_back({split.separator, split.right});
    MURAL_RETURN_IF_ERROR(WriteInternalEntries(new_root.get(), entries));
    new_root.MarkDirty();
    root_ = new_root.id();
    ++num_pages_;
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Status BTree::InsertRec(PageId node, std::string_view key, Rid rid,
                        SplitResult* out) {
  out->split = false;
  // Both outcomes of this function rewrite `node` (leaf insert, or the
  // post-recursion separator insert), so take the exclusive latch up
  // front rather than upgrading mid-flight.
  MURAL_ASSIGN_OR_RETURN(WritePageGuard guard, pool_->FetchForWrite(node));
  if (guard->level() == 0) {
    // Leaf: insert in sorted position; rewrite the node.
    std::vector<LeafEntry> entries;
    MURAL_RETURN_IF_ERROR(ReadLeafEntries(guard.get(), &entries));
    LeafEntry fresh{std::string(key), rid};
    auto pos = std::upper_bound(
        entries.begin(), entries.end(), fresh,
        [](const LeafEntry& a, const LeafEntry& b) { return a.key < b.key; });
    entries.insert(pos, std::move(fresh));

    // Measure fit: each entry costs its record plus one slot.
    size_t bytes = 0;
    for (const LeafEntry& e : entries) bytes += e.key.size() + 10 + 4;
    if (bytes <= kPageSize - 64) {
      MURAL_RETURN_IF_ERROR(WriteLeafEntries(guard.get(), entries));
      guard.MarkDirty();
      return Status::OK();
    }
    // Split in half.
    const size_t mid = entries.size() / 2;
    std::vector<LeafEntry> left(entries.begin(), entries.begin() + mid);
    std::vector<LeafEntry> right(entries.begin() + mid, entries.end());
    // lint: latch-exception(leaf split: the full leaf stays latched while the sibling is allocated, so readers never walk past a half-moved entry set)
    MURAL_ASSIGN_OR_RETURN(WritePageGuard sibling, pool_->NewPage());
    sibling->Init();
    sibling->set_level(0);
    sibling->set_next_page(guard->next_page());
    MURAL_RETURN_IF_ERROR(WriteLeafEntries(sibling.get(), right));
    sibling.MarkDirty();
    MURAL_RETURN_IF_ERROR(WriteLeafEntries(guard.get(), left));
    guard->set_next_page(sibling.id());
    guard.MarkDirty();
    ++num_pages_;
    out->split = true;
    out->separator = right.front().key;
    out->right = sibling.id();
    return Status::OK();
  }

  // Internal node: descend.
  std::vector<InternalEntry> entries;
  MURAL_RETURN_IF_ERROR(ReadInternalEntries(guard.get(), &entries));
  MURAL_CHECK(!entries.empty());
  const size_t child_idx = ChildIndexFor(entries, key);
  const PageId child = entries[child_idx].child;
  const uint16_t level = guard->level();
  guard.Release();  // avoid holding pins across the recursive descent

  SplitResult child_split;
  MURAL_RETURN_IF_ERROR(InsertRec(child, key, rid, &child_split));
  if (!child_split.split) return Status::OK();

  // Re-fetch and add the new separator.
  MURAL_ASSIGN_OR_RETURN(guard, pool_->FetchForWrite(node));
  MURAL_CHECK(guard->level() == level);
  MURAL_RETURN_IF_ERROR(ReadInternalEntries(guard.get(), &entries));
  InternalEntry fresh{child_split.separator, child_split.right};
  auto pos = std::upper_bound(entries.begin(), entries.end(), fresh,
                              [](const InternalEntry& a,
                                 const InternalEntry& b) {
                                return a.key < b.key;
                              });
  entries.insert(pos, std::move(fresh));
  size_t bytes = 0;
  for (const InternalEntry& e : entries) bytes += e.key.size() + 8 + 4;
  if (bytes <= kPageSize - 64) {
    MURAL_RETURN_IF_ERROR(WriteInternalEntries(guard.get(), entries));
    guard.MarkDirty();
    return Status::OK();
  }
  // Split the internal node: the middle separator moves up.
  const size_t mid = entries.size() / 2;
  std::vector<InternalEntry> left(entries.begin(), entries.begin() + mid);
  std::vector<InternalEntry> right(entries.begin() + mid, entries.end());
  out->split = true;
  out->separator = right.front().key;
  right.front().key = "";  // becomes the -infinity entry of the new node
  MURAL_ASSIGN_OR_RETURN(WritePageGuard sibling, pool_->NewPage());
  sibling->Init();
  sibling->set_level(guard->level());
  MURAL_RETURN_IF_ERROR(WriteInternalEntries(sibling.get(), right));
  sibling.MarkDirty();
  MURAL_RETURN_IF_ERROR(WriteInternalEntries(guard.get(), left));
  guard.MarkDirty();
  ++num_pages_;
  out->right = sibling.id();
  return Status::OK();
}

Status BTree::Scan(
    std::string_view lo, std::string_view hi, bool unbounded_hi,
    const std::function<bool(std::string_view key, Rid rid)>& fn) const {
  // Descend to the leaf that may contain `lo`.
  PageId node = root_;
  while (true) {
    MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard, pool_->Fetch(node));
    if (guard->level() == 0) break;
    std::vector<InternalEntry> entries;
    MURAL_RETURN_IF_ERROR(ReadInternalEntries(guard.get(), &entries));
    MURAL_CHECK(!entries.empty());
    node = entries[ChildIndexForScan(entries, lo)].child;
  }
  // Walk the leaf chain.
  while (node != kInvalidPage) {
    MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard, pool_->Fetch(node));
    std::vector<LeafEntry> entries;
    MURAL_RETURN_IF_ERROR(ReadLeafEntries(guard.get(), &entries));
    for (const LeafEntry& e : entries) {
      if (std::string_view(e.key) < lo) continue;
      if (!unbounded_hi && std::string_view(e.key) > hi) return Status::OK();
      if (!fn(e.key, e.rid)) return Status::OK();
    }
    node = guard->next_page();
  }
  return Status::OK();
}

Status BTree::BulkLoad(std::vector<std::pair<std::string, Rid>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Build the leaf level left-to-right at ~90% fill.
  const size_t kFillLimit = (kPageSize * 9) / 10;
  struct Built {
    PageId page;
    std::string first_key;
  };
  std::vector<Built> level_nodes;

  MURAL_ASSIGN_OR_RETURN(WritePageGuard leaf, pool_->NewPage());
  leaf->Init();
  leaf->set_level(0);
  num_pages_ = 1;
  num_entries_ = 0;
  height_ = 1;
  size_t used = 0;
  std::string first_key;
  bool first_in_leaf = true;
  for (const auto& [key, rid] : entries) {
    if (key.size() > kMaxEntryBytes) {
      return Status::InvalidArgument("index key too large");
    }
    const std::string rec = EncodeLeaf(key, rid);
    if (!first_in_leaf && used + rec.size() + 4 > kFillLimit) {
      level_nodes.push_back({leaf.id(), first_key});
      // lint: latch-exception(bulk load: the filled leaf stays latched while its successor is allocated so next_page links atomically)
      MURAL_ASSIGN_OR_RETURN(WritePageGuard next, pool_->NewPage());
      next->Init();
      next->set_level(0);
      leaf->set_next_page(next.id());
      leaf.MarkDirty();
      leaf = std::move(next);
      ++num_pages_;
      used = 0;
      first_in_leaf = true;
    }
    if (first_in_leaf) {
      first_key = key;
      first_in_leaf = false;
    }
    MURAL_RETURN_IF_ERROR(leaf->Insert(rec).status());
    used += rec.size() + 4;
    ++num_entries_;
  }
  leaf.MarkDirty();
  level_nodes.push_back({leaf.id(), first_key});
  leaf.Release();

  // Build internal levels until a single root remains.
  uint16_t level = 1;
  while (level_nodes.size() > 1) {
    std::vector<Built> next_level;
    size_t i = 0;
    while (i < level_nodes.size()) {
      MURAL_ASSIGN_OR_RETURN(WritePageGuard node, pool_->NewPage());
      node->Init();
      node->set_level(level);
      ++num_pages_;
      size_t node_used = 0;
      std::string node_first;
      bool first = true;
      while (i < level_nodes.size()) {
        const std::string sep = first ? "" : level_nodes[i].first_key;
        const std::string rec = EncodeInternal(sep, level_nodes[i].page);
        if (!first && node_used + rec.size() + 4 > kFillLimit) break;
        MURAL_RETURN_IF_ERROR(node->Insert(rec).status());
        node_used += rec.size() + 4;
        if (first) node_first = level_nodes[i].first_key;
        first = false;
        ++i;
      }
      node.MarkDirty();
      next_level.push_back({node.id(), node_first});
    }
    level_nodes = std::move(next_level);
    ++level;
    ++height_;
  }
  root_ = level_nodes.front().page;
  return Status::OK();
}

StatusOr<std::unique_ptr<BTreeIndex>> BTreeIndex::Create(BufferPool* pool) {
  MURAL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool));
  return std::unique_ptr<BTreeIndex>(new BTreeIndex(std::move(tree)));
}

Status BTreeIndex::Insert(const Value& key, Rid rid) {
  MURAL_ASSIGN_OR_RETURN(const std::string k, KeyCodec::Encode(key));
  return tree_.Insert(k, rid);
}

Status BTreeIndex::SearchEqual(const Value& key, std::vector<Rid>* out) {
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("index.btree.probes");
  probes->Increment();
  MURAL_ASSIGN_OR_RETURN(const std::string k, KeyCodec::Encode(key));
  return tree_.Scan(k, k, /*unbounded_hi=*/false,
                    [out](std::string_view, Rid rid) {
                      out->push_back(rid);
                      return true;
                    });
}

Status BTreeIndex::SearchRange(const Value& lo, const Value& hi,
                               std::vector<Rid>* out) {
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("index.btree.probes");
  probes->Increment();
  std::string klo;
  if (!lo.is_null()) {
    MURAL_ASSIGN_OR_RETURN(klo, KeyCodec::Encode(lo));
  }
  std::string khi;
  const bool unbounded_hi = hi.is_null();
  if (!unbounded_hi) {
    MURAL_ASSIGN_OR_RETURN(khi, KeyCodec::Encode(hi));
  }
  return tree_.Scan(klo, khi, unbounded_hi,
                    [out](std::string_view, Rid rid) {
                      out->push_back(rid);
                      return true;
                    });
}

}  // namespace mural
