// MDI: the Metric-Distance-Index used by the paper's outside-the-server
// baseline (§5.3, technical report [15]).
//
// MDI is implementable with nothing but a standard B-tree: every indexed
// string stores a small vector of *reference distances* — its edit
// distances to a few fixed pivot objects (plus its length, which is the
// distance to the empty string).  By the triangle inequality a match of
// query q at threshold k must satisfy |d(x,p) - d(q,p)| <= k for every
// pivot p, so a B-tree range scan on the first reference distance plus
// in-key filtering on the rest yields a candidate set that the
// outside-the-server UDF then verifies exactly.
//
// Pivots are chosen from a buffered sample of the first insertions (a
// far-apart pair), after which the index streams normally.  SearchWithin
// returns candidates — complete, but approximate: callers must re-verify,
// exactly as the paper's PL/SQL scripts do.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/access_method.h"
#include "distance/edit_distance.h"
#include "index/btree.h"

namespace mural {

class MdiIndex : public AccessMethod {
 public:
  [[nodiscard]]
  static StatusOr<std::unique_ptr<MdiIndex>> Create(BufferPool* pool);

  IndexKind kind() const override { return IndexKind::kMdi; }

  [[nodiscard]] Status Insert(const Value& key, Rid rid) override;

  /// Equality probes degrade to a candidate scan too (distance collision).
  [[nodiscard]]
  Status SearchEqual(const Value& key, std::vector<Rid>* out) override;

  /// Candidate rids for "within edit distance `radius` of key": complete
  /// (no false negatives) but approximate (false positives possible).
  [[nodiscard]] Status SearchWithin(const Value& key, int radius,
                      std::vector<Rid>* out) override;

  uint64_t NumEntries() const override {
    return tree_.num_entries() + pending_.size();
  }
  uint32_t NumPages() const override { return tree_.num_pages(); }

  const std::vector<std::string>& pivots() const { return pivots_; }

 private:
  explicit MdiIndex(BTree tree) : tree_(std::move(tree)) {}

  /// [d(p0)] [d(p1)] [len] as single clamped bytes, memcmp-ordered.
  std::string EncodeKey(const std::string& phonemes) const;

  /// Chooses pivots from the pending sample and flushes it into the tree.
  [[nodiscard]] Status FreezePivots();

  static constexpr size_t kSampleSize = 64;
  static constexpr size_t kNumPivots = 5;

  BTree tree_;
  std::vector<std::string> pivots_;                 // fixed after freeze
  std::vector<std::pair<std::string, Rid>> pending_;  // pre-freeze buffer
};

}  // namespace mural
