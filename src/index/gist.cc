#include "index/gist.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace mural {

namespace {

std::string EncodeEntry(const GistEntry& e) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(e.key.size()));
  out += e.key;
  PutU32(&out, e.child);
  PutU32(&out, e.rid.page);
  PutU16(&out, e.rid.slot);
  return out;
}

Status DecodeEntry(Slice record, GistEntry* out) {
  Decoder dec(record.ToStringView());
  MURAL_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->key));
  MURAL_RETURN_IF_ERROR(dec.GetU32(&out->child));
  MURAL_RETURN_IF_ERROR(dec.GetU32(&out->rid.page));
  MURAL_RETURN_IF_ERROR(dec.GetU16(&out->rid.slot));
  return Status::OK();
}

Status ReadEntries(const Page* page, std::vector<GistEntry>* out) {
  out->clear();
  out->reserve(page->NumSlots());
  for (SlotId s = 0; s < page->NumSlots(); ++s) {
    MURAL_ASSIGN_OR_RETURN(const Slice rec, page->Get(s));
    GistEntry e;
    MURAL_RETURN_IF_ERROR(DecodeEntry(rec, &e));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Status WriteEntries(Page* page, const std::vector<GistEntry>& entries) {
  page->Clear();
  for (const GistEntry& e : entries) {
    MURAL_RETURN_IF_ERROR(page->Insert(EncodeEntry(e)).status());
  }
  return Status::OK();
}

size_t EntriesBytes(const std::vector<GistEntry>& entries) {
  size_t total = 0;
  for (const GistEntry& e : entries) total += e.key.size() + 14 + 4;
  return total;
}

constexpr size_t kNodeCapacityBytes = kPageSize - 64;

}  // namespace

StatusOr<GistTree> GistTree::Create(BufferPool* pool, const GistOps* ops) {
  MURAL_ASSIGN_OR_RETURN(WritePageGuard root, pool->NewPage());
  root->Init();
  root->set_level(0);
  root.MarkDirty();
  return GistTree(pool, ops, root.id());
}

Status GistTree::Insert(std::string key, Rid rid) {
  if (key.size() > kPageSize / 8) {
    return Status::InvalidArgument("GiST key too large");
  }
  GistEntry entry;
  entry.key = std::move(key);
  entry.rid = rid;
  SplitResult split;
  std::string new_union;
  MURAL_RETURN_IF_ERROR(
      InsertRec(root_, std::move(entry), /*target_level=*/0, &split,
                &new_union));
  if (split.split) {
    MURAL_ASSIGN_OR_RETURN(ReadPageGuard old_root, pool_->Fetch(root_));
    const uint16_t old_level = old_root->level();
    old_root.Release();
    MURAL_ASSIGN_OR_RETURN(WritePageGuard new_root, pool_->NewPage());
    new_root->Init();
    new_root->set_level(static_cast<uint16_t>(old_level + 1));
    GistEntry left_entry;
    left_entry.key = split.left_union;
    left_entry.child = root_;
    GistEntry right_entry;
    right_entry.key = split.right_union;
    right_entry.child = split.right;
    MURAL_RETURN_IF_ERROR(
        WriteEntries(new_root.get(), {left_entry, right_entry}));
    new_root.MarkDirty();
    root_ = new_root.id();
    ++num_pages_;
    ++height_;
  }
  ++num_entries_;
  ++stats_.inserts;
  return Status::OK();
}

Status GistTree::SplitNode(WritePageGuard* guard,
                           std::vector<GistEntry> entries, SplitResult* out) {
  std::vector<GistEntry> left, right;
  ops_->PickSplit(std::move(entries), &left, &right);
  MURAL_CHECK(!left.empty() && !right.empty()) << "PickSplit emptied a side";
  // lint: latch-exception(GiST node split: the overflowing node stays latched while the sibling is allocated so readers never see it mid-redistribution)
  MURAL_ASSIGN_OR_RETURN(WritePageGuard sibling, pool_->NewPage());
  sibling->Init();
  sibling->set_level((*guard)->level());
  MURAL_RETURN_IF_ERROR(WriteEntries(sibling.get(), right));
  sibling.MarkDirty();
  MURAL_RETURN_IF_ERROR(WriteEntries(guard->get(), left));
  guard->MarkDirty();
  ++num_pages_;
  ++stats_.splits;
  out->split = true;
  out->left_union = ops_->Union(left);
  out->right_union = ops_->Union(right);
  out->right = sibling.id();
  return Status::OK();
}

Status GistTree::InsertRec(PageId node, GistEntry entry,
                           uint16_t target_level, SplitResult* out,
                           std::string* new_union) {
  out->split = false;
  // Every outcome of this function rewrites `node` (leaf insert,
  // adjust-keys, or separator insert), so take the exclusive latch up
  // front.
  MURAL_ASSIGN_OR_RETURN(WritePageGuard guard, pool_->FetchForWrite(node));
  std::vector<GistEntry> entries;
  MURAL_RETURN_IF_ERROR(ReadEntries(guard.get(), &entries));

  if (guard->level() == target_level) {
    entries.push_back(std::move(entry));
    if (EntriesBytes(entries) <= kNodeCapacityBytes) {
      MURAL_RETURN_IF_ERROR(WriteEntries(guard.get(), entries));
      guard.MarkDirty();
      *new_union = ops_->Union(entries);
      return Status::OK();
    }
    MURAL_RETURN_IF_ERROR(SplitNode(&guard, std::move(entries), out));
    return Status::OK();
  }

  // Choose the child with minimum penalty.
  MURAL_CHECK(!entries.empty()) << "internal GiST node with no entries";
  size_t best = 0;
  double best_penalty = ops_->Penalty(entries[0].key, entry.key);
  for (size_t i = 1; i < entries.size(); ++i) {
    const double p = ops_->Penalty(entries[i].key, entry.key);
    if (p < best_penalty) {
      best_penalty = p;
      best = i;
    }
  }
  const PageId child = entries[best].child;
  guard.Release();  // no pins across recursion

  SplitResult child_split;
  std::string child_union;
  MURAL_RETURN_IF_ERROR(InsertRec(child, std::move(entry), target_level,
                                  &child_split, &child_union));

  MURAL_ASSIGN_OR_RETURN(guard, pool_->FetchForWrite(node));
  MURAL_RETURN_IF_ERROR(ReadEntries(guard.get(), &entries));
  // `best` still addresses the same entry: splits only rewrite the child
  // node and this node is only modified below.
  if (!child_split.split) {
    entries[best].key = child_union;  // adjust-keys on the path
    MURAL_RETURN_IF_ERROR(WriteEntries(guard.get(), entries));
    guard.MarkDirty();
    *new_union = ops_->Union(entries);
    return Status::OK();
  }
  entries[best].key = child_split.left_union;
  GistEntry fresh;
  fresh.key = child_split.right_union;
  fresh.child = child_split.right;
  entries.push_back(std::move(fresh));
  if (EntriesBytes(entries) <= kNodeCapacityBytes) {
    MURAL_RETURN_IF_ERROR(WriteEntries(guard.get(), entries));
    guard.MarkDirty();
    *new_union = ops_->Union(entries);
    return Status::OK();
  }
  MURAL_RETURN_IF_ERROR(SplitNode(&guard, std::move(entries), out));
  return Status::OK();
}

Status GistTree::Search(
    const GistQuery& query,
    const std::function<void(const GistEntry&)>& fn) const {
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("index.gist.probes");
  probes->Increment();
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId node = stack.back();
    stack.pop_back();
    MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard, pool_->Fetch(node));
    ++stats_.nodes_visited;
    std::vector<GistEntry> entries;
    MURAL_RETURN_IF_ERROR(ReadEntries(guard.get(), &entries));
    const bool is_leaf = guard->level() == 0;
    for (const GistEntry& e : entries) {
      if (is_leaf) {
        ++stats_.leaf_entries_tested;
        if (ops_->Consistent(e, query, /*is_leaf=*/true)) fn(e);
      } else {
        ++stats_.internal_entries_tested;
        if (ops_->Consistent(e, query, /*is_leaf=*/false)) {
          stack.push_back(e.child);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace mural
