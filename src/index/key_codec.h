// KeyCodec: order-preserving serialization of Values into byte strings, so
// index nodes compare keys with plain memcmp.
//
// Encodings (single-column keys only):
//   BOOL/INT/BIGINT -> sign-flipped big-endian 8 bytes
//   DOUBLE          -> IEEE-754 total-order trick, 8 bytes
//   TEXT/UNITEXT    -> raw UTF-8 bytes (memcmp order == byte order; the
//                      UniText key is its Text component, matching the
//                      ordinary text operators of §3.2.1)

#pragma once

#include <string>

#include "catalog/value.h"
#include "common/status.h"

namespace mural {

class KeyCodec {
 public:
  /// Encodes `v` so that memcmp(Encode(a), Encode(b)) orders like
  /// a.Compare(b) for same-typed values.  NULLs are not indexable.
  static StatusOr<std::string> Encode(const Value& v);

  /// Encodes the phoneme string of a UniText value (for phoneme-keyed
  /// metric/B-tree indexes); fails if phonemes are not materialized.
  static StatusOr<std::string> EncodePhonemes(const Value& v);
};

}  // namespace mural
