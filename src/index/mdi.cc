#include "index/mdi.h"

#include <algorithm>
#include <climits>

#include "common/metrics.h"

namespace mural {

StatusOr<std::unique_ptr<MdiIndex>> MdiIndex::Create(BufferPool* pool) {
  MURAL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool));
  return std::unique_ptr<MdiIndex>(new MdiIndex(std::move(tree)));
}

namespace {

uint8_t ClampByte(int d) {
  return static_cast<uint8_t>(std::min(255, std::max(0, d)));
}

}  // namespace

std::string MdiIndex::EncodeKey(const std::string& phonemes) const {
  std::string key;
  key.reserve(pivots_.size() + 1);
  for (const std::string& pivot : pivots_) {
    key.push_back(
        static_cast<char>(ClampByte(Levenshtein(phonemes, pivot))));
  }
  key.push_back(static_cast<char>(
      ClampByte(static_cast<int>(phonemes.size()))));
  return key;
}

Status MdiIndex::FreezePivots() {
  // Greedy max-min (farthest-point) pivot selection over the buffered
  // sample: the first sampled object seeds the set; each further pivot is
  // the sample element maximizing its minimum distance to the pivots so
  // far.  Spread-out pivots give near-independent reference distances,
  // which is what makes the conjunction of triangle-inequality bands
  // selective.
  if (pending_.empty()) {
    pivots_ = {""};  // degenerate: the trailing length byte still filters
    return Status::OK();
  }
  pivots_ = {pending_.front().first};
  while (pivots_.size() < kNumPivots) {
    int best_mind = -1;
    const std::string* best = nullptr;
    for (const auto& [key, rid] : pending_) {
      int mind = INT32_MAX;
      for (const std::string& pivot : pivots_) {
        mind = std::min(mind, Levenshtein(key, pivot));
      }
      if (mind > best_mind) {
        best_mind = mind;
        best = &key;
      }
    }
    if (best == nullptr || best_mind <= 0) break;  // sample exhausted
    pivots_.push_back(*best);
  }
  for (const auto& [key, rid] : pending_) {
    MURAL_RETURN_IF_ERROR(tree_.Insert(EncodeKey(key), rid));
  }
  pending_.clear();
  return Status::OK();
}

Status MdiIndex::Insert(const Value& key, Rid rid) {
  if (key.type() != TypeId::kText) {
    return Status::InvalidArgument("MDI keys must be TEXT phoneme strings");
  }
  if (pivots_.empty()) {
    pending_.emplace_back(key.text(), rid);
    if (pending_.size() >= kSampleSize) {
      return FreezePivots();
    }
    return Status::OK();
  }
  return tree_.Insert(EncodeKey(key.text()), rid);
}

Status MdiIndex::SearchEqual(const Value& key, std::vector<Rid>* out) {
  return SearchWithin(key, 0, out);
}

Status MdiIndex::SearchWithin(const Value& key, int radius,
                              std::vector<Rid>* out) {
  static Counter* probes =
      MetricsRegistry::Global().GetCounter("index.mdi.probes");
  probes->Increment();
  if (key.type() != TypeId::kText) {
    return Status::InvalidArgument(
        "MDI queries must be TEXT phoneme strings");
  }
  if (pivots_.empty()) {
    // Small index still buffering: freeze now so queries see all data.
    MURAL_RETURN_IF_ERROR(FreezePivots());
  }
  const std::string& q = key.text();
  std::vector<int> dq;
  for (const std::string& pivot : pivots_) {
    dq.push_back(Levenshtein(q, pivot));
  }
  const int qlen = static_cast<int>(q.size());

  // Primary range on the first reference distance; every further
  // reference distance (and the length) filters from the key bytes.
  std::string lo(1, static_cast<char>(ClampByte(dq[0] - radius)));
  std::string hi(1, static_cast<char>(ClampByte(dq[0] + radius)));
  hi.append(pivots_.size(), '\xFF');  // cover all suffixes of the hi byte
  return tree_.Scan(
      lo, hi, /*unbounded_hi=*/false,
      [&](std::string_view k, Rid rid) {
        for (size_t p = 1; p < pivots_.size(); ++p) {
          const int d = static_cast<unsigned char>(k[p]);
          if (d < dq[p] - radius || d > dq[p] + radius) return true;
        }
        const int len =
            static_cast<unsigned char>(k[pivots_.size()]);
        if (len < qlen - radius || len > qlen + radius) return true;
        out->push_back(rid);
        return true;
      });
}

}  // namespace mural
