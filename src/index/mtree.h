// M-Tree (Ciaccia, Patella & Zezula, VLDB'97) over the GiST framework —
// the metric index the paper adds to PostgreSQL to accelerate LexEQUAL's
// approximate phoneme matching (§4.2.1).
//
// Keys live in the metric space (phoneme strings, Levenshtein distance).
// An internal entry stores a routing object plus a covering radius; search
// prunes a subtree when  d(query, routing) > query_radius + covering_radius
// (triangle inequality).  Node splits use the *random promotion* policy the
// paper selected for its low index-modification cost.

#pragma once

#include <memory>

#include "catalog/access_method.h"
#include "common/random.h"
#include "distance/edit_distance.h"
#include "index/gist.h"

namespace mural {

/// GistOps instantiation for metric keys.
///
/// Key encoding: [u32 covering_radius][object bytes].  Leaf entries carry
/// radius 0 and the indexed phoneme string itself.
class MTreeOps : public GistOps {
 public:
  explicit MTreeOps(uint64_t split_seed = 7) : rng_(split_seed) {}

  bool Consistent(const GistEntry& entry, const GistQuery& query,
                  bool is_leaf) const override;
  std::string Union(const std::vector<GistEntry>& entries) const override;
  double Penalty(std::string_view subtree_key,
                 std::string_view new_key) const override;
  void PickSplit(std::vector<GistEntry> entries,
                 std::vector<GistEntry>* left,
                 std::vector<GistEntry>* right) const override;

  /// Builds a key from a covering radius and a metric object.
  static std::string MakeKey(uint32_t radius, std::string_view object);
  /// Splits a key into (radius, object view into `key`).
  static std::pair<uint32_t, std::string_view> ParseKey(
      std::string_view key);

  /// Number of edit-distance evaluations performed (pruning-efficiency
  /// ablation, §5.3 discussion).
  uint64_t distance_computations() const { return distance_calls_; }
  void ResetCounters() { distance_calls_ = 0; }

 private:
  int Distance(std::string_view a, std::string_view b) const;
  int BoundedDistance(std::string_view a, std::string_view b, int k) const;

  mutable Rng rng_;
  mutable uint64_t distance_calls_ = 0;
};

/// AccessMethod adapter: keys arriving from the catalog are TEXT values
/// holding phoneme strings.
class MTreeIndex : public AccessMethod {
 public:
  [[nodiscard]]
  static StatusOr<std::unique_ptr<MTreeIndex>> Create(BufferPool* pool,
                                                      uint64_t seed = 7);

  IndexKind kind() const override { return IndexKind::kMTree; }

  [[nodiscard]] Status Insert(const Value& key, Rid rid) override;
  [[nodiscard]]
  Status SearchEqual(const Value& key, std::vector<Rid>* out) override;
  [[nodiscard]] Status SearchWithin(const Value& key, int radius,
                      std::vector<Rid>* out) override;

  uint64_t NumEntries() const override { return tree_->num_entries(); }
  uint32_t NumPages() const override { return tree_->num_pages(); }

  const GistTree& tree() const { return *tree_; }
  MTreeOps& ops() { return *ops_; }

 private:
  MTreeIndex(std::unique_ptr<MTreeOps> ops, std::unique_ptr<GistTree> tree)
      : ops_(std::move(ops)), tree_(std::move(tree)) {}

  std::unique_ptr<MTreeOps> ops_;
  std::unique_ptr<GistTree> tree_;
};

}  // namespace mural
