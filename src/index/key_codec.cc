#include "index/key_codec.h"

#include <cstring>

namespace mural {

namespace {

void PutBigEndian64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

StatusOr<std::string> KeyCodec::Encode(const Value& v) {
  std::string out;
  switch (v.type()) {
    case TypeId::kNull:
      return Status::InvalidArgument("NULL is not indexable");
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64: {
      // Flip the sign bit: two's-complement order becomes unsigned order.
      const uint64_t u =
          static_cast<uint64_t>(v.AsInt64()) ^ 0x8000000000000000ULL;
      PutBigEndian64(&out, u);
      return out;
    }
    case TypeId::kFloat64: {
      double d = v.float64();
      if (d == 0.0) d = 0.0;  // fold -0.0 into +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      // Total-order transform: positive floats get the sign bit set;
      // negatives are bitwise complemented.
      if (bits & 0x8000000000000000ULL) {
        bits = ~bits;
      } else {
        bits |= 0x8000000000000000ULL;
      }
      PutBigEndian64(&out, bits);
      return out;
    }
    case TypeId::kText:
      return v.text();
    case TypeId::kUniText:
      return v.unitext().text();
  }
  return Status::Internal("unreachable");
}

StatusOr<std::string> KeyCodec::EncodePhonemes(const Value& v) {
  if (v.type() != TypeId::kUniText) {
    return Status::InvalidArgument("phoneme key requires a UNITEXT value");
  }
  if (!v.unitext().has_phonemes()) {
    return Status::InvalidArgument(
        "phoneme key requires materialized phonemes");
  }
  return *v.unitext().phonemes();
}

}  // namespace mural
