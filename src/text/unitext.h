// UniText: the multilingual text datatype (paper §3.1).
//
// A UniText value is a 2-tuple (Text, LangId): a Unicode string in a
// standardized encoding (we use UTF-8) plus an identifier of the language of
// the string.  Optionally it carries a *materialized phoneme string* so that
// repeated LexEQUAL evaluations (notably joins) avoid re-running the
// text-to-phoneme transformation (paper §4.2).
//
// Operators (paper §3.1-3.2):
//   - Compose (⊕):    UniText::Compose(text, lang)
//   - Decompose (⊖):  Decompose() -> {text, lang}
//   - Text ops (=, <, <=, ...) operate on the Text component only.
//   - ≗ (FullEquals) compares both components.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "text/language.h"

namespace mural {

/// The multilingual string type stored by UniText columns.
class UniText {
 public:
  /// Empty string in the unknown language.
  UniText() = default;

  UniText(std::string text, LangId lang)
      : text_(std::move(text)), lang_(lang) {}

  /// The composing operator ⊕: builds a UniText from a Unicode string and
  /// its language identifier.  Rejects malformed UTF-8.
  static StatusOr<UniText> Compose(std::string text, LangId lang);

  /// Convenience compose that resolves the language by name/ISO code via
  /// LanguageRegistry::Default().
  static StatusOr<UniText> Compose(std::string text, std::string_view lang);

  /// The decomposing operator ⊖: splits into (text, lang).
  std::pair<std::string, LangId> Decompose() const {
    return {text_, lang_};
  }

  const std::string& text() const { return text_; }
  LangId lang() const { return lang_; }

  /// Materialized phoneme string, if the column/value carries one.
  const std::optional<std::string>& phonemes() const { return phonemes_; }
  void set_phonemes(std::string p) { phonemes_ = std::move(p); }
  void clear_phonemes() { phonemes_.reset(); }
  bool has_phonemes() const { return phonemes_.has_value(); }

  /// Standard text comparison: operates on the Text component only
  /// (byte-wise, which for UTF-8 equals code-point order).  The language
  /// tag is deliberately ignored, so UniText supports the normal Text
  /// operators unchanged (paper §3.2.1).
  int CompareText(const UniText& other) const {
    return text_.compare(other.text_);
  }

  bool operator==(const UniText& other) const {
    return CompareText(other) == 0;
  }
  bool operator<(const UniText& other) const { return CompareText(other) < 0; }

  /// The ≗ operator: equality of both the Text and LangId components.
  bool FullEquals(const UniText& other) const {
    return lang_ == other.lang_ && text_ == other.text_;
  }

  /// Number of code points in the text.
  size_t LengthCodePoints() const;

  /// "'text'@Language" rendering for diagnostics and query results.
  std::string ToString() const;

 private:
  std::string text_;
  LangId lang_ = kLangUnknown;
  std::optional<std::string> phonemes_;
};

}  // namespace mural
