#include "text/language.h"

#include "common/string_util.h"

namespace mural {

LanguageRegistry& LanguageRegistry::Default() {
  static LanguageRegistry registry;
  return registry;
}

LanguageRegistry::LanguageRegistry() {
  by_id_.resize(1);  // id 0 = unknown, never registered
  (void)Register({lang::kEnglish, "English", "en", Script::kLatin,
                  G2pFamily::kEnglish});
  (void)Register({lang::kHindi, "Hindi", "hi", Script::kDevanagari,
                  G2pFamily::kIndic});
  (void)Register({lang::kTamil, "Tamil", "ta", Script::kTamil,
                  G2pFamily::kIndic});
  (void)Register({lang::kKannada, "Kannada", "kn", Script::kKannada,
                  G2pFamily::kIndic});
  (void)Register({lang::kFrench, "French", "fr", Script::kLatin,
                  G2pFamily::kRomance});
  (void)Register({lang::kGerman, "German", "de", Script::kLatin,
                  G2pFamily::kGermanic});
  (void)Register({lang::kSpanish, "Spanish", "es", Script::kLatin,
                  G2pFamily::kRomance});
}

Status LanguageRegistry::Register(LanguageInfo info) {
  if (info.id == kLangUnknown) {
    return Status::InvalidArgument("language id 0 is reserved");
  }
  if (info.name.empty()) {
    return Status::InvalidArgument("language name must be non-empty");
  }
  if (const LanguageInfo* existing = FindByName(info.name)) {
    if (existing->id != info.id) {
      return Status::AlreadyExists("language name already registered: " +
                                   info.name);
    }
  }
  if (info.id < by_id_.size() && by_id_[info.id].id != kLangUnknown) {
    return Status::AlreadyExists("language id already registered: " +
                                 std::to_string(info.id));
  }
  if (info.id >= by_id_.size()) by_id_.resize(info.id + 1);
  by_id_[info.id] = std::move(info);
  return Status::OK();
}

const LanguageInfo* LanguageRegistry::Find(LangId id) const {
  if (id == kLangUnknown || id >= by_id_.size()) return nullptr;
  const LanguageInfo& info = by_id_[id];
  return info.id == kLangUnknown ? nullptr : &info;
}

const LanguageInfo* LanguageRegistry::FindByName(std::string_view name) const {
  for (const LanguageInfo& info : by_id_) {
    if (info.id == kLangUnknown) continue;
    if (EqualsIgnoreCase(info.name, name) ||
        EqualsIgnoreCase(info.iso_code, name)) {
      return &info;
    }
  }
  return nullptr;
}

std::string LanguageRegistry::NameOf(LangId id) const {
  const LanguageInfo* info = Find(id);
  return info != nullptr ? info->name : "lang#" + std::to_string(id);
}

std::vector<LanguageInfo> LanguageRegistry::All() const {
  std::vector<LanguageInfo> out;
  for (const LanguageInfo& info : by_id_) {
    if (info.id != kLangUnknown) out.push_back(info);
  }
  return out;
}

}  // namespace mural
