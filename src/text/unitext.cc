#include "text/unitext.h"

#include "common/utf8.h"

namespace mural {

StatusOr<UniText> UniText::Compose(std::string text, LangId lang) {
  if (!utf8::IsValid(text)) {
    return Status::InvalidArgument("UniText text is not well-formed UTF-8");
  }
  return UniText(std::move(text), lang);
}

StatusOr<UniText> UniText::Compose(std::string text, std::string_view lang) {
  const LanguageInfo* info = LanguageRegistry::Default().FindByName(lang);
  if (info == nullptr) {
    return Status::NotFound("unknown language: " + std::string(lang));
  }
  return Compose(std::move(text), info->id);
}

size_t UniText::LengthCodePoints() const { return utf8::Length(text_); }

std::string UniText::ToString() const {
  return "'" + text_ + "'@" + LanguageRegistry::Default().NameOf(lang_);
}

}  // namespace mural
