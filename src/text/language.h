// Language identifiers and the language registry.
//
// UniText tags every string with a LangId because several languages share a
// script and a string's pronunciation/meaning depends on its language
// (paper §3.1).  The registry maps ids <-> names and carries the metadata
// the phonetic layer needs (which G2P rule set applies).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mural {

/// Compact language identifier stored inside every UniText value.
using LangId = uint16_t;

/// Reserved id meaning "language unknown / not applicable".
constexpr LangId kLangUnknown = 0;

/// Writing system of a language (several languages share one script).
enum class Script : uint8_t {
  kLatin,
  kDevanagari,
  kTamil,
  kKannada,
  kArabic,
  kCyrillic,
  kOther,
};

/// Which grapheme-to-phoneme rule family to apply.
enum class G2pFamily : uint8_t {
  kNone,       // no phonetic rules registered
  kEnglish,    // English orthography rules
  kRomance,    // French/Spanish-style Latin orthography
  kIndic,      // romanized Indic (Hindi/Tamil/Kannada) rules
  kGermanic,   // German-style rules
};

/// Static description of one language.
struct LanguageInfo {
  LangId id = kLangUnknown;
  std::string name;      // "English"
  std::string iso_code;  // "en"
  Script script = Script::kOther;
  G2pFamily g2p = G2pFamily::kNone;
};

/// Registry of known languages.
///
/// A process-global default registry is pre-populated with the languages the
/// paper's experiments use (English, Hindi, Tamil, Kannada, French, plus a
/// few extras); applications may register more.
class LanguageRegistry {
 public:
  /// The shared default registry (thread-compatible: register at startup).
  static LanguageRegistry& Default();

  LanguageRegistry();

  /// Registers a language; its id must be unused.  Name and ISO-code
  /// lookups are case-insensitive.
  Status Register(LanguageInfo info);

  /// Lookup by id; nullptr if unknown.
  const LanguageInfo* Find(LangId id) const;

  /// Lookup by name or ISO code, case-insensitively; nullptr if unknown.
  const LanguageInfo* FindByName(std::string_view name) const;

  /// Human-readable name, or "lang#<id>" for unregistered ids.
  std::string NameOf(LangId id) const;

  /// All registered languages in id order.
  std::vector<LanguageInfo> All() const;

 private:
  std::vector<LanguageInfo> by_id_;  // index == id; id 0 unused
};

/// Well-known ids pre-registered in LanguageRegistry::Default().
namespace lang {
constexpr LangId kEnglish = 1;
constexpr LangId kHindi = 2;
constexpr LangId kTamil = 3;
constexpr LangId kKannada = 4;
constexpr LangId kFrench = 5;
constexpr LangId kGerman = 6;
constexpr LangId kSpanish = 7;
}  // namespace lang

}  // namespace mural
