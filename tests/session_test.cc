// The Session/Database API split: Database::Connect() mints sessions with
// independent settings over one shared engine core; the single
// SessionState::Set path validates and clamps every knob (SQL SET and the
// C++ API identically); the deprecated single-session Database shims keep
// working; results carry session attribution; and the shared plan cache
// serves repeated (prepared) statements with DDL/ANALYZE invalidation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/database.h"
#include "mural/algebra.h"
#include "session/session.h"

namespace mural {
namespace {

Counter* PlanCacheHits() {
  return MetricsRegistry::Global().GetCounter("engine.plan_cache.hits");
}

Counter* PlanCacheMisses() {
  return MetricsRegistry::Global().GetCounter("engine.plan_cache.misses");
}

Counter* PlanCacheInvalidations() {
  return MetricsRegistry::Global().GetCounter(
      "engine.plan_cache.invalidations");
}

StatusOr<std::unique_ptr<Database>> MakeBookDatabase(
    DatabaseOptions options = DatabaseOptions()) {
  MURAL_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                         Database::Open(options));
  MURAL_RETURN_IF_ERROR(db->Sql("CREATE TABLE Book (BookID INT, "
                                "Author UNITEXT MATERIALIZE PHONEMES)")
                            .status());
  const char* rows[] = {"Nehru", "Neru", "Nero", "Gandhi"};
  int id = 1;
  for (const char* author : rows) {
    MURAL_RETURN_IF_ERROR(
        db->Sql("INSERT INTO Book VALUES (" + std::to_string(id++) +
                ", '" + author + "'@English)")
            .status());
  }
  return db;
}

TEST(SessionTest, ConnectMintsDistinctSessions) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  Gauge* active = MetricsRegistry::Global().GetGauge(
      "engine.sessions.active");
  const int64_t active_before = active->value();

  auto a = (*db)->Connect();
  auto b = (*db)->Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->id(), (*b)->id());
  EXPECT_NE((*a)->id(), 0u);  // id 0 is the built-in legacy session
  EXPECT_EQ(active->value(), active_before + 2);

  a->reset();
  b->reset();
  EXPECT_EQ(active->value(), active_before);
}

TEST(SessionTest, SessionsHaveIndependentSettings) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto strict = (*db)->Connect();
  auto loose = (*db)->Connect();
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());

  ASSERT_TRUE((*strict)->Sql("SET LEXEQUAL_THRESHOLD = 0").ok());
  ASSERT_TRUE((*loose)->Set("lexequal_threshold", 3).ok());
  EXPECT_EQ((*strict)->options().lexequal_threshold, 0);
  EXPECT_EQ((*loose)->options().lexequal_threshold, 3);
  // The legacy default session is untouched by either.
  EXPECT_EQ((*db)->lexequal_threshold(), 2);

  const std::string query =
      "SELECT Author FROM Book WHERE Author LexEQUAL 'Nehru'";
  auto strict_rows = (*strict)->Sql(query);
  auto loose_rows = (*loose)->Sql(query);
  ASSERT_TRUE(strict_rows.ok());
  ASSERT_TRUE(loose_rows.ok());
  // Threshold 0 = exact phonetic match only; threshold 3 catches the
  // spelling variants too.
  EXPECT_LT(strict_rows->rows.size(), loose_rows->rows.size());
  EXPECT_EQ(strict_rows->session_id, (*strict)->id());
  EXPECT_EQ(loose_rows->session_id, (*loose)->id());
}

TEST(SessionTest, ConnectWithExplicitOptions) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  SessionOptions options;
  options.lexequal_threshold = 5;
  options.batch_size = 0;
  options.degree_of_parallelism = 2;
  auto session = (*db)->Connect(options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->options().lexequal_threshold, 5);
  EXPECT_EQ((*session)->options().batch_size, 0);
  EXPECT_EQ((*session)->options().degree_of_parallelism, 2);
}

TEST(SessionTest, SetValidatesAndClampsInOnePlace) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());

  // Clamping — same behavior the old setter zoo had.
  ASSERT_TRUE((*session)->Set("batch_size", -5).ok());
  EXPECT_EQ((*session)->options().batch_size, 0);
  ASSERT_TRUE((*session)->Set("batch_size", int64_t{1} << 20).ok());
  EXPECT_EQ((*session)->options().batch_size, 65536);
  ASSERT_TRUE((*session)->Set("lexequal_threshold", -1).ok());
  EXPECT_EQ((*session)->options().lexequal_threshold, 0);
  ASSERT_TRUE((*session)->Set("lexequal_threshold", 10000).ok());
  EXPECT_EQ((*session)->options().lexequal_threshold,
            kMaxLexequalThreshold);

  // Unknown names fail identically through SQL and the C++ API.
  auto bad_api = (*session)->Set("nonsense", 3);
  EXPECT_TRUE(bad_api.IsNotFound()) << bad_api.ToString();
  auto bad_sql = (*session)->Sql("SET nonsense = 3");
  ASSERT_FALSE(bad_sql.ok());
  EXPECT_TRUE(bad_sql.status().IsNotFound());

  // Case-insensitive, like SQL SET always was.
  ASSERT_TRUE((*session)->Set("LEXEQUAL_THRESHOLD", 1).ok());
  EXPECT_EQ((*session)->options().lexequal_threshold, 1);
}

TEST(SessionTest, DeprecatedDatabaseShimsStillWork) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());

  // The pre-split single-session surface, end to end.
  (*db)->SetLexequalThreshold(1);
  EXPECT_EQ((*db)->lexequal_threshold(), 1);
  (*db)->SetBatchSize(-5);
  EXPECT_EQ((*db)->batch_size(), 0u);
  (*db)->SetSlowQueryMillis(0);
  EXPECT_EQ((*db)->slow_query_millis(), 0);
  (*db)->SetDegreeOfParallelism(4);
  EXPECT_EQ((*db)->degree_of_parallelism(), 4);
  ASSERT_NE((*db)->thread_pool(), nullptr);
  ASSERT_NE((*db)->exec_context(), nullptr);
  EXPECT_EQ((*db)->exec_context()->lexequal_threshold, 1);

  auto result = (*db)->Sql("SELECT Author FROM Book");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->session_id, 0u);  // the built-in legacy session
}

TEST(SessionTest, ExplainAnalyzeAttributesSession) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());
  auto result = (*session)->Sql(
      "EXPLAIN ANALYZE SELECT Author FROM Book WHERE Author LexEQUAL "
      "'Nehru'");
  ASSERT_TRUE(result.ok());
  const std::string want =
      "session: id=" + std::to_string((*session)->id());
  EXPECT_NE(result->explain_analyze.find(want), std::string::npos)
      << result->explain_analyze;
}

TEST(SessionTest, PlannerHintsThreadThroughSql) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());
  PlannerHints serial;
  serial.degree_of_parallelism = 1;
  auto result = (*session)->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'Nehru'", serial);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->explain.find("ParallelLexScan"), std::string::npos)
      << result->explain;
}

TEST(SessionTest, PrepareExecuteRoundTrip) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE((*session)
                  ->Sql("PREPARE q1 AS SELECT Author FROM Book WHERE "
                        "Author LexEQUAL 'Nehru'")
                  .ok());
  auto first = (*session)->Sql("EXECUTE q1");
  ASSERT_TRUE(first.ok());
  auto second = (*session)->Execute("q1");  // API spelling, same statement
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rows.size(), second->rows.size());

  // Unknown name and nested PREPARE both refuse.
  auto missing = (*session)->Sql("EXECUTE nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  auto nested =
      (*session)->Sql("PREPARE q2 AS PREPARE q3 AS SELECT * FROM Book");
  ASSERT_FALSE(nested.ok());
  EXPECT_TRUE(nested.status().IsInvalidArgument());
  // A PREPARE body with a parse error is rejected at PREPARE time.
  auto bad_body = (*session)->Sql("PREPARE q4 AS SELECTT nope");
  ASSERT_FALSE(bad_body.ok());

  // Prepared statements are per-session state.
  auto other = (*db)->Connect();
  ASSERT_TRUE(other.ok());
  auto not_here = (*other)->Sql("EXECUTE q1");
  ASSERT_FALSE(not_here.ok());
  EXPECT_TRUE(not_here.status().IsNotFound());
}

TEST(SessionTest, PlanCacheHitsOnRepeatAndInvalidatesOnDdl) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)
                  ->Sql("PREPARE probe AS SELECT Author FROM Book WHERE "
                        "Author LexEQUAL 'Nehru'")
                  .ok());

  const uint64_t hits0 = PlanCacheHits()->value();
  const uint64_t misses0 = PlanCacheMisses()->value();
  auto first = (*session)->Execute("probe");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(PlanCacheMisses()->value(), misses0 + 1);
  EXPECT_EQ(PlanCacheHits()->value(), hits0);

  auto second = (*session)->Execute("probe");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(PlanCacheHits()->value(), hits0 + 1);
  EXPECT_EQ((*db)->plan_cache()->size(), 1u);

  // A second session with identical knobs shares the cached bind.
  auto twin = (*db)->Connect();
  ASSERT_TRUE(twin.ok());
  auto twin_run = (*twin)->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'Nehru'");
  ASSERT_TRUE(twin_run.ok());
  EXPECT_EQ(PlanCacheHits()->value(), hits0 + 2);
  EXPECT_EQ(twin_run->rows.size(), second->rows.size());

  // A session with a different threshold must NOT share it (the key
  // carries the knobs), but populates its own entry.
  auto other = (*db)->Connect();
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->Set("lexequal_threshold", 3).ok());
  auto other_run = (*other)->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'Nehru'");
  ASSERT_TRUE(other_run.ok());
  EXPECT_EQ(PlanCacheMisses()->value(), misses0 + 2);
  EXPECT_EQ((*db)->plan_cache()->size(), 2u);

  // DDL sweeps the cache; the next run re-binds.
  const uint64_t invalidations0 = PlanCacheInvalidations()->value();
  ASSERT_TRUE(
      (*db)->Sql("CREATE TABLE Other (X INT)").ok());
  EXPECT_EQ(PlanCacheInvalidations()->value(), invalidations0 + 1);
  EXPECT_EQ((*db)->plan_cache()->size(), 0u);
  auto after_ddl = (*session)->Execute("probe");
  ASSERT_TRUE(after_ddl.ok());
  EXPECT_EQ(PlanCacheMisses()->value(), misses0 + 3);

  // ANALYZE sweeps too.
  ASSERT_TRUE((*session)->Sql("ANALYZE Book").ok());
  EXPECT_EQ((*db)->plan_cache()->size(), 0u);
  EXPECT_GE(PlanCacheInvalidations()->value(), invalidations0 + 2);
}

TEST(SessionTest, PlanCacheCapacityZeroDisables) {
  DatabaseOptions options;
  options.plan_cache_capacity = 0;
  auto db = MakeBookDatabase(options);
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());
  const uint64_t hits0 = PlanCacheHits()->value();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        (*session)->Sql("SELECT Author FROM Book").ok());
  }
  EXPECT_EQ(PlanCacheHits()->value(), hits0);
  EXPECT_EQ((*db)->plan_cache()->size(), 0u);
}

TEST(SessionTest, QueryViaLogicalPlanCarriesSessionId) {
  auto db = MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto session = (*db)->Connect();
  ASSERT_TRUE(session.ok());
  const Schema schema({{"BookID", TypeId::kInt32},
                       {"Author", TypeId::kUniText, /*mat=*/true}});
  const LogicalPtr plan =
      MuralBuilder::Scan("Book", schema)
          .PsiSelect("Author", UniText("Nehru", lang::kEnglish))
          .Build();
  auto result = (*session)->Query(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->session_id, (*session)->id());
  EXPECT_GE(result->queue_wait_ms, 0.0);
  auto physical = (*session)->PlanQuery(plan);
  ASSERT_TRUE(physical.ok());
}

}  // namespace
}  // namespace mural
