// MUST NOT COMPILE — on any compiler, not just under the tsa preset.
// ReadPageGuard deliberately has no MarkDirty(): dirtying a page requires
// the frame's exclusive latch, which only WritePageGuard (via
// FetchForWrite, NewPage, or ReadPageGuard::Upgrade) holds.  This file
// calls MarkDirty on a read guard; the negative_compile_read_guard ctest
// (WILL_FAIL) asserts the compiler rejects it.  If it ever compiles, the
// read/write split of the guard API has been broken.
//
// It is deliberately NOT part of any CMake target's sources; the test
// invokes the compiler on it directly with -fsyntax-only.

#include "storage/buffer_pool.h"

namespace mural {

void Touch(BufferPool* pool) {
  StatusOr<ReadPageGuard> guard = pool->Fetch(0);
  if (guard.ok()) {
    guard->MarkDirty();  // BUG: no such member on ReadPageGuard -> error
  }
}

}  // namespace mural
