// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety (the `tsa`
// preset).  This file seeds the exact defect the annotation layer exists to
// reject — touching a GUARDED_BY field without holding its mutex — and the
// negative_compile_thread_safety ctest (WILL_FAIL) asserts Clang refuses
// it.  If this file ever compiles under the tsa toolchain, the annotations
// have been silently disabled and the whole compile-time lock discipline is
// void.
//
// It is deliberately NOT part of any CMake target's sources; the test
// invokes the compiler on it directly with -fsyntax-only.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mural {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mu_ not held -> -Wthread-safety error
  }

  int Read() const {
    MutexLock lock(mu_);
    return balance_;  // correct access, for contrast
  }

 private:
  mutable Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

void Touch() {
  Account a;
  a.Deposit(1);
  (void)a.Read();
}

}  // namespace mural
