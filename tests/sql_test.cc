// Tests for the SQL front end: parsing, binding, and end-to-end execution
// of the paper's query surface through the Database facade.

#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "sql/sql.h"

namespace mural {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    // The paper's Book table (Fig. 1), abbreviated.
    ASSERT_TRUE(db_->Sql("CREATE TABLE Book (BookID INT, "
                         "Author UNITEXT MATERIALIZE PHONEMES, "
                         "Title UNITEXT, Category UNITEXT)")
                    .ok());
    const char* rows[] = {
        "INSERT INTO Book VALUES (1, 'nehru'@English, "
        "'discovery of india'@English, 'History'@English)",
        "INSERT INTO Book VALUES (2, 'nehrU'@Hindi, "
        "'bharat ki khoj'@Hindi, 'Itihaas'@Hindi)",
        "INSERT INTO Book VALUES (3, 'neharu'@Tamil, "
        "'india kandupidippu'@Tamil, 'Charitram'@Tamil)",
        "INSERT INTO Book VALUES (4, 'gandhi'@English, "
        "'my experiments'@English, 'Autobiography'@English)",
        "INSERT INTO Book VALUES (5, 'smith'@English, "
        "'wealth of nations'@English, 'Economics'@English)",
    };
    for (const char* stmt : rows) {
      ASSERT_TRUE(db_->Sql(stmt).ok()) << stmt;
    }
  }

  /// Loads the bilingual History taxonomy used by the paper's Fig. 4.
  void LoadTaxonomy() {
    auto tax = std::make_unique<Taxonomy>();
    const SynsetId history = tax->AddSynset(lang::kEnglish, "History");
    const SynsetId autob = tax->AddSynset(lang::kEnglish, "Autobiography");
    const SynsetId econ = tax->AddSynset(lang::kEnglish, "Economics");
    const SynsetId itihaas = tax->AddSynset(lang::kHindi, "Itihaas");
    const SynsetId charitram = tax->AddSynset(lang::kTamil, "Charitram");
    ASSERT_TRUE(tax->AddIsA(autob, history).ok());
    ASSERT_TRUE(tax->AddEquivalence(history, itihaas).ok());
    ASSERT_TRUE(tax->AddEquivalence(history, charitram).ok());
    (void)econ;
    ASSERT_TRUE(db_->LoadTaxonomy(std::move(tax)).ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, ParseErrorsAreClean) {
  EXPECT_FALSE(db_->Sql("SELEKT * FROM Book").ok());
  EXPECT_FALSE(db_->Sql("SELECT FROM Book").ok());
  EXPECT_FALSE(db_->Sql("SELECT * FROM NoSuchTable").ok());
  EXPECT_FALSE(db_->Sql("SELECT nope FROM Book").ok());
  EXPECT_FALSE(db_->Sql("SELECT * FROM Book WHERE Author LexEQUAL "
                        "'x'@Klingonese")
                   .ok());
}

TEST_F(SqlTest, SelectStarAndProjection) {
  auto all = db_->Sql("SELECT * FROM Book");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 5u);
  EXPECT_EQ(all->schema.NumColumns(), 4u);

  auto proj = db_->Sql("SELECT Title, BookID FROM Book WHERE BookID >= 4");
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->rows.size(), 2u);
  EXPECT_EQ(proj->schema.NumColumns(), 2u);
  EXPECT_EQ(proj->schema.column(0).name, "TITLE");
}

TEST_F(SqlTest, PaperFigure2LexEqualQuery) {
  ASSERT_TRUE(db_->Sql("SET LEXEQUAL_THRESHOLD = 2").ok());
  auto result = db_->Sql(
      "SELECT Author, Title FROM Book "
      "WHERE Author LexEQUAL 'nehru'@English IN English, Hindi, Tamil");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::string> authors;
  for (const Row& r : result->rows) authors.insert(r[0].unitext().text());
  EXPECT_EQ(authors,
            (std::set<std::string>{"nehru", "nehrU", "neharu"}));
}

TEST_F(SqlTest, LexEqualRespectsLanguageList) {
  ASSERT_TRUE(db_->Sql("SET LEXEQUAL_THRESHOLD = 2").ok());
  auto result = db_->Sql(
      "SELECT Author FROM Book "
      "WHERE Author LexEQUAL 'nehru'@English IN Tamil");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].unitext().lang(), lang::kTamil);
}

TEST_F(SqlTest, LexEqualExplicitThreshold) {
  ASSERT_TRUE(db_->Sql("SET LEXEQUAL_THRESHOLD = 0").ok());
  // Session threshold 0 finds the *perfect* homophones: English 'nehru'
  // and Hindi 'nehrU' share the phoneme string /nehru/ exactly.
  auto strict = db_->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->rows.size(), 2u);
  // ...but an explicit THRESHOLD overrides it.
  auto loose = db_->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English "
      "THRESHOLD 2");
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->rows.size(), 3u);
}

TEST_F(SqlTest, PaperFigure4SemEqualQuery) {
  LoadTaxonomy();
  auto result = db_->Sql(
      "SELECT Author, Title, Category FROM Book "
      "WHERE Category SemEQUAL 'History'@English "
      "IN English, Hindi, Tamil");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // History itself, Itihaas (equivalent), Charitram (equivalent), and
  // Autobiography (subclass) — but NOT Economics.
  std::set<std::string> cats;
  for (const Row& r : result->rows) cats.insert(r[2].unitext().text());
  EXPECT_EQ(cats, (std::set<std::string>{"History", "Itihaas", "Charitram",
                                         "Autobiography"}));
}

TEST_F(SqlTest, CountStarAndGroupBy) {
  auto count = db_->Sql("SELECT count(*) FROM Book");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].int64(), 5);

  auto grouped =
      db_->Sql("SELECT Category, count(*) FROM Book GROUP BY Category");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->rows.size(), 5u);  // all categories distinct
}

TEST_F(SqlTest, OrderByAndLimit) {
  auto result =
      db_->Sql("SELECT BookID FROM Book ORDER BY BookID DESC LIMIT 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0].int32(), 5);
  EXPECT_EQ(result->rows[1][0].int32(), 4);
}

TEST_F(SqlTest, PsiJoinAcrossTables) {
  ASSERT_TRUE(db_->Sql("CREATE TABLE Publisher (PublisherID INT, "
                       "PName UNITEXT MATERIALIZE PHONEMES)")
                  .ok());
  ASSERT_TRUE(
      db_->Sql("INSERT INTO Publisher VALUES (1, 'neroo'@English)").ok());
  ASSERT_TRUE(
      db_->Sql("INSERT INTO Publisher VALUES (2, 'penguin'@English)").ok());
  ASSERT_TRUE(db_->Sql("SET LEXEQUAL_THRESHOLD = 2").ok());
  auto result = db_->Sql(
      "SELECT count(*) FROM Book B, Publisher P "
      "WHERE B.Author LexEQUAL P.PName");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  // 'neroo' = /nerU/ is within 2 of /nehru/ (en, hi) but 3 from the
  // Tamil /neharu/.
  EXPECT_EQ(result->rows[0][0].int64(), 2);
}

TEST_F(SqlTest, EquiJoinWithAliases) {
  ASSERT_TRUE(
      db_->Sql("CREATE TABLE Sales (BookID INT, Copies INT)").ok());
  ASSERT_TRUE(db_->Sql("INSERT INTO Sales VALUES (1, 100)").ok());
  ASSERT_TRUE(db_->Sql("INSERT INTO Sales VALUES (4, 50)").ok());
  auto result = db_->Sql(
      "SELECT B.Title, S.Copies FROM Book B, Sales S "
      "WHERE B.BookID = S.BookID ORDER BY S.Copies");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][1].int32(), 50);
  EXPECT_EQ(result->rows[1][1].int32(), 100);
}

TEST_F(SqlTest, ExplainShowsPlan) {
  auto result = db_->Sql("EXPLAIN SELECT * FROM Book WHERE BookID = 1");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->explain.find("SeqScan(BOOK)"), std::string::npos);
  EXPECT_NE(result->explain.find("cost"), std::string::npos);
  EXPECT_FALSE(result->rows.empty());
}

TEST_F(SqlTest, IndexDdlAndIndexedQuery) {
  // Pad the table so the metric index actually wins the cost race (at 5
  // rows a sequential scan is rightly cheaper).
  for (int i = 100; i < 400; ++i) {
    ASSERT_TRUE(db_->Sql("INSERT INTO Book VALUES (" + std::to_string(i) +
                         ", 'filler" + std::to_string(i) +
                         "'@English, 'x'@English, 'Misc'@English)")
                    .ok());
  }
  ASSERT_TRUE(db_->Sql("ANALYZE Book").ok());
  ASSERT_TRUE(
      db_->Sql("CREATE INDEX book_author_mtree ON Book(Author) USING MTREE")
          .ok());
  ASSERT_TRUE(db_->Sql("SET LEXEQUAL_THRESHOLD = 1").ok());
  auto explain = db_->Sql(
      "EXPLAIN SELECT Author FROM Book "
      "WHERE Author LexEQUAL 'nehru'@English");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->explain.find("mtreeIndexScan"), std::string::npos)
      << explain->explain;
  auto result = db_->Sql(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(SqlTest, SetRejectsUnknownSetting) {
  EXPECT_FALSE(db_->Sql("SET nonsense = 3").ok());
}

TEST_F(SqlTest, PrepareParsesNameAndVerbatimBody) {
  auto stmt = sql::Parse(
      "PREPARE find_author AS SELECT Author FROM Book "
      "WHERE Author LexEQUAL 'nehru'@English;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, sql::StatementKind::kPrepare);
  EXPECT_EQ(stmt->prepare_name, "find_author");
  // Body is kept verbatim (one trailing ';' stripped), so re-parsing it
  // at EXECUTE time sees exactly what the client wrote.
  EXPECT_EQ(stmt->prepare_body,
            "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English");
  // The cache keys on the whole original text.
  EXPECT_EQ(stmt->text,
            "PREPARE find_author AS SELECT Author FROM Book "
            "WHERE Author LexEQUAL 'nehru'@English;");
}

TEST_F(SqlTest, PrepareRejectsMalformedForms) {
  // Missing AS, missing body, missing name.
  EXPECT_FALSE(sql::Parse("PREPARE p SELECT * FROM Book").ok());
  EXPECT_FALSE(sql::Parse("PREPARE p AS").ok());
  EXPECT_FALSE(sql::Parse("PREPARE p AS   ;").ok());
  EXPECT_FALSE(sql::Parse("PREPARE AS SELECT * FROM Book").ok());
  // "ASDF" must not be taken as the AS keyword.
  EXPECT_FALSE(sql::Parse("PREPARE p ASDF SELECT * FROM Book").ok());
}

TEST_F(SqlTest, ExecuteParsesStatementName) {
  auto stmt = sql::Parse("EXECUTE find_author;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, sql::StatementKind::kExecute);
  // The tokenizer upper-cases identifiers, which is exactly why the
  // per-session prepared-statement map is keyed on the upper-cased name.
  EXPECT_EQ(stmt->prepare_name, "FIND_AUTHOR");
  EXPECT_EQ(stmt->text, "EXECUTE find_author;");
  EXPECT_FALSE(sql::Parse("EXECUTE").ok());
}

TEST_F(SqlTest, EveryStatementCarriesItsText) {
  const std::string text = "SELECT Author FROM Book";
  auto stmt = sql::Parse(text);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->text, text);
}

TEST_F(SqlTest, InsertCoercesPlainTextIntoUniText) {
  ASSERT_TRUE(db_->Sql("INSERT INTO Book VALUES (6, 'orwell', "
                       "'nineteen eighty-four', 'Fiction')")
                  .ok());
  auto result = db_->Sql("SELECT Author FROM Book WHERE BookID = 6");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].unitext().lang(), lang::kEnglish);
  // The materialize-phonemes column property applied on the way in.
  EXPECT_TRUE(result->rows[0][0].unitext().has_phonemes());
}

}  // namespace
}  // namespace mural
