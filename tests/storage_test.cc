// Tests for the storage engine: slotted pages, disk managers, the buffer
// pool (hits/evictions/pin semantics), and heap files.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace mural {
namespace {

// ------------------------------------------------------------------ Page

TEST(PageTest, InsertGetDelete) {
  auto page = std::make_unique<Page>();
  page->Init();
  auto s1 = page->Insert("hello");
  auto s2 = page->Insert("world!");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(page->Get(*s1)->ToString(), "hello");
  EXPECT_EQ(page->Get(*s2)->ToString(), "world!");
  EXPECT_TRUE(page->Delete(*s1).ok());
  EXPECT_TRUE(page->Get(*s1).status().IsNotFound());
  EXPECT_TRUE(page->Delete(*s1).IsNotFound());  // double delete
  EXPECT_EQ(page->Get(*s2)->ToString(), "world!");        // s2 unaffected
}

TEST(PageTest, SlotIdsStayStableAcrossDeletes) {
  auto page = std::make_unique<Page>();
  page->Init();
  const SlotId a = *page->Insert("aaa");
  const SlotId b = *page->Insert("bbb");
  const SlotId c = *page->Insert("ccc");
  ASSERT_TRUE(page->Delete(b).ok());
  EXPECT_EQ(page->Get(a)->ToString(), "aaa");
  EXPECT_EQ(page->Get(c)->ToString(), "ccc");
}

TEST(PageTest, FillsUntilResourceExhausted) {
  auto page = std::make_unique<Page>();
  page->Init();
  const std::string rec(100, 'x');
  int inserted = 0;
  while (true) {
    auto s = page->Insert(rec);
    if (!s.ok()) {
      EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++inserted;
  }
  // 8 KiB page, 104-byte entries: expect several dozen.
  EXPECT_GT(inserted, 60);
  EXPECT_LT(inserted, 90);
  // All still readable.
  for (SlotId s = 0; s < inserted; ++s) {
    EXPECT_EQ(page->Get(s)->size(), rec.size());
  }
}

TEST(PageTest, UpdateInPlaceOnlyShrinks) {
  auto page = std::make_unique<Page>();
  page->Init();
  const SlotId s = *page->Insert("longrecord");
  EXPECT_TRUE(page->Update(s, "short").ok());
  EXPECT_EQ(page->Get(s)->ToString(), "short");
  EXPECT_TRUE(page->Update(s, "waytoolongforslot").IsNotSupported());
}

TEST(PageTest, ClearPreservesLevelAndFlags) {
  auto page = std::make_unique<Page>();
  page->Init();
  page->set_level(3);
  page->set_flags(7);
  page->set_next_page(42);
  (void)page->Insert("data");
  page->Clear();
  EXPECT_EQ(page->NumSlots(), 0);
  EXPECT_EQ(page->level(), 3);
  EXPECT_EQ(page->flags(), 7);
  EXPECT_EQ(page->next_page(), 42u);
}

// ----------------------------------------------------------- DiskManager

template <typename T>
std::unique_ptr<DiskManager> MakeDisk();

template <>
std::unique_ptr<DiskManager> MakeDisk<MemoryDiskManager>() {
  return std::make_unique<MemoryDiskManager>();
}

template <>
std::unique_ptr<DiskManager> MakeDisk<FileDiskManager>() {
  static int counter = 0;
  std::string path =
      testing::TempDir() + "/mural_disk_" + std::to_string(counter++) + ".db";
  std::remove(path.c_str());
  auto result = FileDiskManager::Open(path);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

template <typename T>
class DiskManagerTest : public ::testing::Test {};

using DiskTypes = ::testing::Types<MemoryDiskManager, FileDiskManager>;
TYPED_TEST_SUITE(DiskManagerTest, DiskTypes);

TYPED_TEST(DiskManagerTest, AllocateWriteReadRoundTrip) {
  auto disk = MakeDisk<TypeParam>();
  auto p0 = disk->AllocatePage();
  auto p1 = disk->AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);

  std::string data0(kPageSize, 'A'), data1(kPageSize, 'B');
  ASSERT_TRUE(disk->WritePage(*p0, data0.data()).ok());
  ASSERT_TRUE(disk->WritePage(*p1, data1.data()).ok());

  std::string out(kPageSize, 0);
  ASSERT_TRUE(disk->ReadPage(*p1, out.data()).ok());
  EXPECT_EQ(out, data1);
  ASSERT_TRUE(disk->ReadPage(*p0, out.data()).ok());
  EXPECT_EQ(out, data0);

  EXPECT_EQ(disk->NumPages(), 2u);
  EXPECT_EQ(disk->stats().page_reads, 2u);
  EXPECT_EQ(disk->stats().page_writes, 2u);
  EXPECT_EQ(disk->stats().page_allocs, 2u);
}

TYPED_TEST(DiskManagerTest, OutOfRangeAccessFails) {
  auto disk = MakeDisk<TypeParam>();
  char buf[kPageSize];
  EXPECT_FALSE(disk->ReadPage(0, buf).ok());
  EXPECT_FALSE(disk->WritePage(5, buf).ok());
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPoolTest, HitsAndMisses) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  page->get()->Init();
  const PageId id = page->id();
  page->MarkDirty();
  page->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  // Create three pages through a 2-frame pool.
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->get()->Init();
    auto slot = guard->get()->Insert("page" + std::to_string(i));
    ASSERT_TRUE(slot.ok());
    guard->MarkDirty();
    ids.push_back(guard->id());
  }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
  // All three pages readable with correct content (evicted ones reloaded).
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.Fetch(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ((*guard)->Get(0)->ToString(), "page" + std::to_string(i));
  }
}

TEST(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok() && g2.ok());
  // Both frames pinned: a third page must fail.
  auto g3 = pool.NewPage();
  EXPECT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
  // Releasing one makes room.
  g1->Release();
  auto g4 = pool.NewPage();
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  MemoryDiskManager disk;
  {
    BufferPool pool(&disk, 4);
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->get()->Init();
    ASSERT_TRUE(guard->get()->Insert("persisted").ok());
    guard->MarkDirty();
    guard->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // A second pool over the same disk sees the data.
  BufferPool pool2(&disk, 4);
  auto guard = pool2.Fetch(0);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ((*guard)->Get(0)->ToString(), "persisted");
}

// -------------------------------------------------------------- HeapFile

TEST(HeapFileTest, InsertAndGet) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert("record one");
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap->Get(*rid, &out).ok());
  EXPECT_EQ(out, "record one");
  EXPECT_EQ(heap->num_records(), 1u);
}

TEST(HeapFileTest, SpillsAcrossPagesAndScansInOrder) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  const int n = 2000;  // ~70 bytes each -> dozens of pages
  for (int i = 0; i < n; ++i) {
    std::string rec = "record-" + std::to_string(i) + std::string(50, '.');
    ASSERT_TRUE(heap->Insert(rec).ok()) << i;
  }
  EXPECT_EQ(heap->num_records(), static_cast<uint64_t>(n));
  EXPECT_GT(heap->num_pages(), 10u);

  int count = 0;
  for (auto it = heap->Begin(); it.Valid(); it.Next()) {
    EXPECT_TRUE(it.record().rfind("record-" + std::to_string(count), 0) == 0)
        << count;
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(HeapFileTest, DeleteSkipsTombstonesInScan) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) {
    rids.push_back(*heap->Insert("r" + std::to_string(i)));
  }
  ASSERT_TRUE(heap->Delete(rids[3]).ok());
  ASSERT_TRUE(heap->Delete(rids[7]).ok());
  std::set<std::string> seen;
  for (auto it = heap->Begin(); it.Valid(); it.Next()) {
    seen.insert(it.record());
  }
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_FALSE(seen.count("r3"));
  EXPECT_FALSE(seen.count("r7"));
  std::string out;
  EXPECT_TRUE(heap->Get(rids[3], &out).IsNotFound());
}

TEST(HeapFileTest, RejectsOversizedRecords) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->Insert(std::string(kPageSize, 'x')).ok());
}

}  // namespace
}  // namespace mural
