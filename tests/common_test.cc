// Unit tests for the common substrate: Status/StatusOr, Slice, coding,
// RNG, hashing, UTF-8, string utilities.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/utf8.h"

namespace mural {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing widget");
  EXPECT_EQ(s.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParse(int v, int* out) {
  MURAL_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);

  StatusOr<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseParse(-7, &out).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> s(std::make_unique<int>(42));
  ASSERT_TRUE(s.ok());
  std::unique_ptr<int> v = std::move(s).value();
  EXPECT_EQ(*v, 42);
}

// ----------------------------------------------------------------- Slice

TEST(SliceTest, BasicViews) {
  std::string backing = "hello world";
  Slice s(backing);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_EQ(s.ToString(), backing);
  EXPECT_TRUE(s.StartsWith("hello"));
  EXPECT_FALSE(s.StartsWith("world"));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(SliceTest, CompareOrdersLikeBytesThenLength) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("") == Slice(""));
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, RoundTripAllWidths) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU16(&buf, 0xBEEF);
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutF64(&buf, 3.25);
  PutLengthPrefixed(&buf, "payload");

  Decoder dec(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string str;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetF64(&f64).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&str).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f64, 3.25);
  EXPECT_EQ(str, "payload");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodingTest, TruncatedReadsFailCleanly) {
  std::string buf;
  PutU32(&buf, 100);  // claims a 100-byte string follows, but none does
  Decoder dec(buf);
  std::string out;
  Decoder dec2(buf);
  EXPECT_FALSE(dec2.GetLengthPrefixed(&out).ok());

  Decoder dec3("");
  uint64_t v;
  EXPECT_TRUE(dec3.GetU64(&v).IsCorruption());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff_seed_differs |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_differs);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  ZipfGenerator zipf(1000, 1.0, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  // Rank 0 must be sampled far more often than rank 500.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next()];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 5000, 600) << "rank " << rank;
  }
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(Hash64("abc"), Hash64("abc"));
  EXPECT_NE(Hash64("abc"), Hash64("abd"));
  EXPECT_NE(Hash64("abc"), Hash64("abc", /*seed=*/1));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ------------------------------------------------------------------ UTF8

TEST(Utf8Test, EncodeDecodeRoundTripAllRanges) {
  const std::vector<CodePoint> cps = {
      0x24, 0xA2, 0x939, 0x20AC, 0x10348, 0x10FFFF};
  const std::string encoded = utf8::Encode(cps);
  EXPECT_TRUE(utf8::IsValid(encoded));
  const std::vector<CodePoint> decoded = utf8::Decode(encoded);
  EXPECT_EQ(decoded, cps);
  EXPECT_EQ(utf8::Length(encoded), cps.size());
}

TEST(Utf8Test, RejectsMalformedSequences) {
  // Overlong encoding of '/': 0xC0 0xAF.
  EXPECT_FALSE(utf8::IsValid(std::string("\xC0\xAF", 2)));
  // Lone continuation byte.
  EXPECT_FALSE(utf8::IsValid(std::string("\x80", 1)));
  // Truncated 3-byte sequence.
  EXPECT_FALSE(utf8::IsValid(std::string("\xE0\xA0", 2)));
  // Surrogate half U+D800 = ED A0 80.
  EXPECT_FALSE(utf8::IsValid(std::string("\xED\xA0\x80", 3)));
}

TEST(Utf8Test, LenientDecodeReplacesMalformed) {
  const std::vector<CodePoint> decoded =
      utf8::Decode(std::string("a\x80z", 3));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], static_cast<CodePoint>('a'));
  EXPECT_EQ(decoded[1], kReplacementChar);
  EXPECT_EQ(decoded[2], static_cast<CodePoint>('z'));
}

TEST(Utf8Test, StrictDecodeAcceptsGenuineReplacementChar) {
  std::string s;
  utf8::Append(kReplacementChar, &s);
  EXPECT_TRUE(utf8::DecodeStrict(s).ok());
}

TEST(Utf8Test, AsciiLowerLeavesNonAsciiAlone) {
  std::string devanagari;
  utf8::Append(0x939, &devanagari);
  EXPECT_EQ(utf8::AsciiLower("AbC" + devanagari), "abc" + devanagari);
}

// ----------------------------------------------------------- StringUtil

TEST(StringUtilTest, SplitAndJoin) {
  const std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, FormatTrimEquals) {
  EXPECT_EQ(StringFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Trim("  hi\t\n"), "hi");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

}  // namespace
}  // namespace mural
