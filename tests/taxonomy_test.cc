// Tests for the multilingual taxonomy substrate: construction invariants,
// transitive closures across IS-A and equivalence links, the closure cache,
// SemEQUAL semantics and structural statistics.

#include <gtest/gtest.h>

#include "taxonomy/taxonomy.h"
#include "text/language.h"

namespace mural {
namespace {

// A small bilingual concept tree mirroring the paper's Books example:
//
//   en:History                    ta:Charitram   (equivalent)
//     en:Historiography
//     en:Autobiography              ta:Suyasarithai (equivalent)
//   en:Science
//     en:Physics
struct Fixture {
  Taxonomy tax;
  SynsetId history, historiography, autobiography, science, physics;
  SynsetId charitram, suyasarithai;

  Fixture() {
    history = tax.AddSynset(lang::kEnglish, "History");
    historiography = tax.AddSynset(lang::kEnglish, "Historiography");
    autobiography = tax.AddSynset(lang::kEnglish, "Autobiography");
    science = tax.AddSynset(lang::kEnglish, "Science");
    physics = tax.AddSynset(lang::kEnglish, "Physics");
    charitram = tax.AddSynset(lang::kTamil, "Charitram");
    suyasarithai = tax.AddSynset(lang::kTamil, "Suyasarithai");
    EXPECT_TRUE(tax.AddIsA(historiography, history).ok());
    EXPECT_TRUE(tax.AddIsA(autobiography, history).ok());
    EXPECT_TRUE(tax.AddIsA(physics, science).ok());
    EXPECT_TRUE(tax.AddIsA(suyasarithai, charitram).ok());
    EXPECT_TRUE(tax.AddEquivalence(history, charitram).ok());
    EXPECT_TRUE(tax.AddEquivalence(autobiography, suyasarithai).ok());
  }
};

TEST(TaxonomyTest, ConstructionValidation) {
  Taxonomy tax;
  const SynsetId a = tax.AddSynset(lang::kEnglish, "A");
  const SynsetId b = tax.AddSynset(lang::kTamil, "B");
  EXPECT_TRUE(tax.AddIsA(a, a).IsInvalidArgument());
  EXPECT_TRUE(tax.AddIsA(a, b).IsInvalidArgument());  // cross-language IS-A
  EXPECT_TRUE(tax.AddIsA(a, 999).IsInvalidArgument());
  EXPECT_TRUE(tax.AddEquivalence(a, a).IsInvalidArgument());
  EXPECT_TRUE(tax.AddEquivalence(a, b).ok());
}

TEST(TaxonomyTest, LookupByLemmaAndLanguage) {
  Fixture f;
  EXPECT_EQ(f.tax.Lookup("History", lang::kEnglish).size(), 1u);
  EXPECT_EQ(f.tax.Lookup("History", lang::kTamil).size(), 0u);
  EXPECT_EQ(f.tax.Lookup("Charitram", lang::kTamil)[0], f.charitram);
  EXPECT_TRUE(f.tax.Lookup("Nonexistent", lang::kEnglish).empty());
}

TEST(TaxonomyTest, ClosureWithinOneLanguage) {
  Fixture f;
  const Closure c =
      f.tax.TransitiveClosure(f.science, /*follow_equivalence=*/false);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.count(f.science));
  EXPECT_TRUE(c.count(f.physics));
  EXPECT_FALSE(c.count(f.history));
}

TEST(TaxonomyTest, ClosureCrossesEquivalenceLinks) {
  Fixture f;
  const Closure c = f.tax.TransitiveClosure(f.history);
  // history + its two children + charitram + its child (reached via the
  // equivalence link, then IS-A below it) + suyasarithai via either path.
  EXPECT_TRUE(c.count(f.history));
  EXPECT_TRUE(c.count(f.historiography));
  EXPECT_TRUE(c.count(f.autobiography));
  EXPECT_TRUE(c.count(f.charitram));
  EXPECT_TRUE(c.count(f.suyasarithai));
  EXPECT_FALSE(c.count(f.science));
  EXPECT_EQ(c.size(), 5u);
}

TEST(TaxonomyTest, ClosureOfLeafIsItself) {
  Fixture f;
  const Closure c =
      f.tax.TransitiveClosure(f.physics, /*follow_equivalence=*/false);
  EXPECT_EQ(c.size(), 1u);
}

TEST(TaxonomyTest, ClosureOfAllUnionsRoots) {
  Fixture f;
  const Closure c = f.tax.TransitiveClosureOfAll({f.science, f.physics},
                                                 /*follow_equivalence=*/false);
  EXPECT_EQ(c.size(), 2u);
}

TEST(TaxonomyTest, ClosureIsMonotone) {
  // Closure of a parent contains closure of each child — SemEQUAL's
  // subsumption semantics depend on this.
  Fixture f;
  const Closure parent = f.tax.TransitiveClosure(f.history);
  const Closure child = f.tax.TransitiveClosure(f.autobiography);
  for (SynsetId id : child) EXPECT_TRUE(parent.count(id)) << id;
}

TEST(TaxonomyTest, SemMatchImplementsSubsumption) {
  Fixture f;
  const UniText history("History", lang::kEnglish);
  const UniText autob("Autobiography", lang::kEnglish);
  const UniText charitram("Charitram", lang::kTamil);
  const UniText physics("Physics", lang::kEnglish);
  // Everything under History matches History — including across languages.
  EXPECT_TRUE(f.tax.SemMatch(autob, history));
  EXPECT_TRUE(f.tax.SemMatch(charitram, history));
  EXPECT_TRUE(f.tax.SemMatch(history, history));  // reflexive
  // Tamil Suyasarithai is under Charitram == History.
  EXPECT_TRUE(
      f.tax.SemMatch(UniText("Suyasarithai", lang::kTamil), history));
  // Omega does NOT commute (Table 1): History is not under Autobiography.
  EXPECT_FALSE(f.tax.SemMatch(history, autob));
  EXPECT_FALSE(f.tax.SemMatch(physics, history));
  // Unknown lemmas never match.
  EXPECT_FALSE(f.tax.SemMatch(UniText("Blob", lang::kEnglish), history));
  EXPECT_FALSE(f.tax.SemMatch(history, UniText("Blob", lang::kEnglish)));
}

TEST(TaxonomyTest, HomonymsMatchThroughAnySense) {
  Taxonomy tax;
  const SynsetId root = tax.AddSynset(lang::kEnglish, "Institution");
  const SynsetId bank_river = tax.AddSynset(lang::kEnglish, "Bank");
  const SynsetId bank_fin = tax.AddSynset(lang::kEnglish, "Bank");
  ASSERT_TRUE(tax.AddIsA(bank_fin, root).ok());
  (void)bank_river;
  EXPECT_TRUE(tax.SemMatch(UniText("Bank", lang::kEnglish),
                           UniText("Institution", lang::kEnglish)));
}

TEST(TaxonomyTest, StatsReflectStructure) {
  Fixture f;
  const TaxonomyStats stats = f.tax.ComputeStats();
  EXPECT_EQ(stats.num_synsets, 7u);
  EXPECT_EQ(stats.num_isa_edges, 4u);
  EXPECT_EQ(stats.num_equiv_edges, 2u);
  EXPECT_EQ(stats.num_languages, 2u);
  EXPECT_EQ(stats.height, 1u);  // all trees here are 1 deep
  EXPECT_GT(stats.avg_fanout, 0.0);
}

TEST(TaxonomyTest, StatsHeightOfChain) {
  Taxonomy tax;
  SynsetId prev = tax.AddSynset(lang::kEnglish, "n0");
  for (int i = 1; i <= 5; ++i) {
    const SynsetId next =
        tax.AddSynset(lang::kEnglish, "n" + std::to_string(i));
    ASSERT_TRUE(tax.AddIsA(next, prev).ok());
    prev = next;
  }
  EXPECT_EQ(tax.ComputeStats().height, 5u);
}

// ----------------------------------------------------------- closure cache

TEST(ClosureCacheTest, MemoizesAndCountsHits) {
  Fixture f;
  ClosureCache cache(&f.tax);
  const Closure& c1 = cache.Get(f.history);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const Closure& c2 = cache.Get(f.history);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(&c1, &c2);  // same materialized hash table (paper §4.3)
  EXPECT_EQ(c1.size(), 5u);

  // Different equivalence mode is a distinct cache entry.
  const Closure& c3 = cache.Get(f.history, /*follow_equivalence=*/false);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(c3.size(), 3u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ClosureCacheTest, ReuseAcrossDuplicateRhsValues) {
  // Simulates the Omega join pattern: many RHS duplicates, one closure.
  Fixture f;
  ClosureCache cache(&f.tax);
  for (int i = 0; i < 100; ++i) cache.Get(f.history);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 99u);
}

// DAG (multiple inheritance) handling.
TEST(TaxonomyTest, DagClosureVisitsSharedDescendantsOnce) {
  Taxonomy tax;
  const SynsetId a = tax.AddSynset(lang::kEnglish, "A");
  const SynsetId b = tax.AddSynset(lang::kEnglish, "B");
  const SynsetId c = tax.AddSynset(lang::kEnglish, "C");
  const SynsetId d = tax.AddSynset(lang::kEnglish, "D");
  ASSERT_TRUE(tax.AddIsA(b, a).ok());
  ASSERT_TRUE(tax.AddIsA(c, a).ok());
  ASSERT_TRUE(tax.AddIsA(d, b).ok());
  ASSERT_TRUE(tax.AddIsA(d, c).ok());  // diamond
  const Closure closure = tax.TransitiveClosure(a);
  EXPECT_EQ(closure.size(), 4u);
  EXPECT_EQ(tax.ComputeStats().height, 2u);
}

}  // namespace
}  // namespace mural
