// Concurrency stress for the latched page-guard API: many workers fetch,
// write, evict and flush through ONE shared 4-frame BufferPool over a
// fault-injected disk.  Run under the tsan preset in CI (and the tsa
// preset compiles the pool's annotations); the asserts here are about
// Status propagation and data integrity — the data-race checking is the
// sanitizer's job.
//
// Protocol under test (see DESIGN.md "Storage concurrency"):
//   * table_mu_ guards the frame table; per-frame SharedMutex latches
//     guard the page images (ReadPageGuard shared, WritePageGuard
//     exclusive).
//   * With 4 frames against 16 pages every worker round trips through
//     PinPage/AcquireFreeFrame/eviction, so pin counts, LRU membership
//     and dirty write-back all run concurrently.
//   * FlushAll runs against live fetch traffic.
//   * An armed disk fault surfaces as a clean IOError Status from ANY of
//     those paths, and never corrupts pages that were already durable.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page.h"

namespace mural {
namespace {

constexpr size_t kFrames = 4;
constexpr size_t kPages = 16;
constexpr int kWorkers = 4;
constexpr int kRoundsPerWorker = 200;

// Slot 0: immutable birthmark, verified on every read.
std::string Birthmark(PageId id) {
  return "page-" + std::to_string(id) + "-birthmark";
}

// Slot 1: mutable cell, always overwritten in place with a same-length
// value so Update never needs to grow the record.
std::string Cell(uint64_t v) {
  std::string s = std::to_string(v % 1000000);
  return std::string(6 - s.size(), '0') + s;
}

/// Creates kPages pages, each with the birthmark in slot 0 and "000000" in
/// slot 1, and flushes them to disk.
Status Populate(BufferPool* pool, std::vector<PageId>* ids) {
  for (size_t p = 0; p < kPages; ++p) {
    MURAL_ASSIGN_OR_RETURN(WritePageGuard guard, pool->NewPage());
    guard->Init();
    MURAL_RETURN_IF_ERROR(guard->Insert(Slice(Birthmark(guard.id()))).status());
    MURAL_RETURN_IF_ERROR(guard->Insert(Slice(Cell(0))).status());
    guard.MarkDirty();
    ids->push_back(guard.id());
  }
  return pool->FlushAll();
}

/// One worker: a deterministic LCG walk over the pages.  Mostly reads
/// (verifying the birthmark), some in-place writes through the exclusive
/// latch, a sprinkle of read->Upgrade() and FlushAll.  Any error must be a
/// clean Status; under an armed disk only IOError is acceptable.
Status WorkerBody(BufferPool* pool, const std::vector<PageId>& ids, int seed,
                  bool faults_armed) {
  uint64_t rng = 0x9e3779b97f4a7c15ull * (seed + 1);
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int round = 0; round < kRoundsPerWorker; ++round) {
    const PageId id = ids[next() % ids.size()];
    const uint64_t dice = next() % 100;
    Status status = Status::OK();
    if (dice < 70) {
      // Shared read: birthmark must be intact whatever else is going on.
      StatusOr<ReadPageGuard> guard = pool->Fetch(id);
      if (guard.ok()) {
        StatusOr<Slice> rec = (*guard)->Get(0);
        if (!rec.ok()) {
          status = rec.status();
        } else if (rec->ToStringView() != Birthmark(id)) {
          return Status::Internal("birthmark corrupted on page " +
                                  std::to_string(id));
        }
      } else {
        status = guard.status();
      }
    } else if (dice < 85) {
      // Exclusive write: same-length in-place update of the cell.
      StatusOr<WritePageGuard> guard = pool->FetchForWrite(id);
      if (guard.ok()) {
        status = (*guard)->Update(1, Slice(Cell(next())));
        if (status.ok()) guard->MarkDirty();
      } else {
        status = guard.status();
      }
    } else if (dice < 95) {
      // Read, then trade the shared latch for the exclusive one.
      StatusOr<ReadPageGuard> probe = pool->Fetch(id);
      if (probe.ok()) {
        WritePageGuard guard = std::move(*probe).Upgrade();
        if (guard.Valid()) {
          status = guard->Update(1, Slice(Cell(next())));
          if (status.ok()) guard.MarkDirty();
        }
      } else {
        status = probe.status();
      }
    } else {
      status = pool->FlushAll();
    }
    if (!status.ok()) {
      if (!faults_armed) return status;
      if (status.code() != StatusCode::kIOError) {
        return Status::Internal("expected IOError under faults, got " +
                                status.ToString());
      }
    }
  }
  return Status::OK();
}

/// Full integrity check through a FRESH pool over the same disk, so every
/// byte read went through eviction/write-back at least once.
void VerifyDurable(DiskManager* disk, const std::vector<PageId>& ids) {
  BufferPool fresh(disk, kFrames);
  for (const PageId id : ids) {
    StatusOr<ReadPageGuard> guard = fresh.Fetch(id);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    StatusOr<Slice> rec = (*guard)->Get(0);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->ToStringView(), Birthmark(id));
    StatusOr<Slice> cell = (*guard)->Get(1);
    ASSERT_TRUE(cell.ok()) << cell.status().ToString();
    EXPECT_EQ(cell->size(), 6u);  // same-length discipline held
  }
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchEvictFlush) {
  MemoryDiskManager disk;
  FaultInjectionDiskManager faulty(&disk);
  BufferPool pool(&faulty, kFrames);
  std::vector<PageId> ids;
  ASSERT_TRUE(Populate(&pool, &ids).ok());

  ThreadPool workers(kWorkers);
  std::vector<std::future<Status>> futures;
  for (int w = 0; w < kWorkers; ++w) {
    futures.push_back(workers.Submit([&pool, &ids, w] {
      return WorkerBody(&pool, ids, w, /*faults_armed=*/false);
    }));
  }
  for (auto& f : futures) {
    const Status s = f.get();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  // 4 frames over 16 pages: the walk cannot have stayed resident.
  const BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.misses, kPages);  // initial loads + re-loads
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.dirty_writebacks, 0u);

  ASSERT_TRUE(pool.FlushAll().ok());
  VerifyDurable(&faulty, ids);
}

TEST(BufferPoolConcurrencyTest, ArmedFaultsSurfaceAsIOErrorAndRecover) {
  MemoryDiskManager disk;
  FaultInjectionDiskManager faulty(&disk);
  BufferPool pool(&faulty, kFrames);
  std::vector<PageId> ids;
  ASSERT_TRUE(Populate(&pool, &ids).ok());

  // Let a handful of operations through, then fail everything: eviction
  // write-backs, miss reads and flushes all hit the armed disk while four
  // workers are mid-traffic.  WorkerBody tolerates IOError (and only
  // IOError) in this mode.
  faulty.Arm(20);
  ThreadPool workers(kWorkers);
  std::vector<std::future<Status>> futures;
  for (int w = 0; w < kWorkers; ++w) {
    futures.push_back(workers.Submit([&pool, &ids, w] {
      return WorkerBody(&pool, ids, w, /*faults_armed=*/true);
    }));
  }
  for (auto& f : futures) {
    const Status s = f.get();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_GT(faulty.injected_failures(), 0u);

  // Recovery: disarm, run a clean concurrent round, then prove no page
  // that reached the disk was ever corrupted.
  faulty.Disarm();
  std::vector<std::future<Status>> retry;
  for (int w = 0; w < kWorkers; ++w) {
    retry.push_back(workers.Submit([&pool, &ids, w] {
      return WorkerBody(&pool, ids, w + kWorkers, /*faults_armed=*/false);
    }));
  }
  for (auto& f : retry) {
    const Status s = f.get();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  VerifyDurable(&faulty, ids);
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchersOfOneColdPageDedupTheLoad) {
  MemoryDiskManager disk;
  BufferPool warmup(&disk, kFrames);
  std::vector<PageId> ids;
  ASSERT_TRUE(Populate(&warmup, &ids).ok());

  // A fresh pool: page ids[0] is cold.  Every worker fetches it at once;
  // the loader's exclusive latch serializes the single read, the rest pin
  // the placeholder and wait.  All must observe the full image.
  BufferPool pool(&disk, kFrames);
  ThreadPool workers(kWorkers);
  std::vector<std::future<Status>> futures;
  for (int w = 0; w < kWorkers; ++w) {
    futures.push_back(workers.Submit([&pool, &ids]() -> Status {
      for (int i = 0; i < 50; ++i) {
        MURAL_ASSIGN_OR_RETURN(const ReadPageGuard guard,
                               pool.Fetch(ids[0]));
        MURAL_ASSIGN_OR_RETURN(const Slice rec, guard->Get(0));
        if (rec.ToStringView() != Birthmark(ids[0])) {
          return Status::Internal("partial page observed");
        }
      }
      return Status::OK();
    }));
  }
  for (auto& f : futures) {
    const Status s = f.get();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

}  // namespace
}  // namespace mural
