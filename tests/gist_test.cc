// Tests for the GiST framework itself, instantiated with a second,
// deliberately simple extension: 1-D integer intervals (an R-Tree-style
// key).  This proves the framework is genuinely generic — the paper's
// architectural point about building the M-Tree *through* GiST rather
// than welding it into the engine — and pins down framework behaviour
// (balanced growth, adjust-keys on the insert path, split propagation)
// with keys whose semantics are easy to verify by brute force.

#include <gtest/gtest.h>

#include <set>

#include "common/coding.h"
#include "common/random.h"
#include "index/gist.h"
#include "storage/disk_manager.h"

namespace mural {
namespace {

// Keys: [lo, hi] closed intervals; leaf entries carry points (lo == hi).
// Query: GistQuery{key = point encoded, radius ignored}: "contains point".
struct IntervalOps : public GistOps {
  static std::string Make(int32_t lo, int32_t hi) {
    std::string key;
    PutU32(&key, static_cast<uint32_t>(lo));
    PutU32(&key, static_cast<uint32_t>(hi));
    return key;
  }
  static std::pair<int32_t, int32_t> Parse(std::string_view key) {
    uint32_t lo = 0, hi = 0;
    Decoder dec(key);
    (void)dec.GetU32(&lo);
    (void)dec.GetU32(&hi);
    return {static_cast<int32_t>(lo), static_cast<int32_t>(hi)};
  }

  bool Consistent(const GistEntry& entry, const GistQuery& query,
                  bool) const override {
    const auto [lo, hi] = Parse(entry.key);
    const auto [qlo, qhi] = Parse(query.key);
    return qlo <= hi && lo <= qhi;  // interval overlap
  }
  std::string Union(const std::vector<GistEntry>& entries) const override {
    int32_t lo = INT32_MAX, hi = INT32_MIN;
    for (const GistEntry& e : entries) {
      const auto [elo, ehi] = Parse(e.key);
      lo = std::min(lo, elo);
      hi = std::max(hi, ehi);
    }
    return Make(lo, hi);
  }
  double Penalty(std::string_view subtree_key,
                 std::string_view new_key) const override {
    const auto [slo, shi] = Parse(subtree_key);
    const auto [nlo, nhi] = Parse(new_key);
    const int32_t grown =
        std::max(shi, nhi) - std::min(slo, nlo) - (shi - slo);
    return static_cast<double>(grown);
  }
  void PickSplit(std::vector<GistEntry> entries,
                 std::vector<GistEntry>* left,
                 std::vector<GistEntry>* right) const override {
    // Sort by lo and cut in half — the classic linear split.
    std::sort(entries.begin(), entries.end(),
              [](const GistEntry& a, const GistEntry& b) {
                return Parse(a.key).first < Parse(b.key).first;
              });
    const size_t mid = entries.size() / 2;
    left->assign(std::make_move_iterator(entries.begin()),
                 std::make_move_iterator(entries.begin() + mid));
    right->assign(std::make_move_iterator(entries.begin() + mid),
                  std::make_move_iterator(entries.end()));
  }
};

class GistTest : public ::testing::Test {
 protected:
  GistTest() : pool_(&disk_, 256) {}
  MemoryDiskManager disk_;
  BufferPool pool_;
  IntervalOps ops_;
};

TEST_F(GistTest, EmptyTreeFindsNothing) {
  auto tree = GistTree::Create(&pool_, &ops_);
  ASSERT_TRUE(tree.ok());
  int hits = 0;
  GistQuery query;
  query.key = IntervalOps::Make(0, 100);
  ASSERT_TRUE(tree->Search(query, [&](const GistEntry&) { ++hits; }).ok());
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(tree->height(), 1u);
}

TEST_F(GistTest, PointQueriesMatchBruteForce) {
  auto tree = GistTree::Create(&pool_, &ops_);
  ASSERT_TRUE(tree.ok());
  Rng rng(33);
  std::vector<int32_t> points;
  for (uint32_t i = 0; i < 5000; ++i) {
    const int32_t p = static_cast<int32_t>(rng.Uniform(10000));
    points.push_back(p);
    ASSERT_TRUE(tree->Insert(IntervalOps::Make(p, p), Rid{i, 0}).ok());
  }
  EXPECT_GT(tree->height(), 1u);  // must have split
  EXPECT_GT(tree->stats().splits, 0u);

  for (int probe = 0; probe < 30; ++probe) {
    const int32_t lo = static_cast<int32_t>(rng.Uniform(9000));
    const int32_t hi = lo + static_cast<int32_t>(rng.Uniform(500));
    std::multiset<uint32_t> expect;
    for (uint32_t i = 0; i < points.size(); ++i) {
      if (points[i] >= lo && points[i] <= hi) expect.insert(i);
    }
    std::multiset<uint32_t> got;
    GistQuery query;
    query.key = IntervalOps::Make(lo, hi);
    ASSERT_TRUE(tree->Search(query, [&](const GistEntry& e) {
      got.insert(e.rid.page);
    }).ok());
    EXPECT_EQ(got, expect) << "[" << lo << "," << hi << "]";
  }
}

TEST_F(GistTest, RangeQueriesPruneDisjointSubtrees) {
  auto tree = GistTree::Create(&pool_, &ops_);
  ASSERT_TRUE(tree.ok());
  // Two far-apart clusters.
  for (uint32_t i = 0; i < 2000; ++i) {
    const int32_t p = static_cast<int32_t>(i % 2 == 0 ? i : 1000000 + i);
    ASSERT_TRUE(tree->Insert(IntervalOps::Make(p, p), Rid{i, 0}).ok());
  }
  tree->stats().Reset();
  GistQuery query;
  query.key = IntervalOps::Make(0, 3000);
  int hits = 0;
  ASSERT_TRUE(tree->Search(query, [&](const GistEntry&) { ++hits; }).ok());
  EXPECT_EQ(hits, 1000);
  // With a selective query, far less than everything was tested.
  EXPECT_LT(tree->stats().leaf_entries_tested, 2000u);
}

TEST_F(GistTest, EntryCountersAndPagesGrow) {
  auto tree = GistTree::Create(&pool_, &ops_);
  ASSERT_TRUE(tree.ok());
  for (uint32_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree->Insert(IntervalOps::Make(static_cast<int32_t>(i),
                                               static_cast<int32_t>(i)),
                             Rid{i, 0})
                    .ok());
  }
  EXPECT_EQ(tree->num_entries(), 3000u);
  EXPECT_GT(tree->num_pages(), 3u);
  EXPECT_EQ(tree->stats().inserts, 3000u);
}

TEST_F(GistTest, OversizedKeysRejected) {
  auto tree = GistTree::Create(&pool_, &ops_);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(
      tree->Insert(std::string(kPageSize, 'k'), Rid{0, 0}).ok());
}

}  // namespace
}  // namespace mural
