// Tests for expressions and physical operators, run against in-memory
// tables built through the catalog.

#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "exec/agg_ops.h"
#include "exec/basic_ops.h"
#include "exec/join_ops.h"
#include "exec/mural_ops.h"
#include "exec/scan_ops.h"
#include "catalog/tuple_codec.h"
#include "common/random.h"
#include "index/btree.h"
#include "index/mtree.h"
#include "phonetic/transformer.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"

namespace mural {
namespace {

Value Uni(const char* text, LangId lang, bool materialize = true) {
  UniText u(text, lang);
  if (materialize) PhoneticTransformer::Default().Materialize(&u);
  return Value::Uni(std::move(u));
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : pool_(&disk_, 256), catalog_(&pool_) {
    ctx_.lexequal_threshold = 2;
  }

  TableInfo* MakeNames() {
    Schema schema({{"id", TypeId::kInt32},
                   {"name", TypeId::kUniText, /*mat=*/true}});
    TableInfo* t = *catalog_.CreateTable("names", schema);
    TableWriter w(t);
    const std::pair<const char*, LangId> data[] = {
        {"nehru", lang::kEnglish},  {"nehrU", lang::kHindi},
        {"neharu", lang::kTamil},   {"gandhi", lang::kEnglish},
        {"patel", lang::kEnglish},  {"smith", lang::kEnglish},
        {"smyth", lang::kEnglish},  {"schmidt", lang::kGerman},
    };
    int id = 0;
    for (const auto& [name, lang] : data) {
      EXPECT_TRUE(w.Insert({Value::Int32(id++), Uni(name, lang)}).ok());
    }
    return t;
  }

  /// The bilingual History fixture from the taxonomy tests.
  void MakeTaxonomy() {
    tax_ = std::make_unique<Taxonomy>();
    history_ = tax_->AddSynset(lang::kEnglish, "History");
    const SynsetId autob = tax_->AddSynset(lang::kEnglish, "Autobiography");
    const SynsetId science = tax_->AddSynset(lang::kEnglish, "Science");
    const SynsetId charitram = tax_->AddSynset(lang::kTamil, "Charitram");
    ASSERT_TRUE(tax_->AddIsA(autob, history_).ok());
    ASSERT_TRUE(tax_->AddEquivalence(history_, charitram).ok());
    (void)science;
    cache_ = std::make_unique<ClosureCache>(tax_.get());
    ctx_.taxonomy = tax_.get();
    ctx_.closure_cache = cache_.get();
  }

  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  ExecContext ctx_;
  std::unique_ptr<Taxonomy> tax_;
  std::unique_ptr<ClosureCache> cache_;
  SynsetId history_ = 0;
};

// ------------------------------------------------------------ expressions

TEST_F(ExecTest, ComparisonAndLogicalExpressions) {
  Row row{Value::Int32(5), Value::Text("abc")};
  auto ge = Cmp(CompareOp::kGe, Col(0, "a"), Lit(Value::Int32(5)));
  EXPECT_TRUE(*EvalPredicate(*ge, row, &ctx_));
  auto lt = Cmp(CompareOp::kLt, Col(0, "a"), Lit(Value::Int32(5)));
  EXPECT_FALSE(*EvalPredicate(*lt, row, &ctx_));
  auto both = And(ge, Eq(Col(1, "b"), Lit(Value::Text("abc"))));
  EXPECT_TRUE(*EvalPredicate(*both, row, &ctx_));
  EXPECT_FALSE(*EvalPredicate(*Not(both), row, &ctx_));
  // NULL handling: comparison with NULL is NULL -> predicate false.
  Row with_null{Value::Null(), Value::Text("abc")};
  EXPECT_FALSE(*EvalPredicate(*ge, with_null, &ctx_));
  // OR short-circuits around the NULL.
  auto or_expr = Or(Eq(Col(1, "b"), Lit(Value::Text("abc"))), ge);
  EXPECT_TRUE(*EvalPredicate(*or_expr, with_null, &ctx_));
}

TEST_F(ExecTest, LexEqualExpressionUsesSessionThreshold) {
  Row row{Uni("nehru", lang::kEnglish), Uni("neharu", lang::kTamil)};
  auto psi = LexEq(Col(0, "a"), Col(1, "b"));
  ctx_.lexequal_threshold = 2;
  EXPECT_TRUE(*EvalPredicate(*psi, row, &ctx_));
  ctx_.lexequal_threshold = 0;
  EXPECT_FALSE(*EvalPredicate(*psi, row, &ctx_));
  // Explicit override beats the session value.
  auto psi3 = LexEq(Col(0, "a"), Col(1, "b"), 3);
  EXPECT_TRUE(*EvalPredicate(*psi3, row, &ctx_));
}

TEST_F(ExecTest, LexEqualPrefersMaterializedPhonemes) {
  UniText u("nehru", lang::kEnglish);
  u.set_phonemes("zzz");  // poisoned: proves materialization is used
  Row row{Value::Uni(u), Uni("nehru", lang::kEnglish)};
  auto psi = LexEq(Col(0, "a"), Col(1, "b"));
  ctx_.lexequal_threshold = 1;
  EXPECT_FALSE(*EvalPredicate(*psi, row, &ctx_));
}

TEST_F(ExecTest, SemEqualExpression) {
  MakeTaxonomy();
  Row row{Uni("Autobiography", lang::kEnglish, false),
          Uni("History", lang::kEnglish, false)};
  auto omega = SemEq(Col(0, "a"), Col(1, "b"));
  EXPECT_TRUE(*EvalPredicate(*omega, row, &ctx_));
  // Not commutative.
  auto reversed = SemEq(Col(1, "b"), Col(0, "a"));
  EXPECT_FALSE(*EvalPredicate(*reversed, row, &ctx_));
  // Without a taxonomy: error.
  ctx_.taxonomy = nullptr;
  EXPECT_FALSE(omega->Evaluate(row, &ctx_).ok());
}

TEST_F(ExecTest, LangInExpression) {
  Row row{Uni("nehru", lang::kHindi)};
  auto in = LangIn(Col(0, "a"), {lang::kHindi, lang::kTamil});
  EXPECT_TRUE(*EvalPredicate(*in, row, &ctx_));
  auto not_in = LangIn(Col(0, "a"), {lang::kEnglish});
  EXPECT_FALSE(*EvalPredicate(*not_in, row, &ctx_));
}

// -------------------------------------------------------------- operators

TEST_F(ExecTest, SeqScanReadsAllRows) {
  TableInfo* t = MakeNames();
  SeqScanOp scan(&ctx_, t);
  auto rows = CollectAll(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 8u);
  EXPECT_EQ((*rows)[0][0].int32(), 0);
  EXPECT_EQ((*rows)[7][1].unitext().text(), "schmidt");
}

TEST_F(ExecTest, FilterWithPsiPredicate) {
  TableInfo* t = MakeNames();
  const Value query = Uni("nehru", lang::kEnglish);
  auto op = std::make_unique<FilterOp>(
      &ctx_, std::make_unique<SeqScanOp>(&ctx_, t),
      LexEq(Col(1, "name"), Lit(query), 2));
  auto rows = CollectAll(op.get());
  ASSERT_TRUE(rows.ok());
  std::set<std::string> names;
  for (const Row& r : *rows) names.insert(r[1].unitext().text());
  EXPECT_TRUE(names.count("nehru"));
  EXPECT_TRUE(names.count("nehrU"));
  EXPECT_TRUE(names.count("neharu"));
  EXPECT_FALSE(names.count("gandhi"));
}

TEST_F(ExecTest, IndexScanMTreeWithLanguageResidual) {
  TableInfo* t = MakeNames();
  auto mtree = MTreeIndex::Create(&pool_);
  ASSERT_TRUE(mtree.ok());
  auto index = catalog_.CreateIndex("names_ph", "names", "name",
                                    /*on_phonemes=*/true, IndexKind::kMTree,
                                    std::move(*mtree));
  ASSERT_TRUE(index.ok());
  // Rebuild entries (index created after inserts).
  {
    Row row;
    for (auto it = t->heap->Begin(); it.Valid(); it.Next()) {
      ASSERT_TRUE(TupleCodec::Deserialize(t->schema, it.record(), &row).ok());
      ASSERT_TRUE((*index)
                      ->index
                      ->Insert(Value::Text(*row[1].unitext().phonemes()),
                               it.rid())
                      .ok());
    }
  }
  IndexProbe probe;
  probe.kind = IndexProbe::Kind::kWithin;
  probe.key = Value::Text(
      PhoneticTransformer::Default().Transform("nehru", lang::kEnglish));
  probe.radius = 2;
  // Residual: only Hindi/Tamil results (drops the English 'nehru').
  IndexScanOp scan(&ctx_, t, *index, probe,
                   LangIn(Col(1, "name"), {lang::kHindi, lang::kTamil}));
  auto rows = CollectAll(&scan);
  ASSERT_TRUE(rows.ok());
  std::set<std::string> names;
  for (const Row& r : *rows) names.insert(r[1].unitext().text());
  EXPECT_EQ(names, (std::set<std::string>{"nehrU", "neharu"}));
}

TEST_F(ExecTest, ProjectLimitSort) {
  TableInfo* t = MakeNames();
  auto sort = std::make_unique<SortOp>(
      &ctx_, std::make_unique<SeqScanOp>(&ctx_, t),
      std::vector<SortKey>{{0, /*ascending=*/false}});
  auto limit = std::make_unique<LimitOp>(&ctx_, std::move(sort), 3);
  OpPtr project = ProjectOp::ByColumns(&ctx_, std::move(limit), {0});
  auto rows = CollectAll(project.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].int32(), 7);
  EXPECT_EQ((*rows)[2][0].int32(), 5);
  EXPECT_EQ(project->output_schema().NumColumns(), 1u);
}

TEST_F(ExecTest, HashJoinMatchesNestedLoop) {
  Schema s1({{"k", TypeId::kInt32}, {"a", TypeId::kText}});
  Schema s2({{"k", TypeId::kInt32}, {"b", TypeId::kText}});
  std::vector<Row> r1, r2;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    r1.push_back({Value::Int32(static_cast<int32_t>(rng.Uniform(10))),
                  Value::Text("a" + std::to_string(i))});
    r2.push_back({Value::Int32(static_cast<int32_t>(rng.Uniform(10))),
                  Value::Text("b" + std::to_string(i))});
  }
  auto hash = std::make_unique<HashJoinOp>(
      &ctx_, std::make_unique<ValuesOp>(&ctx_, s1, r1),
      std::make_unique<ValuesOp>(&ctx_, s2, r2), 0, 0);
  auto nlj = std::make_unique<NestedLoopJoinOp>(
      &ctx_, std::make_unique<ValuesOp>(&ctx_, s1, r1),
      std::make_unique<ValuesOp>(&ctx_, s2, r2),
      Eq(Col(0, "k"), Col(2, "k")));
  auto hash_rows = CollectAll(hash.get());
  auto nlj_rows = CollectAll(nlj.get());
  ASSERT_TRUE(hash_rows.ok() && nlj_rows.ok());
  auto Key = [](const Row& r) {
    return r[1].text() + "|" + r[3].text();
  };
  std::multiset<std::string> h, n;
  for (const Row& r : *hash_rows) h.insert(Key(r));
  for (const Row& r : *nlj_rows) n.insert(Key(r));
  EXPECT_EQ(h, n);
  EXPECT_GT(h.size(), 0u);
}

TEST_F(ExecTest, HashJoinSkipsNullKeys) {
  Schema s({{"k", TypeId::kInt32}});
  std::vector<Row> left{{Value::Null()}, {Value::Int32(1)}};
  std::vector<Row> right{{Value::Null()}, {Value::Int32(1)}};
  HashJoinOp join(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, left),
                  std::make_unique<ValuesOp>(&ctx_, s, right), 0, 0);
  auto rows = CollectAll(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // only 1=1; NULLs never join
}

TEST_F(ExecTest, AggregateGlobalAndGrouped) {
  Schema s({{"g", TypeId::kInt32}, {"v", TypeId::kInt32}});
  std::vector<Row> rows{{Value::Int32(1), Value::Int32(10)},
                        {Value::Int32(1), Value::Int32(20)},
                        {Value::Int32(2), Value::Int32(5)},
                        {Value::Int32(2), Value::Null()}};
  // Global count(*), sum(v), avg(v), min(v), max(v).
  AggregateOp global(
      &ctx_, std::make_unique<ValuesOp>(&ctx_, s, rows), {},
      {{AggKind::kCountStar, 0, "cnt"},
       {AggKind::kSum, 1, "sum"},
       {AggKind::kAvg, 1, "avg"},
       {AggKind::kMin, 1, "min"},
       {AggKind::kMax, 1, "max"}});
  auto out = CollectAll(&global);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0][0].int64(), 4);
  EXPECT_EQ((*out)[0][1].float64(), 35.0);
  EXPECT_NEAR((*out)[0][2].float64(), 35.0 / 3, 1e-9);  // NULL skipped
  EXPECT_EQ((*out)[0][3].int32(), 5);
  EXPECT_EQ((*out)[0][4].int32(), 20);

  AggregateOp grouped(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, rows),
                      {0}, {{AggKind::kCount, 1, "cnt"}});
  auto gout = CollectAll(&grouped);
  ASSERT_TRUE(gout.ok());
  ASSERT_EQ(gout->size(), 2u);
  EXPECT_EQ((*gout)[0][1].int64(), 2);  // group 1
  EXPECT_EQ((*gout)[1][1].int64(), 1);  // group 2: NULL not counted
}

TEST_F(ExecTest, AggregateOverEmptyInput) {
  Schema s({{"v", TypeId::kInt32}});
  AggregateOp agg(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, std::vector<Row>{}), {},
                  {{AggKind::kCountStar, 0, "cnt"},
                   {AggKind::kSum, 0, "sum"}});
  auto out = CollectAll(&agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0][0].int64(), 0);
  EXPECT_TRUE((*out)[0][1].is_null());
}

TEST_F(ExecTest, UnionAllConcatenates) {
  Schema s({{"v", TypeId::kInt32}});
  UnionAllOp u(&ctx_,
               std::make_unique<ValuesOp>(
                   &ctx_, s, std::vector<Row>{{Value::Int32(1)}}),
               std::make_unique<ValuesOp>(
                   &ctx_, s,
                   std::vector<Row>{{Value::Int32(2)}, {Value::Int32(3)}}));
  auto rows = CollectAll(&u);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[2][0].int32(), 3);
}

// --------------------------------------------------------- Psi/Omega join

TEST_F(ExecTest, LexJoinFindsHomophonesAndTagsDistance) {
  Schema s({{"name", TypeId::kUniText}});
  std::vector<Row> left{{Uni("smith", lang::kEnglish)},
                        {Uni("patel", lang::kEnglish)}};
  std::vector<Row> right{{Uni("smyth", lang::kEnglish)},
                         {Uni("schmidt", lang::kGerman)},
                         {Uni("gandhi", lang::kEnglish)}};
  LexJoinOp::Options options;
  options.threshold = 2;
  options.tag_distance = true;
  LexJoinOp join(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, left),
                 std::make_unique<ValuesOp>(&ctx_, s, right), 0, 0,
                 options);
  auto rows = CollectAll(&join);
  ASSERT_TRUE(rows.ok());
  // smith~smyth (d<=1) and smith~schmidt (/smiF/ vs /Smit/, d=2).
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(join.output_schema().NumColumns(), 3u);
  for (const Row& r : *rows) {
    EXPECT_EQ(r[0].unitext().text(), "smith");
    EXPECT_LE(r[2].int32(), 2);
  }
}

TEST_F(ExecTest, LexJoinAgreesWithFilterOverCrossProduct) {
  TableInfo* t = MakeNames();
  LexJoinOp::Options options;
  options.threshold = 2;
  LexJoinOp join(&ctx_, std::make_unique<SeqScanOp>(&ctx_, t),
                 std::make_unique<SeqScanOp>(&ctx_, t), 1, 1, options);
  auto join_rows = CollectAll(&join);
  ASSERT_TRUE(join_rows.ok());

  NestedLoopJoinOp cross(&ctx_, std::make_unique<SeqScanOp>(&ctx_, t),
                         std::make_unique<SeqScanOp>(&ctx_, t),
                         LexEq(Col(1, "l"), Col(3, "r"), 2));
  auto cross_rows = CollectAll(&cross);
  ASSERT_TRUE(cross_rows.ok());
  EXPECT_EQ(join_rows->size(), cross_rows->size());
  EXPECT_GE(join_rows->size(), 8u);  // at least the reflexive pairs
}

TEST_F(ExecTest, SemJoinReusesClosures) {
  MakeTaxonomy();
  Schema s({{"cat", TypeId::kUniText}});
  std::vector<Row> lhs{{Uni("Autobiography", lang::kEnglish, false)},
                       {Uni("Science", lang::kEnglish, false)},
                       {Uni("Charitram", lang::kTamil, false)}};
  // RHS has duplicate values: the closure must be computed once.
  std::vector<Row> rhs{{Uni("History", lang::kEnglish, false)},
                       {Uni("History", lang::kEnglish, false)},
                       {Uni("History", lang::kEnglish, false)}};
  SemJoinOp join(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, lhs),
                 std::make_unique<ValuesOp>(&ctx_, s, rhs), 0, 0);
  auto rows = CollectAll(&join);
  ASSERT_TRUE(rows.ok());
  // 2 matching LHS values x 3 RHS duplicates.
  EXPECT_EQ(rows->size(), 6u);
  EXPECT_EQ(ctx_.stats.closure_computations, 1u);
  EXPECT_EQ(ctx_.stats.closure_reuses, 2u);
}

TEST_F(ExecTest, SemJoinSortUniqueWithoutCache) {
  MakeTaxonomy();
  Schema s({{"cat", TypeId::kUniText}});
  std::vector<Row> lhs{{Uni("Autobiography", lang::kEnglish, false)}};
  std::vector<Row> rhs{{Uni("History", lang::kEnglish, false)},
                       {Uni("Science", lang::kEnglish, false)},
                       {Uni("History", lang::kEnglish, false)}};
  SemJoinOp::Options options;
  options.use_closure_cache = false;
  options.sort_unique_rhs = true;
  SemJoinOp join(&ctx_, std::make_unique<ValuesOp>(&ctx_, s, lhs),
                 std::make_unique<ValuesOp>(&ctx_, s, rhs), 0, 0, options);
  auto rows = CollectAll(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // autobiography under both History dups
  // Two unique RHS values -> exactly two closure computations.
  EXPECT_EQ(ctx_.stats.closure_computations, 2u);
  EXPECT_EQ(ctx_.stats.closure_reuses, 1u);
}

TEST_F(ExecTest, ExplainTreeRendersPlanShape) {
  TableInfo* t = MakeNames();
  auto filter = std::make_unique<FilterOp>(
      &ctx_, std::make_unique<SeqScanOp>(&ctx_, t),
      Eq(Col(0, "id"), Lit(Value::Int32(1))));
  const std::string explain = ExplainTree(*filter);
  EXPECT_NE(explain.find("Filter"), std::string::npos);
  EXPECT_NE(explain.find("SeqScan(names)"), std::string::npos);
}

}  // namespace
}  // namespace mural
