// Tests for the UniText datatype proper (paper §3.1-3.2.1): the compose /
// decompose operators, the text-component comparison semantics, the
// full-equality operator, and UTF-8 validation at the type boundary.

#include <gtest/gtest.h>

#include "common/utf8.h"
#include "text/unitext.h"

namespace mural {
namespace {

TEST(UniTextTest, ComposeAcceptsValidUtf8) {
  auto u = UniText::Compose("nehru", lang::kEnglish);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->text(), "nehru");
  EXPECT_EQ(u->lang(), lang::kEnglish);

  // Multi-byte scripts compose fine.
  std::string devanagari;
  utf8::Append(0x928, &devanagari);  // NA
  utf8::Append(0x947, &devanagari);  // E matra
  auto hi = UniText::Compose(devanagari, lang::kHindi);
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(hi->LengthCodePoints(), 2u);
}

TEST(UniTextTest, ComposeRejectsMalformedUtf8) {
  auto bad = UniText::Compose(std::string("\xC0\xAF", 2), lang::kEnglish);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(UniTextTest, ComposeByLanguageName) {
  auto u = UniText::Compose("charitram", "Tamil");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->lang(), lang::kTamil);
  auto iso = UniText::Compose("charitram", "ta");
  ASSERT_TRUE(iso.ok());
  EXPECT_EQ(iso->lang(), lang::kTamil);
  EXPECT_TRUE(UniText::Compose("x", "Klingon").status().IsNotFound());
}

TEST(UniTextTest, DecomposeIsInverseOfCompose) {
  auto u = UniText::Compose("une corde", lang::kFrench);
  ASSERT_TRUE(u.ok());
  const auto [text, lang] = u->Decompose();
  EXPECT_EQ(text, "une corde");
  EXPECT_EQ(lang, lang::kFrench);
}

TEST(UniTextTest, TextComparisonIgnoresLanguage) {
  // Paper §3.2.1: the ordinary text operators see only the Text part.
  const UniText a("alpha", lang::kEnglish);
  const UniText b("alpha", lang::kTamil);
  const UniText c("beta", lang::kEnglish);
  EXPECT_EQ(a.CompareText(b), 0);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(c < a);
}

TEST(UniTextTest, FullEqualsRequiresBothComponents) {
  const UniText a("alpha", lang::kEnglish);
  const UniText b("alpha", lang::kTamil);
  const UniText c("alpha", lang::kEnglish);
  EXPECT_FALSE(a.FullEquals(b));
  EXPECT_TRUE(a.FullEquals(c));
}

TEST(UniTextTest, PhonemeMaterializationRoundTrip) {
  UniText u("nehru", lang::kEnglish);
  EXPECT_FALSE(u.has_phonemes());
  u.set_phonemes("nEru");
  ASSERT_TRUE(u.has_phonemes());
  EXPECT_EQ(*u.phonemes(), "nEru");
  u.clear_phonemes();
  EXPECT_FALSE(u.has_phonemes());
}

TEST(UniTextTest, ToStringShowsLanguage) {
  const UniText u("nehru", lang::kHindi);
  EXPECT_EQ(u.ToString(), "'nehru'@Hindi");
  const UniText unknown("x", 999);
  EXPECT_EQ(unknown.ToString(), "'x'@lang#999");
}

TEST(UniTextTest, LengthCountsCodePointsNotBytes) {
  std::string s = "ab";
  utf8::Append(0x20AC, &s);  // euro sign, 3 bytes
  const UniText u(s, lang::kEnglish);
  EXPECT_EQ(u.text().size(), 5u);
  EXPECT_EQ(u.LengthCodePoints(), 3u);
}

}  // namespace
}  // namespace mural
