// Semantics of the annotated lock vocabulary (common/mutex.h): the wrappers
// must behave exactly like the std primitives they cover, and CondVar::Wait
// must release/reacquire so waiters make progress.  The *static* half of
// the contract — GUARDED_BY violations failing to compile — is covered by
// tests/negative_compile/guarded_by_violation.cc under the `tsa` preset.
//
// TryLock probes run on a second thread: try_lock on a mutex the calling
// thread already owns is undefined behavior.

#include "common/mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace mural {
namespace {

struct GuardedCounter {
  Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

struct SharedGuardedCounter {
  SharedMutex mu;
  int value GUARDED_BY(mu) = 0;
};

struct WaitState {
  Mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  int woke GUARDED_BY(mu) = 0;
};

TEST(MutexTest, LockExcludesOtherThreads) {
  Mutex mu;
  mu.Lock();
  bool contender_acquired = true;
  std::thread t([&] {
    if (mu.TryLock()) {
      contender_acquired = true;
      mu.Unlock();
    } else {
      contender_acquired = false;
    }
  });
  t.join();
  EXPECT_FALSE(contender_acquired);
  mu.Unlock();

  std::thread t2([&] {
    if (mu.TryLock()) {
      contender_acquired = true;
      mu.Unlock();
    } else {
      contender_acquired = false;
    }
  });
  t2.join();
  EXPECT_TRUE(contender_acquired);
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  GuardedCounter c;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(c.mu);
        ++c.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(c.mu);
  EXPECT_EQ(c.value, kThreads * kIters);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedGuardedCounter c;
  c.mu.ReaderLock();
  bool second_reader_ok = false;
  bool writer_excluded = true;
  std::thread t([&] {
    if (c.mu.ReaderTryLock()) {  // shared with the main thread's hold
      second_reader_ok = true;
      c.mu.ReaderUnlock();
    }
    if (c.mu.TryLock()) {  // exclusive must fail while a reader holds
      writer_excluded = false;
      c.mu.Unlock();
    }
  });
  t.join();
  EXPECT_TRUE(second_reader_ok);
  EXPECT_TRUE(writer_excluded);
  c.mu.ReaderUnlock();

  {
    WriterMutexLock lock(c.mu);
    c.value = 42;
  }
  {
    ReaderMutexLock lock(c.mu);
    EXPECT_EQ(c.value, 42);
  }
}

TEST(CondVarTest, WaitReleasesAndReacquires) {
  WaitState s;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(s.mu);
    while (!s.ready) s.cv.Wait(s.mu);
    observed = 1;
  });
  {
    // If Wait failed to release the mutex this Lock would deadlock.
    MutexLock lock(s.mu);
    s.ready = true;
  }
  s.cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  WaitState s;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(s.mu);
      while (!s.ready) s.cv.Wait(s.mu);
      ++s.woke;
    });
  }
  {
    MutexLock lock(s.mu);
    s.ready = true;
  }
  s.cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  MutexLock lock(s.mu);
  EXPECT_EQ(s.woke, 3);
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  Mutex mu;
  MutexLock lock(mu);
  mu.AssertHeld();  // compiles and does nothing; the analysis consumes it
}

}  // namespace
}  // namespace mural
