// Fuzz-smoke tests: every parser and decoder in the system must turn
// arbitrary bytes into a clean Status — never crash, hang, or read out of
// bounds.  (Run under ASan/UBSan for full effect; deterministic seeds keep
// failures reproducible.)

#include <gtest/gtest.h>

#include "catalog/tuple_codec.h"
#include "common/random.h"
#include "common/utf8.h"
#include "plfront/pl_parser.h"
#include "plfront/udf_runtime.h"
#include "sql/sql.h"

namespace mural {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return s;
}

/// Random soup of plausible tokens — exercises deeper parser paths than
/// raw bytes, which usually die in the lexer.
std::string RandomTokenSoup(Rng* rng, const std::vector<std::string>& vocab,
                            size_t max_tokens) {
  std::string out;
  const size_t n = rng->Uniform(max_tokens + 1);
  for (size_t i = 0; i < n; ++i) {
    out += vocab[rng->Uniform(vocab.size())];
    out += ' ';
  }
  return out;
}

class FuzzSmokeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSmokeTest, SqlParserNeverCrashes) {
  Rng rng(GetParam());
  const std::vector<std::string> vocab = {
      "SELECT", "FROM",     "WHERE",    "LEXEQUAL", "SEMEQUAL", "IN",
      "AND",    "OR",       "NOT",      "GROUP",    "BY",       "ORDER",
      "LIMIT",  "count",    "(",        ")",        "*",        ",",
      "=",      "<",        ">",        "<=",       ";",        ".",
      "'x'",    "'y'@Tamil", "42",      "3.5",      "Book",     "Author",
      "THRESHOLD", "CREATE", "TABLE",   "INDEX",    "INSERT",   "INTO",
      "VALUES", "SET",      "EXPLAIN",  "ANALYZE",  "AS",       "USING"};
  for (int iter = 0; iter < 300; ++iter) {
    (void)sql::Parse(RandomBytes(&rng, 120));
    (void)sql::Parse(RandomTokenSoup(&rng, vocab, 24));
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, PlParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const std::vector<std::string> vocab = {
      "FUNCTION", "RETURNS", "AS",    "BEGIN", "END",   "IF",    "THEN",
      "ELSE",     "ELSIF",   "WHILE", "LOOP",  "FOR",   "IN",    "RETURN",
      "INT",      "TEXT",    "ARRAY", ":=",    ";",     "(",     ")",
      "[",        "]",       "+",     "-",     "*",     "/",     "..",
      "x",        "y",       "f",     "1",     "2.5",   "'s'",   "=",
      "<>",       "AND",     "OR",    "NOT",   "NULL",  "TRUE"};
  for (int iter = 0; iter < 300; ++iter) {
    (void)pl::ParseProgram(RandomBytes(&rng, 150));
    (void)pl::ParseProgram(RandomTokenSoup(&rng, vocab, 30));
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, TupleCodecRejectsGarbageCleanly) {
  Rng rng(GetParam() ^ 0x5555ULL);
  Schema schema({{"a", TypeId::kInt32},
                 {"b", TypeId::kText},
                 {"c", TypeId::kUniText},
                 {"d", TypeId::kFloat64}});
  Row row;
  for (int iter = 0; iter < 500; ++iter) {
    const Status st =
        TupleCodec::Deserialize(schema, RandomBytes(&rng, 80), &row);
    // Either it decodes (tiny chance the bytes are well-formed) or it
    // fails cleanly; both are fine — crashing is not.
    (void)st;
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, TupleCodecSurvivesTruncationOfValidTuples) {
  Rng rng(GetParam() ^ 0x7777ULL);
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kUniText}});
  Row row{Value::Int64(42),
          Value::Uni("charitram-notes", lang::kTamil)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(schema, row, &bytes).ok());
  Row out;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const Status st =
        TupleCodec::Deserialize(schema, bytes.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "prefix of length " << cut << " decoded";
  }
  // Bit flips: decode either succeeds or errors, never crashes.
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = bytes;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    (void)TupleCodec::Deserialize(schema, mutated, &out);
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, Utf8DecodersNeverCrash) {
  Rng rng(GetParam() ^ 0x9999ULL);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::string bytes = RandomBytes(&rng, 64);
    const std::vector<CodePoint> lenient = utf8::Decode(bytes);
    EXPECT_LE(lenient.size(), bytes.size());
    (void)utf8::DecodeStrict(bytes);
    (void)utf8::Length(bytes);
    (void)utf8::IsValid(bytes);
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, UdfWireDecoderNeverCrashes) {
  Rng rng(GetParam() ^ 0x1234ULL);
  for (int iter = 0; iter < 500; ++iter) {
    (void)pl::UdfRuntime::DeserializeArgs(RandomBytes(&rng, 64));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSmokeTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace mural
