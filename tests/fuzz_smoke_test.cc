// Fuzz-smoke tests: every parser and decoder in the system must turn
// arbitrary bytes into a clean Status — never crash, hang, or read out of
// bounds.  (Run under ASan/UBSan for full effect; deterministic seeds keep
// failures reproducible.)

#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/tuple_codec.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/utf8.h"
#include "distance/bounded_myers.h"
#include "distance/edit_distance.h"
#include "cfg.h"
#include "plfront/pl_parser.h"
#include "plfront/udf_runtime.h"
#include "sql/sql.h"

namespace mural {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return s;
}

/// Random soup of plausible tokens — exercises deeper parser paths than
/// raw bytes, which usually die in the lexer.
std::string RandomTokenSoup(Rng* rng, const std::vector<std::string>& vocab,
                            size_t max_tokens) {
  std::string out;
  const size_t n = rng->Uniform(max_tokens + 1);
  for (size_t i = 0; i < n; ++i) {
    out += vocab[rng->Uniform(vocab.size())];
    out += ' ';
  }
  return out;
}

class FuzzSmokeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSmokeTest, SqlParserNeverCrashes) {
  Rng rng(GetParam());
  const std::vector<std::string> vocab = {
      "SELECT", "FROM",     "WHERE",    "LEXEQUAL", "SEMEQUAL", "IN",
      "AND",    "OR",       "NOT",      "GROUP",    "BY",       "ORDER",
      "LIMIT",  "count",    "(",        ")",        "*",        ",",
      "=",      "<",        ">",        "<=",       ";",        ".",
      "'x'",    "'y'@Tamil", "42",      "3.5",      "Book",     "Author",
      "THRESHOLD", "CREATE", "TABLE",   "INDEX",    "INSERT",   "INTO",
      "VALUES", "SET",      "EXPLAIN",  "ANALYZE",  "AS",       "USING"};
  for (int iter = 0; iter < 300; ++iter) {
    (void)sql::Parse(RandomBytes(&rng, 120));
    (void)sql::Parse(RandomTokenSoup(&rng, vocab, 24));
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, PlParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xabcdULL);
  const std::vector<std::string> vocab = {
      "FUNCTION", "RETURNS", "AS",    "BEGIN", "END",   "IF",    "THEN",
      "ELSE",     "ELSIF",   "WHILE", "LOOP",  "FOR",   "IN",    "RETURN",
      "INT",      "TEXT",    "ARRAY", ":=",    ";",     "(",     ")",
      "[",        "]",       "+",     "-",     "*",     "/",     "..",
      "x",        "y",       "f",     "1",     "2.5",   "'s'",   "=",
      "<>",       "AND",     "OR",    "NOT",   "NULL",  "TRUE"};
  for (int iter = 0; iter < 300; ++iter) {
    (void)pl::ParseProgram(RandomBytes(&rng, 150));
    (void)pl::ParseProgram(RandomTokenSoup(&rng, vocab, 30));
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, TupleCodecRejectsGarbageCleanly) {
  Rng rng(GetParam() ^ 0x5555ULL);
  Schema schema({{"a", TypeId::kInt32},
                 {"b", TypeId::kText},
                 {"c", TypeId::kUniText},
                 {"d", TypeId::kFloat64}});
  Row row;
  for (int iter = 0; iter < 500; ++iter) {
    const Status st =
        TupleCodec::Deserialize(schema, RandomBytes(&rng, 80), &row);
    // Either it decodes (tiny chance the bytes are well-formed) or it
    // fails cleanly; both are fine — crashing is not.
    (void)st;
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, TupleCodecSurvivesTruncationOfValidTuples) {
  Rng rng(GetParam() ^ 0x7777ULL);
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kUniText}});
  Row row{Value::Int64(42),
          Value::Uni("charitram-notes", lang::kTamil)};
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(schema, row, &bytes).ok());
  Row out;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const Status st =
        TupleCodec::Deserialize(schema, bytes.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "prefix of length " << cut << " decoded";
  }
  // Bit flips: decode either succeeds or errors, never crashes.
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = bytes;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    (void)TupleCodec::Deserialize(schema, mutated, &out);
  }
  SUCCEED();
}

// Hand-crafted malformed UTF-8: overlong encodings, surrogate halves,
// out-of-range values, bare continuation bytes, and truncated sequences.
// Strict decoding must reject every one; lenient decoding must survive.
// Under ASan/UBSan this also proves the decoder never reads past the end
// of a short buffer.
TEST(Utf8AdversarialTest, MalformedSequencesAreRejectedCleanly) {
  const std::vector<std::string> malformed = {
      "\xC0\xAF",               // overlong '/': 2 bytes for U+002F
      "\xC1\xBF",               // overlong: top of the C0/C1 dead zone
      "\xE0\x80\xAF",           // overlong '/': 3 bytes
      "\xF0\x80\x80\xAF",       // overlong '/': 4 bytes
      "\xE0\x9F\xBF",           // overlong: 3-byte below U+0800
      "\xF0\x8F\xBF\xBF",       // overlong: 4-byte below U+10000
      "\xED\xA0\x80",           // UTF-16 high surrogate U+D800
      "\xED\xBF\xBF",           // UTF-16 low surrogate U+DFFF
      "\xF4\x90\x80\x80",       // first code point beyond U+10FFFF
      "\xF5\x80\x80\x80",       // lead byte that can never be valid
      "\xFE",                   // illegal lead byte
      "\xFF",                   // illegal lead byte
      "\x80",                   // bare continuation byte
      "\xBF\xBF",               // continuation bytes with no lead
      "\xC2",                   // truncated 2-byte sequence
      "\xE2\x82",               // truncated 3-byte sequence
      "\xF0\x9F\x92",           // truncated 4-byte sequence (half an emoji)
      "\xC2\x41",               // lead byte followed by ASCII, not cont.
      "\xE2\x28\xA1",           // 3-byte with bad 2nd byte
      "ok\xC0\xAFtail",         // malformed bytes embedded in ASCII
  };
  for (const std::string& bytes : malformed) {
    EXPECT_FALSE(utf8::IsValid(bytes)) << "accepted: " << bytes;
    const auto strict = utf8::DecodeStrict(bytes);
    EXPECT_FALSE(strict.ok()) << "strict-decoded: " << bytes;
    // Lenient decode substitutes U+FFFD and never crashes or over-reads.
    const std::vector<CodePoint> lenient = utf8::Decode(bytes);
    EXPECT_LE(lenient.size(), bytes.size());
    for (const CodePoint cp : lenient) {
      EXPECT_LE(cp, kMaxCodePoint);
    }
  }
}

TEST(Utf8AdversarialTest, BoundaryCodePointsRoundTrip) {
  // The last valid code point before each encoding-width boundary and the
  // first after it — off-by-one territory for the encoder tables.
  const std::vector<CodePoint> boundaries = {0x00,    0x7F,   0x80,
                                             0x7FF,   0x800,  0xFFFF,
                                             0x10000, 0x10FFFF};
  for (const CodePoint cp : boundaries) {
    if (cp >= 0xD800 && cp <= 0xDFFF) continue;
    const std::string enc = utf8::Encode({cp});
    EXPECT_TRUE(utf8::IsValid(enc)) << "cp=" << cp;
    const auto dec = utf8::DecodeStrict(enc);
    ASSERT_TRUE(dec.ok()) << "cp=" << cp;
    ASSERT_EQ(dec.value().size(), 1u);
    EXPECT_EQ(dec.value()[0], cp);
  }
}

// Length prefixes that lie: a tuple whose TEXT/UNITEXT field claims far
// more bytes than the buffer holds must fail with a clean Status.  Under
// ASan this is the canonical heap-overflow probe for the decoder.
TEST(TupleCodecAdversarialTest, LyingLengthPrefixesFailCleanly) {
  Schema schema({{"t", TypeId::kText}});
  Row out;
  for (const uint32_t lie :
       {uint32_t{8}, uint32_t{0x7FFFFFFF}, uint32_t{0xFFFFFFFF}}) {
    std::string bytes;
    PutU8(&bytes, 1);     // non-null flag
    PutU32(&bytes, lie);  // declared length
    bytes += "abc";       // actual payload: 3 bytes
    const Status st = TupleCodec::Deserialize(schema, bytes, &out);
    EXPECT_FALSE(st.ok()) << "declared " << lie << " bytes, decoded anyway";
  }
}

TEST(TupleCodecAdversarialTest, TruncatedUniTextPhonemesFailCleanly) {
  Schema schema({{"u", TypeId::kUniText}});
  Row row{Value::Uni(UniText("svara", lang::kTamil))};
  row[0].mutable_unitext().set_phonemes("S V A R A");
  std::string bytes;
  ASSERT_TRUE(TupleCodec::Serialize(schema, row, &bytes).ok());
  Row out;
  // Every strict prefix must fail; none may crash or over-read.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        TupleCodec::Deserialize(schema, bytes.substr(0, cut), &out).ok())
        << "prefix of length " << cut << " decoded";
  }
  // Trailing garbage after a well-formed tuple must also be rejected.
  EXPECT_FALSE(TupleCodec::Deserialize(schema, bytes + "x", &out).ok());
}

TEST_P(FuzzSmokeTest, Utf8DecodersNeverCrash) {
  Rng rng(GetParam() ^ 0x9999ULL);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::string bytes = RandomBytes(&rng, 64);
    const std::vector<CodePoint> lenient = utf8::Decode(bytes);
    EXPECT_LE(lenient.size(), bytes.size());
    (void)utf8::DecodeStrict(bytes);
    (void)utf8::Length(bytes);
    (void)utf8::IsValid(bytes);
  }
  SUCCEED();
}

// Distance kernels over arbitrary bytes: embedded NULs, invalid UTF-8,
// wildly different lengths.  The byte kernels must agree with each other
// on every input (they define the same function), and the code-point
// kernel must survive malformed sequences without crashing or over-reading.
TEST_P(FuzzSmokeTest, DistanceKernelsAgreeOnArbitraryBytes) {
  Rng rng(GetParam() ^ 0xd157ULL);
  for (int iter = 0; iter < 400; ++iter) {
    std::string a = RandomBytes(&rng, 100);
    std::string b = RandomBytes(&rng, 100);
    // Force embedded NULs into some iterations — the kernels take
    // string_view and must treat NUL as an ordinary symbol.
    if (iter % 3 == 0) {
      if (!a.empty()) a[rng.Uniform(a.size())] = '\0';
      b.push_back('\0');
    }
    const int ref = Levenshtein(a, b);
    ASSERT_EQ(MyersLevenshtein(a, b), ref);
    for (int k : {-1, 0, 1, 3, 7, 150}) {
      const int want = k < 0 ? 1 : (ref <= k ? ref : k + 1);
      ASSERT_EQ(BoundedDistanceCounted(a, b, k, nullptr), want)
          << "k=" << k << " ref=" << ref;
      BoundedMyersMatcher matcher(a, k);
      ASSERT_EQ(matcher.Distance(b, nullptr), want)
          << "k=" << k << " ref=" << ref;
      if (k >= 0) {
        ASSERT_EQ(BoundedLevenshtein(a, b, k), want) << "k=" << k;
        ASSERT_EQ(BoundedMyersLevenshtein(a, b, k), want) << "k=" << k;
      }
    }
    // The code-point kernel decodes leniently; it must neither crash nor
    // report a distance larger than the longer input's lenient length.
    const int cp = LevenshteinCodePoints(a, b);
    ASSERT_GE(cp, 0);
    ASSERT_LE(cp, static_cast<int>(std::max(a.size(), b.size())));
  }
  SUCCEED();
}

TEST_P(FuzzSmokeTest, UdfWireDecoderNeverCrashes) {
  Rng rng(GetParam() ^ 0x1234ULL);
  for (int iter = 0; iter < 500; ++iter) {
    (void)pl::UdfRuntime::DeserializeArgs(RandomBytes(&rng, 64));
  }
  SUCCEED();
}

// The lint toolchain (lexer -> declaration parser -> per-function CFGs ->
// all rules) must survive arbitrary bytes and adversarial C++ fragments:
// it runs on every build over whatever is in the tree, including files
// mid-edit.  Malformed input may produce fewer symbols or violations,
// never a crash, hang, or over-read.
TEST_P(FuzzSmokeTest, LintToolchainNeverCrashes) {
  Rng rng(GetParam() ^ 0x11A7ULL);
  const std::vector<std::string> vocab = {
      "if",     "else",  "for",    "while", "do",     "switch", "case",
      "default","break", "continue","return","throw", "{",      "}",
      "(",      ")",     ";",      ":",     "::",     "?",      ",",
      "=",      "==",    "<",      ">",     "&",      "&&",     "*",
      "enum",   "class", "struct", "const", "Status", "StatusOr",
      "ReadPageGuard",   "WritePageGuard",  "RowBatch",
      "MURAL_RETURN_IF_ERROR",    "MURAL_ASSIGN_OR_RETURN",
      "std",    "move",  "Release","abort", "true",   "0",      "42",
      "g",      "x",     "F",      "R\"(",  "\"",     "'"};
  for (int iter = 0; iter < 200; ++iter) {
    for (const std::string& src :
         {RandomBytes(&rng, 200), RandomTokenSoup(&rng, vocab, 60)}) {
      const lint::LexResult lexed = lint::Lex(src);
      const lint::FileSymbols syms =
          lint::ParseFileSymbols("src/fuzz/probe.cc", lexed);
      (void)lint::BuildCfgs(lexed, syms);
      (void)lint::LintFile("src/fuzz/probe.cc", src);
    }
  }
  SUCCEED();
}

// Hand-crafted adversarial fragments for the CFG builder: unbalanced
// braces, truncated raw strings, embedded NULs, a dangling else, case
// labels outside a switch, and statements with no terminating ';'.
TEST(LintAdversarialTest, MalformedCppDegradesWithoutCrashing) {
  const std::vector<std::string> malformed = {
      "void F() { if (x) { return; ",            // unbalanced braces
      "void F() { } } } }",                      // extra closers
      "void F() { auto s = R\"(unterminated",    // truncated raw string
      std::string("void F() { int x\0= 1; }", 23),  // embedded NUL
      "void F() { else { g.Release(); } }",      // dangling else
      "void F() { case 1: break; }",             // case outside switch
      "void F() { for (;;) }",                   // empty infinite for
      "void F() { do { } }",                     // do without while
      "Status F() { MURAL_ASSIGN_OR_RETURN(WritePageGuard",  // cut macro
      "void F() { a ? b : ; c ? ; }",            // mangled ternaries
      "enum class E { kA, = , kB };",            // mangled enumerators
      "switch (k) { case A::kX:",                // switch at file scope
  };
  for (const std::string& src : malformed) {
    const lint::LexResult lexed = lint::Lex(src);
    const lint::FileSymbols syms =
        lint::ParseFileSymbols("src/fuzz/probe.cc", lexed);
    const std::vector<lint::Cfg> cfgs = lint::BuildCfgs(lexed, syms);
    for (const lint::Cfg& cfg : cfgs) {
      // Whatever graph came out must be internally consistent.
      ASSERT_EQ(cfg.reachable.size(), cfg.blocks.size());
      for (const lint::CfgBlock& b : cfg.blocks) {
        for (const int succ : b.succs) {
          ASSERT_GE(succ, 0);
          ASSERT_LT(static_cast<size_t>(succ), cfg.blocks.size());
        }
      }
    }
    (void)lint::LintFile("src/fuzz/probe.cc", src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSmokeTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace mural
