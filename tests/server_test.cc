// In-process tests for the line-protocol SQL server: protocol round
// trips, per-connection session isolation, the connection-capacity
// rejection path, \metrics, and clean Stop().
//
// The client side here is deliberately primitive — a blocking AF_UNIX
// socket plus a line splitter — so the tests exercise the server's real
// wire behavior, not a shared helper library.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "server/server.h"

namespace mural {
namespace {

std::string SocketPath(const char* tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = ::testing::TempDir();
  if (path.empty() || path.back() != '/') path += '/';
  path += "mural_";
  path += info->name();
  path += '_';
  path += tag;
  path += ".sock";
  // AF_UNIX paths are tiny (~100 bytes); keep CI tmpdirs honest.
  EXPECT_LT(path.size(), sizeof(sockaddr_un{}.sun_path));
  return path;
}

/// A blocking line-protocol client.  Each Roundtrip() sends one line and
/// reads until the "-- " terminator line, returning all response lines.
class TestClient {
 public:
  // lint: blocking(TestClientConnect, TestClientSend, TestClientRecv)
  static std::unique_ptr<TestClient> Connect(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    return std::unique_ptr<TestClient>(new TestClient(fd));
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const std::string& line) {
    std::string wire = line;
    wire += '\n';
    size_t sent = 0;
    while (sent < wire.size()) {
      // MSG_NOSIGNAL: writing after the server hung up must surface as an
      // error return here, not kill the test process with SIGPIPE.
      const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads lines up to and including the next terminator ("-- ..."); the
  /// terminator is the last element.  Empty on EOF/error.
  std::vector<std::string> ReadResponse() {
    std::vector<std::string> lines;
    std::string line;
    while (GetLine(&line)) {
      lines.push_back(line);
      if (line.rfind("-- ", 0) == 0) return lines;
    }
    return {};
  }

  std::vector<std::string> Roundtrip(const std::string& line) {
    if (!Send(line)) return {};
    return ReadResponse();
  }

 private:
  explicit TestClient(int fd) : fd_(fd) {}

  bool GetLine(std::string* out) {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!out->empty() && out->back() == '\r') out->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

bool IsOk(const std::vector<std::string>& response) {
  return !response.empty() && response.back().rfind("-- ok", 0) == 0;
}

/// Pulls "key=value" out of a terminator line ("" when absent).
std::string TerminatorField(const std::vector<std::string>& response,
                            const std::string& key) {
  if (response.empty()) return "";
  const std::string& line = response.back();
  const std::string needle = key + "=";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? end : end - start);
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    auto db = Database::Open();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto server = Server::Start(db_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ProtocolRoundTrips) {
  ServerOptions options;
  options.unix_path = SocketPath("proto");
  StartServer(std::move(options));
  EXPECT_EQ(server_->endpoint(), SocketPath("proto"));
  EXPECT_EQ(server_->port(), -1);

  auto client = TestClient::Connect(server_->endpoint());
  ASSERT_NE(client, nullptr);

  EXPECT_TRUE(IsOk(client->Roundtrip(
      "CREATE TABLE Book (BookID INT, "
      "Author UNITEXT MATERIALIZE PHONEMES)")));
  EXPECT_TRUE(IsOk(
      client->Roundtrip("INSERT INTO Book VALUES (1, 'nehru'@English)")));
  EXPECT_TRUE(IsOk(
      client->Roundtrip("INSERT INTO Book VALUES (2, 'nehrU'@Hindi)")));
  EXPECT_TRUE(IsOk(
      client->Roundtrip("INSERT INTO Book VALUES (3, 'gandhi'@English)")));

  auto select = client->Roundtrip(
      "SELECT BookID, Author FROM Book WHERE Author LexEQUAL "
      "'nehru'@English");
  ASSERT_TRUE(IsOk(select)) << (select.empty() ? "<eof>" : select.back());
  // Data lines join values with " | ", then the terminator reports the
  // count and the session attribution.
  ASSERT_EQ(select.size(), 3u);
  EXPECT_EQ(select[0], "1 | 'nehru'@English");
  EXPECT_EQ(select[1], "2 | 'nehrU'@Hindi");
  EXPECT_EQ(TerminatorField(select, "rows"), "2");
  EXPECT_NE(TerminatorField(select, "session"), "");
  EXPECT_NE(TerminatorField(select, "runtime_ms"), "");
  EXPECT_NE(TerminatorField(select, "queue_wait_ms"), "");

  // Errors come back typed, connection stays usable.
  auto bad = client->Roundtrip("SELEKT * FROM Book");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rfind("-- error InvalidArgument:", 0), 0u) << bad[0];
  EXPECT_TRUE(IsOk(client->Roundtrip("SELECT BookID FROM Book")));

  // \metrics dumps Prometheus text ending in the ok terminator.
  auto metrics = client->Roundtrip("\\metrics");
  ASSERT_TRUE(IsOk(metrics));
  bool saw_statements = false;
  for (const std::string& line : metrics) {
    if (line.rfind("mural_server_statements", 0) == 0) saw_statements = true;
  }
  EXPECT_TRUE(saw_statements);

  auto bye = client->Roundtrip("\\q");
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0], "-- bye");
}

TEST_F(ServerTest, ConnectionsGetIsolatedSessions) {
  ServerOptions options;
  options.unix_path = SocketPath("iso");
  StartServer(std::move(options));

  auto a = TestClient::Connect(server_->endpoint());
  auto b = TestClient::Connect(server_->endpoint());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  ASSERT_TRUE(IsOk(a->Roundtrip(
      "CREATE TABLE Book (Author UNITEXT MATERIALIZE PHONEMES)")));
  ASSERT_TRUE(
      IsOk(a->Roundtrip("INSERT INTO Book VALUES ('nehru'@English)")));
  ASSERT_TRUE(
      IsOk(a->Roundtrip("INSERT INTO Book VALUES ('neharu'@Tamil)")));

  // Distinct session ids on the two connections.
  auto from_a = a->Roundtrip("SELECT Author FROM Book");
  auto from_b = b->Roundtrip("SELECT Author FROM Book");
  ASSERT_TRUE(IsOk(from_a));
  ASSERT_TRUE(IsOk(from_b));
  const std::string id_a = TerminatorField(from_a, "session");
  const std::string id_b = TerminatorField(from_b, "session");
  EXPECT_NE(id_a, "");
  EXPECT_NE(id_b, "");
  EXPECT_NE(id_a, id_b);

  // SET on one connection does not leak to the other: at threshold 0 the
  // LexEQUAL probe matches only the exact spelling; b still runs at the
  // default threshold and sees the near-homophone too.
  ASSERT_TRUE(IsOk(a->Roundtrip("SET lexequal_threshold = 0")));
  auto strict = a->Roundtrip(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English");
  auto loose = b->Roundtrip(
      "SELECT Author FROM Book WHERE Author LexEQUAL 'nehru'@English");
  ASSERT_TRUE(IsOk(strict));
  ASSERT_TRUE(IsOk(loose));
  EXPECT_EQ(TerminatorField(strict, "rows"), "1");
  EXPECT_EQ(TerminatorField(loose, "rows"), "2");
}

TEST_F(ServerTest, RefusesConnectionsBeyondCapacity) {
  ServerOptions options;
  options.unix_path = SocketPath("cap");
  options.max_connections = 1;
  StartServer(std::move(options));

  auto first = TestClient::Connect(server_->endpoint());
  ASSERT_NE(first, nullptr);
  // Prove the slot is actually serving before the second connect.
  ASSERT_TRUE(IsOk(first->Roundtrip("CREATE TABLE T (X INT)")));

  auto second = TestClient::Connect(server_->endpoint());
  ASSERT_NE(second, nullptr);  // TCP-level accept still happens
  auto refusal = second->ReadResponse();
  ASSERT_EQ(refusal.size(), 1u);
  EXPECT_EQ(refusal[0].rfind("-- error Overloaded:", 0), 0u) << refusal[0];

  // Once the first client leaves, the slot frees up for a newcomer.
  EXPECT_TRUE(IsOk(first->Roundtrip("SELECT X FROM T")));
  first.reset();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto retry = TestClient::Connect(server_->endpoint());
    ASSERT_NE(retry, nullptr);
    auto response = retry->Roundtrip("SELECT X FROM T");
    if (IsOk(response)) return;  // got the freed slot
  }
  FAIL() << "slot never freed after client disconnect";
}

TEST_F(ServerTest, StopDisconnectsClientsAndIsIdempotent) {
  ServerOptions options;
  options.unix_path = SocketPath("stop");
  StartServer(std::move(options));

  auto client = TestClient::Connect(server_->endpoint());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(IsOk(client->Roundtrip("CREATE TABLE T (X INT)")));

  server_->Stop();
  // The live connection is torn down: the next read sees EOF.
  EXPECT_TRUE(client->Roundtrip("SELECT X FROM T").empty());
  // The socket path is gone, so new connects fail outright.
  EXPECT_EQ(TestClient::Connect(SocketPath("stop")), nullptr);
  server_->Stop();  // idempotent
}

}  // namespace
}  // namespace mural
