// Tests for the phonetic layer: canonical alphabet, G2P engines, the
// transformer facade, and the cross-lingual convergence property LexEQUAL
// depends on (variant spellings of one name land on nearby phoneme
// strings).

#include <gtest/gtest.h>

#include "distance/edit_distance.h"
#include "phonetic/g2p_engine.h"
#include "phonetic/phoneme.h"
#include "phonetic/transformer.h"
#include "text/language.h"

namespace mural {
namespace {

// --------------------------------------------------------------- alphabet

TEST(PhonemeTest, AlphabetMembership) {
  EXPECT_TRUE(phoneme::IsPhoneme('a'));
  EXPECT_TRUE(phoneme::IsPhoneme('S'));
  EXPECT_TRUE(phoneme::IsPhoneme('@'));
  EXPECT_FALSE(phoneme::IsPhoneme(' '));
  EXPECT_FALSE(phoneme::IsPhoneme('!'));
  EXPECT_TRUE(phoneme::IsValidPhonemeString("nEru"));
  EXPECT_FALSE(phoneme::IsValidPhonemeString("n ru"));
  EXPECT_EQ(phoneme::ToDisplay("nEru"), "/nEru/");
}

TEST(PhonemeTest, VowelClassification) {
  for (char c : std::string("aeiouAEIOU@")) EXPECT_TRUE(phoneme::IsVowel(c));
  for (char c : std::string("pbtdkgSZ")) EXPECT_FALSE(phoneme::IsVowel(c));
}

// -------------------------------------------------------------- engines

TEST(G2pEngineTest, AllBuiltinRuleSetsEmitCanonicalPhonemes) {
  for (const G2pRuleSet* rules :
       {&EnglishRules(), &IndicRules(), &RomanceRules(), &GermanicRules()}) {
    G2pEngine engine(*rules, {});
    EXPECT_TRUE(engine.Validate().ok()) << rules->name;
  }
}

TEST(G2pEngineTest, LongestMatchWins) {
  // "sch" must apply before "s"+"ch" in the Germanic set.
  G2pEngine engine(GermanicRules(), {});
  EXPECT_EQ(engine.Transform("schmidt")[0], 'S');
}

TEST(G2pEngineTest, ContextRulesApply) {
  G2pEngine en(EnglishRules(), {});
  // Word-initial kn -> n.
  EXPECT_EQ(en.Transform("knight")[0], 'n');
  // Soft c before e/i, hard otherwise.
  EXPECT_EQ(en.Transform("cell")[0], 's');
  EXPECT_EQ(en.Transform("call")[0], 'k');
  // Silent final e.
  const PhonemeString blake = en.Transform("blake");
  EXPECT_EQ(blake.back(), 'k');
}

TEST(G2pEngineTest, OutputsAreDeterministic) {
  G2pEngine en(EnglishRules(), {});
  EXPECT_EQ(en.Transform("nehru"), en.Transform("nehru"));
  EXPECT_EQ(en.Transform("NEHRU"), en.Transform("nehru"));  // case folded
}

TEST(G2pEngineTest, NonLettersAreSkipped) {
  G2pEngine en(EnglishRules(), {});
  EXPECT_EQ(en.Transform("o'brien 3rd"), en.Transform("obrien rd"));
}

TEST(G2pEngineTest, CollapseRunsFoldsDoubledConsonants) {
  G2pEngine en(EnglishRules(), {});
  EXPECT_EQ(en.Transform("anna"), en.Transform("ana"));
}

// ------------------------------------------------------------ transformer

TEST(TransformerTest, DispatchesByLanguageFamily) {
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  // German 'w' is /v/; English 'w' stays /w/.
  const PhonemeString de = t.Transform("wagner", lang::kGerman);
  const PhonemeString en = t.Transform("wagner", lang::kEnglish);
  EXPECT_EQ(de[0], 'v');
  EXPECT_EQ(en[0], 'w');
}

TEST(TransformerTest, UnknownLanguageFallsBackDeterministically) {
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  EXPECT_EQ(t.Transform("smith", 999),
            t.Transform("smith", lang::kEnglish));
}

TEST(TransformerTest, MaterializationIsUsedWhenPresent) {
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  UniText u("nehru", lang::kEnglish);
  t.Materialize(&u);
  ASSERT_TRUE(u.has_phonemes());
  const PhonemeString direct = t.Transform("nehru", lang::kEnglish);
  EXPECT_EQ(*u.phonemes(), direct);
  // A (deliberately wrong) materialized value short-circuits transform —
  // proving the cached string is what joins will read.
  u.set_phonemes("xxx");
  EXPECT_EQ(t.Transform(u), "xxx");
}

TEST(TransformerTest, OutputsAreAlwaysCanonical) {
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  const char* samples[] = {"nehru",   "chaudhary", "krishnamurthy",
                           "rousseau", "schmidt",  "o'connor",
                           "tchaikovsky", "bhattacharya"};
  for (LangId lang : {lang::kEnglish, lang::kHindi, lang::kTamil,
                      lang::kKannada, lang::kFrench, lang::kGerman}) {
    for (const char* s : samples) {
      EXPECT_TRUE(phoneme::IsValidPhonemeString(t.Transform(s, lang)))
          << s << " lang=" << lang;
    }
  }
}

// --------------------------------------------- cross-lingual convergence

struct ConvergenceCase {
  const char* a;
  LangId lang_a;
  const char* b;
  LangId lang_b;
  int max_distance;  // phonemic distance budget (paper threshold ~2-3)
};

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(ConvergenceTest, VariantSpellingsArePhonemicallyClose) {
  const ConvergenceCase& c = GetParam();
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  const PhonemeString pa = t.Transform(c.a, c.lang_a);
  const PhonemeString pb = t.Transform(c.b, c.lang_b);
  EXPECT_LE(Levenshtein(pa, pb), c.max_distance)
      << c.a << " -> /" << pa << "/ vs " << c.b << " -> /" << pb << "/";
}

INSTANTIATE_TEST_SUITE_P(
    NameVariants, ConvergenceTest,
    ::testing::Values(
        // The paper's running example: Nehru across languages.
        ConvergenceCase{"nehru", lang::kEnglish, "nehrU", lang::kHindi, 2},
        ConvergenceCase{"nehru", lang::kEnglish, "neharu", lang::kTamil, 2},
        // English spelling variants.
        ConvergenceCase{"smith", lang::kEnglish, "smyth", lang::kEnglish, 1},
        ConvergenceCase{"philip", lang::kEnglish, "filip", lang::kEnglish,
                        1},
        ConvergenceCase{"catherine", lang::kEnglish, "katherine",
                        lang::kEnglish, 1},
        // Cross-family: German/English renderings.
        ConvergenceCase{"schmidt", lang::kGerman, "shmit", lang::kEnglish,
                        1},
        // Indic romanization variants.
        ConvergenceCase{"chaudhary", lang::kHindi, "choudhury",
                        lang::kHindi, 2},
        ConvergenceCase{"lakshmi", lang::kHindi, "laxmi", lang::kHindi, 1},
        ConvergenceCase{"krishna", lang::kKannada, "krishnaa",
                        lang::kKannada, 1}));

// Distinct names must stay apart (no degenerate collapse to one string).
TEST(ConvergenceTest, DistinctNamesStayApart) {
  const PhoneticTransformer& t = PhoneticTransformer::Default();
  const PhonemeString nehru = t.Transform("nehru", lang::kEnglish);
  const PhonemeString gandhi = t.Transform("gandhi", lang::kEnglish);
  const PhonemeString patel = t.Transform("patel", lang::kEnglish);
  EXPECT_GT(Levenshtein(nehru, gandhi), 3);
  EXPECT_GT(Levenshtein(nehru, patel), 3);
  EXPECT_GT(Levenshtein(gandhi, patel), 3);
}

// ---------------------------------------------------------- languages

TEST(LanguageRegistryTest, DefaultLanguagesPresent) {
  LanguageRegistry& reg = LanguageRegistry::Default();
  ASSERT_NE(reg.Find(lang::kEnglish), nullptr);
  EXPECT_EQ(reg.Find(lang::kEnglish)->iso_code, "en");
  EXPECT_EQ(reg.FindByName("tamil")->id, lang::kTamil);
  EXPECT_EQ(reg.FindByName("HI")->id, lang::kHindi);
  EXPECT_EQ(reg.Find(kLangUnknown), nullptr);
  EXPECT_EQ(reg.NameOf(999), "lang#999");
}

TEST(LanguageRegistryTest, RegistrationValidation) {
  LanguageRegistry reg;  // fresh copy with defaults
  EXPECT_TRUE(reg.Register({42, "Klingon", "tlh", Script::kOther,
                            G2pFamily::kNone})
                  .ok());
  EXPECT_TRUE(reg.Register({42, "Qlingon", "qq", Script::kOther,
                            G2pFamily::kNone})
                  .IsInvalidArgument() ||
              !reg.Register({42, "Qlingon", "qq", Script::kOther,
                             G2pFamily::kNone})
                   .ok());
  EXPECT_FALSE(
      reg.Register({0, "Zero", "zz", Script::kOther, G2pFamily::kNone})
          .ok());
  EXPECT_FALSE(reg.Register({43, "English", "en2", Script::kLatin,
                             G2pFamily::kNone})
                   .ok());
}

}  // namespace
}  // namespace mural
