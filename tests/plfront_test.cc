// Tests for the PL language: lexer/parser, interpreter semantics, the wire
// boundary, the stock UDF library, and its agreement with the native
// edit-distance implementation.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "distance/edit_distance.h"
#include "phonetic/phoneme.h"
#include "plfront/pl_interpreter.h"
#include "plfront/pl_parser.h"
#include "plfront/udf_runtime.h"

namespace mural {
namespace pl {
namespace {

StatusOr<PlValue> RunPl(const std::string& source, const std::string& fn,
                      std::vector<PlValue> args) {
  MURAL_ASSIGN_OR_RETURN(FunctionLibrary lib, ParseProgram(source));
  Interpreter interp(std::move(lib));
  return interp.Call(fn, args);
}

// ------------------------------------------------------------------ parse

TEST(PlParserTest, ParsesFunctionShape) {
  auto lib = ParseProgram(R"PL(
FUNCTION add(a INT, b INT) RETURNS INT AS
BEGIN
  RETURN a + b;
END;
)PL");
  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  ASSERT_EQ(lib->count("ADD"), 1u);
  EXPECT_EQ(lib->at("ADD").params.size(), 2u);
}

TEST(PlParserTest, RejectsMalformedSource) {
  EXPECT_FALSE(ParseProgram("FUNCTION broken( RETURNS INT AS BEGIN END;")
                   .ok());
  EXPECT_FALSE(ParseProgram("SELECT 1").ok());
  EXPECT_FALSE(
      ParseProgram("FUNCTION f() RETURNS INT AS BEGIN RETURN 'x; END;")
          .ok());  // unterminated string
}

TEST(PlParserTest, CommentsAndCaseInsensitivity) {
  auto result = RunPl(R"PL(
-- a comment
function MiXeD() returns int as
  x int := 3;  -- trailing comment
begin
  return X;
end;
)PL",
                    "mixed", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsInt(), 3);
}

// ------------------------------------------------------------- semantics

TEST(PlInterpreterTest, ArithmeticAndComparison) {
  auto result = RunPl(R"PL(
FUNCTION f(a INT, b INT) RETURNS INT AS
BEGIN
  IF a * 2 >= b AND NOT (a = 0) THEN
    RETURN a * b + 7 / 2 - 1;
  END IF;
  RETURN -1;
END;
)PL",
                    "f", {PlValue(int64_t{5}), PlValue(int64_t{6})});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsInt(), 5 * 6 + 3 - 1);
}

TEST(PlInterpreterTest, WhileAndForLoops) {
  auto result = RunPl(R"PL(
FUNCTION sums(n INT) RETURNS INT AS
  total INT := 0;
  i INT := 1;
BEGIN
  WHILE i <= n LOOP
    total := total + i;
    i := i + 1;
  END LOOP;
  FOR j IN 1 .. n LOOP
    total := total + j;
  END LOOP;
  RETURN total;
END;
)PL",
                    "sums", {PlValue(int64_t{10})});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsInt(), 110);
}

TEST(PlInterpreterTest, ArraysHaveReferenceSemantics) {
  auto result = RunPl(R"PL(
FUNCTION touch(a ARRAY) RETURNS INT AS
BEGIN
  a[0] := 42;
  RETURN 0;
END;

FUNCTION f() RETURNS INT AS
  arr ARRAY;
  ignore INT;
BEGIN
  arr := ARRAY(3, 0);
  ignore := touch(arr);
  RETURN arr[0];
END;
)PL",
                    "f", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsInt(), 42);
}

TEST(PlInterpreterTest, StringBuiltins) {
  auto result = RunPl(R"PL(
FUNCTION f(s TEXT) RETURNS TEXT AS
BEGIN
  RETURN SUBSTR(s, 2, 3) || CHR(CODE(s, 1));
END;
)PL",
                    "f", {PlValue(std::string("nehru"))});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->AsString(), "ehrn");
}

TEST(PlInterpreterTest, ElsifChains) {
  const char* src = R"PL(
FUNCTION grade(x INT) RETURNS TEXT AS
BEGIN
  IF x >= 90 THEN RETURN 'A';
  ELSIF x >= 80 THEN RETURN 'B';
  ELSIF x >= 70 THEN RETURN 'C';
  ELSE RETURN 'F';
  END IF;
END;
)PL";
  EXPECT_EQ(RunPl(src, "grade", {PlValue(int64_t{95})})->AsString(), "A");
  EXPECT_EQ(RunPl(src, "grade", {PlValue(int64_t{85})})->AsString(), "B");
  EXPECT_EQ(RunPl(src, "grade", {PlValue(int64_t{75})})->AsString(), "C");
  EXPECT_EQ(RunPl(src, "grade", {PlValue(int64_t{10})})->AsString(), "F");
}

TEST(PlInterpreterTest, ErrorsSurfaceCleanly) {
  // Unknown variable.
  EXPECT_FALSE(RunPl("FUNCTION f() RETURNS INT AS BEGIN RETURN nope; END;",
                   "f", {})
                   .ok());
  // Division by zero.
  EXPECT_FALSE(
      RunPl("FUNCTION f() RETURNS INT AS BEGIN RETURN 1 / 0; END;", "f", {})
          .ok());
  // Array out of bounds.
  EXPECT_FALSE(RunPl(R"PL(
FUNCTION f() RETURNS INT AS
  a ARRAY;
BEGIN
  a := ARRAY(2, 0);
  RETURN a[5];
END;
)PL",
                   "f", {})
                   .ok());
  // Missing RETURN.
  EXPECT_FALSE(
      RunPl("FUNCTION f() RETURNS INT AS x INT; BEGIN x := 1; END;", "f", {})
          .ok());
  // Unbounded recursion is cut off.
  EXPECT_FALSE(
      RunPl("FUNCTION f() RETURNS INT AS BEGIN RETURN f(); END;", "f", {})
          .ok());
}

TEST(PlInterpreterTest, HostFunctionsAndStats) {
  auto lib = ParseProgram(R"PL(
FUNCTION f() RETURNS INT AS
BEGIN
  RETURN HOSTVAL() + HOSTVAL();
END;
)PL");
  ASSERT_TRUE(lib.ok());
  Interpreter interp(std::move(*lib));
  int calls = 0;
  interp.RegisterHost("HOSTVAL",
                      [&calls](const std::vector<PlValue>&)
                          -> StatusOr<PlValue> {
                        ++calls;
                        return PlValue(int64_t{21});
                      });
  auto result = interp.Call("f", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsInt(), 42);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(interp.stats().host_calls, 2u);
  EXPECT_GT(interp.stats().statements, 0u);
}

// ------------------------------------------------------------------ wire

TEST(UdfWireTest, ArgsRoundTrip) {
  std::vector<PlValue> args{PlValue(), PlValue(true),
                            PlValue(int64_t{-12345}), PlValue(2.5),
                            PlValue(std::string("nEru"))};
  const std::string wire = UdfRuntime::SerializeArgs(args);
  auto back = UdfRuntime::DeserializeArgs(wire);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), args.size());
  EXPECT_TRUE((*back)[0].is_null());
  EXPECT_TRUE((*back)[1].AsBool());
  EXPECT_EQ((*back)[2].AsInt(), -12345);
  EXPECT_EQ((*back)[3].AsDouble(), 2.5);
  EXPECT_EQ((*back)[4].AsString(), "nEru");
}

TEST(UdfWireTest, CorruptWireRejected) {
  EXPECT_FALSE(UdfRuntime::DeserializeArgs("\x01").ok());
  std::string bad;
  bad.push_back(1);
  bad.append(3, '\0');  // count=big-endian garbage? count=..., truncated
  // Construct: count=1, tag=9 (invalid).
  std::string wire = UdfRuntime::SerializeArgs({PlValue(true)});
  wire[4] = 9;
  EXPECT_FALSE(UdfRuntime::DeserializeArgs(wire).ok());
}

// ---------------------------------------------------------- stock library

TEST(UdfLibraryTest, EditDistMatchesNative) {
  auto udf = UdfRuntime::Create();
  ASSERT_TRUE(udf.ok()) << udf.status().ToString();
  Rng rng(17);
  for (int iter = 0; iter < 40; ++iter) {
    std::string a, b;
    const size_t la = rng.Uniform(12), lb = rng.Uniform(12);
    for (size_t i = 0; i < la; ++i) {
      a.push_back(phoneme::kAlphabet[rng.Uniform(8)]);
    }
    for (size_t i = 0; i < lb; ++i) {
      b.push_back(phoneme::kAlphabet[rng.Uniform(8)]);
    }
    for (int k : {0, 1, 2, 3}) {
      auto result = (*udf)->CallWire(
          "EDITDIST",
          {PlValue(a), PlValue(b), PlValue(static_cast<int64_t>(k))});
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->AsInt(), BoundedLevenshtein(a, b, k))
          << a << " / " << b << " k=" << k;
    }
  }
}

TEST(UdfLibraryTest, LexMatchBooleanForm) {
  auto udf = UdfRuntime::Create();
  ASSERT_TRUE(udf.ok());
  auto yes = (*udf)->CallWire("LEXMATCH",
                              {PlValue(std::string("nEru")),
                               PlValue(std::string("nehru")),
                               PlValue(int64_t{2})});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->AsBool());
  auto no = (*udf)->CallWire("LEXMATCH",
                             {PlValue(std::string("nEru")),
                              PlValue(std::string("gandI")),
                              PlValue(int64_t{2})});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->AsBool());
}

TEST(UdfLibraryTest, WireBoundaryCountsCallsAndBytes) {
  auto udf = UdfRuntime::Create();
  ASSERT_TRUE(udf.ok());
  ASSERT_TRUE((*udf)
                  ->CallWire("LEXMATCH",
                             {PlValue(std::string("abc")),
                              PlValue(std::string("abd")),
                              PlValue(int64_t{1})})
                  .ok());
  EXPECT_EQ((*udf)->stats().calls, 1u);
  EXPECT_GT((*udf)->stats().wire_bytes, 10u);
}

TEST(UdfLibraryTest, ClosureViaHostCallbacks) {
  auto udf = UdfRuntime::Create();
  ASSERT_TRUE(udf.ok());
  // Tiny taxonomy: 0 -> {1, 2}, 1 -> {3}; lookup("root") = {0}.
  auto children = [](const std::vector<PlValue>& args)
      -> StatusOr<PlValue> {
    auto out = std::make_shared<std::vector<PlValue>>();
    const int64_t node = args[0].AsInt();
    if (node == 0) {
      out->emplace_back(int64_t{1});
      out->emplace_back(int64_t{2});
    } else if (node == 1) {
      out->emplace_back(int64_t{3});
    }
    return PlValue(std::move(out));
  };
  (*udf)->RegisterHost("SQL_CHILDREN", children);
  (*udf)->RegisterHost("SQL_EQUIVALENTS",
                       [](const std::vector<PlValue>&) -> StatusOr<PlValue> {
                         return PlValue(
                             std::make_shared<std::vector<PlValue>>());
                       });
  (*udf)->RegisterHost(
      "SQL_LOOKUP", [](const std::vector<PlValue>& args)
                        -> StatusOr<PlValue> {
        auto out = std::make_shared<std::vector<PlValue>>();
        if (args[0].AsString() == "root") out->emplace_back(int64_t{0});
        if (args[0].AsString() == "leaf") out->emplace_back(int64_t{3});
        return PlValue(std::move(out));
      });
  // Tempsets backed by a local map.
  auto sets = std::make_shared<std::map<int64_t, std::set<int64_t>>>();
  auto next = std::make_shared<int64_t>(1);
  (*udf)->RegisterHost("TEMPSET_NEW",
                       [sets, next](const std::vector<PlValue>&)
                           -> StatusOr<PlValue> {
                         (*sets)[*next] = {};
                         return PlValue((*next)++);
                       });
  (*udf)->RegisterHost(
      "TEMPSET_ADD",
      [sets](const std::vector<PlValue>& args) -> StatusOr<PlValue> {
        return PlValue(
            (*sets)[args[0].AsInt()].insert(args[1].AsInt()).second);
      });
  (*udf)->RegisterHost(
      "TEMPSET_CONTAINS",
      [sets](const std::vector<PlValue>& args) -> StatusOr<PlValue> {
        return PlValue((*sets)[args[0].AsInt()].count(args[1].AsInt()) > 0);
      });
  (*udf)->RegisterHost(
      "TEMPSET_SIZE",
      [sets](const std::vector<PlValue>& args) -> StatusOr<PlValue> {
        return PlValue(
            static_cast<int64_t>((*sets)[args[0].AsInt()].size()));
      });
  (*udf)->RegisterHost(
      "TEMPSET_FREE",
      [sets](const std::vector<PlValue>& args) -> StatusOr<PlValue> {
        sets->erase(args[0].AsInt());
        return PlValue(true);
      });

  auto size = (*udf)->CallWire(
      "CLOSURE_SIZE", {PlValue(std::string("root")), PlValue(int64_t{1}),
                       PlValue(int64_t{1})});
  ASSERT_TRUE(size.ok()) << size.status().ToString();
  EXPECT_EQ(size->AsInt(), 4);  // {0,1,2,3}

  auto match = (*udf)->CallWire(
      "SEM_MATCH", {PlValue(std::string("leaf")), PlValue(int64_t{1}),
                    PlValue(std::string("root")), PlValue(int64_t{1})});
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_TRUE(match->AsBool());
}

}  // namespace
}  // namespace pl
}  // namespace mural
