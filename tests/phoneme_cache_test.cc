// Unit tests for the sharded phoneme LRU cache: hit/miss accounting, LRU
// eviction at capacity, cross-thread sharing, the capacity-0 (disabled)
// mode, and the LexJoinOp G2P-hoist regression (one transform per row, not
// per candidate pair).

#include "phonetic/phoneme_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/basic_ops.h"
#include "exec/mural_ops.h"
#include "phonetic/transformer.h"

namespace mural {
namespace {

const PhoneticTransformer& Xf() { return PhoneticTransformer::Default(); }

TEST(PhonemeCacheTest, MissThenHitReturnsTheSamePhonemes) {
  PhonemeCache cache(64);
  bool hit = true;
  const PhonemeString first =
      cache.GetOrCompute("nehru", lang::kEnglish, Xf(), &hit);
  EXPECT_FALSE(hit);
  const PhonemeString again =
      cache.GetOrCompute("nehru", lang::kEnglish, Xf(), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, Xf().Transform("nehru", lang::kEnglish));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PhonemeCacheTest, LanguageIsPartOfTheKey) {
  PhonemeCache cache(64);
  (void)cache.GetOrCompute("nehru", lang::kEnglish, Xf());
  bool hit = true;
  (void)cache.GetOrCompute("nehru", lang::kHindi, Xf(), &hit);
  EXPECT_FALSE(hit);  // different language, different entry
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PhonemeCacheTest, EvictsAtCapacity) {
  PhonemeCache cache(16);  // 2 entries per shard
  for (int i = 0; i < 1000; ++i) {
    (void)cache.GetOrCompute("name" + std::to_string(i), lang::kEnglish,
                             Xf());
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_EQ(cache.misses(), 1000u);
  // The first key was evicted long ago, so re-reading it is a miss.
  bool hit = true;
  (void)cache.GetOrCompute("name0", lang::kEnglish, Xf(), &hit);
  EXPECT_FALSE(hit);
}

TEST(PhonemeCacheTest, RecentUseProtectsFromEviction) {
  PhonemeCache cache(8);  // 1 entry per shard: strict per-shard LRU
  (void)cache.GetOrCompute("anchor", lang::kEnglish, Xf());
  // Re-touch "anchor" after every insert; it must stay resident in its
  // shard, so the final lookup is a hit.
  for (int i = 0; i < 50; ++i) {
    (void)cache.GetOrCompute("fill" + std::to_string(i), lang::kEnglish,
                             Xf());
    bool hit = false;
    (void)cache.GetOrCompute("anchor", lang::kEnglish, Xf(), &hit);
    // A fill key that lands in anchor's shard evicts it (capacity 1), so
    // the re-touch may miss once — but then reloads it.
    (void)hit;
  }
  bool hit = false;
  (void)cache.GetOrCompute("anchor", lang::kEnglish, Xf(), &hit);
  EXPECT_TRUE(hit);
}

TEST(PhonemeCacheTest, CapacityZeroDisablesCaching) {
  PhonemeCache cache(0);
  EXPECT_FALSE(cache.enabled());
  for (int i = 0; i < 3; ++i) {
    bool hit = true;
    const PhonemeString p =
        cache.GetOrCompute("nehru", lang::kEnglish, Xf(), &hit);
    EXPECT_FALSE(hit);  // never stored, never hit
    EXPECT_EQ(p, Xf().Transform("nehru", lang::kEnglish));
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PhonemeCacheTest, ClearDropsEntriesButKeepsCounters) {
  PhonemeCache cache(64);
  (void)cache.GetOrCompute("nehru", lang::kEnglish, Xf());
  (void)cache.GetOrCompute("nehru", lang::kEnglish, Xf());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  bool hit = true;
  (void)cache.GetOrCompute("nehru", lang::kEnglish, Xf(), &hit);
  EXPECT_FALSE(hit);
}

TEST(PhonemeCacheTest, CrossThreadHitsAreAccounted) {
  PhonemeCache cache(1024);
  // Warm the cache serially so every parallel lookup below is a hit
  // (avoids the benign duplicate-compute race inflating misses).
  const int kKeys = 32;
  for (int i = 0; i < kKeys; ++i) {
    (void)cache.GetOrCompute("key" + std::to_string(i), lang::kEnglish,
                             Xf());
  }
  const uint64_t misses_after_warm = cache.misses();
  EXPECT_EQ(misses_after_warm, static_cast<uint64_t>(kKeys));

  ThreadPool pool(4);
  const int kTasks = 8, kLookupsPerTask = 100;
  std::vector<std::future<Status>> futures;
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([&cache] {
      for (int i = 0; i < kLookupsPerTask; ++i) {
        bool hit = false;
        (void)cache.GetOrCompute("key" + std::to_string(i % kKeys),
                                 lang::kEnglish, Xf(), &hit);
        if (!hit) return Status::Internal("expected warm hit");
      }
      return Status::OK();
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kTasks * kLookupsPerTask));
  EXPECT_EQ(cache.misses(), misses_after_warm);
}

// ---------------------------------------------------------------------
// Regression: LexJoinOp must transform each row's phonemes once (hoisted
// per outer row and materialized per inner row), never once per candidate
// pair.  With non-materialized UniText values and no cache, the transform
// counter must equal n_outer + n_inner exactly.

Value RawUni(const char* text, LangId lang) {
  return Value::Uni(UniText(text, lang));  // no materialized phonemes
}

std::unique_ptr<ValuesOp> MakeNamesValues(ExecContext* ctx,
                                          const char* prefix, int n) {
  Schema schema({{"name", TypeId::kUniText}});
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(
        {RawUni((std::string(prefix) + std::to_string(i)).c_str(),
                lang::kEnglish)});
  }
  return std::make_unique<ValuesOp>(ctx, schema, std::move(rows));
}

TEST(LexJoinG2pHoistTest, OneTransformPerRowWithoutCache) {
  ExecContext ctx;
  const int kOuter = 7, kInner = 5;
  LexJoinOp join(&ctx, MakeNamesValues(&ctx, "outer", kOuter),
                 MakeNamesValues(&ctx, "inner", kInner), 0, 0);
  ASSERT_TRUE(join.Open().ok());
  Row row;
  while (true) {
    StatusOr<bool> more = join.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  ASSERT_TRUE(join.Close().ok());
  // Hoisted: n_outer + n_inner transforms, not n_outer * n_inner.
  EXPECT_EQ(ctx.stats.phoneme_transforms,
            static_cast<uint64_t>(kOuter + kInner));
}

TEST(LexJoinG2pHoistTest, CacheTurnsRepeatedValuesIntoHits) {
  PhonemeCache cache(256);
  ExecContext ctx;
  ctx.phoneme_cache = &cache;
  // Rerunning the identical join: the second Open/Next pass finds every
  // (text, lang) pair already cached — zero new transforms.
  const int kOuter = 6, kInner = 4;
  for (int round = 0; round < 2; ++round) {
    LexJoinOp join(&ctx, MakeNamesValues(&ctx, "outer", kOuter),
                   MakeNamesValues(&ctx, "inner", kInner), 0, 0);
    ASSERT_TRUE(join.Open().ok());
    Row row;
    while (true) {
      StatusOr<bool> more = join.Next(&row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
    }
    ASSERT_TRUE(join.Close().ok());
  }
  EXPECT_EQ(ctx.stats.phoneme_transforms,
            static_cast<uint64_t>(kOuter + kInner));  // first round only
  EXPECT_EQ(ctx.stats.phoneme_cache_misses,
            static_cast<uint64_t>(kOuter + kInner));
  EXPECT_EQ(ctx.stats.phoneme_cache_hits,
            static_cast<uint64_t>(kOuter + kInner));  // second round
}

}  // namespace
}  // namespace mural
